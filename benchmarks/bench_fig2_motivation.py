"""Fig. 2: the motivating example — exact paper numbers.

No congestion: 9 I/Os per tick.  DCQCN halves the sending rate ⇒ 6.
SRC re-weights the device ⇒ 9 restored at the same network cap.
"""

import pytest

from benchmarks.common import save_result
from repro.experiments.motivation import (
    MotivationScenario,
    dcqcn_only,
    dcqcn_src,
    no_congestion,
)
from repro.experiments.tables import format_table


def run_fig2():
    s = MotivationScenario()
    return {
        "no congestion": no_congestion(s),
        "DCQCN": dcqcn_only(s),
        "SRC": dcqcn_src(s),
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_motivation(benchmark):
    outcomes = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{o.read_delivered:.0f}",
            f"{o.write_delivered:.0f}",
            f"{o.aggregated:.0f}",
            f"{o.wasted_read:.0f}",
        ]
        for name, o in outcomes.items()
    ]
    save_result(
        "fig2_motivation",
        format_table(
            ["Scenario", "Read", "Write", "Aggregate", "Wasted read"],
            rows,
            title="Fig. 2 — Motivation fluid model (I/Os per time unit; paper: 9 / 6 / 9)",
        ),
    )
    assert outcomes["no congestion"].aggregated == 9.0
    assert outcomes["DCQCN"].aggregated == 6.0
    assert outcomes["SRC"].aggregated == 9.0
    assert outcomes["DCQCN"].wasted_read == 3.0
    assert outcomes["SRC"].wasted_read == 0.0
