"""Figs. 7 & 8: runtime throughput and pause number, DCQCN vs DCQCN-SRC.

The §IV-D experiment: a VDI-like read-intensive workload on 1 initiator
+ 2 targets (SSD-A) with a congestion episode.  Expected shapes:

* read throughput under DCQCN-SRC tracks DCQCN-only (both pinned to the
  demanded sending rate during congestion) — Fig. 7;
* DCQCN-only aggregated throughput collapses during congestion (writes
  starve behind stuck reads) while DCQCN-SRC keeps writes flowing —
  Fig. 7;
* the pause number spikes during the congestion episode and SRC does
  not increase it — Fig. 8.
"""

import numpy as np
import pytest

from benchmarks.common import save_result, trained_tpm, vdi_like_trace
from repro.experiments.runner import BackgroundTraffic, TestbedConfig, run_testbed
from repro.experiments.tables import format_table
from repro.sim.units import MS
from repro.ssd.config import SSD_A

CONGESTION_START = 10 * MS
CONGESTION_END = 45 * MS
DURATION = 70 * MS

_cache = {}


def run_fig7_pair():
    """Both schemes on identical workloads; cached so Fig. 8 reuses it."""
    if "pair" in _cache:
        return _cache["pair"]
    tpm = trained_tpm(SSD_A)
    bg = BackgroundTraffic(
        start_ns=CONGESTION_START, end_ns=CONGESTION_END, rate_gbps=10.0, n_hosts=14
    )
    only = run_testbed(
        vdi_like_trace(),
        TestbedConfig(driver="default", background=bg, ssd_config=SSD_A),
        duration_ns=DURATION,
    )
    src = run_testbed(
        vdi_like_trace(),
        TestbedConfig(driver="ssq", src_enabled=True, background=bg, ssd_config=SSD_A),
        tpm=tpm,
        duration_ns=DURATION,
    )
    _cache["pair"] = (only, src)
    return only, src


def window_mean(series, start_ns, end_ns, bin_ns=MS):
    return float(series.gbps[start_ns // bin_ns : end_ns // bin_ns].mean())


@pytest.mark.benchmark(group="fig7")
def test_fig7_runtime_throughput(benchmark):
    only, src = benchmark.pedantic(run_fig7_pair, rounds=1, iterations=1)

    # Steady congestion window (skip the episode's onset transient).
    win = (20 * MS, CONGESTION_END)
    stats = {
        "DCQCN-only": (
            window_mean(only.read_series, *win),
            window_mean(only.write_series, *win),
        ),
        "DCQCN-SRC": (
            window_mean(src.read_series, *win),
            window_mean(src.write_series, *win),
        ),
    }
    rows = [
        [name, f"{r:.2f}", f"{w:.2f}", f"{r + w:.2f}"]
        for name, (r, w) in stats.items()
    ]
    save_result(
        "fig7_runtime_throughput",
        format_table(
            ["Scheme", "Read Gbps", "Write Gbps", "Aggregate Gbps"],
            rows,
            title="Fig. 7 — throughput during the congestion window (20–45 ms, SSD-A)",
        )
        + "\n\nread series (Gbps per ms, DCQCN-only):\n"
        + np.array2string(np.round(only.read_series.gbps[:60], 1), max_line_width=100)
        + "\nread series (Gbps per ms, DCQCN-SRC):\n"
        + np.array2string(np.round(src.read_series.gbps[:60], 1), max_line_width=100)
        + "\nwrite series (Gbps per ms, DCQCN-only):\n"
        + np.array2string(np.round(only.write_series.gbps[:60], 1), max_line_width=100)
        + "\nwrite series (Gbps per ms, DCQCN-SRC):\n"
        + np.array2string(np.round(src.write_series.gbps[:60], 1), max_line_width=100),
    )

    r_only, w_only = stats["DCQCN-only"]
    r_src, w_src = stats["DCQCN-SRC"]
    # Read throughput aligns across schemes (both network-pinned).
    assert r_src == pytest.approx(r_only, rel=0.5)
    # SRC sustains writes that DCQCN-only starves.
    assert w_src > w_only * 1.3
    # And the aggregate improves.
    assert (r_src + w_src) > (r_only + w_only)


@pytest.mark.benchmark(group="fig8")
def test_fig8_pause_number(benchmark):
    only, src = benchmark.pedantic(run_fig7_pair, rounds=1, iterations=1)
    t_only, c_only = only.pause_counts_per_ms()
    t_src, c_src = src.pause_counts_per_ms()

    def phase_counts(counts):
        before = counts[: CONGESTION_START // MS].sum()
        during = counts[CONGESTION_START // MS : CONGESTION_END // MS].sum()
        after = counts[CONGESTION_END // MS :].sum()
        return before, during, after

    rows = []
    for name, counts in (("DCQCN-only", c_only), ("DCQCN-SRC", c_src)):
        b, d, a = phase_counts(counts)
        rows.append([name, int(b), int(d), int(a), int(counts.sum())])
    save_result(
        "fig8_pause_number",
        format_table(
            ["Scheme", "pre-congestion", "during", "post", "total CNPs"],
            rows,
            title="Fig. 8 — pause number (CNPs at targets) per phase",
        ),
    )

    # The pause number spikes during the congestion episode...
    b, d, a = phase_counts(c_only)
    dur_ms = (CONGESTION_END - CONGESTION_START) // MS
    assert d / dur_ms > (b + 1) / (CONGESTION_START // MS)
    # ...and SRC does not make congestion worse.
    assert phase_counts(c_src)[1] <= phase_counts(c_only)[1] * 1.5
