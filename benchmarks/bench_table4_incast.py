"""Table IV: in-cast ratio analysis.

Paper (fixed ~38 Gbps total traffic):

    ratio 2:1 → +33% | 3:1 → +17% | 4:1 → +5% | 4:4 → +3%

Expected shape: SRC's improvement is largest with few targets (deep
per-target queues keep WRR effective) and fades as targets spread the
load (WRR → RR) or as extra initiators relieve the congestion.
"""

import pytest

from benchmarks.common import bench_workers, save_perf, save_result, trained_tpm
from repro.experiments.comparison import TABLE4_POINTS, incast_analysis_with_report
from repro.experiments.tables import format_percent, format_table
from repro.ssd.config import SSD_A

PAPER = {"2:1": 0.33, "3:1": 0.17, "4:1": 0.05, "4:4": 0.03}


def run_table4():
    from repro.sim.units import MS

    tpm = trained_tpm(SSD_A)
    return incast_analysis_with_report(
        tpm,
        ssd_config=SSD_A,
        total_read_gbps=38.0,
        n_requests=4500,
        duration_ns=50 * MS,
        workers=bench_workers(),
    )


@pytest.mark.benchmark(group="table4")
def test_table4_incast_ratio(benchmark):
    comparisons, report = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    benchmark.extra_info["perf"] = save_perf("table4_incast_ratio", report)

    rows = [
        [
            c.label,
            f"{c.src_gbps:.2f}",
            f"{c.only_gbps:.2f}",
            format_percent(c.improvement),
            format_percent(PAPER[c.label]),
        ]
        for c in comparisons
    ]
    save_result(
        "table4_incast_ratio",
        format_table(
            ["In-cast", "DCQCN-SRC", "DCQCN-Only", "Improvement", "Paper"],
            rows,
            title="Table IV — in-cast ratio analysis (trimmed aggregated Gbps)",
        ),
    )
    by_label = {c.label: c for c in comparisons}
    for c in comparisons:
        benchmark.extra_info[c.label] = round(c.improvement, 3)

    # Shape: the few-target point shows the clearest gain, and the
    # relieved 4:4 point shows (near) none.
    assert by_label["2:1"].improvement > 0.05
    assert by_label["2:1"].improvement > by_label["4:4"].improvement
    assert by_label["4:4"].improvement < 0.15
