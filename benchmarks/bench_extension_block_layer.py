"""§V extension: block-layer rate control vs SSQ/WRR (active-model SRC).

The paper's conclusion proposes re-implementing the control as a
block-layer I/O scheduler.  This benchmark runs the Fig. 7 congestion
scenario under three target designs:

* DCQCN-only (stock FIFO driver) — the degraded baseline;
* DCQCN-SRC with SSQ/WRR (the paper's design);
* DCQCN + block-layer throttle (the §V alternative: the demanded rate
  is applied directly above a FIFO driver, no TPM).

Expected shape: both control designs rescue write throughput relative
to the baseline; the block-layer variant needs no prediction model but
stages throttled reads above the driver instead of re-weighting the
device.
"""

import pytest

from benchmarks.common import save_result, trained_tpm, vdi_like_trace
from repro.experiments.runner import BackgroundTraffic, TestbedConfig, run_testbed
from repro.experiments.tables import format_table
from repro.sim.units import MS
from repro.ssd.config import SSD_A

BG = BackgroundTraffic(start_ns=8 * MS, end_ns=45 * MS, rate_gbps=10.0, n_hosts=14)
DURATION = 55 * MS


def run_comparison():
    tpm = trained_tpm(SSD_A)
    runs = {}
    runs["DCQCN-only"] = run_testbed(
        vdi_like_trace(n_reads=5000, n_writes=1700),
        TestbedConfig(driver="default", background=BG, ssd_config=SSD_A),
        duration_ns=DURATION,
    )
    runs["SSQ/WRR SRC"] = run_testbed(
        vdi_like_trace(n_reads=5000, n_writes=1700),
        TestbedConfig(driver="ssq", src_enabled=True, background=BG, ssd_config=SSD_A),
        tpm=tpm,
        duration_ns=DURATION,
    )
    runs["block-layer SRC"] = run_testbed(
        vdi_like_trace(n_reads=5000, n_writes=1700),
        TestbedConfig(driver="block", src_enabled=True, background=BG, ssd_config=SSD_A),
        duration_ns=DURATION,
    )
    return runs


def congestion_mean(series):
    return float(series.gbps[18:45].mean())


@pytest.mark.benchmark(group="extension")
def test_extension_block_layer(benchmark):
    runs = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    stats = {
        name: (
            congestion_mean(r.read_series),
            congestion_mean(r.write_series),
        )
        for name, r in runs.items()
    }
    rows = [
        [name, f"{rd:.2f}", f"{wr:.2f}", f"{rd + wr:.2f}"]
        for name, (rd, wr) in stats.items()
    ]
    save_result(
        "extension_block_layer",
        format_table(
            ["Target design", "Read Gbps", "Write Gbps", "Aggregate"],
            rows,
            title="§V extension — block-layer throttle vs SSQ/WRR "
            "(congestion window means)",
        ),
    )
    base_w = stats["DCQCN-only"][1]
    # Both control designs rescue writes relative to the baseline.
    assert stats["SSQ/WRR SRC"][1] > base_w * 1.3
    assert stats["block-layer SRC"][1] > base_w * 1.3
    # And improve the aggregate.
    base_agg = sum(stats["DCQCN-only"])
    assert sum(stats["SSQ/WRR SRC"]) > base_agg
    assert sum(stats["block-layer SRC"]) > base_agg
