"""Table I: regression accuracy of the five model families.

Paper (micro traces, 60/40 shuffled split, SSD-A):

    Linear 0.77 | Polynomial 0.74 | KNN 0.86 | Tree 0.89 | Forest 0.94

Expected shape: the ensemble (Random Forest) wins; the tree-based and
neighbor models beat the linear family.
"""

import pytest

from benchmarks.common import DEFAULT_PLAN, bench_workers, save_result
from repro.core.sampling import TrainingSet, collect_training_set
from repro.experiments.tables import format_table
from repro.ml import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    LinearRegression,
    PolynomialRegression,
    RandomForestRegressor,
    r2_score,
    train_test_split,
)
from repro.ssd.config import SSD_A

MODELS = [
    ("Linear Regression", lambda: LinearRegression()),
    ("Polynomial Regression", lambda: PolynomialRegression(degree=2)),
    ("K-Nearest Neighbor", lambda: KNeighborsRegressor(5, weights="distance")),
    ("Decision Tree Regression", lambda: DecisionTreeRegressor(seed=0)),
    ("Random Forest Regression", lambda: RandomForestRegressor(40, seed=0)),
]


def run_table1():
    training = collect_training_set(SSD_A, DEFAULT_PLAN, workers=bench_workers())
    Xtr, Xva, ytr, yva = train_test_split(
        training.X, training.y, train_fraction=0.6, seed=42
    )
    scores = {}
    for name, factory in MODELS:
        model = factory().fit(Xtr, ytr)
        scores[name] = r2_score(yva, model.predict(Xva))
    return scores


@pytest.mark.benchmark(group="table1")
def test_table1_regression_accuracy(benchmark):
    scores = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    paper = {
        "Linear Regression": 0.77,
        "Polynomial Regression": 0.74,
        "K-Nearest Neighbor": 0.86,
        "Decision Tree Regression": 0.89,
        "Random Forest Regression": 0.94,
    }
    rows = [
        [name, f"{scores[name]:.2f}", f"{paper[name]:.2f}"] for name, _ in MODELS
    ]
    save_result(
        "table1_regression_accuracy",
        format_table(
            ["Model", "Accuracy (ours)", "Accuracy (paper)"],
            rows,
            title="Table I — Regression accuracy (R², 60/40 split, SSD-A micro traces)",
        ),
    )
    for name in paper:
        benchmark.extra_info[name] = round(scores[name], 3)

    # Shape checks: the tree family dominates and the forest is at (or
    # within noise of) the top — on our noiseless simulated grid a fully
    # grown single tree can memorise its way to parity with the
    # ensemble, which the paper's noisier testbed data prevents.
    best = max(scores.values())
    assert scores["Random Forest Regression"] >= best - 0.05
    assert scores["Random Forest Regression"] > 0.85
    assert scores["Random Forest Regression"] > scores["Linear Regression"]
    assert scores["Decision Tree Regression"] > scores["Linear Regression"]
