"""Shared benchmark infrastructure.

* :func:`save_result` — persist a reproduced table under
  ``benchmarks/results/`` and queue it for the terminal summary;
* :func:`save_perf` / :func:`bench_workers` — sweep perf counters
  (events/sec, per-cell wall time, worker utilisation) persisted as
  JSON so BENCH_*.json runs can track the parallel-runner speedup;
* :func:`save_engine_perf` / :func:`load_engine_baseline` /
  :func:`load_engine_floor` — single-engine throughput numbers
  (``results/engine_perf.json``) against the checked-in pre-optimisation
  baseline and regression floor;
* :func:`trained_tpm` — session-cached TPM training per SSD model (the
  expensive sweep runs once even when several figure benches need it);
* workload factories matching the §IV descriptions (VDI-like trace, the
  Fig. 10 intensity levels).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.sampling import SamplingPlan, collect_training_set_with_report
from repro.core.tpm import ThroughputPredictionModel
from repro.parallel import SweepReport
from repro.sim.units import MS
from repro.ssd.config import SSDConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.traces import Trace

RESULTS_DIR = Path(__file__).parent / "results"

#: (name, text) pairs replayed by the terminal summary hook.
SESSION_RESULTS: list[tuple[str, str]] = []

#: name -> perf counters, replayed by the terminal summary hook.
SESSION_PERF: dict[str, dict] = {}


def bench_workers() -> int:
    """Worker count for benchmark sweeps.

    ``REPRO_BENCH_WORKERS`` overrides (``1`` forces the serial path —
    results are bit-identical either way); the default uses every core.
    """
    env = os.environ.get("REPRO_BENCH_WORKERS")
    return int(env) if env else (os.cpu_count() or 1)


def save_result(name: str, text: str) -> None:
    """Write a reproduced table to disk and queue it for the summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    SESSION_RESULTS.append((name, text))


def save_perf(name: str, report: SweepReport) -> dict:
    """Persist a sweep's perf counters as JSON next to the tables.

    Returns the counter dict so benches can also attach it to
    ``benchmark.extra_info`` (landing in BENCH_*.json).
    """
    payload = report.perf_dict()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}_perf.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF[name] = payload
    return payload


BENCH_DIR = Path(__file__).parent

#: Pre-optimisation engine numbers, captured once on the machine that
#: ran the PR 2 refactor (see ``results/engine_perf.json`` for the
#: matching "after" run).
ENGINE_BASELINE_PATH = BENCH_DIR / "engine_perf_baseline.json"

#: Minimum acceptable throughput — half the *pre-optimisation* baseline,
#: i.e. generous slack meant to catch order-of-magnitude regressions
#: (an accidental O(n) scan back in the loop), not machine jitter.
ENGINE_FLOOR_PATH = BENCH_DIR / "engine_perf_floor.json"


def load_engine_baseline() -> dict:
    """The checked-in pre-optimisation engine throughput numbers."""
    return json.loads(ENGINE_BASELINE_PATH.read_text())


def load_engine_floor() -> dict:
    """The checked-in events/sec floors for the engine perf guard."""
    return json.loads(ENGINE_FLOOR_PATH.read_text())


def save_engine_perf(current: dict) -> dict:
    """Persist engine throughput as before/after in ``engine_perf.json``.

    ``current`` maps scenario name (``engine_microbench``,
    ``incast_cell``) to a :class:`repro.profiling.BenchResult` dict.
    Returns the full payload (baseline + current + speedups).
    """
    baseline = load_engine_baseline()
    speedup = {}
    for key, cur in current.items():
        base = baseline.get(key)
        if base and base.get("events_per_sec"):
            speedup[key] = round(cur["events_per_sec"] / base["events_per_sec"], 2)
    payload = {"baseline": baseline, "current": current, "speedup": speedup}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_perf.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF["engine"] = {
        f"{key}_events_per_sec": cur["events_per_sec"] for key, cur in current.items()
    } | {f"{key}_speedup": s for key, s in speedup.items()}
    return payload


#: Maximum acceptable slowdown of the sanitizer-enabled incast cell
#: relative to the plain run.  The sanitizer's per-event invariant sweep
#: (queue depths, byte conservation, WRR token bounds) is O(components),
#: so >2x is expected on the small smoke cell.  This is a *ratio*
#: budget: the 2.5x value was set against a ~240k ev/s plain engine, and
#: the batched dispatch/rate-table work roughly doubled the denominator
#: without touching the sweep's absolute cost, so the bound is now 3.0x.
#: It still catches an accidentally quadratic check; absolute sweep cost
#: is additionally pinned by the stride budget below (the sampled leg
#: amortises the same sweep) and the engine events/sec floor.
SANITIZER_OVERHEAD_BUDGET = 3.0

#: Maximum acceptable slowdown of the *stride-sampled* sanitizer
#: (``sanitize="stride:64"``) on the same cell.  At stride 64 the
#: component sweep runs on ~1.6% of events, so what remains is the
#: sanitizing dispatch loop itself (monotonicity check, sampling
#: countdown, no batch coalescing); 1.15x is the contract that makes
#: strided checking cheap enough to leave on by default in long runs.
STRIDE_SANITIZER_OVERHEAD_BUDGET = 1.15

#: The stride the budget above is measured at (and CI enforces).
STRIDE_SANITIZER_STRIDE = 64


def _slowdown(off: dict, leg: dict) -> float:
    return (
        off["events_per_sec"] / leg["events_per_sec"]
        if leg.get("events_per_sec")
        else float("inf")
    )


def save_sanitizer_perf(off: dict, on: dict, stride: dict | None = None) -> dict:
    """Persist sanitizer-on vs -off (and optionally strided) numbers.

    ``off``/``on``/``stride`` are :class:`repro.profiling.BenchResult`
    dicts of the same scenario, measured *in the same process* so they
    share warm-up state.  Returns the payload, including slowdown
    ratios checked against :data:`SANITIZER_OVERHEAD_BUDGET` and
    :data:`STRIDE_SANITIZER_OVERHEAD_BUDGET`.

    The off leg recorded here is the number every other results file
    must agree with for this scenario — see
    :func:`shared_scenario_mismatch`.
    """
    payload = {
        "scenario": "incast_cell",
        "sanitize_off": off,
        "sanitize_on": on,
        "slowdown": round(_slowdown(off, on), 3),
        "budget": SANITIZER_OVERHEAD_BUDGET,
    }
    if stride is not None:
        payload[f"sanitize_stride_{STRIDE_SANITIZER_STRIDE}"] = stride
        payload["stride_slowdown"] = round(_slowdown(off, stride), 3)
        payload["stride_budget"] = STRIDE_SANITIZER_OVERHEAD_BUDGET
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sanitizer_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF["sanitizer"] = {
        "events_per_sec_off": off["events_per_sec"],
        "events_per_sec_on": on["events_per_sec"],
        "slowdown": payload["slowdown"],
    } | (
        {
            "events_per_sec_stride": stride["events_per_sec"],
            "stride_slowdown": payload["stride_slowdown"],
        }
        if stride is not None
        else {}
    )
    return payload


#: Maximum relative disagreement between two results files' measurements
#: of the *same* scenario.  Both numbers come from one warmed process
#: (see ``smoke_cell.sanitizer_guard``), so a larger gap means the
#: accounting regressed — e.g. one file silently measuring a cold
#: process or a different cell — not machine noise.
SHARED_SCENARIO_TOLERANCE = 0.10


def shared_scenario_mismatch(
    tolerance: float = SHARED_SCENARIO_TOLERANCE,
) -> str | None:
    """Cross-check the incast numbers shared by the two results files.

    ``engine_perf.json`` (``current.incast_cell``) and
    ``sanitizer_overhead.json`` (``sanitize_off``) both record the plain
    2 ms incast cell.  Historically each file was regenerated by a
    separate cold process, so the "same" scenario disagreed by >40%
    and any ratio built across the files was fiction.  Both files are
    now written from one warmed process sharing the off leg; this check
    fails loudly if they ever drift apart again.  Returns a description
    of the mismatch, or ``None`` when consistent (or when either file
    is missing — nothing to compare yet).
    """
    engine_path = RESULTS_DIR / "engine_perf.json"
    sanitizer_path = RESULTS_DIR / "sanitizer_overhead.json"
    if not engine_path.exists() or not sanitizer_path.exists():
        return None
    engine = json.loads(engine_path.read_text())
    sanitizer = json.loads(sanitizer_path.read_text())
    a = engine.get("current", {}).get("incast_cell", {}).get("events_per_sec")
    b = sanitizer.get("sanitize_off", {}).get("events_per_sec")
    if not a or not b:
        return None
    gap = abs(a - b) / max(a, b)
    if gap > tolerance:
        return (
            f"incast_cell disagrees across results files: engine_perf.json "
            f"says {a} events/sec, sanitizer_overhead.json says {b} "
            f"({100 * gap:.1f}% apart, tolerance {100 * tolerance:.0f}%) — "
            f"regenerate both with "
            f"`PYTHONPATH=src python benchmarks/smoke_cell.py --sanitizer` "
            f"so they share one warmed off-leg measurement"
        )
    return None


#: Maximum acceptable slowdown of the incast cell with the fault
#: machinery attached but *no faults scheduled* (empty plan armed,
#: watchdog installed).  A dormant injector adds zero events and the
#: per-packet hooks are single is-None checks, so the honest cost is
#: ~1.0x; 1.1x tolerates machine jitter while catching any accidental
#: per-event work sneaking into the hooks.
FAULT_HOOK_OVERHEAD_BUDGET = 1.1


def save_faults_perf(off: dict, on: dict) -> dict:
    """Persist hooks-off vs hooks-on (dormant) incast numbers as JSON.

    ``off``/``on`` are :class:`repro.profiling.BenchResult` dicts of the
    same scenario.  Returns the payload, including the slowdown ratio
    checked against :data:`FAULT_HOOK_OVERHEAD_BUDGET`.
    """
    ratio = (
        off["events_per_sec"] / on["events_per_sec"]
        if on.get("events_per_sec")
        else float("inf")
    )
    payload = {
        "scenario": "incast_cell",
        "hooks_off": off,
        "hooks_on_dormant": on,
        "slowdown": round(ratio, 3),
        "budget": FAULT_HOOK_OVERHEAD_BUDGET,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "faults_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF["faults"] = {
        "events_per_sec_off": off["events_per_sec"],
        "events_per_sec_on": on["events_per_sec"],
        "slowdown": payload["slowdown"],
    }
    return payload


#: Maximum acceptable slowdown of a run checkpointed every
#: :data:`CHECKPOINT_EVERY_EVENTS` events relative to the same cell run
#: uninterrupted.  The cost has two parts: the pickle of the whole world
#: at each boundary (small — the incast world is a few dozen
#: components) and the loss of batch coalescing inside ``max_events``
#: legs.  1.15x is the contract that makes periodic checkpointing cheap
#: enough to leave on for long sweeps (`repro.parallel.supervise` relies
#: on it for crash recovery).
CHECKPOINT_OVERHEAD_BUDGET = 1.15

#: The checkpoint cadence the budget above is measured at.
CHECKPOINT_EVERY_EVENTS = 100_000


def save_checkpoint_perf(off: dict, ckpt: dict, *, n_checkpoints: int,
                         checkpoint_bytes: int) -> dict:
    """Persist plain vs checkpointed incast numbers as JSON.

    ``off``/``ckpt`` are :class:`repro.profiling.BenchResult` dicts of
    the same scenario (one warmed process).  The slowdown is a
    wall-time ratio — event *counts* can legitimately differ between
    the legs because ``max_events`` legs disable batch coalescing, so
    events/sec would not compare like for like.
    """
    ratio = (
        ckpt["wall_s"] / off["wall_s"] if off.get("wall_s") else float("inf")
    )
    payload = {
        "scenario": "incast_cell",
        "checkpoints_off": off,
        "checkpoints_on": ckpt,
        "n_checkpoints": n_checkpoints,
        "checkpoint_bytes": checkpoint_bytes,
        "every_events": CHECKPOINT_EVERY_EVENTS,
        "slowdown": round(ratio, 3),
        "budget": CHECKPOINT_OVERHEAD_BUDGET,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "checkpoint_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF["checkpoint"] = {
        "wall_s_off": off["wall_s"],
        "wall_s_on": ckpt["wall_s"],
        "slowdown": payload["slowdown"],
        "checkpoint_bytes": checkpoint_bytes,
    }
    return payload


#: Minimum acceptable event-count reduction of the dual-fidelity Clos
#: cell: the all-packet projection (dispatched events plus what serving
#: the fluid bytes as MTU packets would have cost) over the events
#: actually dispatched.  The acceptance-scale cell (4-pod Clos, 200
#: tenants, 8 foreground flows, 100 ms) measures ~16x; 10x is the
#: contract — dropping below it means fluid flows started costing
#: per-packet work again (e.g. the coupling accidentally forcing
#: per-packet updates) and the whole mode lost its reason to exist.
DUAL_FIDELITY_EVENT_REDUCTION_FLOOR = 10.0

#: Minimum events/sec of the dual-fidelity Clos cell's dispatch loop.
#: Measured ~210k on the reference box (the cell is heavier per event
#: than the incast smoke: 256 NICs, five-hop paths, burst math); half
#: of that catches order-of-magnitude regressions without tracking
#: machine jitter.
DUAL_FIDELITY_EVENTS_PER_SEC_FLOOR = 100_000


def save_clos_scale(result: dict) -> dict:
    """Persist the dual-fidelity Clos cell's numbers as JSON.

    ``result`` is a :class:`repro.experiments.ClosScaleResult` dict; the
    payload adds the two floors the guard enforces so the artifact is
    self-describing.
    """
    payload = {
        "scenario": "clos_scale_dual_fidelity",
        "result": result,
        "event_reduction_floor": DUAL_FIDELITY_EVENT_REDUCTION_FLOOR,
        "events_per_sec_floor": DUAL_FIDELITY_EVENTS_PER_SEC_FLOOR,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "clos_scale.json").write_text(json.dumps(payload, indent=2) + "\n")
    SESSION_PERF["clos_scale"] = {
        "events_per_sec": result["events_per_sec"],
        "event_reduction": result["event_reduction"],
    }
    return payload


#: Training sweep used for every TPM in the benchmark suite: the Fig. 5
#: axes (10–25 µs, 10–44 KB) extended with two lighter inter-arrival
#: points (40/60 µs) so the model sees both saturated and unsaturated
#: cells — without the latter, arrival flow speed carries no signal and
#: the model cannot predict light workloads (Fig. 10's light level).
DEFAULT_PLAN = SamplingPlan(
    interarrival_ns=(10_000, 16_000, 25_000, 40_000, 60_000),
    size_bytes=(16 * 1024, 32 * 1024, 44 * 1024),
    weight_ratios=(1, 2, 3, 4, 6, 8, 12),
    read_write_mixes=(1.0, 2.0),
    duration_ns=50 * MS,
)

_TPM_CACHE: dict[str, ThroughputPredictionModel] = {}


def trained_tpm(config: SSDConfig, plan: SamplingPlan | None = None) -> ThroughputPredictionModel:
    """A Random-Forest TPM for ``config``, trained once per session.

    The training sweep fans across :func:`bench_workers` processes; its
    perf counters land in ``results/tpm_training_<name>_perf.json``.
    """
    key = config.name
    if key not in _TPM_CACHE:
        training, report = collect_training_set_with_report(
            config, plan or DEFAULT_PLAN, workers=bench_workers()
        )
        save_perf(f"tpm_training_{key}", report)
        _TPM_CACHE[key] = ThroughputPredictionModel().fit(training)
    return _TPM_CACHE[key]


def vdi_like_trace(*, n_reads: int = 6000, n_writes: int = 2000, seed: int = 11) -> Trace:
    """The §IV-D workload: read-intensive, 44 KB reads / 23 KB writes,
    ~10 µs read inter-arrivals (≈35 Gbps offered read traffic)."""
    reads = MicroWorkloadConfig(10_000, 44 * 1024)
    writes = MicroWorkloadConfig(30_000, 23 * 1024)
    return generate_micro_trace(reads, writes, n_reads=n_reads, n_writes=n_writes, seed=seed)
