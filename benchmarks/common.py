"""Shared benchmark infrastructure.

* :func:`save_result` — persist a reproduced table under
  ``benchmarks/results/`` and queue it for the terminal summary;
* :func:`save_perf` / :func:`bench_workers` — sweep perf counters
  (events/sec, per-cell wall time, worker utilisation) persisted as
  JSON so BENCH_*.json runs can track the parallel-runner speedup;
* :func:`save_engine_perf` / :func:`load_engine_baseline` /
  :func:`load_engine_floor` — single-engine throughput numbers
  (``results/engine_perf.json``) against the checked-in pre-optimisation
  baseline and regression floor;
* :func:`trained_tpm` — session-cached TPM training per SSD model (the
  expensive sweep runs once even when several figure benches need it);
* workload factories matching the §IV descriptions (VDI-like trace, the
  Fig. 10 intensity levels).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.sampling import SamplingPlan, collect_training_set_with_report
from repro.core.tpm import ThroughputPredictionModel
from repro.parallel import SweepReport
from repro.sim.units import MS
from repro.ssd.config import SSDConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.traces import Trace

RESULTS_DIR = Path(__file__).parent / "results"

#: (name, text) pairs replayed by the terminal summary hook.
SESSION_RESULTS: list[tuple[str, str]] = []

#: name -> perf counters, replayed by the terminal summary hook.
SESSION_PERF: dict[str, dict] = {}


def bench_workers() -> int:
    """Worker count for benchmark sweeps.

    ``REPRO_BENCH_WORKERS`` overrides (``1`` forces the serial path —
    results are bit-identical either way); the default uses every core.
    """
    env = os.environ.get("REPRO_BENCH_WORKERS")
    return int(env) if env else (os.cpu_count() or 1)


def save_result(name: str, text: str) -> None:
    """Write a reproduced table to disk and queue it for the summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    SESSION_RESULTS.append((name, text))


def save_perf(name: str, report: SweepReport) -> dict:
    """Persist a sweep's perf counters as JSON next to the tables.

    Returns the counter dict so benches can also attach it to
    ``benchmark.extra_info`` (landing in BENCH_*.json).
    """
    payload = report.perf_dict()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}_perf.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF[name] = payload
    return payload


BENCH_DIR = Path(__file__).parent

#: Pre-optimisation engine numbers, captured once on the machine that
#: ran the PR 2 refactor (see ``results/engine_perf.json`` for the
#: matching "after" run).
ENGINE_BASELINE_PATH = BENCH_DIR / "engine_perf_baseline.json"

#: Minimum acceptable throughput — half the *pre-optimisation* baseline,
#: i.e. generous slack meant to catch order-of-magnitude regressions
#: (an accidental O(n) scan back in the loop), not machine jitter.
ENGINE_FLOOR_PATH = BENCH_DIR / "engine_perf_floor.json"


def load_engine_baseline() -> dict:
    """The checked-in pre-optimisation engine throughput numbers."""
    return json.loads(ENGINE_BASELINE_PATH.read_text())


def load_engine_floor() -> dict:
    """The checked-in events/sec floors for the engine perf guard."""
    return json.loads(ENGINE_FLOOR_PATH.read_text())


def save_engine_perf(current: dict) -> dict:
    """Persist engine throughput as before/after in ``engine_perf.json``.

    ``current`` maps scenario name (``engine_microbench``,
    ``incast_cell``) to a :class:`repro.profiling.BenchResult` dict.
    Returns the full payload (baseline + current + speedups).
    """
    baseline = load_engine_baseline()
    speedup = {}
    for key, cur in current.items():
        base = baseline.get(key)
        if base and base.get("events_per_sec"):
            speedup[key] = round(cur["events_per_sec"] / base["events_per_sec"], 2)
    payload = {"baseline": baseline, "current": current, "speedup": speedup}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_perf.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF["engine"] = {
        f"{key}_events_per_sec": cur["events_per_sec"] for key, cur in current.items()
    } | {f"{key}_speedup": s for key, s in speedup.items()}
    return payload


#: Maximum acceptable slowdown of the sanitizer-enabled incast cell
#: relative to the plain run.  The sanitizer's per-event invariant sweep
#: (queue depths, byte conservation, WRR token bounds) is O(components),
#: so ~2x is expected on the small smoke cell; 2.5x leaves headroom for
#: machine jitter while still catching an accidentally quadratic check.
SANITIZER_OVERHEAD_BUDGET = 2.5


def save_sanitizer_perf(off: dict, on: dict) -> dict:
    """Persist sanitizer-on vs -off incast numbers as JSON.

    ``off``/``on`` are :class:`repro.profiling.BenchResult` dicts of the
    same scenario.  Returns the payload, including the slowdown ratio
    checked against :data:`SANITIZER_OVERHEAD_BUDGET`.
    """
    ratio = (
        off["events_per_sec"] / on["events_per_sec"]
        if on.get("events_per_sec")
        else float("inf")
    )
    payload = {
        "scenario": "incast_cell",
        "sanitize_off": off,
        "sanitize_on": on,
        "slowdown": round(ratio, 3),
        "budget": SANITIZER_OVERHEAD_BUDGET,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sanitizer_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF["sanitizer"] = {
        "events_per_sec_off": off["events_per_sec"],
        "events_per_sec_on": on["events_per_sec"],
        "slowdown": payload["slowdown"],
    }
    return payload


#: Maximum acceptable slowdown of the incast cell with the fault
#: machinery attached but *no faults scheduled* (empty plan armed,
#: watchdog installed).  A dormant injector adds zero events and the
#: per-packet hooks are single is-None checks, so the honest cost is
#: ~1.0x; 1.1x tolerates machine jitter while catching any accidental
#: per-event work sneaking into the hooks.
FAULT_HOOK_OVERHEAD_BUDGET = 1.1


def save_faults_perf(off: dict, on: dict) -> dict:
    """Persist hooks-off vs hooks-on (dormant) incast numbers as JSON.

    ``off``/``on`` are :class:`repro.profiling.BenchResult` dicts of the
    same scenario.  Returns the payload, including the slowdown ratio
    checked against :data:`FAULT_HOOK_OVERHEAD_BUDGET`.
    """
    ratio = (
        off["events_per_sec"] / on["events_per_sec"]
        if on.get("events_per_sec")
        else float("inf")
    )
    payload = {
        "scenario": "incast_cell",
        "hooks_off": off,
        "hooks_on_dormant": on,
        "slowdown": round(ratio, 3),
        "budget": FAULT_HOOK_OVERHEAD_BUDGET,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "faults_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    SESSION_PERF["faults"] = {
        "events_per_sec_off": off["events_per_sec"],
        "events_per_sec_on": on["events_per_sec"],
        "slowdown": payload["slowdown"],
    }
    return payload


#: Training sweep used for every TPM in the benchmark suite: the Fig. 5
#: axes (10–25 µs, 10–44 KB) extended with two lighter inter-arrival
#: points (40/60 µs) so the model sees both saturated and unsaturated
#: cells — without the latter, arrival flow speed carries no signal and
#: the model cannot predict light workloads (Fig. 10's light level).
DEFAULT_PLAN = SamplingPlan(
    interarrival_ns=(10_000, 16_000, 25_000, 40_000, 60_000),
    size_bytes=(16 * 1024, 32 * 1024, 44 * 1024),
    weight_ratios=(1, 2, 3, 4, 6, 8, 12),
    read_write_mixes=(1.0, 2.0),
    duration_ns=50 * MS,
)

_TPM_CACHE: dict[str, ThroughputPredictionModel] = {}


def trained_tpm(config: SSDConfig, plan: SamplingPlan | None = None) -> ThroughputPredictionModel:
    """A Random-Forest TPM for ``config``, trained once per session.

    The training sweep fans across :func:`bench_workers` processes; its
    perf counters land in ``results/tpm_training_<name>_perf.json``.
    """
    key = config.name
    if key not in _TPM_CACHE:
        training, report = collect_training_set_with_report(
            config, plan or DEFAULT_PLAN, workers=bench_workers()
        )
        save_perf(f"tpm_training_{key}", report)
        _TPM_CACHE[key] = ThroughputPredictionModel().fit(training)
    return _TPM_CACHE[key]


def vdi_like_trace(*, n_reads: int = 6000, n_writes: int = 2000, seed: int = 11) -> Trace:
    """The §IV-D workload: read-intensive, 44 KB reads / 23 KB writes,
    ~10 µs read inter-arrivals (≈35 Gbps offered read traffic)."""
    reads = MicroWorkloadConfig(10_000, 44 * 1024)
    writes = MicroWorkloadConfig(30_000, 23 * 1024)
    return generate_micro_trace(reads, writes, n_reads=n_reads, n_writes=n_writes, seed=seed)
