"""Ablations of the back-pressure chain and control parameters.

1. **TXQ depth** (DESIGN.md §4.6): the §II-B degradation runs through
   the target TXQ → CQ → command-slot chain; a larger TXQ merely delays
   the DCQCN-only write collapse, it does not avoid it.
2. **Convergence threshold τ** (Algorithm 1): smaller τ walks further
   and returns weight ratios at least as large.
"""

import pytest

from benchmarks.common import save_result, trained_tpm, vdi_like_trace
from repro.core.controller import predict_weight_ratio
from repro.experiments.runner import BackgroundTraffic, TestbedConfig, run_testbed
from repro.experiments.tables import format_table
from repro.net.nic import NICConfig
from repro.sim.units import MS
from repro.ssd.config import SSD_A
from repro.workloads.features import extract_features
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace

TXQ_SIZES = (512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024)


def run_txq_ablation():
    bg = BackgroundTraffic(start_ns=8 * MS, end_ns=45 * MS, rate_gbps=10.0, n_hosts=14)
    out = {}
    for txq in TXQ_SIZES:
        res = run_testbed(
            vdi_like_trace(n_reads=4500, n_writes=1500),
            TestbedConfig(
                driver="default",
                background=bg,
                ssd_config=SSD_A,
                nic_config=NICConfig(txq_capacity_bytes=txq),
            ),
            duration_ns=55 * MS,
        )
        # Write throughput late in the congestion episode.
        late_write = float(res.write_series.gbps[30:45].mean())
        early_write = float(res.write_series.gbps[2:8].mean())
        out[txq] = (early_write, late_write)
    return out


def run_tau_ablation():
    tpm = trained_tpm(SSD_A)
    wl = MicroWorkloadConfig(10_000, 40 * 1024)
    features = extract_features(
        generate_micro_trace(wl, n_reads=3000, n_writes=3000, seed=7)
    )
    base = tpm.predict_read(features, 1)
    demanded = base / 4
    return {tau: predict_weight_ratio(tpm, demanded, features, tau=tau)
            for tau in (0.3, 0.1, 0.02)}


@pytest.mark.benchmark(group="ablation")
def test_ablation_txq_depth(benchmark):
    out = benchmark.pedantic(run_txq_ablation, rounds=1, iterations=1)
    rows = [
        [f"{txq // 1024} KiB", f"{early:.2f}", f"{late:.2f}"]
        for txq, (early, late) in out.items()
    ]
    save_result(
        "ablation_txq_depth",
        format_table(
            ["target TXQ", "write Gbps (pre)", "write Gbps (late congestion)"],
            rows,
            title="Ablation — TXQ depth vs DCQCN-only write collapse",
        ),
    )
    # Under every TXQ size the DCQCN-only writes degrade during
    # sustained congestion (the chain is delayed, not removed).
    for txq, (early, late) in out.items():
        assert late < early, (txq, early, late)
    # The smallest TXQ collapses hardest.
    smallest = out[TXQ_SIZES[0]][1]
    largest = out[TXQ_SIZES[-1]][1]
    assert smallest <= largest + 0.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_tau(benchmark):
    ratios = benchmark.pedantic(run_tau_ablation, rounds=1, iterations=1)
    rows = [[f"{tau:.2f}", w] for tau, w in ratios.items()]
    save_result(
        "ablation_tau",
        format_table(
            ["tau", "chosen weight ratio"],
            rows,
            title="Ablation — Algorithm 1 convergence threshold τ (demand = base/4)",
        ),
    )
    # A looser threshold stops the walk earlier: w(0.3) <= w(0.1) <= w(0.02).
    assert ratios[0.3] <= ratios[0.1] <= ratios[0.02]
    # The mid threshold (the paper's 10%) reaches a ratio > 1.
    assert ratios[0.1] > 1
