"""CI smoke benchmark: one tiny Fig. 5 sweep, parallel vs serial.

Runs a single weight-sweep panel twice — once with ``workers=1`` and
once with ``workers=2`` — and asserts the results are bit-identical,
which is the determinism contract of :mod:`repro.parallel`.  Prints the
perf counters of the parallel run so CI logs show events/sec and worker
utilisation.

Usage::

    PYTHONPATH=src python benchmarks/smoke_cell.py
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.experiments.weight_sweep import run_weight_sweep_with_report
from repro.sim.units import MS
from repro.ssd.config import SSD_A

INTERARRIVALS = (25_000,)
SIZES = (25 * 1024,)
RATIOS = (1, 4)


def run(workers: int):
    return run_weight_sweep_with_report(
        SSD_A,
        interarrivals_ns=INTERARRIVALS,
        sizes_bytes=SIZES,
        weight_ratios=RATIOS,
        duration_ns=5 * MS,
        min_requests=200,
        workers=workers,
    )


def main() -> int:
    serial_cells, _ = run(workers=1)
    parallel_cells, report = run(workers=2)

    for s, p in zip(serial_cells, parallel_cells):
        if not (
            np.array_equal(s.read_gbps, p.read_gbps)
            and np.array_equal(s.write_gbps, p.write_gbps)
        ):
            print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
            print(f"  serial   read={s.read_gbps} write={s.write_gbps}", file=sys.stderr)
            print(f"  parallel read={p.read_gbps} write={p.write_gbps}", file=sys.stderr)
            return 1

    print("smoke cell OK: workers=2 bit-identical to workers=1")
    print(json.dumps(report.perf_dict(), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
