"""CI smoke benchmark: one tiny Fig. 5 sweep, parallel vs serial,
plus the engine throughput regression guard.

Runs a single weight-sweep panel twice — once with ``workers=1`` and
once with ``workers=2`` — and asserts the results are bit-identical,
which is the determinism contract of :mod:`repro.parallel`.  Prints the
perf counters of the parallel run so CI logs show events/sec and worker
utilisation.

Then times the two standard engine scenarios from
:mod:`repro.profiling.bench`, records before/after numbers in
``benchmarks/results/engine_perf.json`` (the "before" half is the
checked-in pre-optimisation baseline), and fails if events/sec drops
below the checked-in floor — half the pre-optimisation baseline, so
only an order-of-magnitude regression (e.g. an O(n) scan creeping back
into the dispatch loop) trips it.

With ``--sanitizer`` it instead measures the runtime DES sanitizer's
overhead: the incast cell runs sanitize-off and sanitize-on, the outputs
must match bit-for-bit (the sanitizer only observes), zero invariant
violations may fire, and the slowdown must stay within
``benchmarks.common.SANITIZER_OVERHEAD_BUDGET``.  Both numbers land in
``benchmarks/results/sanitizer_overhead.json``.

With ``--faults`` it measures the fault-injection hooks' overhead when
*no faults are scheduled*: the incast cell runs bare and with a dormant
injector (empty plan armed, stuck-I/O watchdog installed).  Event counts
and outputs must be identical — a dormant injector adds zero events —
and the slowdown must stay within
``benchmarks.common.FAULT_HOOK_OVERHEAD_BUDGET``.  Numbers land in
``benchmarks/results/faults_overhead.json``.

Usage::

    PYTHONPATH=src python benchmarks/smoke_cell.py
    PYTHONPATH=src python benchmarks/smoke_cell.py --sanitizer
    PYTHONPATH=src python benchmarks/smoke_cell.py --faults
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.common import (
    FAULT_HOOK_OVERHEAD_BUDGET,
    SANITIZER_OVERHEAD_BUDGET,
    load_engine_floor,
    save_engine_perf,
    save_faults_perf,
    save_sanitizer_perf,
)
from repro.experiments.weight_sweep import run_weight_sweep_with_report
from repro.profiling.bench import engine_microbench, incast_outputs, run_incast_cell
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.ssd.config import SSD_A

INTERARRIVALS = (25_000,)
SIZES = (25 * 1024,)
RATIOS = (1, 4)


def run(workers: int):
    return run_weight_sweep_with_report(
        SSD_A,
        interarrivals_ns=INTERARRIVALS,
        sizes_bytes=SIZES,
        weight_ratios=RATIOS,
        duration_ns=5 * MS,
        min_requests=200,
        workers=workers,
    )


def main() -> int:
    serial_cells, _ = run(workers=1)
    parallel_cells, report = run(workers=2)

    for s, p in zip(serial_cells, parallel_cells):
        if not (
            np.array_equal(s.read_gbps, p.read_gbps)
            and np.array_equal(s.write_gbps, p.write_gbps)
        ):
            print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
            print(f"  serial   read={s.read_gbps} write={s.write_gbps}", file=sys.stderr)
            print(f"  parallel read={p.read_gbps} write={p.write_gbps}", file=sys.stderr)
            return 1

    print("smoke cell OK: workers=2 bit-identical to workers=1")
    print(json.dumps(report.perf_dict(), indent=2))
    return engine_guard()


def engine_guard() -> int:
    """Time the standard engine scenarios and enforce the events/sec floor."""
    current = {
        "engine_microbench": max(
            (engine_microbench(n_events=200_000) for _ in range(2)),
            key=lambda r: r.events_per_sec,
        ).as_dict(),
        "incast_cell": max(
            (run_incast_cell(duration_ns=2 * MS)[0] for _ in range(2)),
            key=lambda r: r.events_per_sec,
        ).as_dict(),
    }
    payload = save_engine_perf(current)
    print("engine perf (events/sec, current vs pre-optimisation baseline):")
    for key, cur in current.items():
        base = payload["baseline"].get(key, {}).get("events_per_sec", "?")
        speedup = payload["speedup"].get(key, "?")
        print(f"  {key}: {cur['events_per_sec']} vs {base} ({speedup}x)")

    floor = load_engine_floor()
    failed = False
    for key, cur in current.items():
        limit = floor.get(f"{key}_events_per_sec")
        if limit is not None and cur["events_per_sec"] < limit:
            print(
                f"FAIL: {key} at {cur['events_per_sec']} events/sec is below "
                f"the regression floor {limit}",
                file=sys.stderr,
            )
            failed = True
    if not failed:
        print("engine perf OK: above the regression floor")
    return 1 if failed else 0


def sanitizer_guard() -> int:
    """Measure sanitizer overhead on the incast cell and enforce the budget.

    Best-of-2 for each mode (first run pays warm-up), outputs compared
    between one off run and one on run — the sanitizer must be a pure
    observer.  A :class:`repro.analysis.SanitizerError` escaping here is
    a real invariant violation and fails the guard loudly.
    """
    def best_of_2(sanitize: bool):
        results = []
        outputs = None
        for _ in range(2):
            bench, _, net = run_incast_cell(
                duration_ns=2 * MS, sim=Simulator(sanitize=sanitize)
            )
            results.append(bench)
            outputs = incast_outputs(net)
        return max(results, key=lambda r: r.events_per_sec), outputs

    off, off_outputs = best_of_2(False)
    on, on_outputs = best_of_2(True)

    if off_outputs != on_outputs:
        print("FAIL: sanitizer-on incast outputs diverged from plain run",
              file=sys.stderr)
        print(f"  off: {off_outputs}", file=sys.stderr)
        print(f"  on:  {on_outputs}", file=sys.stderr)
        return 1

    payload = save_sanitizer_perf(off.as_dict(), on.as_dict())
    print("sanitizer overhead (incast cell, zero violations):")
    print(json.dumps(payload, indent=2))
    if payload["slowdown"] > SANITIZER_OVERHEAD_BUDGET:
        print(
            f"FAIL: sanitizer slowdown {payload['slowdown']}x exceeds the "
            f"{SANITIZER_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        return 1
    print(f"sanitizer overhead OK: {payload['slowdown']}x <= "
          f"{SANITIZER_OVERHEAD_BUDGET}x budget")
    return 0


def faults_guard() -> int:
    """Measure the dormant fault machinery's overhead on the incast cell.

    Best-of-3 per mode (the cell is only ~20 ms of wall time, so a
    single noisy run can fake a 2x slowdown); the hooks-on leg arms an
    *empty* fault plan and
    installs the stuck-I/O watchdog, so any extra cost is pure hook
    overhead: the per-packet is-None checks and the quiescence callback.
    Event counts and outputs must match exactly between the legs.
    """
    import time as _time

    from repro.faults import FaultInjector, FaultPlan, StuckIOWatchdog
    from repro.profiling.bench import BenchResult, build_incast_cell
    from repro.sim.units import US

    duration_ns = 2 * MS

    def timed_cell(with_hooks: bool):
        sim, net = build_incast_cell(duration_ns=duration_ns)
        if with_hooks:
            FaultInjector(sim, FaultPlan()).attach_network(net).arm()
            StuckIOWatchdog().install(sim)
        t0 = _time.perf_counter()
        dispatched = sim.run(until=duration_ns + 50 * US)
        wall = _time.perf_counter() - t0
        bench = BenchResult(events=dispatched, wall_s=wall, sim_end_ns=sim.now)
        return bench, incast_outputs(net)

    def best_of_3(with_hooks: bool):
        runs = [timed_cell(with_hooks) for _ in range(3)]
        outputs = runs[-1][1]
        return max((r[0] for r in runs), key=lambda r: r.events_per_sec), outputs

    off, off_outputs = best_of_3(False)
    on, on_outputs = best_of_3(True)

    if off.events != on.events or off_outputs != on_outputs:
        print("FAIL: dormant fault machinery changed the run", file=sys.stderr)
        print(f"  events off={off.events} on={on.events}", file=sys.stderr)
        print(f"  outputs off: {off_outputs}", file=sys.stderr)
        print(f"  outputs on:  {on_outputs}", file=sys.stderr)
        return 1

    payload = save_faults_perf(off.as_dict(), on.as_dict())
    print("fault-hook overhead (incast cell, empty plan, identical events):")
    print(json.dumps(payload, indent=2))
    if payload["slowdown"] > FAULT_HOOK_OVERHEAD_BUDGET:
        print(
            f"FAIL: fault-hook slowdown {payload['slowdown']}x exceeds the "
            f"{FAULT_HOOK_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        return 1
    print(f"fault-hook overhead OK: {payload['slowdown']}x <= "
          f"{FAULT_HOOK_OVERHEAD_BUDGET}x budget")
    return 0


def dispatch(argv: list[str]) -> int:
    if "--sanitizer" in argv:
        return sanitizer_guard()
    if "--faults" in argv:
        return faults_guard()
    return main()


if __name__ == "__main__":
    sys.exit(dispatch(sys.argv[1:]))
