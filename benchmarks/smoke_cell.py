"""CI smoke benchmark: one tiny Fig. 5 sweep, parallel vs serial,
plus the engine throughput regression guard.

Runs a single weight-sweep panel twice — once with ``workers=1`` and
once with ``workers=2`` — and asserts the results are bit-identical,
which is the determinism contract of :mod:`repro.parallel`.  Prints the
perf counters of the parallel run so CI logs show events/sec and worker
utilisation.

Then times the two standard engine scenarios from
:mod:`repro.profiling.bench`, records before/after numbers in
``benchmarks/results/engine_perf.json`` (the "before" half is the
checked-in pre-optimisation baseline), and fails if events/sec drops
below the checked-in floor — half the pre-optimisation baseline, so
only an order-of-magnitude regression (e.g. an O(n) scan creeping back
into the dispatch loop) trips it.

Usage::

    PYTHONPATH=src python benchmarks/smoke_cell.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.common import load_engine_floor, save_engine_perf
from repro.experiments.weight_sweep import run_weight_sweep_with_report
from repro.profiling.bench import engine_microbench, run_incast_cell
from repro.sim.units import MS
from repro.ssd.config import SSD_A

INTERARRIVALS = (25_000,)
SIZES = (25 * 1024,)
RATIOS = (1, 4)


def run(workers: int):
    return run_weight_sweep_with_report(
        SSD_A,
        interarrivals_ns=INTERARRIVALS,
        sizes_bytes=SIZES,
        weight_ratios=RATIOS,
        duration_ns=5 * MS,
        min_requests=200,
        workers=workers,
    )


def main() -> int:
    serial_cells, _ = run(workers=1)
    parallel_cells, report = run(workers=2)

    for s, p in zip(serial_cells, parallel_cells):
        if not (
            np.array_equal(s.read_gbps, p.read_gbps)
            and np.array_equal(s.write_gbps, p.write_gbps)
        ):
            print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
            print(f"  serial   read={s.read_gbps} write={s.write_gbps}", file=sys.stderr)
            print(f"  parallel read={p.read_gbps} write={p.write_gbps}", file=sys.stderr)
            return 1

    print("smoke cell OK: workers=2 bit-identical to workers=1")
    print(json.dumps(report.perf_dict(), indent=2))
    return engine_guard()


def engine_guard() -> int:
    """Time the standard engine scenarios and enforce the events/sec floor."""
    current = {
        "engine_microbench": max(
            (engine_microbench(n_events=200_000) for _ in range(2)),
            key=lambda r: r.events_per_sec,
        ).as_dict(),
        "incast_cell": max(
            (run_incast_cell(duration_ns=2 * MS)[0] for _ in range(2)),
            key=lambda r: r.events_per_sec,
        ).as_dict(),
    }
    payload = save_engine_perf(current)
    print("engine perf (events/sec, current vs pre-optimisation baseline):")
    for key, cur in current.items():
        base = payload["baseline"].get(key, {}).get("events_per_sec", "?")
        speedup = payload["speedup"].get(key, "?")
        print(f"  {key}: {cur['events_per_sec']} vs {base} ({speedup}x)")

    floor = load_engine_floor()
    failed = False
    for key, cur in current.items():
        limit = floor.get(f"{key}_events_per_sec")
        if limit is not None and cur["events_per_sec"] < limit:
            print(
                f"FAIL: {key} at {cur['events_per_sec']} events/sec is below "
                f"the regression floor {limit}",
                file=sys.stderr,
            )
            failed = True
    if not failed:
        print("engine perf OK: above the regression floor")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
