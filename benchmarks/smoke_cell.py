"""CI smoke benchmark: one tiny Fig. 5 sweep, parallel vs serial,
plus the engine throughput regression guard.

Runs a single weight-sweep panel twice — once with ``workers=1`` and
once with ``workers=2`` — and asserts the results are bit-identical,
which is the determinism contract of :mod:`repro.parallel`.  Prints the
perf counters of the parallel run so CI logs show events/sec and worker
utilisation.

Then times the two standard engine scenarios from
:mod:`repro.profiling.bench`, records before/after numbers in
``benchmarks/results/engine_perf.json`` (the "before" half is the
checked-in pre-optimisation baseline), and fails if events/sec drops
below the checked-in floor — half the pre-optimisation baseline, so
only an order-of-magnitude regression (e.g. an O(n) scan creeping back
into the dispatch loop) trips it.

With ``--sanitizer`` it instead measures the runtime DES sanitizer's
overhead: the incast cell runs sanitize-off, sanitize-on, and
stride-sampled (``stride:64``) *in one warmed process*, interleaved
round-robin so load spikes cannot bias a single leg; outputs must
match bit-for-bit across all legs (the sanitizer only observes), zero
invariant violations may fire, and the slowdowns must stay within
``benchmarks.common.SANITIZER_OVERHEAD_BUDGET`` /
``STRIDE_SANITIZER_OVERHEAD_BUDGET``.  The leg also re-times the engine
microbench and regenerates **both** ``results/engine_perf.json`` and
``results/sanitizer_overhead.json`` from the same off-leg measurement,
then fails loudly if the two files' shared scenario disagrees by more
than 10% (``benchmarks.common.shared_scenario_mismatch``) — the
historical mode where each file came from a separate cold process made
every cross-file ratio fiction.

With ``--stride-sanitizer`` it runs only the off and ``stride:64`` legs
(again one warmed process) and enforces the 1.15x stride budget plus
output identity, without touching the results files — the cheap CI leg
that keeps strided checking honest.

With ``--faults`` it measures the fault-injection hooks' overhead when
*no faults are scheduled*: the incast cell runs bare and with a dormant
injector (empty plan armed, stuck-I/O watchdog installed).  Event counts
and outputs must be identical — a dormant injector adds zero events —
and the slowdown must stay within
``benchmarks.common.FAULT_HOOK_OVERHEAD_BUDGET``.  Numbers land in
``benchmarks/results/faults_overhead.json``.

With ``--checkpoint`` it measures periodic checkpointing's overhead on
a long incast cell (~380k events, snapshots every
``benchmarks.common.CHECKPOINT_EVERY_EVENTS`` events): outputs must be
identical to the uninterrupted run, restoring the newest snapshot and
continuing must reproduce them again, and the wall-time slowdown must
stay within ``benchmarks.common.CHECKPOINT_OVERHEAD_BUDGET``.  Numbers
land in ``benchmarks/results/checkpoint_overhead.json``.

With ``--dual-fidelity`` it runs the acceptance-scale dual-fidelity
Clos cell (full 4-pod fabric, 200 fluid tenants, 8 packet-level
foreground flows, 100 ms simulated) and enforces two floors from
:mod:`benchmarks.common`: the >= 10x event-count reduction against the
all-packet projection (``DUAL_FIDELITY_EVENT_REDUCTION_FLOOR``) and the
dispatch-loop events/sec floor (``DUAL_FIDELITY_EVENTS_PER_SEC_FLOOR``).
Numbers land in ``benchmarks/results/clos_scale.json``.  A second,
smaller Clos cell then runs under the stride-sampled sanitizer
(``stride:64``) — the fluid conservation/envelope sweep included — and
must finish violation-free.

Usage::

    PYTHONPATH=src python benchmarks/smoke_cell.py
    PYTHONPATH=src python benchmarks/smoke_cell.py --sanitizer
    PYTHONPATH=src python benchmarks/smoke_cell.py --stride-sanitizer
    PYTHONPATH=src python benchmarks/smoke_cell.py --faults
    PYTHONPATH=src python benchmarks/smoke_cell.py --checkpoint
    PYTHONPATH=src python benchmarks/smoke_cell.py --dual-fidelity
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.common import (
    DUAL_FIDELITY_EVENT_REDUCTION_FLOOR,
    DUAL_FIDELITY_EVENTS_PER_SEC_FLOOR,
    FAULT_HOOK_OVERHEAD_BUDGET,
    SANITIZER_OVERHEAD_BUDGET,
    STRIDE_SANITIZER_OVERHEAD_BUDGET,
    STRIDE_SANITIZER_STRIDE,
    load_engine_floor,
    save_clos_scale,
    save_engine_perf,
    save_faults_perf,
    save_sanitizer_perf,
    shared_scenario_mismatch,
)
from repro.experiments.weight_sweep import run_weight_sweep_with_report
from repro.profiling.bench import engine_microbench, incast_outputs, run_incast_cell
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.ssd.config import SSD_A

INTERARRIVALS = (25_000,)
SIZES = (25 * 1024,)
RATIOS = (1, 4)


def run(workers: int):
    return run_weight_sweep_with_report(
        SSD_A,
        interarrivals_ns=INTERARRIVALS,
        sizes_bytes=SIZES,
        weight_ratios=RATIOS,
        duration_ns=5 * MS,
        min_requests=200,
        workers=workers,
    )


def main() -> int:
    serial_cells, _ = run(workers=1)
    parallel_cells, report = run(workers=2)

    for s, p in zip(serial_cells, parallel_cells):
        if not (
            np.array_equal(s.read_gbps, p.read_gbps)
            and np.array_equal(s.write_gbps, p.write_gbps)
        ):
            print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
            print(f"  serial   read={s.read_gbps} write={s.write_gbps}", file=sys.stderr)
            print(f"  parallel read={p.read_gbps} write={p.write_gbps}", file=sys.stderr)
            return 1

    print("smoke cell OK: workers=2 bit-identical to workers=1")
    print(json.dumps(report.perf_dict(), indent=2))
    return engine_guard()


def _measure_incast_modes(modes, rounds: int = 3):
    """Round-robin best-of timing across sanitize modes.

    Every mode runs once per round, interleaved, so a transient load
    spike degrades that round's sample for *all* modes instead of
    biasing whichever leg it happened to land on — sequential
    best-of-N per leg let slowdown ratios on a loaded box swing
    between 0.8x and 1.6x for the identical build.  Returns
    ``{mode: (BenchResult, outputs)}`` with the best round per mode;
    outputs come from the last round (each mode is deterministic, so
    any round's outputs serve).
    """
    best: dict = {mode: None for mode in modes}
    outputs: dict = {}
    for _ in range(rounds):
        for mode in modes:
            bench, _, net = run_incast_cell(
                duration_ns=2 * MS, sim=Simulator(sanitize=mode)
            )
            if best[mode] is None or bench.events_per_sec > best[mode].events_per_sec:
                best[mode] = bench
            outputs[mode] = incast_outputs(net)
    return {mode: (best[mode], outputs[mode]) for mode in modes}


def _measure_incast(sanitize, runs: int = 3):
    """Best-of-``runs`` incast timing for one sanitize mode."""
    return _measure_incast_modes((sanitize,), rounds=runs)[sanitize]


def _enforce_floor(current: dict) -> bool:
    """True when every scenario clears its checked-in events/sec floor."""
    floor = load_engine_floor()
    ok = True
    for key, cur in current.items():
        limit = floor.get(f"{key}_events_per_sec")
        if limit is not None and cur["events_per_sec"] < limit:
            print(
                f"FAIL: {key} at {cur['events_per_sec']} events/sec is below "
                f"the regression floor {limit}",
                file=sys.stderr,
            )
            ok = False
    return ok


def _print_engine_payload(current: dict, payload: dict) -> None:
    print("engine perf (events/sec, current vs pre-optimisation baseline):")
    for key, cur in current.items():
        base = payload["baseline"].get(key, {}).get("events_per_sec", "?")
        speedup = payload["speedup"].get(key, "?")
        print(f"  {key}: {cur['events_per_sec']} vs {base} ({speedup}x)")


def engine_guard() -> int:
    """Time the standard engine scenarios and enforce the events/sec floor."""
    current = {
        "engine_microbench": max(
            (engine_microbench(n_events=200_000) for _ in range(2)),
            key=lambda r: r.events_per_sec,
        ).as_dict(),
        "incast_cell": _measure_incast(False, runs=2)[0].as_dict(),
    }
    payload = save_engine_perf(current)
    _print_engine_payload(current, payload)
    if not _enforce_floor(current):
        return 1
    print("engine perf OK: above the regression floor")
    return 0


def sanitizer_guard() -> int:
    """Measure sanitizer overhead and regenerate both results files.

    All legs — off, full-fidelity, ``stride:64``, and the engine
    microbench — run in *this one process*, back to back, after a
    throwaway warm-up run.  The off leg is written to **both**
    ``engine_perf.json`` (as ``current.incast_cell``) and
    ``sanitizer_overhead.json`` (as ``sanitize_off``), so every ratio
    built on those files shares one denominator; the cross-file
    consistency check then has to pass by construction and only trips
    if a future change lets the two measurements drift apart again.

    Outputs must match bit-for-bit across all three legs — the
    sanitizer (strided or not) is a pure observer — and a
    :class:`repro.analysis.SanitizerError` escaping here is a real
    invariant violation failing the guard loudly.
    """
    run_incast_cell(duration_ns=2 * MS)  # warm-up: allocator + caches

    stride_mode = f"stride:{STRIDE_SANITIZER_STRIDE}"
    measured = _measure_incast_modes((False, True, stride_mode), rounds=3)
    off, off_outputs = measured[False]
    on, on_outputs = measured[True]
    strided, stride_outputs = measured[stride_mode]

    failed = False
    for label, outputs in (("on", on_outputs), (stride_mode, stride_outputs)):
        if outputs != off_outputs:
            print(
                f"FAIL: sanitize={label} incast outputs diverged from plain run",
                file=sys.stderr,
            )
            print(f"  off: {off_outputs}", file=sys.stderr)
            print(f"  {label}: {outputs}", file=sys.stderr)
            failed = True
    if failed:
        return 1

    # Both results files get the one shared off-leg measurement.
    micro = max(
        (engine_microbench(n_events=200_000) for _ in range(2)),
        key=lambda r: r.events_per_sec,
    ).as_dict()
    current = {"engine_microbench": micro, "incast_cell": off.as_dict()}
    engine_payload = save_engine_perf(current)
    _print_engine_payload(current, engine_payload)
    if not _enforce_floor(current):
        failed = True

    payload = save_sanitizer_perf(off.as_dict(), on.as_dict(), strided.as_dict())
    print("sanitizer overhead (incast cell, zero violations):")
    print(json.dumps(payload, indent=2))
    if payload["slowdown"] > SANITIZER_OVERHEAD_BUDGET:
        print(
            f"FAIL: sanitizer slowdown {payload['slowdown']}x exceeds the "
            f"{SANITIZER_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"sanitizer overhead OK: {payload['slowdown']}x <= "
            f"{SANITIZER_OVERHEAD_BUDGET}x budget"
        )
    if payload["stride_slowdown"] > STRIDE_SANITIZER_OVERHEAD_BUDGET:
        print(
            f"FAIL: {stride_mode} slowdown {payload['stride_slowdown']}x exceeds "
            f"the {STRIDE_SANITIZER_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"{stride_mode} overhead OK: {payload['stride_slowdown']}x <= "
            f"{STRIDE_SANITIZER_OVERHEAD_BUDGET}x budget"
        )

    mismatch = shared_scenario_mismatch()
    if mismatch is not None:
        print(f"FAIL: {mismatch}", file=sys.stderr)
        failed = True
    else:
        print("results-file consistency OK: shared incast leg agrees")
    return 1 if failed else 0


def stride_guard() -> int:
    """CI leg: enforce the stride-sampled sanitizer's 1.15x budget.

    Off and strided legs only, one warmed process, no results-file
    writes — the ``--sanitizer`` leg owns the persisted artifacts.
    """
    run_incast_cell(duration_ns=2 * MS)  # warm-up
    stride_mode = f"stride:{STRIDE_SANITIZER_STRIDE}"
    measured = _measure_incast_modes((False, stride_mode), rounds=3)
    off, off_outputs = measured[False]
    strided, stride_outputs = measured[stride_mode]

    if stride_outputs != off_outputs:
        print(
            f"FAIL: sanitize={stride_mode} incast outputs diverged from "
            f"plain run",
            file=sys.stderr,
        )
        print(f"  off: {off_outputs}", file=sys.stderr)
        print(f"  {stride_mode}: {stride_outputs}", file=sys.stderr)
        return 1
    ratio = round(off.events_per_sec / strided.events_per_sec, 3)
    print(
        f"stride sanitizer overhead: off {round(off.events_per_sec)} ev/s, "
        f"{stride_mode} {round(strided.events_per_sec)} ev/s -> {ratio}x"
    )
    if ratio > STRIDE_SANITIZER_OVERHEAD_BUDGET:
        print(
            f"FAIL: {stride_mode} slowdown {ratio}x exceeds the "
            f"{STRIDE_SANITIZER_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        return 1
    print(
        f"stride sanitizer OK: {ratio}x <= "
        f"{STRIDE_SANITIZER_OVERHEAD_BUDGET}x budget"
    )
    return 0


def faults_guard() -> int:
    """Measure the dormant fault machinery's overhead on the incast cell.

    Best-of-3 per mode (the cell is only ~20 ms of wall time, so a
    single noisy run can fake a 2x slowdown); the hooks-on leg arms an
    *empty* fault plan and
    installs the stuck-I/O watchdog, so any extra cost is pure hook
    overhead: the per-packet is-None checks and the quiescence callback.
    Event counts and outputs must match exactly between the legs.
    """
    import time as _time

    from repro.faults import FaultInjector, FaultPlan, StuckIOWatchdog
    from repro.profiling.bench import BenchResult, build_incast_cell
    from repro.sim.units import US

    duration_ns = 2 * MS

    def timed_cell(with_hooks: bool):
        sim, net = build_incast_cell(duration_ns=duration_ns)
        if with_hooks:
            FaultInjector(sim, FaultPlan()).attach_network(net).arm()
            StuckIOWatchdog().install(sim)
        t0 = _time.perf_counter()
        dispatched = sim.run(until=duration_ns + 50 * US)
        wall = _time.perf_counter() - t0
        bench = BenchResult(events=dispatched, wall_s=wall, sim_end_ns=sim.now)
        return bench, incast_outputs(net)

    def best_of_3(with_hooks: bool):
        runs = [timed_cell(with_hooks) for _ in range(3)]
        outputs = runs[-1][1]
        return max((r[0] for r in runs), key=lambda r: r.events_per_sec), outputs

    off, off_outputs = best_of_3(False)
    on, on_outputs = best_of_3(True)

    if off.events != on.events or off_outputs != on_outputs:
        print("FAIL: dormant fault machinery changed the run", file=sys.stderr)
        print(f"  events off={off.events} on={on.events}", file=sys.stderr)
        print(f"  outputs off: {off_outputs}", file=sys.stderr)
        print(f"  outputs on:  {on_outputs}", file=sys.stderr)
        return 1

    payload = save_faults_perf(off.as_dict(), on.as_dict())
    print("fault-hook overhead (incast cell, empty plan, identical events):")
    print(json.dumps(payload, indent=2))
    if payload["slowdown"] > FAULT_HOOK_OVERHEAD_BUDGET:
        print(
            f"FAIL: fault-hook slowdown {payload['slowdown']}x exceeds the "
            f"{FAULT_HOOK_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        return 1
    print(f"fault-hook overhead OK: {payload['slowdown']}x <= "
          f"{FAULT_HOOK_OVERHEAD_BUDGET}x budget")
    return 0


def checkpoint_guard() -> int:
    """Measure periodic-checkpoint overhead and prove round-trip fidelity.

    One warmed process, best-of-2 per leg.  The cell is a long incast
    run (~210k events) so the ``CHECKPOINT_EVERY_EVENTS`` cadence
    produces at least two periodic snapshots.  Three contracts:

    * the checkpointed run's externally visible outputs are identical
      to the uninterrupted run's;
    * restoring the *newest* checkpoint and continuing reproduces those
      same outputs (round-trip correctness on the benchmark cell, not
      just the golden-trace cell);
    * the wall-time slowdown stays within
      ``benchmarks.common.CHECKPOINT_OVERHEAD_BUDGET``.
    """
    import tempfile
    import time as _time

    from benchmarks.common import (
        CHECKPOINT_EVERY_EVENTS,
        CHECKPOINT_OVERHEAD_BUDGET,
        save_checkpoint_perf,
    )
    from repro.profiling.bench import BenchResult, build_incast_cell
    from repro.sim import checkpoint as ck
    from repro.sim.units import US

    duration_ns = 60 * MS
    until = duration_ns + 50 * US
    cell = dict(duration_ns=duration_ns)

    def plain_leg():
        sim, net = build_incast_cell(**cell)
        t0 = _time.perf_counter()
        dispatched = sim.run(until=until)
        wall = _time.perf_counter() - t0
        return (
            BenchResult(events=dispatched, wall_s=wall, sim_end_ns=sim.now),
            incast_outputs(net),
        )

    def checkpointed_leg(directory):
        sim, net = build_incast_cell(**cell)
        t0 = _time.perf_counter()
        run = ck.run_with_checkpoints(
            sim,
            net,
            until=until,
            directory=directory,
            every=CHECKPOINT_EVERY_EVENTS,
            scenario=cell,
            keep=16,  # keep them all: the guard counts and restores them
        )
        wall = _time.perf_counter() - t0
        bench = BenchResult(events=run.dispatched, wall_s=wall, sim_end_ns=sim.now)
        return bench, incast_outputs(net), run

    run_incast_cell(duration_ns=2 * MS)  # warm-up: allocator + caches

    off, off_outputs = min(
        (plain_leg() for _ in range(2)), key=lambda r: r[0].wall_s
    )
    with tempfile.TemporaryDirectory() as tmp:
        legs = []
        for i in range(2):
            directory = Path(tmp) / f"round-{i}"
            legs.append(checkpointed_leg(directory))
        ckpt, ckpt_outputs, run = min(legs, key=lambda r: r[0].wall_s)
        if len(run.checkpoints) < 3:  # entry + >= 2 periodic
            print(
                f"FAIL: cell too small for the {CHECKPOINT_EVERY_EVENTS}-event "
                f"cadence: only {len(run.checkpoints) - 1} periodic "
                f"checkpoints written",
                file=sys.stderr,
            )
            return 1
        if ckpt_outputs != off_outputs:
            print(
                "FAIL: checkpointed run outputs diverged from plain run",
                file=sys.stderr,
            )
            print(f"  plain:        {off_outputs}", file=sys.stderr)
            print(f"  checkpointed: {ckpt_outputs}", file=sys.stderr)
            return 1

        # Round-trip: restore the newest snapshot, continue, compare.
        newest = run.checkpoints[-1]
        sim2, net2 = ck.load(newest.path, scenario=cell)
        sim2.run(until=until)
        restored_outputs = incast_outputs(net2)
        if restored_outputs != off_outputs:
            print(
                "FAIL: restored run outputs diverged from plain run",
                file=sys.stderr,
            )
            print(f"  plain:    {off_outputs}", file=sys.stderr)
            print(f"  restored: {restored_outputs}", file=sys.stderr)
            return 1
        checkpoint_bytes = newest.path.stat().st_size

    payload = save_checkpoint_perf(
        off.as_dict(),
        ckpt.as_dict(),
        n_checkpoints=len(run.checkpoints),
        checkpoint_bytes=checkpoint_bytes,
    )
    print(
        f"checkpoint round-trip OK: restored run matches plain run "
        f"(restore point: event {newest.events_dispatched})"
    )
    print("checkpoint overhead (incast cell, identical outputs):")
    print(json.dumps(payload, indent=2))
    if payload["slowdown"] > CHECKPOINT_OVERHEAD_BUDGET:
        print(
            f"FAIL: checkpoint slowdown {payload['slowdown']}x exceeds the "
            f"{CHECKPOINT_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        return 1
    print(
        f"checkpoint overhead OK: {payload['slowdown']}x <= "
        f"{CHECKPOINT_OVERHEAD_BUDGET}x budget"
    )
    return 0


def dual_fidelity_guard() -> int:
    """Run the Clos-scale dual-fidelity cell and enforce its floors.

    One acceptance-scale run (the cell is ~3-4 s of wall time, so no
    best-of sampling — the floors carry 2x slack instead), then a small
    sanitized ``stride:64`` Clos cell where the fluid conservation and
    arrival-curve envelope sweeps run live; a
    :class:`repro.analysis.SanitizerError` escaping fails the guard.
    """
    from repro.analysis.sanitizer import SanitizerError
    from repro.experiments.clos_scale import ClosScaleConfig, run_clos_scale_cell

    result = run_clos_scale_cell(ClosScaleConfig())
    payload = save_clos_scale(result.as_dict())
    print("dual-fidelity Clos cell (4 pods, 200 fluid tenants, 8 fg flows):")
    print(json.dumps(payload, indent=2))

    failed = False
    if result.event_reduction < DUAL_FIDELITY_EVENT_REDUCTION_FLOOR:
        print(
            f"FAIL: event reduction {result.event_reduction:.1f}x is below "
            f"the {DUAL_FIDELITY_EVENT_REDUCTION_FLOOR}x floor",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"event reduction OK: {result.event_reduction:.1f}x >= "
            f"{DUAL_FIDELITY_EVENT_REDUCTION_FLOOR}x floor"
        )
    if result.events_per_sec < DUAL_FIDELITY_EVENTS_PER_SEC_FLOOR:
        print(
            f"FAIL: {round(result.events_per_sec)} events/sec is below the "
            f"{DUAL_FIDELITY_EVENTS_PER_SEC_FLOOR} floor",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"dispatch rate OK: {round(result.events_per_sec)} events/sec >= "
            f"{DUAL_FIDELITY_EVENTS_PER_SEC_FLOOR} floor"
        )

    sanitized = ClosScaleConfig(
        n_pods=2,
        tors_per_pod=2,
        hosts_per_tor=4,
        fluid_hosts_per_tor=2,
        n_tenants=24,
        n_foreground_flows=4,
        duration_ns=5 * MS,
        sanitize=f"stride:{STRIDE_SANITIZER_STRIDE}",
    )
    try:
        check = run_clos_scale_cell(sanitized)
    except SanitizerError as err:
        print(f"FAIL: sanitized Clos cell tripped an invariant: {err}", file=sys.stderr)
        return 1
    print(
        f"sanitized Clos cell OK (stride:{STRIDE_SANITIZER_STRIDE}): "
        f"{check.events_dispatched} events, {check.fluid_updates} fluid "
        f"updates, zero violations"
    )
    return 1 if failed else 0


def dispatch(argv: list[str]) -> int:
    if "--sanitizer" in argv:
        return sanitizer_guard()
    if "--stride-sanitizer" in argv:
        return stride_guard()
    if "--faults" in argv:
        return faults_guard()
    if "--checkpoint" in argv:
        return checkpoint_guard()
    if "--dual-fidelity" in argv:
        return dual_fidelity_guard()
    return main()


if __name__ == "__main__":
    sys.exit(dispatch(sys.argv[1:]))
