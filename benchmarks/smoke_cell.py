"""CI smoke benchmark: one tiny Fig. 5 sweep, parallel vs serial,
plus the engine throughput regression guard.

Runs a single weight-sweep panel twice — once with ``workers=1`` and
once with ``workers=2`` — and asserts the results are bit-identical,
which is the determinism contract of :mod:`repro.parallel`.  Prints the
perf counters of the parallel run so CI logs show events/sec and worker
utilisation.

Then times the two standard engine scenarios from
:mod:`repro.profiling.bench`, records before/after numbers in
``benchmarks/results/engine_perf.json`` (the "before" half is the
checked-in pre-optimisation baseline), and fails if events/sec drops
below the checked-in floor — half the pre-optimisation baseline, so
only an order-of-magnitude regression (e.g. an O(n) scan creeping back
into the dispatch loop) trips it.

With ``--sanitizer`` it instead measures the runtime DES sanitizer's
overhead: the incast cell runs sanitize-off and sanitize-on, the outputs
must match bit-for-bit (the sanitizer only observes), zero invariant
violations may fire, and the slowdown must stay within
``benchmarks.common.SANITIZER_OVERHEAD_BUDGET``.  Both numbers land in
``benchmarks/results/sanitizer_overhead.json``.

Usage::

    PYTHONPATH=src python benchmarks/smoke_cell.py
    PYTHONPATH=src python benchmarks/smoke_cell.py --sanitizer
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.common import (
    SANITIZER_OVERHEAD_BUDGET,
    load_engine_floor,
    save_engine_perf,
    save_sanitizer_perf,
)
from repro.experiments.weight_sweep import run_weight_sweep_with_report
from repro.profiling.bench import engine_microbench, incast_outputs, run_incast_cell
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.ssd.config import SSD_A

INTERARRIVALS = (25_000,)
SIZES = (25 * 1024,)
RATIOS = (1, 4)


def run(workers: int):
    return run_weight_sweep_with_report(
        SSD_A,
        interarrivals_ns=INTERARRIVALS,
        sizes_bytes=SIZES,
        weight_ratios=RATIOS,
        duration_ns=5 * MS,
        min_requests=200,
        workers=workers,
    )


def main() -> int:
    serial_cells, _ = run(workers=1)
    parallel_cells, report = run(workers=2)

    for s, p in zip(serial_cells, parallel_cells):
        if not (
            np.array_equal(s.read_gbps, p.read_gbps)
            and np.array_equal(s.write_gbps, p.write_gbps)
        ):
            print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
            print(f"  serial   read={s.read_gbps} write={s.write_gbps}", file=sys.stderr)
            print(f"  parallel read={p.read_gbps} write={p.write_gbps}", file=sys.stderr)
            return 1

    print("smoke cell OK: workers=2 bit-identical to workers=1")
    print(json.dumps(report.perf_dict(), indent=2))
    return engine_guard()


def engine_guard() -> int:
    """Time the standard engine scenarios and enforce the events/sec floor."""
    current = {
        "engine_microbench": max(
            (engine_microbench(n_events=200_000) for _ in range(2)),
            key=lambda r: r.events_per_sec,
        ).as_dict(),
        "incast_cell": max(
            (run_incast_cell(duration_ns=2 * MS)[0] for _ in range(2)),
            key=lambda r: r.events_per_sec,
        ).as_dict(),
    }
    payload = save_engine_perf(current)
    print("engine perf (events/sec, current vs pre-optimisation baseline):")
    for key, cur in current.items():
        base = payload["baseline"].get(key, {}).get("events_per_sec", "?")
        speedup = payload["speedup"].get(key, "?")
        print(f"  {key}: {cur['events_per_sec']} vs {base} ({speedup}x)")

    floor = load_engine_floor()
    failed = False
    for key, cur in current.items():
        limit = floor.get(f"{key}_events_per_sec")
        if limit is not None and cur["events_per_sec"] < limit:
            print(
                f"FAIL: {key} at {cur['events_per_sec']} events/sec is below "
                f"the regression floor {limit}",
                file=sys.stderr,
            )
            failed = True
    if not failed:
        print("engine perf OK: above the regression floor")
    return 1 if failed else 0


def sanitizer_guard() -> int:
    """Measure sanitizer overhead on the incast cell and enforce the budget.

    Best-of-2 for each mode (first run pays warm-up), outputs compared
    between one off run and one on run — the sanitizer must be a pure
    observer.  A :class:`repro.analysis.SanitizerError` escaping here is
    a real invariant violation and fails the guard loudly.
    """
    def best_of_2(sanitize: bool):
        results = []
        outputs = None
        for _ in range(2):
            bench, _, net = run_incast_cell(
                duration_ns=2 * MS, sim=Simulator(sanitize=sanitize)
            )
            results.append(bench)
            outputs = incast_outputs(net)
        return max(results, key=lambda r: r.events_per_sec), outputs

    off, off_outputs = best_of_2(False)
    on, on_outputs = best_of_2(True)

    if off_outputs != on_outputs:
        print("FAIL: sanitizer-on incast outputs diverged from plain run",
              file=sys.stderr)
        print(f"  off: {off_outputs}", file=sys.stderr)
        print(f"  on:  {on_outputs}", file=sys.stderr)
        return 1

    payload = save_sanitizer_perf(off.as_dict(), on.as_dict())
    print("sanitizer overhead (incast cell, zero violations):")
    print(json.dumps(payload, indent=2))
    if payload["slowdown"] > SANITIZER_OVERHEAD_BUDGET:
        print(
            f"FAIL: sanitizer slowdown {payload['slowdown']}x exceeds the "
            f"{SANITIZER_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        return 1
    print(f"sanitizer overhead OK: {payload['slowdown']}x <= "
          f"{SANITIZER_OVERHEAD_BUDGET}x budget")
    return 0


if __name__ == "__main__":
    sys.exit(sanitizer_guard() if "--sanitizer" in sys.argv[1:] else main())
