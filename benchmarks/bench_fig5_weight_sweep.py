"""Fig. 5: read/write throughput vs weight ratio across the workload grid.

Paper observations to reproduce (SSD-A, inter-arrival 10–25 µs × size
10–40 KB, w = 1..):

1. read ≈ write at w = 1 (shared internal resources);
2. under moderate/heavy load, read falls and write rises as w grows;
3. under the lightest load, w has no effect (WRR degenerates to RR);
4. write throughput flattens once the write path saturates.
"""

import numpy as np
import pytest

from benchmarks.common import bench_workers, save_perf, save_result
from repro.experiments.tables import format_table
from repro.experiments.weight_sweep import run_weight_sweep_with_report
from repro.sim.units import MS
from repro.ssd.config import SSD_A

#: The paper's grid (10–25 µs) plus a 60 µs row: our scaled SSD-A
#: saturates at ≈2.2 Gbps/direction under a balanced load, so the
#: genuinely light regime (where the paper observes WRR degenerating to
#: RR) sits at a longer inter-arrival than the paper's absolute values.
INTERARRIVALS = (10_000, 17_500, 25_000, 60_000)
SIZES = (10 * 1024, 25 * 1024, 40 * 1024)
RATIOS = (1, 2, 4, 8, 16)


def run_fig5():
    return run_weight_sweep_with_report(
        SSD_A,
        interarrivals_ns=INTERARRIVALS,
        sizes_bytes=SIZES,
        weight_ratios=RATIOS,
        duration_ns=50 * MS,
        workers=bench_workers(),
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5_weight_sweep(benchmark):
    cells, report = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    benchmark.extra_info["perf"] = save_perf("fig5_weight_sweep", report)

    rows = []
    for cell in cells:
        reads = " ".join(f"{v:5.2f}" for v in cell.read_gbps)
        writes = " ".join(f"{v:5.2f}" for v in cell.write_gbps)
        rows.append(
            [
                f"{cell.interarrival_ns/1000:.1f}us",
                f"{cell.size_bytes/1024:.0f}KB",
                reads,
                writes,
                f"{cell.control_effect()*100:.0f}%",
            ]
        )
    save_result(
        "fig5_weight_sweep",
        format_table(
            ["inter-arr", "size", f"read Gbps @ w={RATIOS}", f"write Gbps @ w={RATIOS}", "read drop"],
            rows,
            title="Fig. 5 — throughput vs weight ratio (SSD-A)",
        ),
    )

    by_key = {(c.interarrival_ns, c.size_bytes): c for c in cells}
    heavy = by_key[(10_000, 40 * 1024)]  # top-right panel
    light = by_key[(60_000, 10 * 1024)]  # bottom-left (sub-saturation) panel

    # (1) equality at w=1 under heavy load.
    assert heavy.read_gbps[0] == pytest.approx(heavy.write_gbps[0], rel=0.35)
    # (2) strong monotone control effect under heavy load.
    assert heavy.control_effect() > 0.5
    assert heavy.read_monotone_nonincreasing()
    assert heavy.write_gbps[-1] >= heavy.write_gbps[0]
    # (3) the lightest panel barely reacts to w.
    assert light.control_effect() < 0.25
    # (4) heavier workloads yield higher throughput overall.
    assert heavy.read_gbps[0] > light.read_gbps[0]
