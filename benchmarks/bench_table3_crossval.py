"""Table III: RF cross-validation accuracy over four SCV classes.

Paper: synthetic (MMPP) traces are classed by low/high request-size SCV
× low/high inter-arrival SCV; each class is validated against a model
trained on the remaining synthetic traces plus all micro traces.
Accuracies 0.89–0.98 — the expected shape is "reliably high (>0.7)
across every burstiness class".
"""

import zlib

import numpy as np
import pytest

from benchmarks.common import DEFAULT_PLAN, bench_workers, save_result
from repro.core.sampling import TrainingSet, collect_training_set
from repro.core.tpm import ThroughputPredictionModel
from repro.experiments.tables import format_table
from repro.ssd.config import SSD_A
from repro.workloads.mmpp import fit_mmpp2, generate_mmpp_trace
from repro.workloads.request import OpType
from repro.workloads.traces import merge_traces

#: (label, size SCV, inter-arrival SCV) — the four Table III classes.
CLASSES = [
    ("low size SCV + low inter-arrival SCV", 1.2, 1.2),
    ("low size SCV + high inter-arrival SCV", 1.2, 5.0),
    ("high size SCV + low inter-arrival SCV", 4.0, 1.2),
    ("high size SCV + high inter-arrival SCV", 4.0, 5.0),
]

PAPER = {label: acc for (label, _, _), acc in zip(CLASSES, (0.89, 0.98, 0.96, 0.95))}

RATIOS = (1, 2, 4, 8)


def synthetic_class_traces(size_scv, inter_scv, *, n_traces=3, seed=0):
    """Bursty MMPP traces for one Table III class."""
    traces = []
    for i in range(n_traces):
        inter = (9_000, 14_000, 22_000)[i % 3]
        process = fit_mmpp2(inter, inter_scv, 0.2)
        n = max(300, int(45_000_000 / inter))
        reads = generate_mmpp_trace(
            process, n_requests=n, op=OpType.READ, mean_size_bytes=32 * 1024,
            size_scv=size_scv, seed=seed + i,
        )
        writes = generate_mmpp_trace(
            process, n_requests=n, op=OpType.WRITE, mean_size_bytes=32 * 1024,
            size_scv=size_scv, seed=seed + 100 + i,
        )
        traces.append(merge_traces([reads, writes]))
    return traces


def run_table3():
    micro = collect_training_set(SSD_A, DEFAULT_PLAN, workers=bench_workers())
    class_sets = {}
    for label, size_scv, inter_scv in CLASSES:
        # zlib.crc32, not hash(): str hashes are PYTHONHASHSEED-randomised,
        # which made the Table III traces differ between pytest sessions.
        traces = synthetic_class_traces(
            size_scv, inter_scv, seed=zlib.crc32(label.encode()) % 1000
        )
        class_sets[label] = collect_training_set(
            SSD_A, None, traces=traces, weight_ratios=RATIOS,
            workers=bench_workers(),
        )

    accuracies = {}
    for label, _, _ in CLASSES:
        # Train on all micro samples + the *other* classes' synthetics.
        train = micro
        for other, data in class_sets.items():
            if other != label:
                train = train.merge(data)
        tpm = ThroughputPredictionModel().fit(train)
        accuracies[label] = tpm.score(class_sets[label])
    return accuracies


@pytest.mark.benchmark(group="table3")
def test_table3_crossval_accuracy(benchmark):
    accuracies = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    rows = [
        [label, f"{accuracies[label]:.2f}", f"{PAPER[label]:.2f}"]
        for label, _, _ in CLASSES
    ]
    save_result(
        "table3_crossval_accuracy",
        format_table(
            ["Data Subset", "Accuracy (ours)", "Accuracy (paper)"],
            rows,
            title="Table III — Cross-validation accuracy, Random Forest (SSD-A)",
        ),
    )
    for label, acc in accuracies.items():
        benchmark.extra_info[label] = round(acc, 3)
    # Shape: reliable prediction for every burstiness class.
    assert all(acc > 0.6 for acc in accuracies.values()), accuracies
