"""§III-B feature analysis: Breiman importances of the TPM.

Paper: "the read and write arrival flow speed plays the most crucial
role in TPM with a weight of 0.39 out of 1".  Expected shape: the
combined flow-speed importance dominates any other single workload
feature.
"""

import pytest

from benchmarks.common import save_result, trained_tpm
from repro.experiments.tables import format_table
from repro.ssd.config import SSD_A


def run_importances():
    tpm = trained_tpm(SSD_A)
    return tpm.ch_importances(), tpm.flow_speed_importance()


@pytest.mark.benchmark(group="importance")
def test_feature_importance(benchmark):
    importances, flow_speed = benchmark.pedantic(run_importances, rounds=1, iterations=1)
    ranked = sorted(importances.items(), key=lambda kv: -kv[1])
    rows = [[name, f"{value:.3f}"] for name, value in ranked]
    save_result(
        "feature_importance",
        format_table(
            ["Ch feature", "Breiman importance"],
            rows,
            title=(
                "§III-B — TPM feature importances over Ch "
                f"(combined flow speed: {flow_speed:.2f}; paper: 0.39)"
            ),
        ),
    )
    benchmark.extra_info["flow_speed_importance"] = round(flow_speed, 3)

    # Flow speed is a leading signal (paper: the most crucial, 0.39).
    top_single = max(importances.values())
    assert flow_speed >= top_single * 0.8
    assert flow_speed > 0.1
