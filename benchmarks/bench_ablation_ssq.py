"""Ablations of the SSQ design choices (DESIGN.md §4).

1. **Consistency check** (§III-A): on a dependency-heavy workload,
   disabling the same-queue placement of overlapping-LBA requests breaks
   read-after-write/write-after-read ordering; the check restores it at
   negligible throughput cost.
2. **Write-cache policy**: ``write_through`` (paper-faithful: flash
   program bounds write completion) vs ``write_back`` (completion at
   cache speed until the cache fills).
"""

import pytest

from benchmarks.common import save_result
from repro.experiments.replay import replay_on_device
from repro.experiments.tables import format_table
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.ssd.config import SSD_A
from repro.ssd.device import SSD
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.request import IORequest, OpType
from repro.workloads.traces import Trace


def dependency_heavy_trace(n_pairs=800, seed=3):
    """Read-then-write pairs on the same LBAs (write-after-read hazards).

    With write-preferring weights (w ≫ 1) and backlogged queues, a naive
    split would let the later write overtake the earlier read of the
    same extent — exactly the hazard §III-A's consistency check closes.
    The 6 µs pair spacing keeps both SQs deeply backlogged on SSD-A.
    """
    rng_trace = generate_micro_trace(
        MicroWorkloadConfig(6_000, 16 * 1024), n_reads=n_pairs, n_writes=0, seed=seed
    )
    requests = []
    for base in rng_trace:
        requests.append(
            IORequest(arrival_ns=base.arrival_ns, op=OpType.READ,
                      lba=base.lba, size_bytes=base.size_bytes)
        )
        requests.append(
            IORequest(arrival_ns=base.arrival_ns + 1_000, op=OpType.WRITE,
                      lba=base.lba, size_bytes=base.size_bytes)
        )
    return Trace(requests)


def ordering_violations(trace, config, driver):
    """Replay and count same-LBA pairs fetched out of arrival order."""
    sim = Simulator()
    ssd = SSD(sim, config)
    driver.connect(ssd)
    ssd.set_cq_listener(lambda _e: ssd.pop_completion())
    for req in trace:
        sim.schedule_at(req.arrival_ns, lambda r=req: driver.submit(r, now_ns=sim.now))
    sim.run()
    by_lba = {}
    for req in trace:
        by_lba.setdefault(req.lba, []).append(req)
    violations = 0
    for group in by_lba.values():
        group.sort(key=lambda r: r.arrival_ns)
        for earlier, later in zip(group, group[1:]):
            if earlier.op is not later.op:  # cross-type dependency
                if 0 <= later.fetch_ns < earlier.fetch_ns:
                    violations += 1
    return violations, ssd


def run_consistency_ablation():
    results = {}
    for label, check in (("with check", True), ("without check", False)):
        trace = dependency_heavy_trace()
        driver = SSQDriver(1, 8, consistency_check=check)  # skewed weights
        violations, ssd = ordering_violations(trace, SSD_A, driver)
        results[label] = (violations, driver.consistency_redirects,
                          ssd.controller.commands_completed)
    return results


def run_cache_policy_ablation():
    wl = MicroWorkloadConfig(10_000, 32 * 1024)
    trace = generate_micro_trace(wl, n_reads=2500, n_writes=2500, seed=5)
    out = {}
    for policy in ("write_through", "write_back"):
        config = SSD_A.with_overrides(write_cache_policy=policy)
        res = replay_on_device(
            trace, config, SSQDriver(1, 1), drain=False, measure_start_fraction=0.4
        )
        out[policy] = (res.read_tput_gbps, res.write_tput_gbps)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_consistency_check(benchmark):
    results = benchmark.pedantic(run_consistency_ablation, rounds=1, iterations=1)
    rows = [
        [label, viol, redirects, done]
        for label, (viol, redirects, done) in results.items()
    ]
    save_result(
        "ablation_consistency_check",
        format_table(
            ["SSQ variant", "ordering violations", "redirects", "completed"],
            rows,
            title="Ablation — §III-A consistency check (dependency-heavy workload, w=8)",
        ),
    )
    with_check = results["with check"]
    without = results["without check"]
    # The check eliminates ordering violations entirely...
    assert with_check[0] == 0
    # ...which the unchecked variant demonstrably produces at w=8.
    assert without[0] > 0
    # The redirect machinery was actually exercised.
    assert with_check[1] > 0
    # Throughput cost is bounded (completions within 20%).
    assert with_check[2] >= without[2] * 0.8


@pytest.mark.benchmark(group="ablation")
def test_ablation_cache_policy(benchmark):
    out = benchmark.pedantic(run_cache_policy_ablation, rounds=1, iterations=1)
    rows = [
        [policy, f"{r:.2f}", f"{w:.2f}"] for policy, (r, w) in out.items()
    ]
    save_result(
        "ablation_cache_policy",
        format_table(
            ["cache policy", "read Gbps", "write Gbps"],
            rows,
            title="Ablation — write-cache policy under a saturating load (SSD-A, w=1)",
        ),
    )
    # Write-back completes writes at cache speed: write throughput at
    # least matches write-through; reads do not collapse.
    assert out["write_back"][1] >= out["write_through"][1] * 0.9
    assert out["write_back"][0] > 0
