"""Fig. 10: workload-intensity sensitivity (light / moderate / heavy).

Paper: 1 initiator + 2 targets (SSD-A flash arrays).  Light = 22 KB @
60/ms, moderate = 32 KB @ 80/ms, heavy = 44 KB @ 100/ms per direction.
Expected shapes:

* light: no visible difference between DCQCN-only and DCQCN-SRC
  (shallow queues, WRR → RR);
* moderate & heavy: DCQCN-SRC gains write throughput during congestion
  and the gain grows with intensity.
"""

import pytest

from benchmarks.common import bench_workers, save_perf, save_result, trained_tpm
from repro.experiments.comparison import (
    INTENSITY_LEVELS,
    intensity_analysis_with_report,
)
from repro.experiments.tables import format_percent, format_table
from repro.ssd.config import SSD_A


def run_fig10():
    from repro.sim.units import MS

    tpm = trained_tpm(SSD_A)
    return intensity_analysis_with_report(
        tpm,
        ssd_config=SSD_A,
        span_ms=45.0,
        duration_ns=50 * MS,
        workers=bench_workers(),
    )


@pytest.mark.benchmark(group="fig10")
def test_fig10_intensity(benchmark):
    comparisons, report = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    benchmark.extra_info["perf"] = save_perf("fig10_intensity", report)

    rows = [
        [
            c.label,
            f"{c.only_gbps:.2f}",
            f"{c.src_gbps:.2f}",
            format_percent(c.improvement),
        ]
        for c in comparisons
    ]
    save_result(
        "fig10_intensity",
        format_table(
            ["Workload", "DCQCN-only Gbps", "DCQCN-SRC Gbps", "Improvement"],
            rows,
            title="Fig. 10 — workload intensity (trimmed aggregated throughput)",
        ),
    )
    by_label = {c.label: c for c in comparisons}
    for c in comparisons:
        benchmark.extra_info[c.label] = round(c.improvement, 3)

    # Light load: schemes indistinguishable (±10%).
    assert abs(by_label["light"].improvement) < 0.10
    # Heavier load: SRC never hurts and helps at the top intensity.
    assert by_label["heavy"].improvement > -0.05
    assert by_label["heavy"].improvement >= by_label["light"].improvement - 0.05
