"""Fig. 9 / §IV-E: dynamic throughput adjustment on SSD-B.

A schedule of synthetic congestion events (pause 6 Gbps → pause 3 Gbps
→ retrieval 6 Gbps → retrieval 10 Gbps, as drawn in the figure) drives
SRC on a saturating workload.  Expected shapes:

* each pause drops read throughput toward the demanded rate within
  ~10 ms; each retrieval recovers it;
* the §IV-E average control delay lands in the single-digit-ms range
  (paper: ≈7.3 ms).
"""

import numpy as np
import pytest

from benchmarks.common import save_result, trained_tpm
from repro.core.events import CongestionEvent, EventKind
from repro.experiments.dynamic import run_dynamic_control
from repro.experiments.tables import format_table
from repro.sim.units import MS
from repro.ssd.config import SSD_B
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace

EVENTS = [
    CongestionEvent(60 * MS, 6.0, EventKind.PAUSE),
    CongestionEvent(100 * MS, 3.0, EventKind.PAUSE),
    CongestionEvent(140 * MS, 6.0, EventKind.RETRIEVAL),
    CongestionEvent(170 * MS, 10.0, EventKind.RETRIEVAL),
]


def run_fig9():
    tpm = trained_tpm(SSD_B)
    wl = MicroWorkloadConfig(8_000, 32 * 1024)
    trace = generate_micro_trace(wl, n_reads=25_000, n_writes=25_000, seed=9)
    return run_dynamic_control(
        trace, SSD_B, tpm, EVENTS, window_ns=10 * MS, convergence_band=0.35
    )


def segment_mean(series, start_ms, end_ms):
    return float(series.gbps[start_ms:end_ms].mean())


@pytest.mark.benchmark(group="fig9")
def test_fig9_dynamic_control(benchmark):
    res = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    segments = [
        ("pre (20-60ms)", 20, 60, None),
        ("pause 6 Gbps (60-100ms)", 65, 100, 6.0),
        ("pause 3 Gbps (100-140ms)", 105, 140, 3.0),
        ("retrieval 6 Gbps (140-170ms)", 145, 170, 6.0),
        ("retrieval 10 Gbps (170-195ms)", 175, 195, 10.0),
    ]
    rows = []
    means = {}
    for label, a, b, demanded in segments:
        m = segment_mean(res.read_series, a, b)
        means[label] = m
        rows.append([label, f"{m:.2f}", "-" if demanded is None else f"{demanded:.1f}"])
    delay_rows = [
        [
            f"t={o.event.time_ns // MS}ms {o.event.kind.value} r={o.event.demanded_rate_gbps:.0f}",
            o.weight_ratio,
            "-" if o.convergence_delay_ns < 0 else f"{o.convergence_delay_ns / MS:.0f} ms",
        ]
        for o in res.outcomes
    ]
    mean_delay = res.mean_control_delay_ns() / MS
    save_result(
        "fig9_dynamic_control",
        format_table(
            ["segment", "mean read Gbps", "demanded"],
            rows,
            title="Fig. 9 — dynamic throughput adjustment (SSD-B)",
        )
        + "\n\n"
        + format_table(
            ["event", "chosen w", "convergence delay"],
            delay_rows,
            title=f"§IV-E — control delay (mean {mean_delay:.1f} ms; paper ≈7.3 ms)",
        ),
    )
    benchmark.extra_info["mean_control_delay_ms"] = round(mean_delay, 2)

    pre = means["pre (20-60ms)"]
    p3 = means["pause 3 Gbps (100-140ms)"]
    r10 = means["retrieval 10 Gbps (170-195ms)"]
    # Pauses bite: the 3 Gbps demand clearly reduces reads from baseline.
    assert p3 < pre * 0.8
    # Retrieval recovers toward the baseline.
    assert r10 > p3 * 1.3
    # The controller escalated the ratio for the deeper cut.
    assert res.outcomes[1].weight_ratio > res.outcomes[0].weight_ratio or (
        res.outcomes[1].weight_ratio > 1
    )
    # Control delay in the paper's regime (single-digit to ~15 ms).
    assert 0 <= mean_delay <= 25
