"""§IV-C closing claim: "Similar accuracy is also obtained for the
other two types of SSDs in Table II."

Trains and validates a Random-Forest TPM on SSD-B and SSD-C with the
same sweep recipe used for SSD-A and checks the shuffled-split R² stays
in the reliable band.
"""

import pytest

from benchmarks.common import DEFAULT_PLAN, bench_workers, save_result
from repro.core.sampling import TrainingSet, collect_training_set
from repro.core.tpm import ThroughputPredictionModel
from repro.experiments.tables import format_table
from repro.ml import train_test_split
from repro.ssd.config import SSD_B, SSD_C


def run_other_ssds():
    scores = {}
    for config in (SSD_B, SSD_C):
        ts = collect_training_set(config, DEFAULT_PLAN, workers=bench_workers())
        Xtr, Xva, ytr, yva = train_test_split(
            ts.X, ts.y, train_fraction=0.6, seed=42
        )
        tpm = ThroughputPredictionModel().fit(TrainingSet(X=Xtr, y=ytr))
        scores[config.name] = tpm.score(TrainingSet(X=Xva, y=yva))
    return scores


@pytest.mark.benchmark(group="tpm-ssds")
def test_tpm_accuracy_other_ssds(benchmark):
    scores = benchmark.pedantic(run_other_ssds, rounds=1, iterations=1)
    rows = [[name, f"{score:.2f}"] for name, score in scores.items()]
    save_result(
        "tpm_other_ssds",
        format_table(
            ["SSD", "Random-Forest R²"],
            rows,
            title="§IV-C — TPM accuracy on the other Table II devices "
            "(paper: 'similar accuracy')",
        ),
    )
    for name, score in scores.items():
        benchmark.extra_info[name] = round(score, 3)
        assert score > 0.75, (name, score)
