"""Benchmark-suite conftest: result collection and terminal reporting.

Each benchmark writes its paper-style table through
:func:`benchmarks.common.save_result`; this hook replays every table at
the end of the run so ``pytest benchmarks/ --benchmark-only | tee ...``
captures the reproduced tables alongside the timing numbers.
"""

import sys
from pathlib import Path

_ROOT = str(Path(__file__).parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from benchmarks import common  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tr = terminalreporter
    if common.SESSION_RESULTS:
        tr.section("reproduced paper tables and figures")
        for name, text in common.SESSION_RESULTS:
            tr.write_line("")
            tr.write_line(f"===== {name} =====")
            for line in text.splitlines():
                tr.write_line(line)
    if common.SESSION_PERF:
        tr.section("sweep perf counters (repro.parallel)")
        for name, perf in common.SESSION_PERF.items():
            tr.write_line(
                f"{name}: mode={perf['mode']} workers={perf['workers']} "
                f"cells={perf['n_cells']} wall={perf['wall_s']}s "
                f"events/s={perf['events_per_sec']} "
                f"util={perf['utilization']}"
            )
