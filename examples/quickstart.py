#!/usr/bin/env python3
"""Quickstart: feel SRC's control knob on one simulated SSD.

Generates a saturating mixed workload, replays it on a simulated SSD-A
through the paper's separate-submission-queue (SSQ) driver at several
write:read weight ratios, and prints the resulting read/write
throughput — the Fig. 5 effect in one loop.

Run:  python examples/quickstart.py
"""

from repro.experiments import replay_on_device
from repro.nvme import SSQDriver
from repro.ssd import SSD_A
from repro.workloads import MicroWorkloadConfig, generate_micro_trace


def main() -> None:
    # A heavy workload: 40 KB requests arriving every 10 µs in each
    # direction (≈32 Gbps offered per direction) — far beyond what the
    # device can serve, so its submission queues stay backlogged and the
    # WRR weights decide who gets the flash.
    workload = MicroWorkloadConfig(
        mean_interarrival_ns=10_000, mean_size_bytes=40 * 1024
    )
    trace = generate_micro_trace(workload, n_reads=4000, n_writes=4000, seed=42)
    print(f"workload: {len(trace)} requests over {trace.duration_ns / 1e6:.1f} ms")
    print(f"device  : {SSD_A.name} (QD={SSD_A.queue_depth}, "
          f"{SSD_A.n_chips} chips, page {SSD_A.page_bytes // 1024} KiB)")
    print()
    print(f"{'w':>3} | {'read Gbps':>9} | {'write Gbps':>10} | {'aggregate':>9}")
    print("-" * 44)

    for w in (1, 2, 4, 8, 16):
        driver = SSQDriver(read_weight=1, write_weight=w)
        result = replay_on_device(
            trace, SSD_A, driver, drain=False, measure_start_fraction=0.4
        )
        print(
            f"{w:>3} | {result.read_tput_gbps:>9.2f} | "
            f"{result.write_tput_gbps:>10.2f} | {result.aggregated_tput_gbps:>9.2f}"
        )

    print()
    print("Read throughput falls ~1/w while writes rise toward the flash")
    print("program capacity — the storage-side lever SRC uses to honor a")
    print("congested network's demanded sending rate without wasting the SSD.")


if __name__ == "__main__":
    main()
