#!/usr/bin/env python3
"""End-to-end congestion mitigation: DCQCN-only vs DCQCN-SRC.

Builds the full disaggregated-storage testbed — one initiator, two
targets with simulated SSD-A devices, a switched 40 Gbps fabric with
DCQCN congestion control — replays a VDI-like read-intensive workload,
and injects an in-cast congestion episode.  Runs the workload twice:

* **DCQCN-only** — the stock FIFO NVMe driver; during congestion, read
  data stalls in the target TXQ, completions back up into the CQ, the
  device's command slots wedge, and writes starve (the §II-B failure);
* **DCQCN-SRC** — the SSQ driver plus the SRC controller, which hears
  DCQCN's rate cuts, consults the throughput-prediction model, and
  re-weights the device toward writes.

Prints per-ms throughput for both schemes side by side (Fig. 7's view).

Run:  python examples/congestion_mitigation.py   (~2-4 minutes)
"""

import numpy as np

from repro.core import SamplingPlan, ThroughputPredictionModel, collect_training_set
from repro.experiments import BackgroundTraffic, TestbedConfig, run_testbed
from repro.sim.units import MS
from repro.ssd import SSD_A
from repro.workloads import MicroWorkloadConfig, generate_micro_trace

CONGESTION = (10 * MS, 45 * MS)
DURATION = 65 * MS


def vdi_like_trace(seed=11):
    """Read-intensive, 44 KB reads / 23 KB writes (§IV-D)."""
    reads = MicroWorkloadConfig(10_000, 44 * 1024)
    writes = MicroWorkloadConfig(30_000, 23 * 1024)
    return generate_micro_trace(reads, writes, n_reads=5500, n_writes=1800, seed=seed)


def train_tpm():
    print("training the throughput-prediction model on SSD-A "
          "(one-time sweep over workloads × weight ratios)...")
    plan = SamplingPlan(
        interarrival_ns=(10_000, 16_000, 25_000),
        size_bytes=(16 * 1024, 32 * 1024, 44 * 1024),
        weight_ratios=(1, 2, 3, 4, 6, 8, 12),
        read_write_mixes=(1.0, 2.0),
        duration_ns=50 * MS,
    )
    return ThroughputPredictionModel().fit(collect_training_set(SSD_A, plan))


def main() -> None:
    tpm = train_tpm()
    background = BackgroundTraffic(
        start_ns=CONGESTION[0], end_ns=CONGESTION[1], rate_gbps=10.0, n_hosts=14
    )

    print("running DCQCN-only (default FIFO NVMe driver)...")
    only = run_testbed(
        vdi_like_trace(),
        TestbedConfig(driver="default", background=background, ssd_config=SSD_A),
        duration_ns=DURATION,
    )
    print("running DCQCN-SRC (SSQ driver + SRC controller)...")
    src = run_testbed(
        vdi_like_trace(),
        TestbedConfig(
            driver="ssq", src_enabled=True, background=background, ssd_config=SSD_A
        ),
        tpm=tpm,
        duration_ns=DURATION,
    )

    print()
    header = (f"{'ms':>4} | {'only rd':>7} {'only wr':>7} {'only agg':>8} | "
              f"{'src rd':>7} {'src wr':>7} {'src agg':>8}")
    print(header)
    print("-" * len(header))
    for ms in range(0, DURATION // MS, 2):
        o_r, o_w = only.read_series.gbps[ms], only.write_series.gbps[ms]
        s_r, s_w = src.read_series.gbps[ms], src.write_series.gbps[ms]
        marker = "  <- congestion" if CONGESTION[0] <= ms * MS < CONGESTION[1] else ""
        print(f"{ms:>4} | {o_r:>7.2f} {o_w:>7.2f} {o_r + o_w:>8.2f} | "
              f"{s_r:>7.2f} {s_w:>7.2f} {s_r + s_w:>8.2f}{marker}")

    window = slice(20, 45)  # steady congestion, ms bins
    o_agg = (only.read_series.gbps[window] + only.write_series.gbps[window]).mean()
    s_agg = (src.read_series.gbps[window] + src.write_series.gbps[window]).mean()
    ratios = [a.weight_ratio for c in src.controllers for a in c.adjustments]
    print()
    print(f"aggregated throughput during congestion: "
          f"DCQCN-only {o_agg:.2f} Gbps vs DCQCN-SRC {s_agg:.2f} Gbps "
          f"({(s_agg / o_agg - 1) * 100:+.0f}%)")
    print(f"SRC adjustments: {len(ratios)}, weight ratios used: "
          f"{sorted(set(ratios))}")
    print(f"pause signals (CNPs at targets): only={len(only.pause_times_ns)}, "
          f"src={len(src.pause_times_ns)}")


if __name__ == "__main__":
    main()
