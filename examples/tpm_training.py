#!/usr/bin/env python3
"""Train and evaluate the throughput-prediction model (§III-B).

Collects training samples by sweeping micro workloads × weight ratios on
a black-box simulated SSD, compares the five regression families of
Table I on a shuffled 60/40 split, inspects the winning model's Breiman
feature importances, and demonstrates Algorithm 1's PredictWeightRatio.

Run:  python examples/tpm_training.py   (~1-2 minutes)
"""

from repro.core import (
    SamplingPlan,
    ThroughputPredictionModel,
    collect_training_set,
    predict_weight_ratio,
)
from repro.core.sampling import TrainingSet
from repro.ml import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    LinearRegression,
    PolynomialRegression,
    RandomForestRegressor,
    r2_score,
    train_test_split,
)
from repro.sim.units import MS
from repro.ssd import SSD_A
from repro.workloads import MicroWorkloadConfig, extract_features, generate_micro_trace


def main() -> None:
    plan = SamplingPlan(
        interarrival_ns=(10_000, 16_000, 25_000),
        size_bytes=(16 * 1024, 32 * 1024, 44 * 1024),
        weight_ratios=(1, 2, 3, 4, 6, 8, 12),
        read_write_mixes=(1.0, 2.0),
        duration_ns=50 * MS,
    )
    print(f"collecting {plan.n_cells()} training samples on {SSD_A.name}...")
    training = collect_training_set(
        SSD_A, plan, progress=lambda d, t: print(f"  {d}/{t}", end="\r")
    )
    print(f"\ncollected {len(training)} samples")

    Xtr, Xva, ytr, yva = train_test_split(
        training.X, training.y, train_fraction=0.6, seed=42
    )
    print("\nTable I — regression accuracy (R² on the held-out 40%):")
    models = [
        ("Linear Regression", LinearRegression()),
        ("Polynomial Regression", PolynomialRegression(degree=2)),
        ("K-Nearest Neighbor", KNeighborsRegressor(5, weights="distance")),
        ("Decision Tree Regression", DecisionTreeRegressor(seed=0)),
        ("Random Forest Regression", RandomForestRegressor(40, seed=0)),
    ]
    for name, model in models:
        model.fit(Xtr, ytr)
        print(f"  {name:<26} {r2_score(yva, model.predict(Xva)):.2f}")

    # The paper adopts the Random Forest; wrap it as the TPM.
    tpm = ThroughputPredictionModel().fit(TrainingSet(X=Xtr, y=ytr))
    print("\ntop feature importances (paper: flow speed ≈ 0.39 combined):")
    for name, value in sorted(tpm.feature_importances().items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {name:<28} {value:.3f}")
    print(f"  combined flow-speed importance: {tpm.flow_speed_importance():.3f}")

    # Algorithm 1 in action: pick w for a demanded sending rate.
    workload = MicroWorkloadConfig(10_000, 40 * 1024)
    trace = generate_micro_trace(workload, n_reads=3000, n_writes=3000, seed=7)
    features = extract_features(trace)
    base_read, base_write = tpm.predict(features, 1)
    print(f"\npredicted throughput at w=1: read {base_read:.2f}, "
          f"write {base_write:.2f} Gbps")
    for demanded in (base_read * 0.6, base_read * 0.3, base_read * 0.15):
        w = predict_weight_ratio(tpm, demanded, features)
        predicted = tpm.predict_read(features, w)
        print(f"  demanded rate {demanded:.2f} Gbps -> w={w} "
              f"(predicted read {predicted:.2f} Gbps)")


if __name__ == "__main__":
    main()
