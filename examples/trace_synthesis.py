#!/usr/bin/env python3
"""Synthetic trace generation from real-trace statistics (§IV-A).

The paper regenerates SNIA repository traces (Fujitsu VDI, Tencent CBS)
by fitting a two-phase MMPP to their summary statistics with the
KPC-Toolbox.  This example runs the same pipeline end to end:

1. fit an MMPP(2) to a target (mean, SCV, lag-1 autocorrelation);
2. synthesise bursty read+write traces from the built-in VDI and CBS
   profiles;
3. verify the synthetic statistics against the profile targets;
4. replay the VDI-like trace on a simulated SSD.

Run:  python examples/trace_synthesis.py
"""

from repro.experiments import replay_on_device
from repro.nvme import SSQDriver
from repro.ssd import SSD_A
from repro.workloads import (
    FUJITSU_VDI,
    TENCENT_CBS,
    fit_mmpp2,
    synthesize_from_profile,
    trace_summary,
)


def show_fit() -> None:
    print("MMPP(2) moment matching:")
    targets = [(10_000, 4.0, 0.25), (25_000, 6.0, 0.30), (12_000, 1.0, 0.0)]
    for mean, scv, rho in targets:
        m = fit_mmpp2(mean, scv, rho)
        print(
            f"  target (mean={mean}ns, SCV={scv}, rho1={rho})  ->  "
            f"fitted (mean={m.interarrival_mean():.0f}, "
            f"SCV={m.interarrival_scv():.2f}, rho1={m.autocorrelation(1):.3f})"
        )


def show_profile(profile, n_reads, n_writes) -> None:
    trace = synthesize_from_profile(profile, n_reads=n_reads, n_writes=n_writes, seed=3)
    s = trace_summary(trace)
    print(f"\n{profile.name}: {len(trace)} requests, "
          f"read ratio {s.read_ratio:.2f}")
    print(f"  read : size {s.read_size.mean / 1024:6.1f} KiB "
          f"(target {profile.read.mean_size_bytes / 1024:.0f}), "
          f"inter-arrival SCV {s.read_interarrival.scv:.1f} "
          f"(target {profile.read.interarrival_scv})")
    print(f"  write: size {s.write_size.mean / 1024:6.1f} KiB "
          f"(target {profile.write.mean_size_bytes / 1024:.0f}), "
          f"inter-arrival SCV {s.write_interarrival.scv:.1f} "
          f"(target {profile.write.interarrival_scv})")
    return trace


def main() -> None:
    show_fit()
    vdi = show_profile(FUJITSU_VDI, n_reads=4000, n_writes=2000)
    show_profile(TENCENT_CBS, n_reads=1500, n_writes=3000)

    print(f"\nreplaying the {FUJITSU_VDI.name} synthetic trace on {SSD_A.name}...")
    result = replay_on_device(
        vdi, SSD_A, SSQDriver(1, 1), drain=False, measure_start_fraction=0.4
    )
    print(f"  device throughput: read {result.read_tput_gbps:.2f} Gbps, "
          f"write {result.write_tput_gbps:.2f} Gbps "
          f"({result.reads_completed}r/{result.writes_completed}w completed)")


if __name__ == "__main__":
    main()
