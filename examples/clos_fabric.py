#!/usr/bin/env python3
"""Drive the RDMA network simulator directly: Clos fabric + DCQCN.

Builds a (scaled) Clos topology like the paper's evaluation fabric,
starts an in-cast traffic pattern toward one victim host, and watches
DCQCN react: ECN marks at the congested switch, CNPs back to the
senders, per-flow rate cuts, and recovery after the burst ends.

Run:  python examples/clos_fabric.py
"""

from repro.net import build_clos
from repro.sim import MS, Simulator


def main() -> None:
    sim = Simulator()
    # A 2-pod slice of the paper's fabric: 2 leaves + 2 ToRs per pod,
    # 4 hosts per ToR (the full 4x(2+4+64) builder is build_clos()'s
    # default and used in the network test-suite).
    net = build_clos(
        sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=4,
        rate_gbps=40.0,
    )
    print(f"fabric: {len(net.hosts)} hosts, {len(net.switches)} switches")

    victim = "h0_0_0"
    senders = ["h0_1_0", "h1_0_0", "h1_1_0", "h0_0_1", "h1_0_1"]
    received = {"bytes": 0}
    net.hosts[victim].endpoint = (
        lambda p, src, size: received.__setitem__("bytes", received["bytes"] + size)
    )

    burst_end = 4 * MS

    def make_feeder(name):
        nic = net.hosts[name]

        def feed():
            if sim.now >= burst_end:
                return
            nic.send_message(victim, 64 * 1024)  # ~52 Gbps offered each
            sim.schedule(10_000, feed)

        return feed

    for name in senders:
        sim.schedule_at(0, make_feeder(name))

    # Sample flow rates every ms.
    print(f"\n{'ms':>3} | per-sender DCQCN rate (Gbps)")

    def probe():
        rates = [
            f"{net.hosts[s].flows[victim].rate_control.current_rate_gbps:5.1f}"
            for s in senders
            if victim in net.hosts[s].flows
        ]
        print(f"{sim.now // MS:>3} | {'  '.join(rates)}")
        if sim.now < 8 * MS:
            sim.schedule(MS, probe)

    sim.schedule(MS, probe)
    sim.run(until=8 * MS)

    tor = net.switches["tor0_0"]
    print(f"\nvictim received {received['bytes'] / 1e6:.1f} MB "
          f"({received['bytes'] * 8 / (8 * MS):.1f} Gbps average)")
    print(f"congested ToR: {tor.ecn_marks} ECN marks, "
          f"{tor.pauses_sent} PFC pauses, {tor.packets_dropped} drops")
    print(f"CNPs received by senders: "
          f"{sum(len(net.hosts[s].cnp_log) for s in senders)}")
    print("\nRates collapse toward the fair share during the burst and "
          "recover after it ends at 4 ms.")


if __name__ == "__main__":
    main()
