"""Root conftest: make ``src/`` importable without installation.

Lets ``pytest tests/`` and ``pytest benchmarks/`` run in a fresh checkout
even when an editable install is unavailable (e.g. offline environments
without the ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
