"""Per-device feature scaling (flash-array view of a target workload)."""

import pytest

from repro.workloads.features import extract_features
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace


def features():
    wl = MicroWorkloadConfig(10_000, 32 * 1024)
    return extract_features(generate_micro_trace(wl, n_reads=500, n_writes=500, seed=1))


def test_identity_for_single_device():
    f = features()
    assert f.per_device(1) is f


def test_scaling_laws():
    f = features()
    g = f.per_device(4)
    assert g.read_mean_interarrival_ns == pytest.approx(f.read_mean_interarrival_ns * 4)
    assert g.write_mean_interarrival_ns == pytest.approx(f.write_mean_interarrival_ns * 4)
    assert g.read_flow_speed == pytest.approx(f.read_flow_speed / 4)
    assert g.write_flow_speed == pytest.approx(f.write_flow_speed / 4)


def test_preserved_fields():
    f = features()
    g = f.per_device(3)
    assert g.read_mean_size_bytes == f.read_mean_size_bytes
    assert g.write_mean_size_bytes == f.write_mean_size_bytes
    assert g.read_write_ratio == f.read_write_ratio
    assert g.read_size_scv == f.read_size_scv


def test_validation():
    with pytest.raises(ValueError):
        features().per_device(0)


def test_flow_conservation():
    """n devices' flow speeds sum back to the target's total."""
    f = features()
    g = f.per_device(5)
    assert g.read_flow_speed * 5 == pytest.approx(f.read_flow_speed)
