"""Micro-trace generation: distributions, determinism, alignment."""

import numpy as np
import pytest

from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.request import OpType


def test_config_validation():
    with pytest.raises(ValueError):
        MicroWorkloadConfig(0, 1000)
    with pytest.raises(ValueError):
        MicroWorkloadConfig(1000, 0)
    with pytest.raises(ValueError):
        MicroWorkloadConfig(1000, 1000, size_align_bytes=0)
    with pytest.raises(ValueError):
        MicroWorkloadConfig(1000, 1000, sequential_fraction=1.5)


def test_arrival_flow_speed():
    cfg = MicroWorkloadConfig(10_000, 20_000)
    assert cfg.arrival_flow_speed == pytest.approx(2.0)


def test_counts_and_ops():
    cfg = MicroWorkloadConfig(5_000, 8192)
    t = generate_micro_trace(cfg, n_reads=50, n_writes=30, seed=1)
    assert len(t) == 80
    assert len(t.reads()) == 50
    assert len(t.writes()) == 30


def test_determinism():
    cfg = MicroWorkloadConfig(5_000, 8192)
    a = generate_micro_trace(cfg, n_reads=40, n_writes=40, seed=3)
    b = generate_micro_trace(cfg, n_reads=40, n_writes=40, seed=3)
    assert [(r.arrival_ns, r.lba, r.size_bytes) for r in a] == [
        (r.arrival_ns, r.lba, r.size_bytes) for r in b
    ]


def test_different_seeds_differ():
    cfg = MicroWorkloadConfig(5_000, 8192)
    a = generate_micro_trace(cfg, n_reads=40, n_writes=0, seed=3)
    b = generate_micro_trace(cfg, n_reads=40, n_writes=0, seed=4)
    assert [r.arrival_ns for r in a] != [r.arrival_ns for r in b]


def test_sizes_aligned_and_positive():
    cfg = MicroWorkloadConfig(5_000, 10_000, size_align_bytes=4096)
    t = generate_micro_trace(cfg, n_reads=200, n_writes=0, seed=5)
    sizes = t.sizes()
    assert np.all(sizes % 4096 == 0)
    assert np.all(sizes >= 4096)


def test_mean_interarrival_close_to_target():
    cfg = MicroWorkloadConfig(10_000, 8192)
    t = generate_micro_trace(cfg, n_reads=3000, n_writes=0, seed=6)
    mean = t.interarrivals().mean()
    assert mean == pytest.approx(10_000, rel=0.1)


def test_mean_size_close_to_target():
    cfg = MicroWorkloadConfig(10_000, 32 * 1024, size_align_bytes=512)
    t = generate_micro_trace(cfg, n_reads=3000, n_writes=0, seed=6)
    # Alignment rounds up by ~256 on average.
    assert t.sizes().mean() == pytest.approx(32 * 1024, rel=0.1)


def test_interarrival_scv_near_one_for_exponential():
    cfg = MicroWorkloadConfig(10_000, 8192)
    t = generate_micro_trace(cfg, n_reads=5000, n_writes=0, seed=8)
    inter = t.interarrivals().astype(float)
    scv = inter.var() / inter.mean() ** 2
    assert scv == pytest.approx(1.0, rel=0.15)


def test_sequential_fraction_produces_contiguous_runs():
    cfg = MicroWorkloadConfig(5_000, 8192, sequential_fraction=1.0)
    t = generate_micro_trace(cfg, n_reads=20, n_writes=0, seed=9)
    reqs = sorted(t.requests, key=lambda r: r.arrival_ns)
    for prev, cur in zip(reqs, reqs[1:]):
        assert cur.lba == prev.lba_end


def test_lbas_within_address_space():
    cfg = MicroWorkloadConfig(5_000, 8192, address_space_sectors=1000)
    t = generate_micro_trace(cfg, n_reads=200, n_writes=200, seed=10)
    assert all(0 <= r.lba < 1000 for r in t)


def test_write_config_defaults_to_read_config():
    cfg = MicroWorkloadConfig(5_000, 8192)
    t = generate_micro_trace(cfg, None, n_reads=500, n_writes=500, seed=11)
    r_mean = t.reads().sizes().mean()
    w_mean = t.writes().sizes().mean()
    assert r_mean == pytest.approx(w_mean, rel=0.2)


def test_empty_generation():
    cfg = MicroWorkloadConfig(5_000, 8192)
    assert len(generate_micro_trace(cfg, n_reads=0, n_writes=0)) == 0


def test_negative_counts_rejected():
    cfg = MicroWorkloadConfig(5_000, 8192)
    with pytest.raises(ValueError):
        generate_micro_trace(cfg, n_reads=-1)


def test_start_offset():
    cfg = MicroWorkloadConfig(5_000, 8192)
    t = generate_micro_trace(cfg, n_reads=10, n_writes=0, seed=1, start_ns=1_000_000)
    assert all(r.arrival_ns >= 1_000_000 for r in t)
