"""MMPP(2) analytics, fitting, and generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.mmpp import (
    MMPP2,
    fit_mmpp2,
    generate_mmpp_trace,
    lognormal_params,
)
from repro.workloads.request import OpType


def poissonish():
    """An MMPP whose two phases are identical ⇒ a plain Poisson process."""
    return MMPP2(lambda1=1e-4, lambda2=1e-4, r12=1e-6, r21=1e-6)


def bursty():
    return MMPP2(lambda1=5e-4, lambda2=2e-5, r12=1e-6, r21=1e-6)


class TestAnalytics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MMPP2(0, 1, 1, 1)
        with pytest.raises(ValueError):
            MMPP2(1, 1, -1, 1)

    def test_stationary_phase_sums_to_one(self):
        pi = bursty().stationary_phase
        assert pi.sum() == pytest.approx(1.0)
        assert (pi > 0).all()

    def test_poisson_degenerate_mean(self):
        m = poissonish()
        assert m.interarrival_mean() == pytest.approx(1e4, rel=1e-6)

    def test_poisson_degenerate_scv_is_one(self):
        assert poissonish().interarrival_scv() == pytest.approx(1.0, rel=1e-6)

    def test_poisson_degenerate_autocorr_is_zero(self):
        assert poissonish().autocorrelation(1) == pytest.approx(0.0, abs=1e-9)

    def test_bursty_scv_above_one(self):
        assert bursty().interarrival_scv() > 1.5

    def test_bursty_autocorr_positive(self):
        assert bursty().autocorrelation(1) > 0.0

    def test_autocorr_decays_with_lag(self):
        m = bursty()
        rhos = [m.autocorrelation(k) for k in (1, 2, 4, 8)]
        assert all(a >= b - 1e-12 for a, b in zip(rhos, rhos[1:]))

    def test_mean_rate_matches_inverse_mean_for_poisson(self):
        m = poissonish()
        assert m.mean_rate * m.interarrival_mean() == pytest.approx(1.0, rel=1e-6)

    def test_moment_validation(self):
        with pytest.raises(ValueError):
            bursty().interarrival_moment(0)
        with pytest.raises(ValueError):
            bursty().autocorrelation(0)


class TestFitting:
    def test_fit_matches_mean_and_scv(self):
        m = fit_mmpp2(12_000, 3.0, 0.2)
        assert m.interarrival_mean() == pytest.approx(12_000, rel=0.02)
        assert m.interarrival_scv() == pytest.approx(3.0, rel=0.05)
        assert m.autocorrelation(1) == pytest.approx(0.2, abs=0.05)

    def test_fit_clamps_low_scv_to_poisson(self):
        m = fit_mmpp2(10_000, 0.5)
        assert m.interarrival_scv() == pytest.approx(1.0, abs=0.05)

    def test_fit_clamps_infeasible_autocorr(self):
        # rho_max = (scv-1)/(2 scv) = 0.25 for scv=2.
        m = fit_mmpp2(10_000, 2.0, 0.9)
        assert m.autocorrelation(1) <= 0.26

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_mmpp2(0, 2.0)
        with pytest.raises(ValueError):
            fit_mmpp2(1000, -1.0)

    @settings(deadline=None, max_examples=15)
    @given(
        st.floats(min_value=1_000, max_value=100_000),
        st.floats(min_value=1.5, max_value=8.0),
    )
    def test_fit_mean_scv_property(self, mean, scv_target):
        m = fit_mmpp2(mean, scv_target)
        assert m.interarrival_mean() == pytest.approx(mean, rel=0.05)
        assert m.interarrival_scv() == pytest.approx(scv_target, rel=0.1)


class TestSampling:
    def test_sample_mean_matches_analytic(self):
        m = fit_mmpp2(10_000, 4.0, 0.2)
        rng = np.random.default_rng(0)
        x = m.sample_interarrivals(40_000, rng)
        assert x.mean() == pytest.approx(10_000, rel=0.1)

    def test_sample_scv_matches_analytic(self):
        m = fit_mmpp2(10_000, 4.0, 0.2)
        rng = np.random.default_rng(1)
        x = m.sample_interarrivals(60_000, rng)
        assert x.var() / x.mean() ** 2 == pytest.approx(4.0, rel=0.25)

    def test_sample_counts(self):
        rng = np.random.default_rng(2)
        assert bursty().sample_interarrivals(0, rng).size == 0
        with pytest.raises(ValueError):
            bursty().sample_interarrivals(-1, rng)


class TestLognormal:
    def test_params_recover_mean_scv(self):
        mu, sigma = lognormal_params(32_768, 2.0)
        rng = np.random.default_rng(3)
        x = rng.lognormal(mu, sigma, 300_000)
        assert x.mean() == pytest.approx(32_768, rel=0.05)
        assert x.var() / x.mean() ** 2 == pytest.approx(2.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            lognormal_params(0, 1)
        with pytest.raises(ValueError):
            lognormal_params(100, -1)


class TestTraceGeneration:
    def test_generate_basic(self):
        m = fit_mmpp2(10_000, 3.0)
        t = generate_mmpp_trace(
            m, n_requests=500, op=OpType.READ, mean_size_bytes=16_384, seed=4
        )
        assert len(t) == 500
        assert all(r.is_read for r in t)
        assert t.interarrivals().mean() == pytest.approx(10_000, rel=0.3)

    def test_sizes_aligned(self):
        m = fit_mmpp2(10_000, 3.0)
        t = generate_mmpp_trace(
            m, n_requests=100, op=OpType.WRITE, mean_size_bytes=10_000,
            size_align_bytes=4096, seed=5,
        )
        assert all(r.size_bytes % 4096 == 0 for r in t)

    def test_deterministic_with_seed(self):
        m = fit_mmpp2(10_000, 3.0)
        a = generate_mmpp_trace(m, n_requests=50, op=OpType.READ, mean_size_bytes=8192, seed=6)
        b = generate_mmpp_trace(m, n_requests=50, op=OpType.READ, mean_size_bytes=8192, seed=6)
        assert [r.arrival_ns for r in a] == [r.arrival_ns for r in b]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_mmpp_trace(
                bursty(), n_requests=-1, op=OpType.READ, mean_size_bytes=8192
            )
