"""Trace profiles and MMPP-based synthesis."""

import pytest

from repro.workloads.profiles import (
    FUJITSU_VDI,
    TENCENT_CBS,
    DirectionProfile,
    TraceProfile,
    synthesize_from_profile,
)
from repro.workloads.stats import trace_summary


def test_builtin_profiles_shape():
    # §IV-D: VDI is read-intensive with 44 KB reads / 23 KB writes.
    assert FUJITSU_VDI.read.mean_size_bytes == 44 * 1024
    assert FUJITSU_VDI.write.mean_size_bytes == 23 * 1024
    assert FUJITSU_VDI.read.mean_interarrival_ns < FUJITSU_VDI.write.mean_interarrival_ns
    # CBS is write-heavy.
    assert TENCENT_CBS.write.mean_interarrival_ns < TENCENT_CBS.read.mean_interarrival_ns


def test_direction_profile_validation():
    with pytest.raises(ValueError):
        DirectionProfile(0, 1, 0, 1000, 1)
    with pytest.raises(ValueError):
        DirectionProfile(1000, -1, 0, 1000, 1)


def test_synthesize_counts_and_directions():
    t = synthesize_from_profile(FUJITSU_VDI, n_reads=300, n_writes=150, seed=1)
    assert len(t.reads()) == 300
    assert len(t.writes()) == 150


def test_synthesize_matches_profile_statistics():
    t = synthesize_from_profile(FUJITSU_VDI, n_reads=4000, n_writes=2000, seed=2)
    s = trace_summary(t)
    assert s.read_size.mean == pytest.approx(FUJITSU_VDI.read.mean_size_bytes, rel=0.15)
    assert s.write_size.mean == pytest.approx(FUJITSU_VDI.write.mean_size_bytes, rel=0.15)
    assert s.read_interarrival.mean == pytest.approx(
        FUJITSU_VDI.read.mean_interarrival_ns, rel=0.25
    )
    # Burstiness survives synthesis: SCV well above Poisson.
    assert s.read_interarrival.scv > 2.0


def test_synthesize_deterministic():
    a = synthesize_from_profile(TENCENT_CBS, n_reads=50, n_writes=50, seed=3)
    b = synthesize_from_profile(TENCENT_CBS, n_reads=50, n_writes=50, seed=3)
    assert [r.arrival_ns for r in a] == [r.arrival_ns for r in b]


def test_synthesize_empty():
    t = synthesize_from_profile(FUJITSU_VDI, n_reads=0, n_writes=0, seed=4)
    assert len(t) == 0


def test_synthesize_validation():
    with pytest.raises(ValueError):
        synthesize_from_profile(FUJITSU_VDI, n_reads=-1, n_writes=0)


def test_custom_profile():
    p = TraceProfile(
        name="custom",
        read=DirectionProfile(20_000, 2.0, 0.1, 8192, 1.0),
        write=DirectionProfile(40_000, 2.0, 0.1, 4096, 1.0),
    )
    t = synthesize_from_profile(p, n_reads=1000, n_writes=500, seed=5)
    s = trace_summary(t)
    assert s.read_size.mean == pytest.approx(8192, rel=0.25)
