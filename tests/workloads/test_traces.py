"""Trace container: ordering, selection, persistence, merging."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.request import IORequest, OpType
from repro.workloads.traces import Trace, merge_traces


def make(arrivals, op=OpType.READ, size=4096):
    return Trace(
        IORequest(arrival_ns=t, op=op, lba=i * 100, size_bytes=size)
        for i, t in enumerate(arrivals)
    )


def test_trace_sorts_by_arrival():
    t = make([30, 10, 20])
    assert [r.arrival_ns for r in t] == [10, 20, 30]


def test_len_and_getitem():
    t = make([1, 2, 3])
    assert len(t) == 3
    assert t[0].arrival_ns == 1


def test_reads_writes_partition():
    reads = make([1, 3], op=OpType.READ)
    writes = make([2], op=OpType.WRITE)
    merged = merge_traces([reads, writes])
    assert len(merged.reads()) == 2
    assert len(merged.writes()) == 1
    assert merged.read_ratio() == pytest.approx(2 / 3)


def test_read_ratio_empty_trace():
    assert Trace([]).read_ratio() == 0.0


def test_window_is_half_open():
    t = make([10, 20, 30])
    w = t.window(10, 30)
    assert [r.arrival_ns for r in w] == [10, 20]


def test_window_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        make([1]).window(10, 5)


def test_interarrivals():
    t = make([10, 25, 45])
    assert list(t.interarrivals()) == [15, 20]
    assert make([5]).interarrivals().size == 0


def test_duration():
    assert make([10, 50]).duration_ns == 40
    assert make([10]).duration_ns == 0
    assert Trace([]).duration_ns == 0


def test_total_bytes():
    t = make([1, 2], size=1000)
    assert t.total_bytes() == 2000
    assert Trace([]).total_bytes() == 0


def test_save_load_round_trip(tmp_path):
    t = merge_traces([make([5, 15], op=OpType.READ), make([10], op=OpType.WRITE, size=8192)])
    path = tmp_path / "trace.csv"
    t.save(path)
    loaded = Trace.load(path)
    assert len(loaded) == len(t)
    for a, b in zip(t, loaded):
        assert (a.arrival_ns, a.op, a.lba, a.size_bytes) == (
            b.arrival_ns,
            b.op,
            b.lba,
            b.size_bytes,
        )


def test_load_rejects_non_trace_file(tmp_path):
    path = tmp_path / "bogus.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError, match="not a trace file"):
        Trace.load(path)


def test_merge_preserves_all_and_sorts():
    a, b = make([30, 10]), make([20])
    merged = merge_traces([a, b])
    assert [r.arrival_ns for r in merged] == [10, 20, 30]


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=0, max_size=100))
def test_arrivals_always_sorted_property(arrivals):
    t = make(arrivals)
    arr = t.arrivals()
    assert np.all(np.diff(arr) >= 0)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)
def test_window_subset_property(arrivals, a, b):
    lo, hi = min(a, b), max(a, b)
    t = make(arrivals)
    w = t.window(lo, hi)
    assert all(lo <= r.arrival_ns < hi for r in w)
    assert len(w) == sum(1 for x in arrivals if lo <= x < hi)
