"""IORequest semantics: validation, overlap, latency accessors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.request import IORequest, OpType


def req(lba=0, size=4096, op=OpType.READ, arrival=0):
    return IORequest(arrival_ns=arrival, op=op, lba=lba, size_bytes=size)


def test_optype_read_flag():
    assert OpType.READ.is_read
    assert not OpType.WRITE.is_read


def test_request_ids_are_unique():
    assert req().req_id != req().req_id


def test_validation_rejects_bad_fields():
    with pytest.raises(ValueError):
        req(size=0)
    with pytest.raises(ValueError):
        req(lba=-1)
    with pytest.raises(ValueError):
        IORequest(arrival_ns=-1, op=OpType.READ, lba=0, size_bytes=1)


def test_lba_end_rounds_up_to_sectors():
    # 1 byte still occupies one 512-byte sector.
    assert req(lba=10, size=1).lba_end == 11
    assert req(lba=10, size=512).lba_end == 11
    assert req(lba=10, size=513).lba_end == 12


def test_overlap_detection():
    a = req(lba=0, size=4096)  # sectors [0, 8)
    b = req(lba=7, size=512)  # sector 7
    c = req(lba=8, size=512)  # sector 8
    assert a.overlaps(b)
    assert b.overlaps(a)
    assert not a.overlaps(c)
    assert not c.overlaps(a)


def test_overlap_is_reflexive():
    a = req(lba=100, size=1024)
    assert a.overlaps(a)


def test_latency_accessors_require_completion():
    r = req()
    with pytest.raises(ValueError):
        _ = r.total_latency_ns
    with pytest.raises(ValueError):
        _ = r.device_latency_ns
    r.fetch_ns, r.device_done_ns, r.complete_ns = 10, 30, 50
    assert r.device_latency_ns == 20
    assert r.total_latency_ns == 50


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=10**6),
)
def test_overlap_symmetry_property(lba_a, size_a, lba_b, size_b):
    a, b = req(lba=lba_a, size=size_a), req(lba=lba_b, size=size_b)
    assert a.overlaps(b) == b.overlaps(a)


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**7))
def test_lba_end_covers_size_property(lba, size):
    r = req(lba=lba, size=size)
    covered_bytes = (r.lba_end - r.lba) * 512
    assert covered_bytes >= size
    assert covered_bytes - size < 512
