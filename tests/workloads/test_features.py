"""Feature extraction (the Ch vector)."""

import numpy as np
import pytest

from repro.workloads.features import (
    CH_FEATURE_NAMES,
    FEATURE_NAMES,
    extract_features,
)
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.request import IORequest, OpType
from repro.workloads.traces import Trace


def test_feature_order_is_frozen():
    assert FEATURE_NAMES[-1] == "weight_ratio"
    assert FEATURE_NAMES[:-1] == CH_FEATURE_NAMES
    assert "read_flow_speed" in CH_FEATURE_NAMES
    assert len(set(FEATURE_NAMES)) == len(FEATURE_NAMES)


def test_vector_shape_and_order():
    t = generate_micro_trace(MicroWorkloadConfig(5_000, 8192), n_reads=100, n_writes=100, seed=1)
    f = extract_features(t)
    arr = f.to_array()
    assert arr.shape == (len(CH_FEATURE_NAMES),)
    assert arr[0] == f.read_write_ratio


def test_with_weight_appends_ratio():
    t = generate_micro_trace(MicroWorkloadConfig(5_000, 8192), n_reads=50, n_writes=50, seed=2)
    row = extract_features(t).with_weight(4)
    assert row.shape == (len(FEATURE_NAMES),)
    assert row[-1] == 4.0


def test_with_weight_rejects_below_one():
    t = generate_micro_trace(MicroWorkloadConfig(5_000, 8192), n_reads=10, n_writes=10, seed=3)
    with pytest.raises(ValueError):
        extract_features(t).with_weight(0.5)


def test_read_write_ratio():
    reqs = [
        IORequest(arrival_ns=i, op=OpType.READ, lba=i, size_bytes=512) for i in range(6)
    ] + [IORequest(arrival_ns=i, op=OpType.WRITE, lba=100 + i, size_bytes=512) for i in range(3)]
    f = extract_features(Trace(reqs))
    assert f.read_write_ratio == pytest.approx(2.0)


def test_ratio_with_no_writes_falls_back_to_read_count():
    reqs = [IORequest(arrival_ns=i, op=OpType.READ, lba=i, size_bytes=512) for i in range(4)]
    f = extract_features(Trace(reqs))
    assert f.read_write_ratio == 4.0


def test_flow_speed_with_window():
    # 10 reads of 1000 B in a 10_000 ns window = 1 byte/ns.
    reqs = [
        IORequest(arrival_ns=i * 100, op=OpType.READ, lba=i * 10, size_bytes=1000)
        for i in range(10)
    ]
    f = extract_features(Trace(reqs), window_ns=10_000)
    assert f.read_flow_speed == pytest.approx(1.0)
    assert f.write_flow_speed == 0.0


def test_flow_speed_without_window_uses_span():
    reqs = [
        IORequest(arrival_ns=t, op=OpType.READ, lba=t, size_bytes=500)
        for t in (0, 500, 1000)
    ]
    f = extract_features(Trace(reqs))
    assert f.read_flow_speed == pytest.approx(1500 / 1000)


def test_empty_trace_gives_zero_features():
    f = extract_features(Trace([]))
    assert np.all(f.to_array() == 0.0)


def test_window_validation():
    with pytest.raises(ValueError):
        extract_features(Trace([]), window_ns=0)


def test_mean_fields_match_workload():
    cfg = MicroWorkloadConfig(10_000, 32 * 1024, size_align_bytes=512)
    t = generate_micro_trace(cfg, n_reads=3000, n_writes=3000, seed=4)
    f = extract_features(t)
    assert f.read_mean_interarrival_ns == pytest.approx(10_000, rel=0.1)
    assert f.read_mean_size_bytes == pytest.approx(32 * 1024, rel=0.1)
    assert f.write_mean_size_bytes == pytest.approx(32 * 1024, rel=0.1)
    # Exponential inter-arrivals ⇒ SCV ≈ 1.
    assert f.read_interarrival_scv == pytest.approx(1.0, rel=0.2)
