"""Trace statistics: SCV, skewness, autocorrelation, summaries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.request import IORequest, OpType
from repro.workloads.stats import (
    SeriesSummary,
    autocorrelation,
    scv,
    skewness,
    trace_summary,
)
from repro.workloads.traces import Trace


class TestScv:
    def test_constant_series_is_zero(self):
        assert scv(np.full(100, 7.0)) == 0.0

    def test_exponential_is_one(self):
        rng = np.random.default_rng(0)
        x = rng.exponential(5.0, size=200_000)
        assert scv(x) == pytest.approx(1.0, rel=0.02)

    def test_degenerate_inputs(self):
        assert scv(np.array([])) == 0.0
        assert scv(np.array([3.0])) == 0.0
        assert scv(np.array([0.0, 0.0])) == 0.0  # zero mean

    def test_known_value(self):
        x = np.array([1.0, 3.0])  # mean 2, var 1
        assert scv(x) == pytest.approx(0.25)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=200))
    def test_nonnegative_property(self, xs):
        assert scv(np.array(xs)) >= 0.0

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=100),
        st.floats(min_value=0.1, max_value=100),
    )
    def test_scale_invariance_property(self, xs, k):
        x = np.array(xs)
        assert scv(x * k) == pytest.approx(scv(x), rel=1e-6, abs=1e-9)


class TestSkewness:
    def test_symmetric_is_zero(self):
        x = np.array([-2.0, -1.0, 0.0, 1.0, 2.0])
        assert skewness(x) == pytest.approx(0.0, abs=1e-12)

    def test_right_skewed_positive(self):
        rng = np.random.default_rng(1)
        assert skewness(rng.exponential(1.0, 100_000)) > 1.5

    def test_degenerate(self):
        assert skewness(np.array([1.0, 2.0])) == 0.0
        assert skewness(np.full(10, 3.0)) == 0.0


class TestAutocorrelation:
    def test_iid_near_zero(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=100_000)
        assert autocorrelation(x, 1) == pytest.approx(0.0, abs=0.02)

    def test_alternating_is_negative(self):
        x = np.array([1.0, -1.0] * 500)
        assert autocorrelation(x, 1) == pytest.approx(-1.0, rel=0.01)

    def test_trend_is_positive(self):
        x = np.arange(1000, dtype=float)
        assert autocorrelation(x, 1) > 0.99

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            autocorrelation(np.arange(10.0), 0)

    def test_degenerate(self):
        assert autocorrelation(np.array([1.0, 2.0]), 1) == 0.0
        assert autocorrelation(np.full(100, 5.0), 1) == 0.0


class TestSummaries:
    def test_series_summary_of(self):
        x = np.array([1.0, 3.0])
        s = SeriesSummary.of(x)
        assert s.mean == pytest.approx(2.0)
        assert s.scv == pytest.approx(0.25)

    def test_series_summary_empty(self):
        s = SeriesSummary.of(np.array([]))
        assert s.mean == 0.0 and s.scv == 0.0

    def test_trace_summary_directions(self):
        reqs = [
            IORequest(arrival_ns=0, op=OpType.READ, lba=0, size_bytes=1000),
            IORequest(arrival_ns=10, op=OpType.READ, lba=10, size_bytes=3000),
            IORequest(arrival_ns=5, op=OpType.WRITE, lba=20, size_bytes=2000),
        ]
        summary = trace_summary(Trace(reqs))
        assert summary.n_requests == 3
        assert summary.read_ratio == pytest.approx(2 / 3)
        assert summary.read_size.mean == pytest.approx(2000.0)
        assert summary.write_size.mean == pytest.approx(2000.0)
        assert summary.read_interarrival.mean == pytest.approx(10.0)
