"""Whole-program linter: unit/purity fixtures, the call graph, the
baseline workflow, and the CLI plumbing around them."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    TODO_REASON,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.run import ALL_RULES, lint_project
from repro.analysis.simlint import lint_source, module_name_of
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"
REPO = Path(__file__).parents[2]

WHOLE_PROGRAM_RULES = (
    "SIM101",
    "SIM102",
    "SIM103",
    "SIM104",
    "SIM201",
    "SIM202",
    "SIM203",
)


def lint_one(path: Path):
    return lint_project([path], baseline_path=None).violations


# -- fixtures: every rule fires on bad, stays quiet on good -----------------


@pytest.mark.parametrize("rule", WHOLE_PROGRAM_RULES)
def test_bad_fixture_trips_exactly_its_rule(rule):
    number = rule[len("SIM"):]
    violations = lint_one(FIXTURES / f"bad_sim{number}.py")
    assert {v.rule for v in violations} == {rule}, violations


@pytest.mark.parametrize("rule", WHOLE_PROGRAM_RULES)
def test_good_fixture_is_clean(rule):
    number = rule[len("SIM"):]
    assert lint_one(FIXTURES / f"good_sim{number}.py") == []


def test_every_whole_program_rule_has_a_description():
    for rule in WHOLE_PROGRAM_RULES:
        assert rule in ALL_RULES


def test_repo_src_tree_is_clean_without_baseline():
    report = lint_project([SRC], baseline_path=None)
    assert report.violations == []
    assert report.file_count > 50


# -- call graph --------------------------------------------------------------


def _index_of(source: str) -> ProjectIndex:
    return ProjectIndex.build([(Path("fake.py"), source)])


def test_schedule_callback_seeds_reachability():
    index = _index_of(
        "# simlint: package=repro.sim.fake_graph\n"
        "class Ticker:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "    def start(self):\n"
        "        self.sim.schedule(1, self._tick)\n"
        "    def _tick(self):\n"
        "        self._helper()\n"
        "    def _helper(self):\n"
        "        pass\n"
        "    def _unreached(self):\n"
        "        pass\n"
    )
    reachable = CallGraph(index).reachable_from_dispatch()
    assert "repro.sim.fake_graph.Ticker._tick" in reachable
    assert "repro.sim.fake_graph.Ticker._helper" in reachable
    assert "repro.sim.fake_graph.Ticker._unreached" not in reachable
    # ``start`` is only *called by* user code, never dispatched.
    assert "repro.sim.fake_graph.Ticker.start" not in reachable


def test_schedule_through_bound_method_alias_resolves():
    index = _index_of(
        "# simlint: package=repro.sim.fake_alias\n"
        "class Timer:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "        self._cb = self._fire\n"
        "    def arm(self):\n"
        "        self.sim.schedule(5, self._cb)\n"
        "    def _fire(self):\n"
        "        pass\n"
    )
    graph = CallGraph(index)
    targets = {site.target for site in graph.schedule_sites}
    assert "repro.sim.fake_alias.Timer._fire" in targets
    assert "repro.sim.fake_alias.Timer._fire" in graph.reachable_from_dispatch()


def test_anon_schedule_callback_seeds_reachability():
    index = _index_of(
        "# simlint: package=repro.sim.fake_anon\n"
        "class Pump:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "    def start(self):\n"
        "        self.sim.schedule_anon(1, self._tick)\n"
        "        self.sim.schedule_at_anon(9, self._late)\n"
        "    def _tick(self):\n"
        "        pass\n"
        "    def _late(self):\n"
        "        pass\n"
        "    def _unreached(self):\n"
        "        pass\n"
    )
    reachable = CallGraph(index).reachable_from_dispatch()
    assert "repro.sim.fake_anon.Pump._tick" in reachable
    assert "repro.sim.fake_anon.Pump._late" in reachable
    assert "repro.sim.fake_anon.Pump._unreached" not in reachable


def test_register_batch_seeds_both_entry_points():
    index = _index_of(
        "# simlint: package=repro.sim.fake_batch\n"
        "class Port:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "        sim.register_batch(self._one, self._many)\n"
        "    def _one(self, item):\n"
        "        pass\n"
        "    def _many(self, batch):\n"
        "        pass\n"
    )
    reachable = CallGraph(index).reachable_from_dispatch()
    assert "repro.sim.fake_batch.Port._one" in reachable
    assert "repro.sim.fake_batch.Port._many" in reachable


def test_getattr_wired_attribute_duck_dispatches():
    """``self.x = getattr(dst, "receive_batch", None)`` then calling
    through ``self.x`` (or a local alias of it) reaches every concrete
    implementation of the named method — the batched link fan-out."""
    index = _index_of(
        "# simlint: package=repro.sim.fake_duck\n"
        "class Wire:\n"
        "    def __init__(self, sim, dst):\n"
        "        self.sim = sim\n"
        "        self._rx = getattr(dst, 'receive_burst', None)\n"
        "    def start(self):\n"
        "        self.sim.schedule_anon(1, self._flush)\n"
        "    def _flush(self):\n"
        "        rx = self._rx\n"
        "        if rx is not None:\n"
        "            rx([])\n"
        "class Sink:\n"
        "    def receive_burst(self, batch):\n"
        "        pass\n"
        "class Deaf:\n"
        "    def other(self):\n"
        "        pass\n"
    )
    reachable = CallGraph(index).reachable_from_dispatch()
    assert "repro.sim.fake_duck.Wire._flush" in reachable
    assert "repro.sim.fake_duck.Sink.receive_burst" in reachable
    assert "repro.sim.fake_duck.Deaf.other" not in reachable


def test_lambda_callback_seeds_its_call_targets():
    index = _index_of(
        "# simlint: package=repro.sim.fake_lambda\n"
        "class Timer:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "    def arm(self):\n"
        "        self.sim.schedule(5, lambda: self._fire())\n"
        "    def _fire(self):\n"
        "        pass\n"
    )
    reachable = CallGraph(index).reachable_from_dispatch()
    assert "repro.sim.fake_lambda.Timer._fire" in reachable


# -- baseline workflow -------------------------------------------------------


def _lint_bad_202():
    return lint_project([FIXTURES / "bad_sim202.py"], baseline_path=None)


def test_baseline_round_trip_and_matching(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    violations = _lint_bad_202().violations
    entries = update_baseline(baseline_path, violations, root=REPO)
    assert [e.reason for e in entries] == [TODO_REASON]
    assert entries[0].path.endswith("tests/analysis/fixtures/bad_sim202.py")
    assert load_baseline(baseline_path) == entries

    # With the baseline in play the same finding is absorbed...
    report = lint_project(
        [FIXTURES / "bad_sim202.py"], baseline_path=baseline_path, root=REPO
    )
    assert report.violations == []
    assert report.baselined == entries
    assert report.stale == []
    # ...and a clean tree reports the entry as stale, persisting the
    # marker in the file (one grace run before it fails the gate).
    report = lint_project(
        [FIXTURES / "good_sim202.py"], baseline_path=baseline_path, root=REPO
    )
    assert [e.key for e in report.stale] == [e.key for e in entries]
    assert all(e.stale for e in report.stale)
    assert report.stale_failures == []
    assert [e.stale for e in load_baseline(baseline_path)] == [True]


def test_update_baseline_carries_reasons_forward(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    violations = _lint_bad_202().violations
    first = update_baseline(baseline_path, violations, root=REPO)
    justified = [
        BaselineEntry(e.rule, e.path, e.line_text, "reviewed: fixture")
        for e in first
    ]
    write_baseline(baseline_path, justified)
    second = update_baseline(baseline_path, violations, root=REPO)
    assert [e.reason for e in second] == ["reviewed: fixture"]


def test_baseline_matches_by_line_text_not_number(tmp_path):
    violations = _lint_bad_202().violations
    entries = update_baseline(tmp_path / "b.json", violations, root=REPO)
    # Same text at a different line number still matches; different
    # text on the same line does not.
    fresh, matched = apply_baseline(violations, entries, root=REPO)
    assert fresh == [] and matched == entries
    edited = [
        BaselineEntry(e.rule, e.path, e.line_text + "  # edited", e.reason)
        for e in entries
    ]
    fresh, matched = apply_baseline(violations, edited, root=REPO)
    assert fresh == violations and matched == []


def test_unsupported_baseline_version_raises(tmp_path):
    path = tmp_path / "b.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


def test_checked_in_baseline_is_empty_or_justified():
    """Acceptance gate: no entry may linger without a human reason."""
    entries = load_baseline(REPO / DEFAULT_BASELINE_PATH)
    for entry in entries:
        assert entry.reason and entry.reason != TODO_REASON, entry


# -- CLI plumbing ------------------------------------------------------------


def test_cli_github_format_emits_annotations(capsys):
    bad = str(FIXTURES / "bad_sim104.py")
    assert cli_main(["lint", "--no-baseline", "--format", "github", bad]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert "title=SIM104" in out
    # A clean run emits nothing at all (no stray annotation lines).
    good = str(FIXTURES / "good_sim104.py")
    assert cli_main(["lint", "--no-baseline", "--format", "github", good]) == 0
    assert capsys.readouterr().out == ""


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    bad = str(FIXTURES / "bad_sim201.py")
    assert (
        cli_main(["lint", "--baseline", str(baseline), "--update-baseline", bad])
        == 0
    )
    assert TODO_REASON in baseline.read_text()
    assert cli_main(["lint", "--baseline", str(baseline), bad]) == 0
    assert "1 baselined finding(s)" in capsys.readouterr().out
    # Without the baseline the finding still fails the run.
    assert cli_main(["lint", "--no-baseline", bad]) == 1


def test_cli_stale_baseline_entries_are_reported(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    write_baseline(
        baseline,
        [BaselineEntry("SIM201", "gone.py", "print(1)", "obsolete")],
    )
    good = str(FIXTURES / "good_sim201.py")
    assert cli_main(["lint", "--baseline", str(baseline), good]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_max_seconds_budget(capsys):
    good = str(FIXTURES / "good_sim101.py")
    assert cli_main(["lint", "--no-baseline", "--max-seconds", "0", good]) == 1
    assert "over the" in capsys.readouterr().err
    assert (
        cli_main(["lint", "--no-baseline", "--max-seconds", "60", good]) == 0
    )


def test_cli_cache_round_trip(tmp_path):
    cache = tmp_path / "ast_index.pickle"
    good = str(FIXTURES / "good_sim202.py")
    args = ["lint", "--no-baseline", "--cache", str(cache), good]
    assert cli_main(args) == 0
    assert cache.exists()
    assert cli_main(args) == 0  # warm-cache run, same verdict
    cache.write_bytes(b"corrupt")
    assert cli_main(args) == 0  # corrupt cache is rebuilt, not fatal


def test_index_cache_invalidates_on_content_change(tmp_path):
    target = tmp_path / "mod.py"
    cache = tmp_path / "cache.pickle"
    clean = "# simlint: package=repro.sim.fake_cache\nX_NS = 5\n"
    target.write_text(clean)
    index = ProjectIndex.build_cached([target], cache)
    assert "repro.sim.fake_cache" in index.modules
    target.write_text(clean + "def f_ns():\n    return 1\n")
    index = ProjectIndex.build_cached([target], cache)
    assert "f_ns" in index.modules["repro.sim.fake_cache"].functions


# -- directive edge cases ----------------------------------------------------


def test_ignore_on_continuation_line_suppresses():
    source = (
        "# simlint: package=repro.sim.fake_directives\n"
        "import time\n"
        "t = time.time(\n"
        ")  # simlint: ignore[SIM001]\n"
    )
    # The import itself is the only remaining finding.
    assert [v.line for v in lint_source(source, Path("f.py"))] == [2]


def test_ignore_on_decorator_line_covers_the_class():
    source = (
        "# simlint: package=repro.net.packet\n"
        "@some_registry.register  # simlint: ignore[SIM004]\n"
        "class Packet:\n"
        "    pass\n"
    )
    assert lint_source(source, Path("f.py")) == []


def test_ignore_inside_a_class_body_does_not_mute_it():
    source = (
        "# simlint: package=repro.net.packet\n"
        "class Packet:\n"
        "    x = 1  # simlint: ignore[SIM004]\n"
    )
    assert [v.rule for v in lint_source(source, Path("f.py"))] == ["SIM004"]


def test_package_directive_after_first_statement_is_ignored():
    source = "import time\n# simlint: package=repro.sim.late\n"
    assert module_name_of(Path("anywhere.py"), source) is None
    # Unattributed files outside src/ are skipped entirely.
    assert lint_source(source, Path("anywhere.py")) == []
