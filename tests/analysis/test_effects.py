"""Effect summaries and the shard-safety pass: SIM301–SIM304 fixtures,
fixed-point convergence, the effects.json cache, SARIF round-trip,
baseline staleness, and ``ignore[...]`` directive scoping."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, update_baseline
from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.effects import compute_effects, load_or_compute_effects
from repro.analysis.run import ALL_RULES, lint_project
from repro.analysis.sarif import sarif_report, to_sarif, violations_from_sarif
from repro.analysis.shards import SHARD_RULES, check_shards
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"
REPO = Path(__file__).parents[2]

#: Fixtures whose scenario spans a shard boundary need the far-side
#: module in the same lint run (cross-shard reach is inherently
#: cross-module).
COMPANIONS = {"SIM302": ("sim302_switch.py",)}


def lint_shard_fixture(name: str, rule: str):
    paths = [FIXTURES / name]
    paths += [FIXTURES / extra for extra in COMPANIONS.get(rule, ())]
    return lint_project(paths, baseline_path=None, shards=True).violations


# -- fixtures: every shard rule fires on bad, stays quiet on good ------------


@pytest.mark.parametrize("rule", sorted(SHARD_RULES))
def test_bad_fixture_trips_exactly_its_rule(rule):
    number = rule[len("SIM"):]
    violations = lint_shard_fixture(f"bad_sim{number}.py", rule)
    assert {v.rule for v in violations} == {rule}, violations
    assert all(v.path.endswith(f"bad_sim{number}.py") for v in violations)


@pytest.mark.parametrize("rule", sorted(SHARD_RULES))
def test_good_fixture_is_clean(rule):
    number = rule[len("SIM"):]
    assert lint_shard_fixture(f"good_sim{number}.py", rule) == []


def test_every_shard_rule_has_a_description():
    for rule in SHARD_RULES:
        assert rule in ALL_RULES


def test_repo_src_tree_is_clean_under_shards():
    report = lint_project([SRC], baseline_path=None, shards=True)
    assert report.violations == []


# -- effect summaries --------------------------------------------------------


def _project(*sources: str) -> tuple[ProjectIndex, CallGraph]:
    files = [(Path(f"fake{i}.py"), src) for i, src in enumerate(sources)]
    index = ProjectIndex.build(files)
    return index, CallGraph(index)


def test_mutually_recursive_summaries_reach_a_fixed_point():
    index, graph = _project(
        "# simlint: package=repro.net.link\n"
        "class Link:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "        self.depth = 0\n"
        "    def start(self):\n"
        "        self.sim.schedule(4, self._ping)\n"
        "    def _ping(self):\n"
        "        self.depth += 1\n"
        "        self._pong()\n"
        "    def _pong(self):\n"
        "        self._ping()\n"
    )
    effects = compute_effects(index, graph)
    ping = effects.summary("repro.net.link.Link._ping")
    pong = effects.summary("repro.net.link.Link._pong")
    # The cycle converged with both members carrying the write.
    assert ping.writes_to("repro.net.link.Link")
    assert pong.writes_to("repro.net.link.Link")
    assert ping.touch_domains == pong.touch_domains == frozenset({"link"})
    assert effects.iterations >= 2


def test_public_api_absorbs_own_class_writes_but_not_touches():
    index, graph = _project(
        "# simlint: package=repro.net.link\n"
        "from repro.net.switch import Switch\n"
        "class Link:\n"
        "    def __init__(self, sim, peer: Switch):\n"
        "        self.sim = sim\n"
        "        self.peer = peer\n"
        "    def _deliver(self, size):\n"
        "        self.peer.receive(size)\n",
        "# simlint: package=repro.net.switch\n"
        "class Switch:\n"
        "    def __init__(self):\n"
        "        self.rx = 0\n"
        "    def receive(self, size):\n"
        "        self.rx += size\n",
    )
    effects = compute_effects(index, graph)
    deliver = effects.summary("repro.net.link.Link._deliver")
    # Entering the public API absorbs the Switch's own-state writes...
    assert not deliver.writes_to("repro.net.switch.Switch")
    # ...but the raw shard footprint still records the crossing.
    assert "switch" in deliver.touch_domains


def test_protocol_dispatch_contributes_remote_domains():
    index, graph = _project(
        "# simlint: package=repro.net.link\n"
        "from typing import Protocol\n"
        "class Device(Protocol):\n"
        "    def receive(self, pkt) -> None: ...\n"
        "class Link:\n"
        "    def __init__(self, sim, dst):\n"
        "        self.sim = sim\n"
        "        self.dst: Device = dst\n"
        "        self.delay_ns = 10\n"
        "    def _finish(self, pkt):\n"
        "        self.sim.schedule(3, self._deliver, pkt)\n"
        "    def _deliver(self, pkt):\n"
        "        self.dst.receive(pkt)\n",
        "# simlint: package=repro.net.switch\n"
        "class Switch:\n"
        "    def receive(self, pkt):\n"
        "        pass\n",
    )
    effects = compute_effects(index, graph)
    deliver = effects.summary("repro.net.link.Link._deliver")
    # The receiver writes nothing, so only the structural crossing
    # itself marks the summary.
    assert deliver.touch_domains == frozenset()
    assert deliver.remote_domains == frozenset({"switch"})
    # And SIM302 treats the constant-delay schedule of it as a
    # lookahead violation...
    rules = {v.rule for v in check_shards(index, graph, effects)}
    assert "SIM302" in rules


def test_link_delay_proves_the_protocol_crossing_safe():
    index, graph = _project(
        "# simlint: package=repro.net.link\n"
        "from typing import Protocol\n"
        "class Device(Protocol):\n"
        "    def receive(self, pkt) -> None: ...\n"
        "class Link:\n"
        "    def __init__(self, sim, dst):\n"
        "        self.sim = sim\n"
        "        self.dst: Device = dst\n"
        "        self.delay_ns = 10\n"
        "    def _finish(self, pkt):\n"
        "        self.sim.schedule(self.delay_ns, self._deliver, pkt)\n"
        "    def _deliver(self, pkt):\n"
        "        self.dst.receive(pkt)\n",
        "# simlint: package=repro.net.switch\n"
        "class Switch:\n"
        "    def receive(self, pkt):\n"
        "        pass\n",
    )
    effects = compute_effects(index, graph)
    assert check_shards(index, graph, effects) == []


def test_raw_generator_reaching_a_component_fires_sim303():
    index, graph = _project(
        "# simlint: package=repro.net.dcqcn\n"
        "import numpy as np\n"
        "class DCQCNRateControl:\n"
        "    def __init__(self, rng):\n"
        "        self.rng = rng\n"
        "def build():\n"
        "    r = np.random.default_rng(1)\n"
        "    return DCQCNRateControl(r)\n"
    )
    effects = compute_effects(index, graph)
    rules = {v.rule for v in check_shards(index, graph, effects)}
    assert "SIM303" in rules


def test_inlined_heappush_is_a_schedule_site():
    index, graph = _project(
        "# simlint: package=repro.net.link\n"
        "from heapq import heappush\n"
        "class Link:\n"
        "    def __init__(self, sim):\n"
        "        self.sim = sim\n"
        "        self.delay_ns = 10\n"
        "    def send(self, pkt, seq):\n"
        "        heappush(self.sim.heap,\n"
        "                 (self.sim.now + self.delay_ns, seq, self._finish, (pkt,)))\n"
        "    def _finish(self, pkt):\n"
        "        pass\n"
    )
    sites = [s for s in graph.schedule_sites if s.kind == "heappush"]
    assert len(sites) == 1
    assert sites[0].target == "repro.net.link.Link._finish"
    # The ``now + X`` shape was stripped down to the relative delay.
    import ast

    assert ast.unparse(sites[0].delay) == "self.delay_ns"
    assert "repro.net.link.Link._finish" in graph.reachable_from_dispatch()


# -- the effects.json cache --------------------------------------------------

_CACHE_SRC_V1 = (
    "# simlint: package=repro.net.link\n"
    "class Link:\n"
    "    def __init__(self, sim):\n"
    "        self.sim = sim\n"
    "        self.queued = 0\n"
    "    def _drain(self):\n"
    "        self.queued = 0\n"
)
_CACHE_SRC_V2 = _CACHE_SRC_V1 + "    def _refill(self):\n        self.queued = 9\n"


def test_effects_cache_hits_and_invalidates_on_content_change(tmp_path):
    cache = tmp_path / "effects.json"
    index1, graph1 = _project(_CACHE_SRC_V1)
    first = load_or_compute_effects(index1, graph1, cache)
    assert cache.exists()

    # Same content -> served from the cache.  Prove it by tampering
    # with a field the recompute would never produce.
    data = json.loads(cache.read_text())
    data["iterations"] = 99
    cache.write_text(json.dumps(data))
    again = load_or_compute_effects(index1, graph1, cache)
    assert again.digest == first.digest
    assert again.iterations == 99
    assert again.summary("repro.net.link.Link._drain").writes_to(
        "repro.net.link.Link"
    )

    # Changed content -> digest mismatch -> recompute + rewrite.
    index2, graph2 = _project(_CACHE_SRC_V2)
    fresh = load_or_compute_effects(index2, graph2, cache)
    assert fresh.digest != first.digest
    assert fresh.iterations != 99
    assert fresh.summary("repro.net.link.Link._refill").writes_to(
        "repro.net.link.Link"
    )
    assert json.loads(cache.read_text())["digest"] == fresh.digest


# -- SARIF -------------------------------------------------------------------


def test_sarif_round_trips_the_findings():
    violations = lint_shard_fixture("bad_sim301.py", "SIM301")
    assert violations  # guard: the round-trip must carry something
    text = to_sarif(violations, ALL_RULES)
    assert violations_from_sarif(text) == violations

    report = sarif_report(violations, ALL_RULES)
    assert report["version"] == "2.1.0"
    driver = report["runs"][0]["tool"]["driver"]
    assert driver["name"] == "simlint"
    assert [r["id"] for r in driver["rules"]] == ["SIM301"]
    assert driver["rules"][0]["shortDescription"]["text"] == ALL_RULES["SIM301"]


def test_cli_emits_and_writes_sarif(tmp_path, capsys):
    out_file = tmp_path / "lint.sarif"
    rc = cli_main(
        [
            "lint", str(FIXTURES / "bad_sim304.py"),
            "--no-baseline", "--shards",
            "--format", "sarif", "--sarif-output", str(out_file),
        ]
    )
    assert rc == 1
    stdout = capsys.readouterr().out
    assert [v.rule for v in violations_from_sarif(stdout)] == ["SIM304"]
    assert [v.rule for v in violations_from_sarif(out_file.read_text())] == [
        "SIM304"
    ]


def test_cli_src_tree_is_clean_under_shards(tmp_path):
    rc = cli_main(
        [
            "lint", str(SRC), "--shards", "--no-baseline",
            "--cache", str(tmp_path / "ast_index.pickle"),
        ]
    )
    assert rc == 0


# -- baseline staleness ------------------------------------------------------


def _stale_setup(tmp_path) -> Path:
    baseline = tmp_path / "baseline.json"
    violations = lint_project(
        [FIXTURES / "bad_sim304.py"], baseline_path=None, shards=True
    ).violations
    update_baseline(baseline, violations, root=REPO)
    return baseline


def test_stale_baseline_entry_fails_after_one_grace_run(tmp_path):
    baseline = _stale_setup(tmp_path)
    clean = [FIXTURES / "good_sim304.py"]

    first = lint_project(clean, baseline_path=baseline, root=REPO, shards=True)
    assert first.ok
    assert [e.stale for e in first.stale] == [True]
    assert first.stale_failures == []

    second = lint_project(clean, baseline_path=baseline, root=REPO, shards=True)
    assert not second.ok
    assert second.stale == []
    assert len(second.stale_failures) == 1

    # The suppressed finding coming back unmarks the entry.
    third = lint_project(
        [FIXTURES / "bad_sim304.py"],
        baseline_path=baseline, root=REPO, shards=True,
    )
    assert third.ok and third.violations == []
    assert [e.stale for e in load_baseline(baseline)] == [False]


def test_prune_baseline_drops_stale_entries_immediately(tmp_path):
    baseline = _stale_setup(tmp_path)
    report = lint_project(
        [FIXTURES / "good_sim304.py"],
        baseline_path=baseline, root=REPO, shards=True, prune_baseline=True,
    )
    assert report.ok
    assert len(report.pruned) == 1
    assert load_baseline(baseline) == []


def test_cli_exit_code_for_twice_stale_entry(tmp_path):
    baseline = _stale_setup(tmp_path)
    argv = [
        "lint", str(FIXTURES / "good_sim304.py"),
        "--baseline", str(baseline), "--shards",
    ]
    assert cli_main(argv) == 0  # grace run: marked, still green
    assert cli_main(argv) == 1  # stale for >1 run: gate fails


# -- directive scoping -------------------------------------------------------


def test_directive_on_decorator_or_signature_covers_the_body():
    report = lint_project(
        [FIXTURES / "good_directive_scope.py"], baseline_path=None
    )
    assert report.violations == []


def test_directive_inside_the_body_does_not_mute():
    report = lint_project(
        [FIXTURES / "bad_directive_scope.py"], baseline_path=None
    )
    assert {v.rule for v in report.violations} == {"SIM002"}
