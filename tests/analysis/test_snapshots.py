"""Snapshot-safety pass: SIM401–SIM404 fixtures, the mutation gate,
the rule registry / ``--select`` semantics, the snapshots.json cache,
SARIF round-trip, and the CLI surface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.effects import compute_effects, load_or_compute_effects
from repro.analysis.registry import (
    RULE_GROUPS,
    expand_selection,
    resolve_active_rules,
)
from repro.analysis.run import ALL_RULES, lint_project
from repro.analysis.sarif import sarif_report, to_sarif, violations_from_sarif
from repro.analysis.snapshots import (
    SNAPSHOT_RULES,
    heap_class_census,
    load_or_compute_snapshots,
    snapshots_cache_path,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"


def lint_snapshot_fixture(name: str):
    return lint_project(
        [FIXTURES / name], baseline_path=None, snapshots=True
    ).violations


# -- fixtures: every snapshot rule fires on bad, stays quiet on good ---------


@pytest.mark.parametrize("rule", sorted(SNAPSHOT_RULES))
def test_bad_fixture_trips_exactly_its_rule(rule):
    number = rule[len("SIM"):]
    violations = lint_snapshot_fixture(f"bad_sim{number}.py")
    assert {v.rule for v in violations} == {rule}, violations
    assert all(v.path.endswith(f"bad_sim{number}.py") for v in violations)


@pytest.mark.parametrize("rule", sorted(SNAPSHOT_RULES))
def test_good_fixture_is_clean(rule):
    number = rule[len("SIM"):]
    assert lint_snapshot_fixture(f"good_sim{number}.py") == []


def test_every_snapshot_rule_is_registered():
    for rule in SNAPSHOT_RULES:
        assert rule in ALL_RULES
    group = {g.key: g for g in RULE_GROUPS}["snapshots"]
    assert set(group.rules) == set(SNAPSHOT_RULES)
    assert group.flag == "--snapshots"
    assert not group.default


def test_repo_src_tree_is_clean_under_snapshots():
    report = lint_project([SRC], baseline_path=None, snapshots=True)
    assert report.violations == []


# -- mutation gate: the PR-9 revert must be caught at the exact sites --------


def test_mutation_revert_trips_sim401_and_sim402_at_exact_lines():
    violations = lint_snapshot_fixture("mutation_pr9_revert.py")
    hits = sorted((v.rule, v.line) for v in violations)
    # The lambda back at the schedule site, and the raw-count draw.
    assert hits == [("SIM401", 32), ("SIM402", 35)], violations
    by_rule = {v.rule: v for v in violations}
    assert "lambda callback" in by_rule["SIM401"].message
    assert "_flow_ids" in by_rule["SIM402"].message


# -- rule registry / selection semantics -------------------------------------


def test_expand_selection_accepts_groups_prefixes_and_commas():
    assert expand_selection(["snapshots"]) == frozenset(SNAPSHOT_RULES)
    assert expand_selection(["SIM4"]) == frozenset(SNAPSHOT_RULES)
    assert expand_selection(["sim401"]) == frozenset({"SIM401"})
    both = expand_selection(["SIM401,SIM402"])
    assert both == frozenset({"SIM401", "SIM402"})
    assert expand_selection(["shards", "SIM401"]) >= {"SIM301", "SIM401"}


def test_expand_selection_rejects_unknown_tokens():
    with pytest.raises(ValueError, match="BOGUS"):
        expand_selection(["BOGUS"])
    with pytest.raises(ValueError, match="groups:"):
        expand_selection(["SIM9x"])


def test_resolve_active_rules_defaults_exclude_opt_in_groups():
    active = resolve_active_rules()
    assert "SIM001" in active and "SIM999" in active
    assert not active & set(SNAPSHOT_RULES)
    assert "SIM301" not in active


def test_flag_sugar_is_equivalent_to_adding_the_group():
    assert resolve_active_rules(snapshots=True) == resolve_active_rules() | set(
        SNAPSHOT_RULES
    )
    assert resolve_active_rules(shards=True) >= {"SIM301", "SIM302"}


def test_select_replaces_defaults_but_flags_still_add():
    only = resolve_active_rules(select=["SIM401"])
    assert only == frozenset({"SIM401", "SIM999"})
    mixed = resolve_active_rules(select=["SIM001"], snapshots=True)
    assert mixed == frozenset({"SIM001", "SIM999"}) | frozenset(SNAPSHOT_RULES)


def test_ignore_wins_but_sim999_is_sticky():
    active = resolve_active_rules(snapshots=True, ignore=["SIM401"])
    assert "SIM401" not in active
    assert "SIM402" in active
    assert "SIM999" in resolve_active_rules(ignore=["SIM999"])


# -- the snapshots.json cache ------------------------------------------------


def _indexed(*names: str):
    files = [(FIXTURES / n, (FIXTURES / n).read_text()) for n in names]
    index = ProjectIndex.build(files)
    graph = CallGraph(index)
    return index, graph, compute_effects(index, graph)


def test_snapshots_cache_hits_and_invalidates_on_content_change(tmp_path):
    cache = snapshots_cache_path(tmp_path / "ast_index.pickle")
    assert cache == tmp_path / "snapshots.json"

    index, graph, effects = _indexed("mutation_pr9_revert.py")
    first = load_or_compute_snapshots(index, graph, effects, cache)
    assert {v.rule for v in first} == {"SIM401", "SIM402"}
    assert cache.exists()

    # Same content -> served from the cache.  Prove it by tampering
    # with a message the recompute would never produce.
    data = json.loads(cache.read_text())
    data["violations"][0]["message"] = "from-the-cache"
    cache.write_text(json.dumps(data))
    again = load_or_compute_snapshots(index, graph, effects, cache)
    assert "from-the-cache" in {v.message for v in again}

    # Different content -> digest mismatch -> recompute + rewrite.
    index2, graph2, effects2 = _indexed("good_sim401.py")
    fresh = load_or_compute_snapshots(index2, graph2, effects2, cache)
    assert fresh == []
    assert json.loads(cache.read_text())["violations"] == []


def test_effects_cache_version_bump_forces_recompute(tmp_path):
    # A v1 effects.json (pre global-site records) must never be served.
    cache = tmp_path / "effects.json"
    index, graph, _ = _indexed("bad_sim402.py")
    load_or_compute_effects(index, graph, cache)
    data = json.loads(cache.read_text())
    assert data["version"] == 2
    assert data["global_sites"]

    data["version"] = 1
    data["iterations"] = 99
    cache.write_text(json.dumps(data))
    fresh = load_or_compute_effects(index, graph, cache)
    assert fresh.iterations != 99
    assert fresh.global_sites
    assert json.loads(cache.read_text())["version"] == 2


# -- heap census -------------------------------------------------------------


def test_heap_census_covers_scheduling_owners():
    index, graph, _ = _indexed("bad_sim403.py")
    census = heap_class_census(index, graph)
    assert "repro.net.switch.Rogue" in census
    assert "repro.net.switch.Switch" in census


# -- SARIF -------------------------------------------------------------------


def test_sarif_round_trips_snapshot_findings():
    violations = lint_snapshot_fixture("bad_sim401.py")
    assert violations  # guard: the round-trip must carry something
    text = to_sarif(violations, ALL_RULES)
    assert violations_from_sarif(text) == violations

    report = sarif_report(violations, ALL_RULES)
    driver = report["runs"][0]["tool"]["driver"]
    assert [r["id"] for r in driver["rules"]] == ["SIM401"]
    assert driver["rules"][0]["shortDescription"]["text"] == ALL_RULES["SIM401"]


# -- CLI surface -------------------------------------------------------------


def test_cli_snapshots_flag_flags_bad_fixture(tmp_path, capsys):
    out_file = tmp_path / "lint.sarif"
    rc = cli_main(
        [
            "lint", str(FIXTURES / "bad_sim401.py"),
            "--no-baseline", "--snapshots",
            "--format", "sarif", "--sarif-output", str(out_file),
        ]
    )
    assert rc == 1
    stdout = capsys.readouterr().out
    assert {v.rule for v in violations_from_sarif(stdout)} == {"SIM401"}
    assert {
        v.rule for v in violations_from_sarif(out_file.read_text())
    } == {"SIM401"}


def test_cli_select_and_ignore_filter_rules(capsys):
    rc = cli_main(
        [
            "lint", str(FIXTURES / "mutation_pr9_revert.py"),
            "--no-baseline", "--select", "SIM4", "--ignore", "SIM402",
            "--format", "json",
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in payload} == {"SIM401"}


def test_cli_rejects_bogus_selector(capsys):
    rc = cli_main(
        [
            "lint", str(FIXTURES / "good_sim401.py"),
            "--no-baseline", "--select", "BOGUS",
        ]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "BOGUS" in err and "groups:" in err


def test_cli_src_tree_is_clean_under_snapshots(tmp_path):
    rc = cli_main(
        [
            "lint", str(SRC), "--snapshots", "--no-baseline",
            "--cache", str(tmp_path / "ast_index.pickle"),
        ]
    )
    assert rc == 0
    # The snapshots cache lands beside the AST index.
    assert (tmp_path / "snapshots.json").exists()
