"""Runtime DES sanitizer: activation, invariant detection, transparency.

The sanitizer must (a) engage via ``Simulator(sanitize=True)`` or
``REPRO_SANITIZE=1``, (b) catch each class of corrupted state with a
structured :class:`SanitizerError` naming the offending event's site,
and (c) be a pure observer — a sanitized run is bit-identical to a
plain one.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizingSimulator,
    env_sanitize_enabled,
    ftl_mapping_violation,
)
from repro.net.topology import build_star
from repro.nvme.wrr import TokenWRR
from repro.profiling import InstrumentedSimulator
from repro.profiling.bench import incast_outputs, run_incast_cell
from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.units import US
from repro.ssd.ftl import FTL
from tests.conftest import FAST_SSD


# -- activation ---------------------------------------------------------------

def test_sanitize_kwarg_promotes_construction(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert type(Simulator()) is Simulator
    assert type(Simulator(sanitize=False)) is Simulator
    sim = Simulator(sanitize=True)
    assert isinstance(sim, SanitizingSimulator)
    assert sim.sanitizer is not None


def test_env_variable_promotes_construction(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert isinstance(Simulator(), SanitizingSimulator)
    # An explicit kwarg beats the environment.
    assert type(Simulator(sanitize=False)) is Simulator
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert type(Simulator()) is Simulator


def test_subclasses_are_never_promoted(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = InstrumentedSimulator()
    assert type(sim) is InstrumentedSimulator
    assert sim.sanitizer is None


@pytest.mark.parametrize(
    "value,expected",
    [
        (None, False), ("", False), ("0", False), ("false", False),
        ("no", False), ("off", False), (" OFF ", False),
        ("1", True), ("true", True), ("yes", True), ("2", True),
    ],
)
def test_env_sanitize_enabled(value, expected):
    assert env_sanitize_enabled(value) is expected


# -- invariant detection ------------------------------------------------------

def _tick(sim, depth=50):
    """A benign self-rescheduling callback to keep the run alive."""
    state = {"n": depth}

    def tick() -> None:
        state["n"] -= 1
        if state["n"] > 0:
            sim.schedule(10, tick)

    sim.schedule(1, tick)


def test_monotonicity_violation_is_caught():
    sim = Simulator(sanitize=True)
    _tick(sim)

    def corrupt() -> None:
        # Push an event into the past behind the engine's back — the
        # scheduling API itself refuses, which is exactly why a corrupted
        # heap must be caught at dispatch time.
        sim._queue.push(3, lambda: None)

    sim.schedule(100, corrupt)
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "event-time-monotonic"
    assert "[event-time-monotonic]" in str(ei.value)


def test_negative_link_queue_is_caught():
    sim = Simulator(sanitize=True)
    net = build_star(sim, ["a", "b"], rate_gbps=40.0, delay_ns=US)
    assert sim.sanitizer._links, "links did not self-register"
    net.hosts["a"].send_message("b", 4096)

    def corrupt() -> None:
        sim.sanitizer._links[0]._queued_bytes = -5

    sim.schedule(200, corrupt)
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "queue-depth"
    assert ei.value.site and "corrupt" in ei.value.site
    assert ei.value.time_ns == 200


def test_byte_conservation_violation_is_caught():
    sim = Simulator(sanitize=True)
    net = build_star(sim, ["a", "b"], rate_gbps=40.0, delay_ns=US)
    receiver = net.hosts["b"]
    net.hosts["a"].send_message("b", 64 * 1024)

    def corrupt() -> None:
        receiver.bytes_received += 1

    sim.schedule(5 * US, corrupt)
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "byte-conservation"
    assert "unaccounted" in ei.value.detail


def test_wrr_token_bounds_are_caught():
    sim = Simulator(sanitize=True)
    wrr = TokenWRR(1, 4)
    sim.sanitizer.track_wrr(wrr, name="test.wrr")
    _tick(sim, depth=5)
    sim.schedule(20, lambda: setattr(wrr, "read_tokens", 7))
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "wrr-tokens"
    assert "test.wrr" in ei.value.detail


def test_check_now_outside_dispatch():
    sim = Simulator(sanitize=True)
    sim.check_now()  # nothing tracked: clean
    wrr = TokenWRR(2, 2)
    sim.sanitizer.track_wrr(wrr)
    wrr.write_tokens = -1
    with pytest.raises(SanitizerError):
        sim.check_now()


# -- FTL mapping consistency --------------------------------------------------

def _written_ftl() -> FTL:
    ftl = FTL(FAST_SSD)
    # Two passes over the same LPNs: the second invalidates the first's
    # pages, leaving fully-written victim blocks for GC to reclaim.
    span = 4 * FAST_SSD.pages_per_block
    for _ in range(2):
        for lpn in range(span):
            ftl.allocate_write(lpn)
    return ftl


def test_ftl_mapping_walk_detects_forward_reverse_mismatch():
    ftl = _written_ftl()
    assert ftl_mapping_violation(ftl) is None
    lpn, (chip, block, page) = next(iter(ftl._map.items()))
    ftl._map[lpn] = (chip, block, page + 1000)
    assert ftl_mapping_violation(ftl) is not None


def test_gc_hook_raises_on_corrupted_map():
    ftl = _written_ftl()
    sanitizer = Sanitizer()
    sanitizer.track_ftl(ftl)

    victim = None
    for chip_index in range(FAST_SSD.n_chips):
        got = ftl.begin_gc(chip_index)
        if got is not None:
            victim = (chip_index, *got)
            break
    assert victim is not None, "no GC victim despite full blocks"
    chip_index, block_id, valid_lpns = victim
    for lpn in valid_lpns:
        ftl.gc_relocate(lpn, chip_index, block_id)

    lpn, (chip, block, page) = next(iter(ftl._map.items()))
    ftl._map[lpn] = (chip, block, page + 1000)
    with pytest.raises(SanitizerError) as ei:
        ftl.finish_gc(chip_index, block_id)
    assert ei.value.invariant == "ftl-mapping"


def test_gc_hook_is_clean_on_correct_gc():
    ftl = _written_ftl()
    sanitizer = Sanitizer()
    sanitizer.track_ftl(ftl)
    victim = None
    for chip_index in range(FAST_SSD.n_chips):
        got = ftl.begin_gc(chip_index)
        if got is not None:
            victim = (chip_index, *got)
            break
    assert victim is not None
    chip_index, block_id, valid_lpns = victim
    for lpn in valid_lpns:
        ftl.gc_relocate(lpn, chip_index, block_id)
    ftl.finish_gc(chip_index, block_id)  # must not raise
    assert ftl_mapping_violation(ftl) is None


# -- transparency -------------------------------------------------------------

def test_sanitized_incast_is_bit_identical_and_clean():
    plain, plain_sim, plain_net = run_incast_cell(
        duration_ns=200 * US, sim=Simulator(trace=True)
    )
    checked, checked_sim, checked_net = run_incast_cell(
        duration_ns=200 * US, sim=Simulator(trace=True, sanitize=True)
    )
    assert plain_sim.dispatch_log == checked_sim.dispatch_log
    assert incast_outputs(plain_net) == incast_outputs(checked_net)
    assert plain.events == checked.events
    assert checked_sim.sanitizer.events_checked == checked.events


def test_max_events_valve_still_works_sanitized():
    sim = Simulator(sanitize=True)
    _tick(sim, depth=100)
    with pytest.raises(MaxEventsExceeded):
        sim.run(max_events=5)
    assert sim.events_dispatched == 5
