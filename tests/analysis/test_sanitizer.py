"""Runtime DES sanitizer: activation, invariant detection, transparency.

The sanitizer must (a) engage via ``Simulator(sanitize=True)`` or
``REPRO_SANITIZE=1``, (b) catch each class of corrupted state with a
structured :class:`SanitizerError` naming the offending event's site,
and (c) be a pure observer — a sanitized run is bit-identical to a
plain one.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizingSimulator,
    env_sanitize_enabled,
    escalate,
    ftl_mapping_violation,
    parse_stride,
)
from repro.net.topology import build_star
from repro.nvme.wrr import TokenWRR
from repro.profiling import InstrumentedSimulator, SanitizerCostProfile
from repro.profiling.bench import incast_outputs, run_incast_cell
from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.units import US
from repro.ssd.ftl import FTL
from tests.conftest import FAST_SSD


# -- activation ---------------------------------------------------------------

def test_sanitize_kwarg_promotes_construction(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert type(Simulator()) is Simulator
    assert type(Simulator(sanitize=False)) is Simulator
    sim = Simulator(sanitize=True)
    assert isinstance(sim, SanitizingSimulator)
    assert sim.sanitizer is not None


def test_env_variable_promotes_construction(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert isinstance(Simulator(), SanitizingSimulator)
    # An explicit kwarg beats the environment.
    assert type(Simulator(sanitize=False)) is Simulator
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert type(Simulator()) is Simulator


def test_subclasses_are_never_promoted(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = InstrumentedSimulator()
    assert type(sim) is InstrumentedSimulator
    assert sim.sanitizer is None


@pytest.mark.parametrize(
    "value,expected",
    [
        (None, False), ("", False), ("0", False), ("false", False),
        ("no", False), ("off", False), (" OFF ", False),
        ("1", True), ("true", True), ("yes", True), ("2", True),
    ],
)
def test_env_sanitize_enabled(value, expected):
    assert env_sanitize_enabled(value) is expected


# -- invariant detection ------------------------------------------------------

def _tick(sim, depth=50):
    """A benign self-rescheduling callback to keep the run alive."""
    state = {"n": depth}

    def tick() -> None:
        state["n"] -= 1
        if state["n"] > 0:
            sim.schedule(10, tick)

    sim.schedule(1, tick)


def test_monotonicity_violation_is_caught():
    sim = Simulator(sanitize=True)
    _tick(sim)

    def corrupt() -> None:
        # Push an event into the past behind the engine's back — the
        # scheduling API itself refuses, which is exactly why a corrupted
        # heap must be caught at dispatch time.
        sim._queue.push(3, lambda: None)

    sim.schedule(100, corrupt)
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "event-time-monotonic"
    assert "[event-time-monotonic]" in str(ei.value)


def test_negative_link_queue_is_caught():
    sim = Simulator(sanitize=True)
    net = build_star(sim, ["a", "b"], rate_gbps=40.0, delay_ns=US)
    assert sim.sanitizer._links, "links did not self-register"
    net.hosts["a"].send_message("b", 4096)

    def corrupt() -> None:
        sim.sanitizer._links[0]._queued_bytes = -5

    sim.schedule(200, corrupt)
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "queue-depth"
    assert ei.value.site and "corrupt" in ei.value.site
    assert ei.value.time_ns == 200


def test_byte_conservation_violation_is_caught():
    sim = Simulator(sanitize=True)
    net = build_star(sim, ["a", "b"], rate_gbps=40.0, delay_ns=US)
    receiver = net.hosts["b"]
    net.hosts["a"].send_message("b", 64 * 1024)

    def corrupt() -> None:
        receiver.bytes_received += 1

    sim.schedule(5 * US, corrupt)
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "byte-conservation"
    assert "unaccounted" in ei.value.detail


def test_wrr_token_bounds_are_caught():
    sim = Simulator(sanitize=True)
    wrr = TokenWRR(1, 4)
    sim.sanitizer.track_wrr(wrr, name="test.wrr")
    _tick(sim, depth=5)
    sim.schedule(20, lambda: setattr(wrr, "read_tokens", 7))
    with pytest.raises(SanitizerError) as ei:
        sim.run()
    assert ei.value.invariant == "wrr-tokens"
    assert "test.wrr" in ei.value.detail


def test_check_now_outside_dispatch():
    sim = Simulator(sanitize=True)
    sim.check_now()  # nothing tracked: clean
    wrr = TokenWRR(2, 2)
    sim.sanitizer.track_wrr(wrr)
    wrr.write_tokens = -1
    with pytest.raises(SanitizerError):
        sim.check_now()


# -- FTL mapping consistency --------------------------------------------------

def _written_ftl() -> FTL:
    ftl = FTL(FAST_SSD)
    # Two passes over the same LPNs: the second invalidates the first's
    # pages, leaving fully-written victim blocks for GC to reclaim.
    span = 4 * FAST_SSD.pages_per_block
    for _ in range(2):
        for lpn in range(span):
            ftl.allocate_write(lpn)
    return ftl


def test_ftl_mapping_walk_detects_forward_reverse_mismatch():
    ftl = _written_ftl()
    assert ftl_mapping_violation(ftl) is None
    lpn, (chip, block, page) = next(iter(ftl._map.items()))
    ftl._map[lpn] = (chip, block, page + 1000)
    assert ftl_mapping_violation(ftl) is not None


def test_gc_hook_raises_on_corrupted_map():
    ftl = _written_ftl()
    sanitizer = Sanitizer()
    sanitizer.track_ftl(ftl)

    victim = None
    for chip_index in range(FAST_SSD.n_chips):
        got = ftl.begin_gc(chip_index)
        if got is not None:
            victim = (chip_index, *got)
            break
    assert victim is not None, "no GC victim despite full blocks"
    chip_index, block_id, valid_lpns = victim
    for lpn in valid_lpns:
        ftl.gc_relocate(lpn, chip_index, block_id)

    lpn, (chip, block, page) = next(iter(ftl._map.items()))
    ftl._map[lpn] = (chip, block, page + 1000)
    with pytest.raises(SanitizerError) as ei:
        ftl.finish_gc(chip_index, block_id)
    assert ei.value.invariant == "ftl-mapping"


def test_gc_hook_is_clean_on_correct_gc():
    ftl = _written_ftl()
    sanitizer = Sanitizer()
    sanitizer.track_ftl(ftl)
    victim = None
    for chip_index in range(FAST_SSD.n_chips):
        got = ftl.begin_gc(chip_index)
        if got is not None:
            victim = (chip_index, *got)
            break
    assert victim is not None
    chip_index, block_id, valid_lpns = victim
    for lpn in valid_lpns:
        ftl.gc_relocate(lpn, chip_index, block_id)
    ftl.finish_gc(chip_index, block_id)  # must not raise
    assert ftl_mapping_violation(ftl) is None


# -- transparency -------------------------------------------------------------

def test_sanitized_incast_is_bit_identical_and_clean():
    plain, plain_sim, plain_net = run_incast_cell(
        duration_ns=200 * US, sim=Simulator(trace=True)
    )
    checked, checked_sim, checked_net = run_incast_cell(
        duration_ns=200 * US, sim=Simulator(trace=True, sanitize=True)
    )
    assert plain_sim.dispatch_log == checked_sim.dispatch_log
    assert incast_outputs(plain_net) == incast_outputs(checked_net)
    assert plain.events == checked.events
    assert checked_sim.sanitizer.events_checked == checked.events


def test_max_events_valve_still_works_sanitized():
    sim = Simulator(sanitize=True)
    _tick(sim, depth=100)
    with pytest.raises(MaxEventsExceeded):
        sim.run(max_events=5)
    assert sim.events_dispatched == 5


# -- stride sampling ----------------------------------------------------------

def test_parse_stride():
    assert parse_stride(True) == 1
    assert parse_stride("1") == 1
    assert parse_stride("stride:1") == 1
    assert parse_stride("stride:64") == 64
    assert parse_stride("STRIDE:8") == 8
    with pytest.raises(ValueError):
        parse_stride("stride:0")
    with pytest.raises(ValueError):
        parse_stride("stride:x")


def test_stride_kwarg_and_env_promote_construction(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sim = Simulator(sanitize="stride:16")
    assert isinstance(sim, SanitizingSimulator)
    assert sim.check_stride == 16
    monkeypatch.setenv("REPRO_SANITIZE", "stride:8")
    sim = Simulator()
    assert isinstance(sim, SanitizingSimulator)
    assert sim.check_stride == 8


def _corrupting_cell(corrupt_at_tick, depth):
    """Scenario factory: a tick chain that corrupts a tracked WRR.

    Returns ``scenario(sanitize)`` for :func:`escalate`: builds a fresh
    simulator, runs ``depth`` self-rescheduling ticks, and at tick index
    ``corrupt_at_tick`` (a specific simulated instant, deterministic
    across re-runs) pushes a tracked TokenWRR's balance out of bounds —
    a *sticky* corruption, exactly the class stride sampling is allowed
    to catch late but never to miss.
    """

    def scenario(sanitize):
        sim = Simulator(sanitize=sanitize)
        wrr = TokenWRR(2, 4)
        sim.sanitizer.track_wrr(wrr, name="strided.wrr")
        state = {"n": 0}

        def tick() -> None:
            state["n"] += 1
            if state["n"] == corrupt_at_tick:
                wrr.read_tokens = 99
            if state["n"] < depth:
                sim.schedule(10, tick)

        sim.schedule(1, tick)
        sim.run()
        return sim

    return scenario


@pytest.mark.parametrize("stride", [1, 2, 3, 5, 7, 16, 33, 64])
def test_stride_catches_sticky_violation_for_every_stride(stride):
    """A violation at event N is caught by ``stride:K`` for every K <= N.

    The mid-run sampled sweep fires at events K, 2K, ...; a sticky
    corruption planted at event N <= the run length is therefore seen
    at the first multiple of K past N — and the end-of-run full sweep
    backstops even a window the run ended inside.
    """
    scenario = _corrupting_cell(corrupt_at_tick=64, depth=100)
    with pytest.raises(SanitizerError) as ei:
        scenario(f"stride:{stride}")
    assert ei.value.invariant == "wrr-tokens"
    assert "strided.wrr" in ei.value.detail


def test_stride_larger_than_run_caught_by_end_sweep():
    """K beyond the event count: only the end-of-run sweep can fire."""
    scenario = _corrupting_cell(corrupt_at_tick=5, depth=10)
    with pytest.raises(SanitizerError) as ei:
        scenario("stride:100000")
    assert "end-of-run sweep" in ei.value.detail


def test_strided_detection_is_coarse_then_escalation_is_exact():
    """Stride localises late; ``escalate`` replays full and pinpoints.

    The corruption lands at tick 64 (t=631); stride:48's next sampled
    sweep is event 96 — the coarse error must carry the *later* instant,
    and the full-fidelity replay must stop at exactly t=631.
    """
    scenario = _corrupting_cell(corrupt_at_tick=64, depth=200)
    corrupt_time = 1 + 63 * 10  # tick 1 fires at t=1, then +10 each
    with pytest.raises(SanitizerError) as coarse:
        scenario("stride:48")
    assert coarse.value.time_ns > corrupt_time
    with pytest.raises(SanitizerError) as exact:
        escalate(scenario, stride=48)
    assert exact.value.time_ns == corrupt_time
    assert exact.value.site and "tick" in exact.value.site
    # The exact error chains back to the coarse strided one.
    assert isinstance(exact.value.__context__, SanitizerError)


def test_escalate_returns_result_when_clean():
    scenario = _corrupting_cell(corrupt_at_tick=10**9, depth=50)
    sim = escalate(scenario, stride=8)
    assert sim.events_dispatched == 50


def test_strided_incast_is_bit_identical_to_unsanitized():
    """A clean ``stride:64`` incast run == the plain engine, byte for byte.

    Same dispatch log (the engine logs batch members individually, so
    coalescing differences cannot hide here) and same externally
    visible outputs — the strided sanitizer is a pure observer.
    """
    plain, plain_sim, plain_net = run_incast_cell(
        duration_ns=200 * US, sim=Simulator(trace=True)
    )
    strided, strided_sim, strided_net = run_incast_cell(
        duration_ns=200 * US, sim=Simulator(trace=True, sanitize="stride:64")
    )
    assert plain_sim.dispatch_log == strided_sim.dispatch_log
    assert incast_outputs(plain_net) == incast_outputs(strided_net)
    assert plain.events == strided.events
    # ... while checking only ~1/64th of the events mid-run.
    checked = strided_sim.sanitizer.events_checked
    assert checked < strided.events // 32
    assert checked >= strided.events // 64


def test_stride_countdown_survives_run_boundaries():
    """Sampling phase carries across run() calls, not reset per call."""
    sim = Simulator(sanitize="stride:10")
    _tick(sim, depth=25)
    sim.run(until=8 * 10)  # 8 events: mid-window
    first_leg = sim.sanitizer.events_checked
    sim.run()
    # 25 events total -> exactly 2 mid-run sweeps (at events 10 and 20)
    # plus one end-of-run sweep per run() call that dispatched.
    assert sim.sanitizer.events_checked - first_leg >= 1
    assert sim.events_dispatched == 25


# -- per-invariant cost counters ----------------------------------------------

def test_cost_counters_and_profile():
    sim = Simulator(sanitize=True)
    sim.sanitizer.enable_cost_tracking()
    net = build_star(sim, ["a", "b"], rate_gbps=40.0, delay_ns=US)
    net.hosts["a"].send_message("b", 64 * 1024)
    sim.run()
    sanitizer = sim.sanitizer
    assert sanitizer.events_checked == sim.events_dispatched
    for group in ("links", "switches", "nics", "wrrs"):
        assert sanitizer.check_counts[group] == sanitizer.events_checked
        assert sanitizer.violation_counts[group] == 0
    # Cost tracking actually timed the sweeps.
    assert sum(sanitizer.check_ns.values()) > 0
    profile = SanitizerCostProfile.from_simulator(sim)
    assert profile.sampling_rate == pytest.approx(1.0)
    assert profile.as_dict()["check_counts"] == sanitizer.check_counts
    text = profile.format()
    assert "links" in text and "violations" in text and "ns" in text


def test_cost_counters_untimed_by_default():
    sim = Simulator(sanitize="stride:4")
    _tick(sim, depth=20)
    sim.run()
    assert sum(sim.sanitizer.check_ns.values()) == 0  # no clock reads
    assert sim.sanitizer.events_checked > 0
    profile = SanitizerCostProfile.from_simulator(sim)
    assert 0.0 < profile.sampling_rate < 1.0
    assert " ns " not in profile.format().split("per invariant")[1]


def test_cost_profile_requires_sanitizer():
    with pytest.raises(ValueError):
        SanitizerCostProfile.from_simulator(Simulator())


def test_violation_counter_increments():
    sim = Simulator(sanitize=True)
    wrr = TokenWRR(1, 4)
    sim.sanitizer.track_wrr(wrr)
    _tick(sim, depth=5)
    sim.schedule(20, lambda: setattr(wrr, "read_tokens", 7))
    with pytest.raises(SanitizerError):
        sim.run()
    assert sim.sanitizer.violation_counts["wrrs"] == 1
