"""Fixture: SIM302 clean — the cross-shard delivery is delayed by the
link's propagation delay (``self.delay_ns``), exactly the conservative
lookahead that makes the crossing safe.  Lint together with
``sim302_switch.py``.
"""
# simlint: package=repro.net.link

from repro.net.switch import Switch


class Link:
    __slots__ = ("sim", "peer", "delay_ns")

    def __init__(self, sim, peer: Switch) -> None:
        self.sim = sim
        self.peer = peer
        self.delay_ns = 500

    def send(self, size: int) -> None:
        self.sim.schedule(self.delay_ns, self._deliver, size)

    def _deliver(self, size: int) -> None:
        self.peer.receive(size)
