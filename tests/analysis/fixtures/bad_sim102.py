"""Fixture: SIM102 — a ms quantity passed to an ns parameter."""
# simlint: package=repro.sim.fake_call


def wait(duration_ns: int) -> None:
    del duration_ns


def arm(timeout_ms: int) -> None:
    wait(timeout_ms)
