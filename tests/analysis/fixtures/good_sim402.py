"""Fixture: SIM402 clean — ids flow through a registry-named
:class:`~repro.sim.serial.SerialCounter` (checkpointed out of band)
and per-event state lives on the instance, inside the root set."""
# simlint: package=repro.net.switch
from repro.sim.serial import SerialCounter

_ids = SerialCounter("switch.fixture")


class Switch:
    __slots__ = ("sim", "log")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.log = {}

    def start(self) -> None:
        self.sim.schedule(2, self._drain)

    def _drain(self) -> None:
        self.log[next(_ids)] = 1
