"""Fixture: SIM104 — bytes divided by a raw gbps rate (off by 8e9)."""
# simlint: package=repro.sim.fake_rate


def gap(size_bytes: int, rate_gbps: float) -> float:
    return size_bytes / rate_gbps
