"""Fixture: SIM304 — order-sensitive float accumulation over a set in
a dispatch-reachable callback.  The module lives *outside* the
simulation packages (SIM003 does not apply here), but the callback is
scheduled, so a salted set order changes the sum bit-for-bit between
replays.
"""
# simlint: package=repro.tools.collect


class Collector:
    __slots__ = ("sim", "pending", "total")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.pending = set()
        self.total = 0.0

    def start(self) -> None:
        self.sim.schedule(3, self._tick)

    def _tick(self) -> None:
        total = 0.0
        for latency in self.pending:
            total += latency
        self.total = total
