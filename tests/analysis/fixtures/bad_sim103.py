"""Fixture: SIM103 — an ``_ns``-named function returns a ms value."""
# simlint: package=repro.sim.fake_ret


def window_ns(window_ms: int) -> int:
    return window_ms
