"""Fixture: SIM303 clean — one spawned child stream per component."""
# simlint: package=repro.net.dcqcn

from repro.sim.rng import spawn_rngs


class DCQCNRateControl:
    __slots__ = ("rng",)

    def __init__(self, rng) -> None:
        self.rng = rng


def build_pair(seed: int):
    rng_a, rng_b = spawn_rngs(seed, 2)
    first = DCQCNRateControl(rng_a)
    second = DCQCNRateControl(rng_b)
    return first, second
