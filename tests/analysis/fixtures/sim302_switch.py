"""Companion module for the SIM302 fixtures: the far-side switch.

Lives in a separate module (``repro.net.switch``) because SIM302 is
about *cross-shard* reach — the link-domain fixture schedules a
callback whose call tree lands here, in the switch domain, which is
never co-resident with a link's transmit side.  Lint it together with
``bad_sim302.py`` / ``good_sim302.py``.
"""
# simlint: package=repro.net.switch


class Switch:
    __slots__ = ("rx_bytes",)

    def __init__(self) -> None:
        self.rx_bytes = 0

    def receive(self, size: int) -> None:
        self.rx_bytes += size
