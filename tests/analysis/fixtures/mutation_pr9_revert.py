"""Mutation gate: a fixture-copy revert of the representative PR-9
closure-free refactor in ``repro.net.nic`` — a lambda back at a
schedule site (line 32) and flow ids drawn from a raw
``itertools.count`` stream (line 35).  The snapshot analyzer must flag
exactly SIM401 at the lambda and SIM402 at the ``next()`` — this is
the regression that would silently break every checkpoint restore.

The stub classes exist only to satisfy the ``repro.net.nic`` slots
manifest."""
# simlint: package=repro.net.nic
from itertools import count

_flow_ids = count()


class _Message:
    __slots__ = ()


class _FlowRateFan:
    __slots__ = ()


class Flow:
    __slots__ = ("sim", "nic")

    def __init__(self, sim, nic) -> None:
        self.sim = sim
        self.nic = nic

    def start(self) -> None:
        self.sim.schedule_anon(3, lambda: self.pump())

    def pump(self) -> None:
        self.nic.admit(next(_flow_ids))


class NIC:
    __slots__ = ("queue",)

    def __init__(self) -> None:
        self.queue = []

    def admit(self, flow_id) -> None:
        self.queue.append(flow_id)
