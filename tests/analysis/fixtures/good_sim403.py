"""Fixture: SIM403 clean — the only class owning heap callbacks is
``Switch``, declared in ``COMPONENT_CLASSES``, with no pickle hooks."""
# simlint: package=repro.net.switch


class Switch:
    __slots__ = ("sim", "backlog")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.backlog = 0

    def start(self) -> None:
        self.sim.schedule(2, self._drain)

    def _drain(self) -> None:
        self.backlog = 0
