"""Fixture: SIM004 — a manifest-listed hot-path class without __slots__."""
# simlint: package=repro.net.packet


class Packet:
    def __init__(self, size_bytes: int) -> None:
        self.size_bytes = size_bytes
