"""Fixture: SIM002 — unmanaged randomness in a simulation package."""
# simlint: package=repro.net.fake_rng

import random

import numpy as np


def draw() -> float:
    rng = np.random.default_rng(0)
    return rng.random() + random.random()
