"""Fixture: SIM301 clean — the cross-domain effect goes through the
NIC's public API, which absorbs the NIC's own-state writes."""
# simlint: package=repro.net.nic


class _Message:
    # Present only to satisfy the repro.net.nic slots manifest.
    __slots__ = ()


class _FlowRateFan:
    # Present only to satisfy the repro.net.nic slots manifest.
    __slots__ = ()


class NIC:
    __slots__ = ("credits",)

    def __init__(self) -> None:
        self.credits = 0

    def bump(self, amount: int) -> None:
        self.credits += amount


class Flow:
    __slots__ = ("sim", "nic")

    def __init__(self, sim, nic: NIC) -> None:
        self.sim = sim
        self.nic = nic

    def start(self) -> None:
        self.sim.schedule(2, self._on_credit)

    def _on_credit(self) -> None:
        self.nic.bump(1)
