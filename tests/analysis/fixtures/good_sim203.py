"""Fixture: SIM203 clean — the same-timestamp ordering is documented."""
# simlint: package=repro.sim.fake_pump


class Pump:
    __slots__ = ("sim",)

    def __init__(self, sim) -> None:
        self.sim = sim

    def kick(self) -> None:
        # Same-timestamp FIFO tie-break: drain runs after any enqueue
        # already scheduled for "now".
        self.sim.schedule(0, self._drain)

    def _drain(self) -> None:
        pass
