"""Fixture: SIM202 — a callback reaches into a foreign component.

The ``package=`` directive names this module ``repro.net.link`` so the
local ``Link`` lands on the component manifest, exactly as the real one
does.
"""
# simlint: package=repro.net.link


class Link:
    __slots__ = ("queued_bytes",)

    def __init__(self) -> None:
        self.queued_bytes = 0


class Meddler:
    __slots__ = ("sim", "link")

    def __init__(self, sim, link: Link) -> None:
        self.sim = sim
        self.link = link

    def start(self) -> None:
        self.sim.schedule(1, self._poke)

    def _poke(self) -> None:
        self.link.queued_bytes = 0
