"""Fixture: directive scoping — an ``ignore[...]`` buried *inside* a
function body (below the first statement) does not mute anything: it
must sit on the offending line, or on the decorator/signature/leading
comment block to scope to the body."""
# simlint: package=repro.sim.rngprobe

import numpy as np


def _traced(fn):
    return fn


@_traced
def raw_probe():
    seed = 7
    # simlint: ignore[SIM002]
    return np.random.default_rng(seed)
