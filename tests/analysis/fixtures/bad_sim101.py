"""Fixture: SIM101 — arithmetic mixes ns with ms."""
# simlint: package=repro.sim.fake_mix


def total_wait(delay_ns: int, timeout_ms: int) -> int:
    return delay_ns + timeout_ms
