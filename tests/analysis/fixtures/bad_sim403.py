"""Fixture: SIM403 — manifest & reducer drift: ``Rogue`` puts its
bound methods on the event heap without being declared in the
checkpoint manifest, and ``Switch`` (declared) defines a
``__getstate__`` hook the checkpoint pickler would diverge on."""
# simlint: package=repro.net.switch


class Rogue:
    __slots__ = ("sim",)

    def __init__(self, sim) -> None:
        self.sim = sim

    def start(self) -> None:
        self.sim.schedule(2, self._tick)

    def _tick(self) -> None:
        self.start()


class Switch:
    __slots__ = ("sim", "backlog")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.backlog = 0

    def start(self) -> None:
        self.sim.schedule(2, self._drain)

    def _drain(self) -> None:
        self.backlog = 0

    def __getstate__(self):
        return {"backlog": self.backlog}
