"""Fixture: SIM304 clean — the set is sorted before accumulating, so
the sum is replay-stable regardless of hash salting."""
# simlint: package=repro.tools.collect


class Collector:
    __slots__ = ("sim", "pending", "total")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.pending = set()
        self.total = 0.0

    def start(self) -> None:
        self.sim.schedule(3, self._tick)

    def _tick(self) -> None:
        total = 0.0
        for latency in sorted(self.pending):
            total += latency
        self.total = total
