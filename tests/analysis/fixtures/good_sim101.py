"""Fixture: SIM101 clean — the ms count is converted before the add."""
# simlint: package=repro.sim.fake_mix

from repro.sim.units import MS


def total_wait_ns(delay_ns: int, timeout_ms: int) -> int:
    return delay_ns + timeout_ms * MS
