"""Fixture: SIM401 clean — bound-method callbacks (re-bindable by
``__func__`` identity through the MRO) and a ``functools.partial``
over picklable captures only."""
# simlint: package=repro.net.switch
from functools import partial


class Switch:
    __slots__ = ("sim", "backlog")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.backlog = 0

    def start(self) -> None:
        self.sim.schedule(2, self._drain)
        self.sim.schedule(4, partial(self._note, 7))

    def _drain(self) -> None:
        self.backlog = 0

    def _note(self, amount) -> None:
        self.backlog += amount
