"""Fixture: SIM104 clean — the rate goes through the converter."""
# simlint: package=repro.sim.fake_rate

from repro.sim.units import gbps_to_bytes_per_ns


def gap_ns(size_bytes: int, rate_gbps: float) -> float:
    return size_bytes / gbps_to_bytes_per_ns(rate_gbps)
