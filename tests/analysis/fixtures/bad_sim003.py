"""Fixture: SIM003 — iterating salted-order containers in sim code."""
# simlint: package=repro.net.fake_iter


def drain(table: dict) -> int:
    ready = {3, 1, 2}
    total = 0
    for flow_id in ready:
        total += flow_id
    for key in table.keys():
        total += key
    return total
