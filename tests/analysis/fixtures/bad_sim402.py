"""Fixture: SIM402 — simulation state outside the ``{sim, world,
counters}`` checkpoint root set, written from dispatch-reachable code:
a raw ``itertools.count`` stream, a module-level dict, a class
attribute, and a mutable default-argument cache."""
# simlint: package=repro.net.switch
from itertools import count

_EVENT_LOG: dict[int, int] = {}
_ids = count()


class Switch:
    __slots__ = ("sim",)

    generation = 0

    def __init__(self, sim) -> None:
        self.sim = sim

    def start(self) -> None:
        self.sim.schedule(2, self._drain)
        self.sim.schedule(2, self._mark)
        self.sim.schedule(2, self._route)

    def _drain(self) -> None:
        eid = next(_ids)
        _EVENT_LOG[eid] = 1

    def _mark(self) -> None:
        Switch.generation += 1

    def _route(self, cache={}) -> None:
        cache[0] = 1
