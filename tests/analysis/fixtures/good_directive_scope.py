"""Fixture: directive scoping — an ``ignore[...]`` on a decorator line
or a multi-line ``def`` signature covers the whole function body."""
# simlint: package=repro.sim.rngprobe

import numpy as np


def _traced(fn):
    return fn


@_traced
# simlint: ignore[SIM002]
def raw_stream():
    return np.random.default_rng(7)


def raw_stream_scaled(
    seed,
    offset,
):  # simlint: ignore[SIM002]
    return np.random.default_rng(seed + offset)
