"""Fixture: SIM003 clean — sorted snapshots and insertion-order dicts."""
# simlint: package=repro.net.fake_iter


def drain(table: dict) -> int:
    ready = {3, 1, 2}
    total = 0
    for flow_id in sorted(ready):
        total += flow_id
    for key in table:  # dict iteration keeps insertion order
        total += key
    return total
