"""Fixture: SIM404 clean — the Simulator is constructed inside the
``build`` factory handed to ``resume_or_start``, save precedes load,
and the failure recipe is consumed by a replay entry point."""
# simlint: package=repro.experiments.capacity
import json
from pathlib import Path

from repro.sim.checkpoint import load, resume_or_start, save
from repro.sim.engine import Simulator


def resume(directory):
    def build():
        return Simulator(), {}

    return resume_or_start(directory, build)


def roundtrip(path, sim, world):
    save(path, sim, world)
    return load(path)


def replay_from_recipe(directory):
    return json.loads(Path(directory, "failure.json").read_text())
