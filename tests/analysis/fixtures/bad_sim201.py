"""Fixture: SIM201 — I/O inside a dispatch-reachable callback."""
# simlint: package=repro.sim.fake_io


class Ticker:
    __slots__ = ("sim", "ticks")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.ticks = 0

    def start(self) -> None:
        self.sim.schedule(1, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        print(self.ticks)
