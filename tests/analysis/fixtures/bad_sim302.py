"""Fixture: SIM302 — a link-domain callback schedules a delivery whose
call tree touches the switch domain (the far side of the wire) with a
constant delay: nothing proves the delay covers the link's propagation
delay, so a sharded run could receive the effect before its clock is
allowed to.  Lint together with ``sim302_switch.py``.
"""
# simlint: package=repro.net.link

from repro.net.switch import Switch


class Link:
    __slots__ = ("sim", "peer", "delay_ns")

    def __init__(self, sim, peer: Switch) -> None:
        self.sim = sim
        self.peer = peer
        self.delay_ns = 500

    def send(self, size: int) -> None:
        self.sim.schedule(5, self._deliver, size)

    def _deliver(self, size: int) -> None:
        self.peer.receive(size)
