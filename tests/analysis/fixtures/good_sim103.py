"""Fixture: SIM103 clean — the return value is converted to ns."""
# simlint: package=repro.sim.fake_ret

from repro.sim.units import MS


def window_ns(window_ms: int) -> int:
    return window_ms * MS
