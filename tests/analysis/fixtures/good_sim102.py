"""Fixture: SIM102 clean — converted at the call boundary."""
# simlint: package=repro.sim.fake_call

from repro.sim.units import MS


def wait(duration_ns: int) -> None:
    del duration_ns


def arm(timeout_ms: int) -> None:
    wait(timeout_ms * MS)
