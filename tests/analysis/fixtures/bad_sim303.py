"""Fixture: SIM303 — one rng stream is shared across two component
instances.  Both rate controllers now consume from the same sequence,
so either one's draw order depends on the other's schedule — exactly
the coupling that breaks per-shard determinism.
"""
# simlint: package=repro.net.dcqcn

from repro.sim.rng import make_rng


class DCQCNRateControl:
    __slots__ = ("rng",)

    def __init__(self, rng) -> None:
        self.rng = rng


def build_pair(seed: int):
    shared = make_rng(seed)
    first = DCQCNRateControl(shared)
    second = DCQCNRateControl(shared)
    return first, second
