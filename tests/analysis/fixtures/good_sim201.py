"""Fixture: SIM201 clean — the callback records, the caller reports."""
# simlint: package=repro.sim.fake_io


class Ticker:
    __slots__ = ("sim", "log")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.log = []

    def start(self) -> None:
        self.sim.schedule(1, self._tick)

    def _tick(self) -> None:
        self.log.append(1)
