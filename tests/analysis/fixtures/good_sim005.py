"""Fixture: SIM005 clean — specific exception, loud failure."""
# simlint: package=repro.sim.fake_dispatch


def dispatch(callback) -> None:
    try:
        callback()
    except ValueError as exc:
        raise RuntimeError("callback failed mid-dispatch") from exc
