"""Fixture: SIM202 clean — the effect goes through the component's API."""
# simlint: package=repro.net.link


class Link:
    __slots__ = ("queued_bytes",)

    def __init__(self) -> None:
        self.queued_bytes = 0

    def drain(self) -> None:
        self.queued_bytes = 0


class Meddler:
    __slots__ = ("sim", "link")

    def __init__(self, sim, link: Link) -> None:
        self.sim = sim
        self.link = link

    def start(self) -> None:
        self.sim.schedule(1, self._poke)

    def _poke(self) -> None:
        self.link.drain()
