"""Fixture: SIM301 — a flow-domain callback reaches a *private* NIC
method that writes NIC state: a cross-domain effect outside the
declared API, invisible to per-function SIM202 because the store is
one call deep.

The ``package=`` directive names this module ``repro.net.nic`` so both
local classes land on the component manifest (Flow -> flow domain,
NIC -> nic domain).
"""
# simlint: package=repro.net.nic


class _Message:
    # Present only to satisfy the repro.net.nic slots manifest.
    __slots__ = ()


class _FlowRateFan:
    # Present only to satisfy the repro.net.nic slots manifest.
    __slots__ = ()


class NIC:
    __slots__ = ("credits",)

    def __init__(self) -> None:
        self.credits = 0

    def _bump(self, amount: int) -> None:
        self.credits += amount


class Flow:
    __slots__ = ("sim", "nic")

    def __init__(self, sim, nic: NIC) -> None:
        self.sim = sim
        self.nic = nic

    def start(self) -> None:
        self.sim.schedule(2, self._on_credit)

    def _on_credit(self) -> None:
        self.nic._bump(1)
