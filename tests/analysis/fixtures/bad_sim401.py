"""Fixture: SIM401 — heap callbacks the checkpoint pickler cannot
re-bind: a lambda at a schedule site, and a ``functools.partial``
capturing an open file."""
# simlint: package=repro.net.switch
from functools import partial


class Switch:
    __slots__ = ("sim", "backlog")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.backlog = 0

    def start(self) -> None:
        self.sim.schedule(2, lambda: self._drain())
        sink = open("/tmp/switch.log", "w")
        self.sim.schedule(4, partial(self._note, sink))

    def _drain(self) -> None:
        self.backlog = 0

    def _note(self, sink) -> None:
        self.backlog += 1
