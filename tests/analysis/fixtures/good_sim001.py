"""Fixture: SIM001 clean — only the simulated clock is observed."""
# simlint: package=repro.sim.fake_clock


def stamp(sim) -> int:
    return sim.now
