"""Fixture: SIM002 clean — randomness derived through repro.sim.rng."""
# simlint: package=repro.net.fake_rng

from repro.sim.rng import make_rng


def draw(seed: int) -> float:
    rng = make_rng(seed)
    return float(rng.random())
