"""Fixture: SIM203 — zero-delay self-reschedule with no tie-break note."""
# simlint: package=repro.sim.fake_pump


class Pump:
    __slots__ = ("sim",)

    def __init__(self, sim) -> None:
        self.sim = sim

    def kick(self) -> None:
        self.sim.schedule(0, self._drain)

    def _drain(self) -> None:
        pass
