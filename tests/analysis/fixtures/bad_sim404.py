"""Fixture: SIM404 — checkpoint lifecycle misuse: manual ``Simulator``
construction beside ``resume_or_start``, ``load`` lexically before
``save`` (clobbering the checkpoint being read), a direct
``restore_counters`` call, and a ``failure.json`` recipe consumed
outside a replay entry point."""
# simlint: package=repro.experiments.capacity
import json
from pathlib import Path

from repro.sim.checkpoint import load, resume_or_start, save
from repro.sim.engine import Simulator
from repro.sim.serial import restore_counters


def build():
    return Simulator(), {}


def resume_with_manual_sim(directory):
    probe = Simulator()
    sim, world = resume_or_start(directory, build)
    return probe, sim, world


def clobber_roundtrip(path):
    sim, world = load(path)
    save(path, sim, world)
    return sim


def adopt_counters(counters):
    restore_counters(counters)


def inspect_recipe(directory):
    return json.loads(Path(directory, "failure.json").read_text())
