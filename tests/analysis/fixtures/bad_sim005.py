"""Fixture: SIM005 — a dispatch path swallowing exceptions."""
# simlint: package=repro.sim.fake_dispatch


def dispatch(callback) -> None:
    try:
        callback()
    except:  # noqa: E722
        pass
