"""Fixture: SIM004 clean — the manifest class declares __slots__."""
# simlint: package=repro.net.packet


class Packet:
    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes: int) -> None:
        self.size_bytes = size_bytes
