"""Fixture: SIM001 — wall-clock access inside a simulation package."""
# simlint: package=repro.sim.fake_clock

import time


def stamp() -> float:
    return time.perf_counter()
