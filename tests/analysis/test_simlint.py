"""simlint: every rule fires on its bad fixture, stays quiet on the good
one, and the repository's own ``src/`` tree is violation-free."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.simlint import (
    RULES,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
    module_name_of,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"

CHECKED_RULES = ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005")


@pytest.mark.parametrize("rule", CHECKED_RULES)
def test_bad_fixture_trips_its_rule(rule):
    number = rule[len("SIM"):]
    violations = lint_file(FIXTURES / f"bad_sim{number}.py")
    assert any(v.rule == rule for v in violations), violations
    # A bad fixture must not trip *other* rules — each isolates one.
    assert {v.rule for v in violations} == {rule}


@pytest.mark.parametrize("rule", CHECKED_RULES)
def test_good_fixture_is_clean(rule):
    number = rule[len("SIM"):]
    assert lint_file(FIXTURES / f"good_sim{number}.py") == []


def test_repo_src_tree_is_clean():
    assert lint_paths([SRC]) == []


def test_every_rule_has_a_description():
    for rule in CHECKED_RULES:
        assert rule in RULES


def test_parse_error_reports_sim999(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("# simlint: package=repro.sim.x\ndef (:\n")
    violations = lint_file(broken)
    assert [v.rule for v in violations] == ["SIM999"]


def test_files_outside_src_without_directive_are_skipped(tmp_path):
    scratch = tmp_path / "scratch.py"
    scratch.write_text("import time\n")
    assert lint_file(scratch) == []


def test_directive_beats_path_resolution(tmp_path):
    path = tmp_path / "anywhere.py"
    source = "# simlint: package=repro.net.fake\n"
    assert module_name_of(path, source) == "repro.net.fake"


def test_path_resolution_from_src_anchor():
    path = SRC / "repro" / "sim" / "engine.py"
    assert module_name_of(path, "") == "repro.sim.engine"


def test_line_suppression_by_rule_and_wildcard():
    base = "# simlint: package=repro.sim.x\nimport time{}\n"
    assert any(
        v.rule == "SIM001" for v in lint_source(base.format(""), Path("f.py"))
    )
    for directive in ("  # simlint: ignore[SIM001]", "  # simlint: ignore[*]"):
        assert lint_source(base.format(directive), Path("f.py")) == []


def test_suppression_is_per_line():
    source = (
        "# simlint: package=repro.sim.x\n"
        "import time  # simlint: ignore[SIM001]\n"
        "import datetime\n"
    )
    violations = lint_source(source, Path("f.py"))
    assert [(v.rule, v.line) for v in violations] == [("SIM001", 3)]


def test_sim002_scope_includes_ml_and_exempts_rng_module():
    call = "import numpy as np\nrng = np.random.default_rng(3)\n"
    in_ml = "# simlint: package=repro.ml.forest\n" + call
    assert any(v.rule == "SIM002" for v in lint_source(in_ml, Path("f.py")))
    in_rng = "# simlint: package=repro.sim.rng\n" + call
    assert lint_source(in_rng, Path("f.py")) == []


def test_sim003_tracks_self_attributes():
    source = (
        "# simlint: package=repro.net.x\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.ids = set()\n"
        "    def drain(self):\n"
        "        return [i for i in self.ids]\n"
    )
    violations = lint_source(source, Path("f.py"))
    assert [v.rule for v in violations] == ["SIM003"]


def test_sim003_does_not_cross_objects():
    # ``node.names`` must not match a set-typed ``self.names`` elsewhere.
    source = (
        "# simlint: package=repro.net.x\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.names = set()\n"
        "    def walk(self, node):\n"
        "        return [a for a in node.names]\n"
    )
    assert lint_source(source, Path("f.py")) == []


def test_sim004_flags_manifest_drift():
    source = "# simlint: package=repro.net.packet\nclass NotPacket:\n    pass\n"
    violations = lint_source(source, Path("f.py"))
    assert any(v.rule == "SIM004" and "not found" in v.message for v in violations)


def test_sim004_accepts_dataclass_slots():
    source = (
        "# simlint: package=repro.net.packet\n"
        "from dataclasses import dataclass\n"
        "@dataclass(slots=True)\n"
        "class Packet:\n"
        "    size_bytes: int\n"
    )
    assert lint_source(source, Path("f.py")) == []


def test_text_and_json_formats():
    violations = lint_file(FIXTURES / "bad_sim001.py")
    text = format_violations(violations)
    assert "SIM001" in text and "violation(s)" in text
    parsed = json.loads(format_violations(violations, fmt="json"))
    assert parsed[0]["rule"] == "SIM001"
    assert json.loads(format_violations([], fmt="json")) == []


def test_cli_exit_codes(capsys):
    assert cli_main(["lint", str(SRC)]) == 0
    for rule in CHECKED_RULES:
        number = rule[len("SIM"):]
        bad = str(FIXTURES / f"bad_sim{number}.py")
        assert cli_main(["lint", bad]) == 1
        assert rule in capsys.readouterr().out


def test_cli_json_format(capsys):
    assert cli_main(["lint", "--format", "json", str(FIXTURES / "bad_sim002.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in payload} == {"SIM002"}
