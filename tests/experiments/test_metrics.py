"""Throughput series and §IV-B trimming."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.metrics import (
    ThroughputSeries,
    trim_series,
    trimmed_mean_gbps,
)
from repro.sim.units import GBPS


def test_from_events_bins_bytes():
    events = [(100, 1000), (150, 1000), (1100, 500)]
    s = ThroughputSeries.from_events(events, bin_ns=1000, end_ns=2000)
    assert s.gbps.shape == (2,)
    assert s.gbps[0] == pytest.approx(2000 / 1000 / GBPS)
    assert s.gbps[1] == pytest.approx(500 / 1000 / GBPS)


def test_from_events_ignores_out_of_range():
    events = [(-5, 100), (2500, 100)]
    s = ThroughputSeries.from_events(events, bin_ns=1000, end_ns=2000)
    assert np.all(s.gbps == 0.0)


def test_from_events_partial_last_bin_uses_true_width():
    # end_ns = 1500 with 1000 ns bins: the last bin spans only 500 ns,
    # so 500 bytes inside it is a full 1 B/ns, not half of one.
    events = [(1200, 500)]
    s = ThroughputSeries.from_events(events, bin_ns=1000, end_ns=1500)
    assert s.gbps.shape == (2,)
    assert s.gbps[1] == pytest.approx(500 / 500 / GBPS)


def test_from_events_includes_boundary_event():
    # A completion at exactly t == end_ns belongs to the measured span
    # (runs stopped at the last arrival produce these) — it lands in the
    # final bin instead of being dropped.
    events = [(2000, 800)]
    s = ThroughputSeries.from_events(events, bin_ns=1000, end_ns=2000)
    assert s.gbps[1] == pytest.approx(800 / 1000 / GBPS)


def test_partial_bin_conserves_bytes():
    events = [(100, 1000), (1499, 300), (1500, 200)]
    s = ThroughputSeries.from_events(events, bin_ns=1000, end_ns=1500)
    widths = np.array([1000, 500])
    assert (s.gbps * widths * GBPS).sum() == pytest.approx(1500)


def test_from_events_validation():
    with pytest.raises(ValueError):
        ThroughputSeries.from_events([], bin_ns=0, end_ns=100)
    with pytest.raises(ValueError):
        ThroughputSeries.from_events([], bin_ns=10, end_ns=0)


def test_series_addition():
    a = ThroughputSeries.from_events([(0, 1000)], 1000, 2000)
    b = ThroughputSeries.from_events([(0, 500)], 1000, 2000)
    c = a + b
    assert c.gbps[0] == pytest.approx(a.gbps[0] + b.gbps[0])


def test_series_addition_requires_same_bins():
    a = ThroughputSeries.from_events([], 1000, 2000)
    b = ThroughputSeries.from_events([], 1000, 3000)
    with pytest.raises(ValueError):
        _ = a + b


def test_trim_drops_head_and_tail():
    s = ThroughputSeries(np.arange(10), np.arange(10, dtype=float))
    t = trim_series(s, 0.1)
    assert t.gbps.tolist() == list(range(1, 9))


def test_trim_noop_when_too_short():
    s = ThroughputSeries(np.arange(3), np.arange(3, dtype=float))
    t = trim_series(s, 0.4)
    # 3 - 2*1 = 1 > 0: trims; 0.49 on 2 bins would not.
    s2 = ThroughputSeries(np.arange(2), np.arange(2, dtype=float))
    assert trim_series(s2, 0.49).gbps.size == 2


def test_trim_short_series_noop_returns_full_series():
    # When trimming would leave nothing, the series comes back whole
    # (values and times), not empty — short smoke runs depend on this.
    s = ThroughputSeries(np.arange(2), np.array([3.0, 4.0]))
    t = trim_series(s, 0.49)
    assert np.array_equal(t.gbps, s.gbps)
    assert np.array_equal(t.times_ns, s.times_ns)
    # Single-bin series are likewise untouched at any legal fraction.
    one = ThroughputSeries(np.array([0]), np.array([7.0]))
    assert trim_series(one, 0.4).gbps.tolist() == [7.0]


def test_trim_validation():
    s = ThroughputSeries(np.arange(4), np.zeros(4))
    with pytest.raises(ValueError):
        trim_series(s, 0.5)
    with pytest.raises(ValueError):
        trim_series(s, -0.1)


def test_trimmed_mean_excludes_warmup_spike():
    # Huge spike in the first bin; steady 1000 B/bin afterwards.
    events = [(0, 10**9)] + [(i * 1000 + 1, 1000) for i in range(1, 10)]
    full = ThroughputSeries.from_events(events, 1000, 10_000).mean()
    trimmed = trimmed_mean_gbps(events, 10_000, bin_ns=1000)
    assert trimmed < full / 10


def test_mean_empty_series():
    s = ThroughputSeries(np.array([]), np.array([]))
    assert s.mean() == 0.0


@given(
    st.lists(
        st.tuples(st.integers(0, 9999), st.integers(1, 10**6)),
        min_size=0,
        max_size=100,
    )
)
def test_bins_conserve_bytes_property(events):
    s = ThroughputSeries.from_events(events, 1000, 10_000)
    total = (s.gbps * 1000 * GBPS).sum()
    assert total == pytest.approx(sum(b for _, b in events), rel=1e-9)
