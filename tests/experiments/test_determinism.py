"""Reproducibility: identical seeds ⇒ identical simulations.

The event queue is deterministically ordered and every random draw is
seeded, so whole testbed runs must be bit-for-bit repeatable — the
property that makes paper-reproduction numbers meaningful.
"""

import numpy as np

from repro.experiments.runner import BackgroundTraffic, TestbedConfig, run_testbed
from repro.sim.units import MS
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


def run_once():
    trace = generate_micro_trace(
        MicroWorkloadConfig(3_000, 8 * 1024), n_reads=400, n_writes=400, seed=77
    )
    cfg = TestbedConfig(
        n_targets=2,
        ssd_config=FAST_SSD,
        driver="default",
        background=BackgroundTraffic(start_ns=0, end_ns=2 * MS, rate_gbps=20.0, n_hosts=4),
    )
    return run_testbed(trace, cfg, duration_ns=4 * MS)


def test_identical_runs_produce_identical_series():
    a, b = run_once(), run_once()
    assert np.array_equal(a.read_series.gbps, b.read_series.gbps)
    assert np.array_equal(a.write_series.gbps, b.write_series.gbps)
    assert a.pause_times_ns == b.pause_times_ns
    assert a.sim.events_dispatched == b.sim.events_dispatched


def test_different_workload_seeds_differ():
    t1 = generate_micro_trace(
        MicroWorkloadConfig(3_000, 8 * 1024), n_reads=200, n_writes=200, seed=1
    )
    t2 = generate_micro_trace(
        MicroWorkloadConfig(3_000, 8 * 1024), n_reads=200, n_writes=200, seed=2
    )
    cfg = TestbedConfig(n_targets=1, ssd_config=FAST_SSD, driver="default")
    a = run_testbed(t1, cfg, duration_ns=3 * MS)
    b = run_testbed(t2, cfg, duration_ns=3 * MS)
    assert not np.array_equal(a.read_series.gbps, b.read_series.gbps)
