"""Scheme-comparison helpers (Table IV / Fig 10 drivers), scaled down."""

import pytest

from repro.experiments.comparison import (
    INTENSITY_LEVELS,
    TABLE4_POINTS,
    IncastPoint,
    IntensityLevel,
    SchemeComparison,
    compare_schemes,
)
from repro.experiments.runner import TestbedConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


def test_paper_constants():
    assert [p.label for p in TABLE4_POINTS] == ["2:1", "3:1", "4:1", "4:4"]
    assert [l.label for l in INTENSITY_LEVELS] == ["light", "moderate", "heavy"]
    heavy = INTENSITY_LEVELS[2]
    assert heavy.mean_size_bytes == 44 * 1024
    assert heavy.arrivals_per_ms == 100.0
    assert heavy.interarrival_ns == pytest.approx(10_000)


def test_incast_point_label():
    assert IncastPoint(3, 2).label == "3:2"


def test_compare_schemes_runs_both(tiny_tpm):
    from repro.sim.units import MS

    def make_trace():
        wl = MicroWorkloadConfig(15_000, 8 * 1024)
        return generate_micro_trace(wl, n_reads=400, n_writes=400, seed=9)

    cfg = TestbedConfig(
        n_initiators=1, n_targets=2, ssd_config=FAST_SSD, driver="ssq"
    )
    # Bound the run so trimming does not discard the whole active span.
    cmp = compare_schemes(make_trace, cfg, tiny_tpm, label="t", duration_ns=7 * MS)
    # The only driver swap is default vs ssq+SRC.
    from repro.nvme.driver import DefaultNvmeDriver
    from repro.nvme.ssq import SSQDriver

    assert isinstance(cmp.dcqcn_only.targets[0].drivers[0], DefaultNvmeDriver)
    assert isinstance(cmp.dcqcn_src.targets[0].drivers[0], SSQDriver)
    assert cmp.dcqcn_src.controllers
    assert cmp.only_gbps > 0
    assert cmp.src_gbps > 0
    # The improvement accessor is consistent.
    assert cmp.improvement == pytest.approx(
        (cmp.src_gbps - cmp.only_gbps) / cmp.only_gbps
    )


def test_improvement_handles_zero_baseline():
    class FakeRun:
        def trimmed_aggregated_gbps(self, f):
            return 0.0

    cmp = SchemeComparison(label="z", dcqcn_only=FakeRun(), dcqcn_src=FakeRun())
    assert cmp.improvement == 0.0
