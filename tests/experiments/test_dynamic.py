"""Fig. 9 dynamic-control harness tests (scaled down)."""

import pytest

from repro.core.events import CongestionEvent, EventKind
from repro.experiments.dynamic import run_dynamic_control
from repro.sim.units import MS
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


def saturating_trace(span_ms=12):
    wl = MicroWorkloadConfig(2_000, 8 * 1024)
    n = span_ms * 500
    return generate_micro_trace(wl, n_reads=n, n_writes=n, seed=11)


def test_pause_event_reduces_read_throughput(tiny_tpm):
    trace = saturating_trace()
    base_read = None
    events = [CongestionEvent(6 * MS, 0.7, EventKind.PAUSE)]
    res = run_dynamic_control(
        trace, FAST_SSD, tiny_tpm, events, window_ns=2 * MS, bin_ns=MS
    )
    before = res.read_series.gbps[2:6].mean()
    after = res.read_series.gbps[8:12].mean()
    assert after < before * 0.8
    assert res.outcomes[0].weight_ratio > 1


def test_retrieval_event_restores_read_throughput(tiny_tpm):
    trace = saturating_trace(16)
    events = [
        CongestionEvent(5 * MS, 0.7, EventKind.PAUSE),
        CongestionEvent(10 * MS, 50.0, EventKind.RETRIEVAL),
    ]
    res = run_dynamic_control(
        trace, FAST_SSD, tiny_tpm, events, window_ns=2 * MS, bin_ns=MS
    )
    squeezed = res.read_series.gbps[7:10].mean()
    restored = res.read_series.gbps[12:16].mean()
    assert res.outcomes[1].weight_ratio == 1
    assert restored > squeezed


def test_convergence_delays_recorded(tiny_tpm):
    trace = saturating_trace()
    events = [CongestionEvent(5 * MS, 1.3, EventKind.PAUSE)]
    res = run_dynamic_control(
        trace, FAST_SSD, tiny_tpm, events, window_ns=2 * MS, bin_ns=MS,
        convergence_band=0.4,
    )
    delay = res.outcomes[0].convergence_delay_ns
    assert delay >= 0  # converged within the run
    assert res.mean_control_delay_ns() == delay


def test_events_must_be_ordered(tiny_tpm):
    trace = saturating_trace(4)
    events = [
        CongestionEvent(2 * MS, 1.0, EventKind.PAUSE),
        CongestionEvent(1 * MS, 2.0, EventKind.PAUSE),
    ]
    with pytest.raises(ValueError):
        run_dynamic_control(trace, FAST_SSD, tiny_tpm, events)


def test_needs_events(tiny_tpm):
    with pytest.raises(ValueError):
        run_dynamic_control(saturating_trace(2), FAST_SSD, tiny_tpm, [])
