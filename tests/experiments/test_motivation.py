"""Fig. 2 fluid-model tests — the paper's exact numbers."""

import pytest

from repro.experiments.motivation import (
    MotivationScenario,
    dcqcn_only,
    dcqcn_src,
    no_congestion,
)


def test_paper_numbers_no_congestion():
    o = no_congestion(MotivationScenario())
    assert o.read_delivered == 6.0
    assert o.write_delivered == 3.0
    assert o.aggregated == 9.0
    assert o.wasted_read == 0.0


def test_paper_numbers_dcqcn():
    o = dcqcn_only(MotivationScenario())
    assert o.read_delivered == 3.0  # half the network rate
    assert o.write_delivered == 3.0
    assert o.aggregated == 6.0  # degraded from 9
    assert o.wasted_read == 3.0  # SSD work thrown away


def test_paper_numbers_src():
    o = dcqcn_src(MotivationScenario())
    assert o.read_delivered == 3.0  # still honors the network cap
    assert o.write_delivered == 6.0  # freed capacity moves to writes
    assert o.aggregated == 9.0  # restored
    assert o.wasted_read == 0.0


def test_src_never_below_dcqcn():
    for cut in (0.1, 0.3, 0.7, 1.0):
        s = MotivationScenario(congestion_cut=cut)
        assert dcqcn_src(s).aggregated >= dcqcn_only(s).aggregated


def test_src_preserves_network_cap():
    s = MotivationScenario(congestion_cut=0.25)
    assert dcqcn_src(s).read_delivered == dcqcn_only(s).read_delivered


def test_no_cut_equals_no_congestion():
    s = MotivationScenario(congestion_cut=1.0)
    assert dcqcn_only(s).aggregated == no_congestion(s).aggregated
    assert dcqcn_src(s).aggregated == no_congestion(s).aggregated


def test_network_slower_than_ssd_without_congestion():
    s = MotivationScenario(ssd_read_rate=10.0, network_rate=6.0)
    assert no_congestion(s).read_delivered == 6.0
    assert no_congestion(s).wasted_read == 4.0


def test_validation():
    with pytest.raises(ValueError):
        MotivationScenario(congestion_cut=0.0)
    with pytest.raises(ValueError):
        MotivationScenario(ssd_read_rate=-1.0)
