"""Closed-loop integration: the full SRC story at test scale.

One scaled-down end-to-end scenario asserting the paper's central claim:
under inbound congestion, DCQCN-only starves writes through the
TXQ → CQ → slot chain, while DCQCN-SRC sustains them at a matched read
rate.  This is the Fig. 7 experiment shrunk onto the fast test device.
"""

import pytest

from repro.experiments.runner import BackgroundTraffic, TestbedConfig, run_testbed
from repro.sim.units import MS
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


CONGESTION = BackgroundTraffic(start_ns=1 * MS, end_ns=9 * MS, rate_gbps=10.0, n_hosts=14)
DURATION = 11 * MS


def make_trace(seed=13):
    # Saturating on FAST_SSD: ~8 KB every 3 µs per direction per target.
    reads = MicroWorkloadConfig(1_500, 8 * 1024)
    writes = MicroWorkloadConfig(4_000, 8 * 1024)
    return generate_micro_trace(reads, writes, n_reads=6000, n_writes=2200, seed=seed)


@pytest.fixture(scope="module")
def closed_loop_pair(tiny_tpm_module):
    only = run_testbed(
        make_trace(),
        TestbedConfig(
            n_targets=2, ssd_config=FAST_SSD, driver="default", background=CONGESTION
        ),
        duration_ns=DURATION,
    )
    src = run_testbed(
        make_trace(),
        TestbedConfig(
            n_targets=2, ssd_config=FAST_SSD, driver="ssq", src_enabled=True,
            background=CONGESTION, src_min_interval_ns=200_000,
        ),
        tpm=tiny_tpm_module,
        duration_ns=DURATION,
    )
    return only, src


@pytest.fixture(scope="module")
def tiny_tpm_module():
    from tests.conftest import _make_tiny_tpm
    import tests.conftest as c

    if c._TINY_TPM is None:
        c._TINY_TPM = _make_tiny_tpm()
    return c._TINY_TPM


def congestion_window(series):
    return float(series.gbps[4:9].mean())


def test_congestion_actually_happened(closed_loop_pair):
    only, _ = closed_loop_pair
    assert len(only.pause_times_ns) > 10


def test_reads_pinned_similarly_under_both(closed_loop_pair):
    only, src = closed_loop_pair
    r_only = congestion_window(only.read_series)
    r_src = congestion_window(src.read_series)
    assert r_src == pytest.approx(r_only, rel=0.6)


def test_src_rescues_writes(closed_loop_pair):
    only, src = closed_loop_pair
    w_only = congestion_window(only.write_series)
    w_src = congestion_window(src.write_series)
    assert w_src > w_only


def test_src_improves_aggregate(closed_loop_pair):
    only, src = closed_loop_pair
    agg_only = congestion_window(only.aggregated_series)
    agg_src = congestion_window(src.aggregated_series)
    assert agg_src > agg_only


def test_src_made_adjustments(closed_loop_pair):
    _, src = closed_loop_pair
    adjustments = [a for c in src.controllers for a in c.adjustments]
    assert adjustments
    assert any(a.weight_ratio > 1 for a in adjustments)
