"""Latency reporting and lifecycle invariants."""

import numpy as np
import pytest

from repro.experiments.latency import LatencySummary, latency_report
from repro.experiments.runner import TestbedConfig, run_testbed
from repro.sim.units import MS
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.request import IORequest, OpType
from tests.conftest import FAST_SSD


class TestSummary:
    def test_of_known_values(self):
        s = LatencySummary.of(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.count == 4
        assert s.mean_ns == pytest.approx(2.5)
        assert s.p50_ns == pytest.approx(2.5)
        assert s.max_ns == 4.0

    def test_empty(self):
        s = LatencySummary.of(np.array([]))
        assert s.count == 0
        assert s.mean_ns == 0.0

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(0)
        s = LatencySummary.of(rng.exponential(1000, 5000))
        assert s.p50_ns <= s.p95_ns <= s.p99_ns <= s.max_ns


def completed_request(op, arrival, fetch, device_done, complete):
    r = IORequest(arrival_ns=arrival, op=op, lba=0, size_bytes=512)
    r.fetch_ns, r.device_done_ns, r.complete_ns = fetch, device_done, complete
    return r


class TestReport:
    def test_splits_directions(self):
        reqs = [
            completed_request(OpType.READ, 0, 10, 20, 100),
            completed_request(OpType.WRITE, 0, 10, 30, 200),
        ]
        rep = latency_report(reqs)
        assert rep.read_total.count == 1
        assert rep.read_total.mean_ns == 100
        assert rep.write_total.mean_ns == 200
        assert rep.read_device.mean_ns == 10
        assert rep.write_device.mean_ns == 20

    def test_ignores_incomplete(self):
        incomplete = IORequest(arrival_ns=0, op=OpType.READ, lba=0, size_bytes=512)
        rep = latency_report([incomplete])
        assert rep.read_total.count == 0


class TestEndToEndLifecycle:
    @pytest.fixture(scope="class")
    def run(self):
        trace = generate_micro_trace(
            MicroWorkloadConfig(10_000, 8 * 1024), n_reads=150, n_writes=150, seed=9
        )
        result = run_testbed(
            trace,
            TestbedConfig(n_targets=2, ssd_config=FAST_SSD, driver="ssq"),
            drain_margin_ns=40 * MS,
        )
        return trace, result

    def test_all_lifecycle_timestamps_monotone(self, run):
        trace, _ = run
        for r in trace:
            if r.complete_ns < 0:
                continue
            assert r.arrival_ns <= r.submit_ns, "issued before arrival"
            assert r.submit_ns <= r.fetch_ns, "fetched before submitted"
            assert r.fetch_ns <= r.device_done_ns, "completed before fetched"
            assert r.device_done_ns <= r.complete_ns, "delivered before served"

    def test_report_from_real_run(self, run):
        trace, _ = run
        rep = latency_report(trace.requests)
        assert rep.read_total.count > 0
        assert rep.write_total.count > 0
        # Device latency is a component of (and below) the total.
        assert rep.read_device.mean_ns < rep.read_total.mean_ns
