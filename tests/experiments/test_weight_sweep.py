"""Fig. 5 weight-sweep harness tests (scaled down)."""

import numpy as np
import pytest

from repro.experiments.weight_sweep import WeightSweepCell, run_weight_sweep
from tests.conftest import FAST_SSD


def run_small():
    return run_weight_sweep(
        FAST_SSD,
        interarrivals_ns=(2_000, 40_000),
        sizes_bytes=(8 * 1024,),
        weight_ratios=(1, 2, 4, 8),
        duration_ns=4_000_000,
        min_requests=100,
    )


def test_grid_shape():
    cells = run_small()
    assert len(cells) == 2
    for cell in cells:
        assert cell.weight_ratios.tolist() == [1, 2, 4, 8]
        assert cell.read_gbps.shape == (4,)


def test_heavy_cell_shows_control_effect():
    cells = run_small()
    heavy = cells[0]  # 2 µs inter-arrival saturates FAST_SSD
    assert heavy.control_effect() > 0.3
    assert heavy.read_monotone_nonincreasing()
    # Write throughput does not drop as w grows.
    assert heavy.write_gbps[-1] >= heavy.write_gbps[0] * 0.9


def test_light_cell_insensitive_to_w():
    cells = run_small()
    light = cells[1]  # 40 µs inter-arrival: queues stay shallow
    assert light.control_effect() < 0.1


def test_equality_at_w1_under_balanced_saturation():
    cells = run_small()
    heavy = cells[0]
    assert heavy.read_gbps[0] == pytest.approx(heavy.write_gbps[0], rel=0.3)


def test_monotone_helper():
    cell = WeightSweepCell(
        interarrival_ns=1,
        size_bytes=1,
        weight_ratios=np.array([1, 2]),
        read_gbps=np.array([1.0, 2.0]),
        write_gbps=np.array([1.0, 1.0]),
    )
    assert not cell.read_monotone_nonincreasing(tolerance=0.05)
    assert cell.control_effect() == pytest.approx(-1.0)


def test_control_effect_zero_base():
    cell = WeightSweepCell(
        interarrival_ns=1,
        size_bytes=1,
        weight_ratios=np.array([1]),
        read_gbps=np.array([0.0]),
        write_gbps=np.array([0.0]),
    )
    assert cell.control_effect() == 0.0


def test_validation():
    with pytest.raises(ValueError):
        run_weight_sweep(FAST_SSD, weight_ratios=(0,))
    with pytest.raises(ValueError):
        run_weight_sweep(FAST_SSD, duration_ns=0)


def test_parallel_matches_serial_bit_for_bit():
    # Same root seed ⇒ identical per-cell outputs, pool or not: the
    # determinism guarantee every figure sweep relies on.
    from repro.experiments.weight_sweep import run_weight_sweep_with_report

    kw = dict(
        interarrivals_ns=(2_000, 40_000),
        sizes_bytes=(8 * 1024,),
        weight_ratios=(1, 4),
        duration_ns=2_000_000,
        min_requests=100,
    )
    serial_cells, serial_report = run_weight_sweep_with_report(
        FAST_SSD, workers=1, **kw
    )
    pool_cells, pool_report = run_weight_sweep_with_report(
        FAST_SSD, workers=2, **kw
    )
    assert serial_report.mode == "serial"
    for a, b in zip(serial_cells, pool_cells):
        assert np.array_equal(a.read_gbps, b.read_gbps)
        assert np.array_equal(a.write_gbps, b.write_gbps)
    assert serial_report.sim_events == pool_report.sim_events > 0
