"""Clos-scale dual-fidelity cell: smoke, determinism, sanitized run."""

import pytest

from repro.experiments.clos_scale import ClosScaleConfig, run_clos_scale_cell
from repro.sim.units import MS

#: Small enough for CI (<1 s), large enough that both domains engage:
#: fluid tenants congest the leaf mesh and foreground flows cross it.
SMALL = dict(
    n_pods=2,
    tors_per_pod=2,
    hosts_per_tor=4,
    fluid_hosts_per_tor=2,
    n_tenants=16,
    n_foreground_flows=4,
    duration_ns=5 * MS,
)


def test_small_cell_runs_and_reduces_events():
    result = run_clos_scale_cell(ClosScaleConfig(**SMALL))
    assert result.fluid_flows == 16
    assert result.fluid_updates == 50  # 5 ms / 100 us
    assert result.fluid_bytes_served > 0
    assert result.foreground_messages_delivered > 0
    # Even the small cell beats the all-packet projection comfortably.
    assert result.event_reduction > 5.0


def test_cell_is_deterministic():
    a = run_clos_scale_cell(ClosScaleConfig(**SMALL))
    b = run_clos_scale_cell(ClosScaleConfig(**SMALL))
    assert a.events_dispatched == b.events_dispatched
    assert a.fluid_bytes_served == b.fluid_bytes_served
    assert a.foreground_bytes_received == b.foreground_bytes_received
    assert a.projected_packet_events == b.projected_packet_events


def test_sanitized_stride_cell_runs_violation_free():
    """stride:64 sanitizer (fluid sweeps included) stays silent."""
    result = run_clos_scale_cell(
        ClosScaleConfig(**SMALL, sanitize="stride:64")
    )
    assert result.fluid_bytes_served > 0
    plain = run_clos_scale_cell(ClosScaleConfig(**SMALL))
    # The sanitizer only observes: same events, same outputs.
    assert result.events_dispatched == plain.events_dispatched
    assert result.foreground_bytes_received == plain.foreground_bytes_received


def test_config_validation():
    with pytest.raises(ValueError):
        ClosScaleConfig(fluid_hosts_per_tor=16, hosts_per_tor=16)
    with pytest.raises(ValueError):
        ClosScaleConfig(duration_ns=0)
    with pytest.raises(ValueError):
        ClosScaleConfig(n_foreground_flows=0)
