"""Device-local replay harness tests."""

import pytest

from repro.experiments.replay import replay_on_device
from repro.nvme.driver import DefaultNvmeDriver
from repro.nvme.ssq import SSQDriver
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.traces import Trace
from tests.conftest import FAST_SSD


def trace(inter=3_000, size=8 * 1024, n=150, seed=1):
    wl = MicroWorkloadConfig(inter, size)
    return generate_micro_trace(wl, n_reads=n, n_writes=n, seed=seed)


def test_drained_run_completes_everything():
    t = trace()
    result = replay_on_device(t, FAST_SSD, DefaultNvmeDriver(), drain=True)
    assert result.reads_completed + result.writes_completed >= int(0.8 * len(t))
    assert result.ssd.controller.commands_completed == len(t)


def test_throughputs_positive():
    result = replay_on_device(trace(), FAST_SSD, SSQDriver())
    assert result.read_tput_gbps > 0
    assert result.write_tput_gbps > 0
    assert result.aggregated_tput_gbps == pytest.approx(
        result.read_tput_gbps + result.write_tput_gbps
    )


def test_no_drain_stops_at_last_arrival():
    t = trace()
    result = replay_on_device(t, FAST_SSD, DefaultNvmeDriver(), drain=False)
    assert result.ssd.sim.now == t[-1].arrival_ns


def test_weight_ratio_shapes_throughput():
    t = trace(inter=2_000, size=12 * 1024, n=400, seed=2)
    base = replay_on_device(t, FAST_SSD, SSQDriver(1, 1), drain=False,
                            measure_start_fraction=0.4)
    skewed = replay_on_device(t, FAST_SSD, SSQDriver(1, 8), drain=False,
                              measure_start_fraction=0.4)
    assert skewed.read_tput_gbps < base.read_tput_gbps
    assert skewed.write_tput_gbps >= base.write_tput_gbps * 0.9


def test_measure_start_fraction_validation():
    with pytest.raises(ValueError):
        replay_on_device(trace(n=10), FAST_SSD, SSQDriver(), measure_start_fraction=1.0)


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        replay_on_device(Trace([]), FAST_SSD, SSQDriver())


def test_deterministic():
    a = replay_on_device(trace(seed=3), FAST_SSD, SSQDriver(1, 2), drain=False)
    b = replay_on_device(trace(seed=3), FAST_SSD, SSQDriver(1, 2), drain=False)
    assert a.read_tput_gbps == b.read_tput_gbps
    assert a.write_tput_gbps == b.write_tput_gbps
