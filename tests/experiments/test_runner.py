"""Integrated testbed runner (scaled-down smoke + semantics tests)."""

import pytest

from repro.experiments.runner import (
    BackgroundTraffic,
    TestbedConfig,
    run_testbed,
)
from repro.sim.units import MS
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.traces import Trace
from tests.conftest import FAST_SSD


def small_trace(n=120, inter=20_000, size=8 * 1024, seed=5):
    wl = MicroWorkloadConfig(inter, size)
    return generate_micro_trace(wl, n_reads=n, n_writes=n, seed=seed)


def base_config(**kw):
    defaults = dict(
        n_initiators=1,
        n_targets=2,
        ssd_config=FAST_SSD,
        driver="default",
        src_enabled=False,
    )
    defaults.update(kw)
    return TestbedConfig(**defaults)


def test_run_produces_throughput_both_directions():
    res = run_testbed(small_trace(), base_config(), bin_ns=MS)
    assert res.read_series.gbps.sum() > 0
    assert res.write_series.gbps.sum() > 0
    assert res.aggregated_series.gbps.sum() == pytest.approx(
        res.read_series.gbps.sum() + res.write_series.gbps.sum()
    )


def test_all_requests_complete_with_drain_margin():
    trace = small_trace()
    n = len(trace)
    res = run_testbed(trace, base_config(), drain_margin_ns=50 * MS)
    done = sum(i.reads_completed + i.writes_completed for i in res.initiators)
    assert done == n


def test_requests_split_across_targets():
    res = run_testbed(small_trace(), base_config(n_targets=2))
    received = [t.commands_received for t in res.targets]
    assert received[0] > 0 and received[1] > 0
    assert abs(received[0] - received[1]) <= 1


def test_multiple_initiators():
    res = run_testbed(small_trace(), base_config(n_initiators=2))
    sent = [i.requests_sent for i in res.initiators]
    assert all(s > 0 for s in sent)


def test_ssq_driver_option():
    res = run_testbed(small_trace(), base_config(driver="ssq"))
    from repro.nvme.ssq import SSQDriver

    assert all(isinstance(d, SSQDriver) for t in res.targets for d in t.drivers)


def test_src_requires_tpm():
    with pytest.raises(ValueError):
        run_testbed(small_trace(), base_config(driver="ssq", src_enabled=True))


def test_src_attaches_controllers(tiny_tpm):
    res = run_testbed(
        small_trace(), base_config(driver="ssq", src_enabled=True), tpm=tiny_tpm
    )
    assert len(res.controllers) == 2
    assert all(c.monitor.observed > 0 for c in res.controllers)


def test_background_traffic_creates_congestion_signals(tiny_tpm):
    bg = BackgroundTraffic(start_ns=0, end_ns=3 * MS, rate_gbps=45.0, n_hosts=3)
    res = run_testbed(
        small_trace(n=200, inter=10_000),
        base_config(background=bg),
        duration_ns=3 * MS,
    )
    assert len(res.pause_times_ns) > 0


def test_pause_counts_binning():
    bg = BackgroundTraffic(start_ns=0, end_ns=2 * MS, rate_gbps=45.0, n_hosts=3)
    res = run_testbed(
        small_trace(n=200, inter=10_000), base_config(background=bg), duration_ns=2 * MS
    )
    times, counts = res.pause_counts_per_ms()
    assert counts.sum() == len(res.pause_times_ns)


def test_trimmed_metrics_accessible():
    res = run_testbed(small_trace(), base_config())
    assert res.trimmed_aggregated_gbps() == pytest.approx(
        res.trimmed_read_gbps() + res.trimmed_write_gbps(), rel=1e-9
    )


def test_validation():
    with pytest.raises(ValueError):
        TestbedConfig(n_initiators=0)
    with pytest.raises(ValueError):
        TestbedConfig(driver="bogus")
    with pytest.raises(ValueError):
        TestbedConfig(driver="default", src_enabled=True)
    with pytest.raises(ValueError):
        BackgroundTraffic(start_ns=10, end_ns=10, rate_gbps=1.0)
    with pytest.raises(ValueError):
        BackgroundTraffic(start_ns=0, end_ns=10, rate_gbps=1.0, n_hosts=0)
    with pytest.raises(ValueError):
        run_testbed(Trace([]), base_config())
