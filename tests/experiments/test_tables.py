"""Report-table formatting tests."""

import pytest

from repro.experiments.tables import format_gbps, format_percent, format_table


def test_basic_table():
    out = format_table(["A", "Bee"], [["1", "2"], ["333", "4"]])
    lines = out.splitlines()
    assert lines[0].startswith("A")
    assert "Bee" in lines[0]
    assert "-+-" in lines[1]
    assert lines[2].startswith("1")
    assert lines[3].startswith("333")


def test_title_prepended():
    out = format_table(["X"], [["1"]], title="Table I")
    assert out.splitlines()[0] == "Table I"


def test_columns_aligned():
    out = format_table(["col", "c2"], [["a", "bb"], ["aaaa", "b"]])
    lines = out.splitlines()
    # The separator position is consistent across rows.
    positions = {line.find("|") for line in lines if "|" in line}
    assert len(positions) == 1


def test_non_string_cells():
    out = format_table(["n"], [[42], [3.5]])
    assert "42" in out and "3.5" in out


def test_validation():
    with pytest.raises(ValueError):
        format_table([], [])
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_helpers():
    assert format_gbps(3.14159) == "3.14 Gbps"
    assert format_percent(0.331) == "33%"
