"""Conservation invariants over full fabric runs.

Whatever the congestion state, the system must neither lose nor invent
work: every byte counted as delivered was issued, every completion maps
to a submitted request, and device-side counters reconcile with
fabric-side ones.
"""

import pytest

from repro.experiments.runner import BackgroundTraffic, TestbedConfig, run_testbed
from repro.sim.units import MS
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


@pytest.fixture(scope="module", params=["calm", "congested"])
def run(request):
    trace = generate_micro_trace(
        MicroWorkloadConfig(4_000, 8 * 1024), n_reads=500, n_writes=500, seed=21
    )
    bg = None
    if request.param == "congested":
        bg = BackgroundTraffic(start_ns=0, end_ns=3 * MS, rate_gbps=12.0, n_hosts=8)
    result = run_testbed(
        trace,
        TestbedConfig(n_targets=2, ssd_config=FAST_SSD, driver="ssq", background=bg),
        duration_ns=6 * MS,
    )
    return trace, result


def test_deliveries_bounded_by_issues(run):
    trace, res = run
    n_reads = len(trace.reads())
    n_writes = len(trace.writes())
    delivered_reads = sum(i.reads_completed for i in res.initiators)
    acked_writes = sum(i.writes_completed for i in res.initiators)
    assert delivered_reads <= n_reads
    assert acked_writes <= n_writes


def test_device_completions_bounded_by_received(run):
    _, res = run
    for target in res.targets:
        served = len(target.write_completions) + len(target.read_device_completions)
        assert served <= target.commands_received


def test_read_bytes_conserved(run):
    trace, res = run
    issued_read_bytes = trace.reads().total_bytes()
    delivered = sum(b for i in res.initiators for _, b in i.read_deliveries)
    assert delivered <= issued_read_bytes


def test_initiator_accounting_consistent(run):
    _, res = run
    for ini in res.initiators:
        assert ini.outstanding() >= 0
        assert ini.reads_completed == len(ini.read_deliveries)
        assert ini.writes_completed == len(ini.write_acks)


def test_fetch_counts_match_submissions(run):
    _, res = run
    for target in res.targets:
        for driver in target.drivers:
            assert driver.fetched <= driver.submitted
            assert driver.submitted - driver.fetched == driver.queued()
