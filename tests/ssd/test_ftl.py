"""FTL: CMT behaviour, allocation, invalidation, GC bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.ftl import FTL, CachedMappingTable
from tests.conftest import FAST_SSD


class TestCMT:
    def make(self, cmt_bytes=4 * 4096):
        # Capacity: 4 translation pages of 512 entries each (4 KiB pages,
        # 8 B entries).
        return CachedMappingTable(cmt_bytes, 4096, 8)

    def test_miss_then_hit(self):
        cmt = self.make()
        assert not cmt.lookup(0)
        assert cmt.lookup(0)
        assert cmt.hits == 1 and cmt.misses == 1

    def test_same_translation_page_shares_entry(self):
        cmt = self.make()
        assert not cmt.lookup(0)
        # LPN 1 lives in the same 512-entry translation page.
        assert cmt.lookup(1)
        assert cmt.lookup(511)
        assert not cmt.lookup(512)  # next translation page

    def test_lru_eviction(self):
        cmt = self.make()
        for tp in range(5):  # 5 translation pages into capacity 4
            cmt.lookup(tp * 512)
        assert not cmt.lookup(0)  # evicted (oldest)

    def test_lru_touch_refreshes(self):
        cmt = self.make()
        for tp in range(4):
            cmt.lookup(tp * 512)
        cmt.lookup(0)  # refresh tp 0
        cmt.lookup(4 * 512)  # evicts tp 1, not tp 0
        assert cmt.lookup(0)
        assert not cmt.lookup(512)

    def test_hit_ratio(self):
        cmt = self.make()
        assert cmt.hit_ratio == 0.0
        cmt.lookup(0)
        cmt.lookup(0)
        assert cmt.hit_ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CachedMappingTable(0, 4096, 8)

    @settings(deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**7), min_size=1, max_size=300))
    def test_capacity_never_exceeded_property(self, lpns):
        cmt = self.make()
        for lpn in lpns:
            cmt.lookup(lpn)
        assert len(cmt) <= cmt.capacity


class TestFTL:
    def make(self):
        return FTL(FAST_SSD)

    def test_lpn_range(self):
        ftl = self.make()
        # 4 KiB pages = 8 sectors each.
        assert list(ftl.lpn_range(0, 4096)) == [0]
        assert list(ftl.lpn_range(0, 4097)) == [0, 1]
        assert list(ftl.lpn_range(8, 4096)) == [1]
        assert list(ftl.lpn_range(7, 1024)) == [0, 1]  # straddles the boundary

    def test_unmapped_read_deterministic_home(self):
        ftl = self.make()
        a = ftl.chip_for_read(1234)
        assert a == ftl.chip_for_read(1234)
        assert 0 <= a < FAST_SSD.n_chips

    def test_write_then_read_same_chip(self):
        ftl = self.make()
        chip = ftl.allocate_write(77)
        assert ftl.chip_for_read(77) == chip

    def test_allocation_stripes_round_robin(self):
        ftl = self.make()
        chips = [ftl.allocate_write(i) for i in range(FAST_SSD.n_chips)]
        assert sorted(chips) == list(range(FAST_SSD.n_chips))

    def test_overwrite_invalidates_old_page(self):
        ftl = self.make()
        ftl.allocate_write(5)
        before = ftl.mapped_pages
        ftl.allocate_write(5)
        assert ftl.mapped_pages == before  # still one live mapping


class TestGC:
    def fill_chip(self, ftl, chip_index, n_pages):
        """Write LPNs that round-robin striping places on one chip."""
        written = []
        lpn = 0
        while len(written) < n_pages:
            chip = ftl.allocate_write(lpn)
            if chip == chip_index:
                written.append(lpn)
            lpn += 1
        return written

    def test_gc_needed_after_filling_blocks(self):
        ftl = FTL(FAST_SSD)
        # Fill pages until the chip runs low on free blocks.
        pages_to_fill = (FAST_SSD.blocks_per_chip - 1) * FAST_SSD.pages_per_block
        self.fill_chip(ftl, 0, pages_to_fill)
        assert ftl.gc_needed(0)

    def test_begin_gc_selects_fully_written_victim(self):
        ftl = FTL(FAST_SSD)
        self.fill_chip(ftl, 0, 3 * FAST_SSD.pages_per_block)
        result = ftl.begin_gc(0)
        assert result is not None
        block_id, valid = result
        assert len(valid) <= FAST_SSD.pages_per_block

    def test_gc_of_invalidated_block_frees_it(self):
        ftl = FTL(FAST_SSD)
        written = self.fill_chip(ftl, 0, 3 * FAST_SSD.pages_per_block)
        # Overwrite every LPN: the old chip-0 pages all become invalid.
        for lpn in written:
            ftl.allocate_write(lpn)
        block_id, valid = ftl.begin_gc(0)
        assert valid == []  # greedy picks the empty victim
        free_before = ftl.free_blocks(0)
        ftl.finish_gc(0, block_id)
        assert ftl.free_blocks(0) == free_before + 1
        assert not ftl._chips[0].gc_active

    def test_gc_relocate_moves_valid_pages(self):
        ftl = FTL(FAST_SSD)
        self.fill_chip(ftl, 0, 3 * FAST_SSD.pages_per_block)
        block_id, valid = ftl.begin_gc(0)
        assert len(valid) > 0
        for lpn in valid:
            assert ftl.gc_relocate(lpn, 0, block_id)
            # Mapping stays on the same chip after relocation.
            assert ftl.chip_for_read(lpn) == 0
        ftl.finish_gc(0, block_id)
        assert not ftl._chips[0].gc_active
        assert ftl.gc_pages_moved == len(valid)

    def test_gc_relocate_skips_superseded_lpn(self):
        ftl = FTL(FAST_SSD)
        self.fill_chip(ftl, 0, 3 * FAST_SSD.pages_per_block)
        block_id, valid = ftl.begin_gc(0)
        lpn = valid[0]
        # A host write supersedes the page mid-GC.
        ftl.allocate_write(lpn)
        assert not ftl.gc_relocate(lpn, 0, block_id)

    def test_finish_gc_rejects_nonempty_victim(self):
        ftl = FTL(FAST_SSD)
        self.fill_chip(ftl, 0, 3 * FAST_SSD.pages_per_block)
        block_id, valid = ftl.begin_gc(0)
        if valid:  # victim still holds valid pages
            with pytest.raises(RuntimeError):
                ftl.finish_gc(0, block_id)

    def test_gc_not_retriggered_while_active(self):
        ftl = FTL(FAST_SSD)
        pages = (FAST_SSD.blocks_per_chip - 1) * FAST_SSD.pages_per_block
        self.fill_chip(ftl, 0, pages)
        assert ftl.gc_needed(0)
        ftl.begin_gc(0)
        assert not ftl.gc_needed(0)  # gc_active guards re-entry
