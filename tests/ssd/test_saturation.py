"""Analytic saturation sanity checks for the flash backend.

These tie the simulated throughput to first-principles bounds so
regressions in the service model are caught by physics, not just by
golden numbers.
"""

import pytest

from repro.experiments.replay import replay_on_device
from repro.nvme.driver import DefaultNvmeDriver
from repro.nvme.ssq import SSQDriver
from repro.sim.units import GBPS
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


def pure_trace(op_reads, op_writes, inter=1_000, size=4 * 1024, n=2000, seed=2):
    wl = MicroWorkloadConfig(inter, size)
    return generate_micro_trace(wl, n_reads=op_reads * n, n_writes=op_writes * n, seed=seed)


#: Mapping reads off: pure service-path physics.
PHYS_SSD = FAST_SSD.with_overrides(mapping_read_penalty=False)


def stage_bound_gbps(latency_ns):
    """min(chip bound, channel bound) — the binding service stage."""
    chip = FAST_SSD.n_chips / latency_ns * FAST_SSD.page_bytes
    channel = FAST_SSD.n_channels * FAST_SSD.channel_bw_bytes_per_ns
    return min(chip, channel) / GBPS


def test_pure_read_saturation_within_stage_bound():
    trace = pure_trace(1, 0)
    res = replay_on_device(trace, PHYS_SSD, DefaultNvmeDriver(), drain=False,
                           measure_start_fraction=0.4)
    bound = stage_bound_gbps(FAST_SSD.read_latency_ns)
    assert res.read_tput_gbps <= bound * 1.05
    # Tandem queueing under finite QD costs throughput, but the device
    # still reaches a healthy fraction of the binding stage.
    assert res.read_tput_gbps > bound * 0.25


def test_pure_write_saturation_within_stage_bound():
    trace = pure_trace(0, 1)
    res = replay_on_device(trace, PHYS_SSD, DefaultNvmeDriver(), drain=False,
                           measure_start_fraction=0.4)
    bound = stage_bound_gbps(FAST_SSD.write_latency_ns)
    assert res.write_tput_gbps <= bound * 1.05
    assert res.write_tput_gbps > bound * 0.25


def test_mapping_penalty_costs_read_throughput():
    """The CMT-miss double read measurably slows cold random reads."""
    trace = pure_trace(1, 0)
    with_penalty = replay_on_device(trace, FAST_SSD, DefaultNvmeDriver(),
                                    drain=False, measure_start_fraction=0.4)
    without = replay_on_device(trace, PHYS_SSD, DefaultNvmeDriver(),
                               drain=False, measure_start_fraction=0.4)
    assert with_penalty.read_tput_gbps < without.read_tput_gbps


def test_balanced_saturation_equalises_directions():
    """The §III-B w=1 observation: equal throughput under saturation."""
    trace = pure_trace(1, 1, n=1500)
    res = replay_on_device(trace, FAST_SSD, SSQDriver(1, 1), drain=False,
                           measure_start_fraction=0.4)
    assert res.read_tput_gbps == pytest.approx(res.write_tput_gbps, rel=0.25)


def test_mixed_saturation_below_sum_of_pures():
    """Interference: the mixed aggregate cannot exceed either pure bound
    combination (each chip alternates, paying both latencies)."""
    trace = pure_trace(1, 1, n=1500)
    res = replay_on_device(trace, FAST_SSD, SSQDriver(1, 1), drain=False,
                           measure_start_fraction=0.4)
    pair_ns = FAST_SSD.read_latency_ns + FAST_SSD.write_latency_ns
    pair_rate = FAST_SSD.n_chips / pair_ns  # read+write page pairs per ns
    per_direction_bound = pair_rate * FAST_SSD.page_bytes / GBPS
    assert res.read_tput_gbps <= per_direction_bound * 1.15
    assert res.write_tput_gbps <= per_direction_bound * 1.15


def test_unsaturated_throughput_equals_offered_load():
    wl = MicroWorkloadConfig(100_000, 4 * 1024)  # far below capacity
    trace = generate_micro_trace(wl, n_reads=400, n_writes=400, seed=3)
    res = replay_on_device(trace, FAST_SSD, DefaultNvmeDriver(), drain=False,
                           measure_start_fraction=0.2)
    offered = 4 * 1024 / 100_000 / GBPS  # per direction
    assert res.read_tput_gbps == pytest.approx(offered, rel=0.25)
    assert res.write_tput_gbps == pytest.approx(offered, rel=0.25)
