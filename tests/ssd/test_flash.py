"""Flash backend: two-stage service, alternation, channel contention."""

import pytest

from repro.sim.engine import Simulator
from repro.ssd.flash import FlashBackend
from repro.ssd.transactions import PageTransaction, TxnKind
from tests.conftest import FAST_SSD


def make_backend():
    sim = Simulator()
    return sim, FlashBackend(sim, FAST_SSD)


def txn(kind, chip=0, done=None, pages=FAST_SSD.page_bytes):
    return PageTransaction(kind=kind, chip_index=chip, page_bytes=pages, on_done=done)


def test_single_read_latency():
    sim, backend = make_backend()
    done = []
    backend.submit(txn(TxnKind.READ, done=lambda t: done.append(sim.now)))
    sim.run()
    expected = FAST_SSD.read_latency_ns + FAST_SSD.page_transfer_ns
    assert done == [expected]


def test_single_program_latency():
    sim, backend = make_backend()
    done = []
    backend.submit(txn(TxnKind.PROGRAM, done=lambda t: done.append(sim.now)))
    sim.run()
    expected = FAST_SSD.page_transfer_ns + FAST_SSD.write_latency_ns
    assert done == [expected]


def test_erase_skips_channel():
    sim, backend = make_backend()
    done = []
    t = PageTransaction(kind=TxnKind.ERASE, chip_index=0, page_bytes=0,
                        on_done=lambda t: done.append(sim.now))
    backend.submit(t)
    sim.run()
    assert done == [FAST_SSD.erase_latency_ns]


def test_same_chip_reads_serialise():
    sim, backend = make_backend()
    done = []
    for _ in range(3):
        backend.submit(txn(TxnKind.READ, chip=0, done=lambda t: done.append(sim.now)))
    sim.run()
    # Chip sense serialises; channel transfer pipelines behind it.
    read, xfer = FAST_SSD.read_latency_ns, FAST_SSD.page_transfer_ns
    assert done[0] == read + xfer
    assert done[1] >= 2 * read
    assert done[2] >= 3 * read


def test_different_chips_run_in_parallel():
    sim, backend = make_backend()
    done = []
    # Chips on different channels: fully parallel.
    backend.submit(txn(TxnKind.READ, chip=0, done=lambda t: done.append(sim.now)))
    backend.submit(txn(TxnKind.READ, chip=2, done=lambda t: done.append(sim.now)))
    sim.run()
    expected = FAST_SSD.read_latency_ns + FAST_SSD.page_transfer_ns
    assert done == [expected, expected]


def test_channel_shared_between_chips():
    sim, backend = make_backend()
    done = []
    # Chips 0 and 1 share channel 0: their transfers serialise.
    backend.submit(txn(TxnKind.READ, chip=0, done=lambda t: done.append(sim.now)))
    backend.submit(txn(TxnKind.READ, chip=1, done=lambda t: done.append(sim.now)))
    sim.run()
    assert done[0] == FAST_SSD.read_latency_ns + FAST_SSD.page_transfer_ns
    assert done[1] == FAST_SSD.read_latency_ns + 2 * FAST_SSD.page_transfer_ns


def test_alternation_prevents_read_starvation():
    """A backlog of slow programs must not starve queued reads."""
    sim, backend = make_backend()
    order = []
    for i in range(4):
        backend.submit(txn(TxnKind.PROGRAM, chip=0, done=lambda t, i=i: order.append(("w", i))))
    backend.submit(txn(TxnKind.READ, chip=0, done=lambda t: order.append(("r", 0))))
    sim.run()
    # The read completes after at most two writes, not after all four.
    read_pos = order.index(("r", 0))
    assert read_pos <= 2


def test_mapping_and_gc_reads_use_read_queue():
    sim, backend = make_backend()
    assert txn(TxnKind.MAPPING_READ).is_read_like
    assert txn(TxnKind.GC_READ).is_read_like
    assert not txn(TxnKind.GC_PROGRAM).is_read_like


def test_channel_of_mapping():
    _, backend = make_backend()
    assert backend.channel_of(0) == 0
    assert backend.channel_of(FAST_SSD.chips_per_channel) == 1
    with pytest.raises(ValueError):
        backend.channel_of(FAST_SSD.n_chips)


def test_completed_counter_and_pending():
    sim, backend = make_backend()
    for i in range(5):
        backend.submit(txn(TxnKind.READ, chip=i % FAST_SSD.n_chips))
    assert backend.pending() > 0
    sim.run()
    assert backend.completed == 5
    assert backend.pending() == 0


def test_chip_utilisation():
    sim, backend = make_backend()
    backend.submit(txn(TxnKind.READ, chip=0))
    sim.run()
    util = backend.chip_utilisation(sim.now)
    assert util[0] > 0
    assert all(u == 0 for u in util[1:])
    with pytest.raises(ValueError):
        backend.chip_utilisation(0)


def test_transaction_validation():
    with pytest.raises(ValueError):
        PageTransaction(kind=TxnKind.READ, chip_index=-1, page_bytes=1)
    with pytest.raises(ValueError):
        PageTransaction(kind=TxnKind.READ, chip_index=0, page_bytes=-1)
