"""Write cache: space accounting and residency tracking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ssd.write_cache import WriteCache


def make(capacity=64 * 1024, page=4096):
    return WriteCache(capacity, page)


def test_reserve_release_cycle():
    c = make()
    assert c.can_reserve(4096)
    c.reserve(4096)
    assert c.occupied == 4096
    c.release(4096)
    assert c.occupied == 0


def test_reserve_to_capacity_then_refuse():
    c = make(capacity=8192)
    c.reserve(8192)
    assert not c.can_reserve(1)
    with pytest.raises(RuntimeError):
        c.reserve(1)


def test_release_underflow_rejected():
    c = make()
    with pytest.raises(RuntimeError):
        c.release(1)


def test_negative_amounts_rejected():
    c = make()
    with pytest.raises(ValueError):
        c.reserve(-1)
    with pytest.raises(ValueError):
        c.release(-1)


def test_utilisation():
    c = make(capacity=100, page=10)
    c.reserve(25)
    assert c.utilisation == pytest.approx(0.25)


def test_read_hit_after_write():
    c = make()
    c.note_write(42)
    assert c.read_hit(42)
    assert not c.read_hit(43)
    assert c.read_hits == 1 and c.read_misses == 1


def test_residency_bounded_by_capacity_pages():
    c = make(capacity=4 * 4096, page=4096)
    for lpn in range(10):
        c.note_write(lpn)
    assert c.resident_pages == 4
    assert not c.read_hit(0)  # oldest evicted
    assert c.read_hit(9)


def test_residency_lru_refresh():
    c = make(capacity=2 * 4096, page=4096)
    c.note_write(1)
    c.note_write(2)
    c.note_write(1)  # refresh
    c.note_write(3)  # evicts 2
    assert c.read_hit(1)
    assert not c.read_hit(2)


def test_read_hit_refreshes_lru():
    c = make(capacity=2 * 4096, page=4096)
    c.note_write(1)
    c.note_write(2)
    assert c.read_hit(1)
    c.note_write(3)  # should evict 2, not 1
    assert c.read_hit(1)
    assert not c.read_hit(2)


def test_validation():
    with pytest.raises(ValueError):
        WriteCache(0, 4096)
    with pytest.raises(ValueError):
        WriteCache(4096, 0)


@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=1000)), max_size=200))
def test_occupancy_never_negative_or_over_capacity_property(ops):
    c = make(capacity=5000)
    for is_reserve, amount in ops:
        if is_reserve and c.can_reserve(amount):
            c.reserve(amount)
        elif not is_reserve and amount <= c.occupied:
            c.release(amount)
        assert 0 <= c.occupied <= c.capacity
