"""SSD facade: stats and throughput series."""

import numpy as np
import pytest

from repro.nvme.driver import DefaultNvmeDriver
from repro.sim.engine import Simulator
from repro.sim.units import GBPS
from repro.ssd.device import SSD
from repro.workloads.request import IORequest, OpType
from tests.conftest import FAST_SSD


def run_mixed(n=10):
    sim = Simulator()
    ssd = SSD(sim, FAST_SSD)
    driver = DefaultNvmeDriver()
    driver.connect(ssd)
    ssd.set_cq_listener(lambda _e: ssd.pop_completion())
    for i in range(n):
        op = OpType.READ if i % 2 == 0 else OpType.WRITE
        driver.submit(
            IORequest(arrival_ns=0, op=op, lba=i * 1000, size_bytes=4096), now_ns=0
        )
    sim.run()
    return sim, ssd


def test_completed_bytes_split_by_direction():
    sim, ssd = run_mixed(10)
    assert ssd.completed_bytes(read=True) == 5 * 4096
    assert ssd.completed_bytes(read=False) == 5 * 4096


def test_completed_bytes_window():
    sim, ssd = run_mixed(10)
    # Nothing completes after the run ends.
    assert ssd.completed_bytes(read=True, start_ns=sim.now + 1) == 0
    # A window ending at 0 sees nothing either.
    assert ssd.completed_bytes(read=True, end_ns=0) == 0


def test_throughput_gbps_consistency():
    sim, ssd = run_mixed(10)
    tput = ssd.throughput_gbps(read=True)
    expected = 5 * 4096 / sim.now / GBPS
    assert tput == pytest.approx(expected)


def test_throughput_zero_for_empty_window():
    sim, ssd = run_mixed(2)
    assert ssd.throughput_gbps(read=True, start_ns=sim.now, end_ns=sim.now) == 0.0


def test_throughput_series_bins_sum_to_total():
    sim, ssd = run_mixed(10)
    times, gbps = ssd.throughput_series(1000, read=True)
    total_bytes = (gbps * 1000 * GBPS).sum()
    assert total_bytes == pytest.approx(5 * 4096, rel=1e-6)
    assert times.shape == gbps.shape


def test_throughput_series_validation():
    sim, ssd = run_mixed(2)
    with pytest.raises(ValueError):
        ssd.throughput_series(0, read=True)


def test_cq_listener_fires_per_completion():
    sim = Simulator()
    ssd = SSD(sim, FAST_SSD)
    driver = DefaultNvmeDriver()
    driver.connect(ssd)
    seen = []

    def listener(entry):
        seen.append(entry.request.req_id)
        ssd.pop_completion()

    ssd.set_cq_listener(listener)
    for i in range(4):
        driver.submit(
            IORequest(arrival_ns=0, op=OpType.READ, lba=i, size_bytes=512), now_ns=0
        )
    sim.run()
    assert len(seen) == 4


def test_pop_completion_empty_returns_none():
    sim = Simulator()
    ssd = SSD(sim, FAST_SSD)
    assert ssd.pop_completion() is None
