"""SSD configuration and Table II preset tests."""

import pytest

from repro.sim.units import KIB, MIB, US
from repro.ssd.config import SSD_A, SSD_B, SSD_C, SSDConfig


def test_table2_ssd_a():
    assert SSD_A.queue_depth == 128
    assert SSD_A.write_cache_bytes == 256 * MIB
    assert SSD_A.cmt_bytes == 2 * MIB
    assert SSD_A.page_bytes == 16 * KIB
    assert SSD_A.read_latency_ns == 75 * US
    assert SSD_A.write_latency_ns == 300 * US


def test_table2_ssd_b():
    assert SSD_B.queue_depth == 512
    assert SSD_B.read_latency_ns == 2 * US
    assert SSD_B.write_latency_ns == 100 * US


def test_table2_ssd_c():
    assert SSD_C.queue_depth == 512
    assert SSD_C.write_cache_bytes == 512 * MIB
    assert SSD_C.cmt_bytes == 8 * MIB
    assert SSD_C.page_bytes == 8 * KIB
    assert SSD_C.read_latency_ns == 30 * US
    assert SSD_C.write_latency_ns == 200 * US


def test_derived_quantities():
    cfg = SSD_A
    assert cfg.n_chips == cfg.n_channels * cfg.chips_per_channel
    assert cfg.capacity_pages == cfg.n_chips * cfg.blocks_per_chip * cfg.pages_per_block
    assert cfg.capacity_bytes == cfg.capacity_pages * cfg.page_bytes


def test_page_transfer_time():
    # 16 KiB at 0.8 bytes/ns = 20480 ns.
    assert SSD_A.page_transfer_ns == 20480


def test_cq_capacity_derived():
    assert SSD_A.cq_capacity == 2 * SSD_A.queue_depth
    explicit = SSD_A.with_overrides(cq_depth=64)
    assert explicit.cq_capacity == 64


def test_pages_for():
    assert SSD_A.pages_for(1) == 1
    assert SSD_A.pages_for(16 * KIB) == 1
    assert SSD_A.pages_for(16 * KIB + 1) == 2
    assert SSD_A.pages_for(44 * KIB) == 3
    with pytest.raises(ValueError):
        SSD_A.pages_for(0)


def test_with_overrides_preserves_rest():
    cfg = SSD_A.with_overrides(queue_depth=32)
    assert cfg.queue_depth == 32
    assert cfg.read_latency_ns == SSD_A.read_latency_ns


def test_validation():
    with pytest.raises(ValueError):
        SSD_A.with_overrides(queue_depth=0)
    with pytest.raises(ValueError):
        SSD_A.with_overrides(channel_bw_bytes_per_ns=0)
    with pytest.raises(ValueError):
        SSD_A.with_overrides(write_cache_policy="mystery")
    with pytest.raises(ValueError):
        SSD_A.with_overrides(gc_threshold_free_blocks=0)
    with pytest.raises(ValueError):
        SSD_A.with_overrides(gc_threshold_free_blocks=SSD_A.blocks_per_chip)
    with pytest.raises(ValueError):
        SSD_A.with_overrides(cq_depth=-1)


def test_cmt_entries_positive():
    assert SSD_A.cmt_entries >= 1
