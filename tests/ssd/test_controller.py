"""SSD controller: fetch/QD semantics, completion paths, backpressure, GC."""

import pytest

from repro.nvme.driver import DefaultNvmeDriver
from repro.sim.engine import Simulator
from repro.ssd.device import SSD
from repro.workloads.request import IORequest, OpType
from tests.conftest import FAST_SSD


def make_device(config=FAST_SSD):
    sim = Simulator()
    ssd = SSD(sim, config)
    driver = DefaultNvmeDriver()
    driver.connect(ssd)
    return sim, ssd, driver


def req(op=OpType.READ, lba=0, size=4096, arrival=0):
    return IORequest(arrival_ns=arrival, op=op, lba=lba, size_bytes=size)


def auto_drain(ssd):
    ssd.set_cq_listener(lambda _e: ssd.pop_completion())


def test_read_completes_and_stamps_lifecycle():
    sim, ssd, driver = make_device()
    auto_drain(ssd)
    r = req()
    driver.submit(r, now_ns=0)
    sim.run()
    assert r.fetch_ns >= 0
    assert r.device_done_ns > r.fetch_ns
    assert ssd.controller.commands_completed == 1


def test_write_completes_write_through():
    sim, ssd, driver = make_device()
    auto_drain(ssd)
    w = req(op=OpType.WRITE, size=3 * 4096)
    driver.submit(w, now_ns=0)
    sim.run()
    assert w.device_done_ns >= FAST_SSD.write_latency_ns
    assert ssd.cache.occupied == 0  # all staging space released


def test_write_back_completes_at_cache_speed():
    sim, ssd, driver = make_device(FAST_SSD.with_overrides(write_cache_policy="write_back"))
    auto_drain(ssd)
    w = req(op=OpType.WRITE, size=4096)
    driver.submit(w, now_ns=0)
    sim.run()
    # Completion at staging speed, far below the program latency, but the
    # flush still ran (cache drained).
    assert w.device_done_ns < FAST_SSD.write_latency_ns
    assert ssd.cache.occupied == 0


def test_qd_limits_inflight():
    config = FAST_SSD.with_overrides(queue_depth=4)
    sim, ssd, driver = make_device(config)
    auto_drain(ssd)
    for i in range(20):
        driver.submit(req(lba=i * 100), now_ns=0)
    # After the doorbell burst, at most QD commands are in flight.
    assert ssd.controller.slots_used <= 4
    sim.run()
    assert ssd.controller.commands_completed == 20


def test_multi_page_request_counts_pages():
    sim, ssd, driver = make_device()
    auto_drain(ssd)
    r = req(size=4 * 4096)
    driver.submit(r, now_ns=0)
    sim.run()
    assert r.device_done_ns > 0
    # 4 pages spread over up to 4 chips: longer than a single page read.
    assert r.device_latency_ns >= FAST_SSD.read_latency_ns


def test_cq_backpressure_holds_slots():
    """With nobody consuming the CQ, completions stall once it fills."""
    config = FAST_SSD.with_overrides(queue_depth=4, cq_depth=2)
    sim, ssd, driver = make_device(config)
    # NO auto-drain: CQ fills at 2 entries.
    for i in range(10):
        driver.submit(req(lba=i * 100), now_ns=0)
    sim.run()
    assert len(ssd.controller.cq) == 2
    assert ssd.controller.commands_completed == 2
    # Slots stay held by completed-but-unpostable commands.
    assert ssd.controller.slots_used == 4
    # Draining the CQ lets the device make progress again.
    auto_drain(ssd)
    ssd.pop_completion()
    sim.run()
    assert ssd.controller.commands_completed == 10


def test_cache_read_hit_skips_flash():
    sim, ssd, driver = make_device()
    auto_drain(ssd)
    w = req(op=OpType.WRITE, lba=0, size=4096)
    driver.submit(w, now_ns=0)
    sim.run()
    flash_before = ssd.backend.completed
    r = req(op=OpType.READ, lba=0, size=4096)
    driver.submit(r, now_ns=sim.now)
    sim.run()
    assert r.device_done_ns > 0
    assert ssd.backend.completed == flash_before  # no flash transaction
    assert ssd.cache.read_hits == 1


def test_cmt_miss_issues_mapping_read():
    config = FAST_SSD.with_overrides(mapping_read_penalty=True)
    sim, ssd, driver = make_device(config)
    auto_drain(ssd)
    driver.submit(req(lba=10_000_000), now_ns=0)
    sim.run()
    # Cold CMT: mapping read + data read = 2 backend transactions.
    assert ssd.backend.completed == 2


def test_mapping_penalty_disabled():
    config = FAST_SSD.with_overrides(mapping_read_penalty=False)
    sim, ssd, driver = make_device(config)
    auto_drain(ssd)
    driver.submit(req(lba=10_000_000), now_ns=0)
    sim.run()
    assert ssd.backend.completed == 1


def test_write_stalls_when_cache_full():
    config = FAST_SSD.with_overrides(write_cache_bytes=8192)  # 2 pages
    sim, ssd, driver = make_device(config)
    auto_drain(ssd)
    for i in range(6):
        driver.submit(req(op=OpType.WRITE, lba=i * 100, size=4096), now_ns=0)
    assert len(ssd.controller._stalled_writes) > 0
    sim.run()
    # Flushes free space; everything eventually completes.
    assert ssd.controller.commands_completed == 6
    assert ssd.cache.occupied == 0


def test_gc_triggers_under_capacity_pressure():
    # Tiny chip layout so a modest write stream wraps blocks quickly.
    config = FAST_SSD.with_overrides(
        blocks_per_chip=4, pages_per_block=8, gc_threshold_free_blocks=2,
        write_cache_bytes=1024 * 1024,
    )
    sim, ssd, driver = make_device(config)
    auto_drain(ssd)
    # Overwrite a small LBA range repeatedly: invalidations create GC food.
    n = 0
    for round_ in range(6):
        for lba in range(0, 16 * 8, 8):
            driver.submit(req(op=OpType.WRITE, lba=lba, size=4096, arrival=n), now_ns=0)
            n += 1
    sim.run()
    assert ssd.ftl.gc_invocations > 0
    assert ssd.controller.commands_completed == n


def test_completion_log_records_all():
    sim, ssd, driver = make_device()
    auto_drain(ssd)
    for i in range(5):
        driver.submit(req(lba=i * 1000), now_ns=0)
    sim.run()
    assert len(ssd.controller.completion_log) == 5
    times = [t for t, _ in ssd.controller.completion_log]
    assert times == sorted(times)
