"""Instrumented engine, bench scenarios, cProfile wrapper."""

import json

from repro.profiling import (
    EngineProfile,
    InstrumentedSimulator,
    engine_microbench,
    incast_outputs,
    run_incast_cell,
    run_with_cprofile,
)
from repro.sim.engine import Simulator
from repro.sim.units import US


def test_instrumented_simulator_counts_callback_sites():
    sim = InstrumentedSimulator()

    def tick():
        if sim.now < 50:
            sim.schedule(10, tick)

    def tock(_arg):
        pass

    sim.schedule(10, tick)
    sim.schedule(25, tock, "x")
    sim.run()
    prof = sim.profile()
    assert prof.events_dispatched == 6
    assert prof.site_counts[tick.__qualname__] == 5
    assert prof.site_counts[tock.__qualname__] == 1
    assert prof.sim_end_ns == sim.now
    assert prof.heap_high_water >= 2
    assert prof.wall_s >= 0.0


def test_instrumented_run_matches_plain_engine():
    def drive(sim):
        order = []

        def hop(tag):
            order.append((sim.now, tag))
            if len(order) < 20:
                sim.schedule(3, hop, tag + 1)

        sim.schedule(1, hop, 0)
        ev = sim.schedule(2, hop, 99)
        ev.cancel()
        sim.run(until=100)
        return order, sim.now, sim.events_dispatched

    assert drive(Simulator()) == drive(InstrumentedSimulator())


def test_engine_profile_as_dict_and_format():
    prof = EngineProfile(
        events_dispatched=100,
        wall_s=0.5,
        heap_high_water=12,
        sim_end_ns=999,
        site_counts={"a.b": 60, "c.d": 40},
    )
    d = prof.as_dict()
    assert d["events_per_sec"] == 200
    assert d["site_counts"] == {"a.b": 60, "c.d": 40}
    json.dumps(d)  # JSON-ready
    text = prof.format(top=1)
    assert "a.b" in text and "c.d" not in text
    assert prof.top_sites(5) == [("a.b", 60), ("c.d", 40)]


def test_engine_microbench_result_sane():
    result = engine_microbench(n_events=2_000, n_chains=4)
    # Cancelled decoys mean dispatched lands just under the target.
    assert result.events >= 1_500
    assert result.wall_s > 0
    assert result.events_per_sec > 0
    d = result.as_dict()
    assert d["events"] == result.events


def test_incast_cell_runs_and_reports_outputs():
    result, sim, net = run_incast_cell(n_senders=2, duration_ns=100 * US)
    assert result.events > 0
    outputs = incast_outputs(net)
    assert outputs["bytes_received"] > 0
    assert set(outputs["final_rate_gbps"]) == {"s0", "s1"}


def test_run_with_cprofile_returns_result_and_report():
    result, report = run_with_cprofile(lambda: sum(range(1000)), top=5)
    assert result == 499500
    assert "function calls" in report
