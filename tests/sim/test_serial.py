"""SerialCounter: snapshot/rewind semantics, ``_PENDING`` adoption,
registry aliasing — including a Hypothesis property over interleaved
``next()`` / ``snapshot_counters`` / ``restore_counters`` sequences."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import serial
from repro.sim.serial import (
    SerialCounter,
    restore_counters,
    snapshot_counters,
)

_NAME = "test.serial.prop"


def _scrub(*names: str) -> None:
    for name in names:
        serial._REGISTRY.pop(name, None)
        serial._PENDING.pop(name, None)


@settings(max_examples=60, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=1_000),
    ops=st.lists(
        st.sampled_from(["next", "snapshot", "restore"]), max_size=40
    ),
)
def test_interleaved_snapshot_restore_tracks_a_pure_model(start, ops):
    """Property: against any interleaving, the counter equals a pure
    integer model — ``restore`` is an exact rewind to the last
    snapshot, never an approximation."""
    try:
        counter = SerialCounter(_NAME, start=start)
        model = start
        saved: int | None = None
        for op in ops:
            if op == "next":
                assert next(counter) == model
                model += 1
            elif op == "snapshot":
                snap = snapshot_counters()
                assert snap[_NAME] == model
                saved = model
            elif saved is not None:  # restore (no-op before a snapshot)
                restore_counters({_NAME: saved})
                model = saved
        assert counter.value == model
    finally:
        _scrub(_NAME)


@settings(max_examples=60, deadline=None)
@given(
    parked=st.integers(min_value=0, max_value=10**6),
    start=st.integers(min_value=0, max_value=100),
)
def test_pending_position_is_adopted_at_registration(parked, start):
    """A restore that arrives before the owning module registers its
    counter parks the position in ``_PENDING``; registration adopts it
    and the declared ``start`` is ignored."""
    name = "test.serial.pending"
    try:
        restore_counters({name: parked})
        assert serial._PENDING[name] == parked
        counter = SerialCounter(name, start=start)
        assert name not in serial._PENDING
        assert next(counter) == parked
        assert counter.value == parked + 1
    finally:
        _scrub(name)


def test_duplicate_name_is_rejected():
    name = "test.serial.dup"
    try:
        SerialCounter(name)
        with pytest.raises(ValueError, match="duplicate"):
            SerialCounter(name)
    finally:
        _scrub(name)


def test_restore_leaves_unknown_counters_untouched():
    name = "test.serial.untouched"
    try:
        counter = SerialCounter(name, start=5)
        restore_counters({})  # nothing for this counter
        assert counter.value == 5
    finally:
        _scrub(name)


def test_pickle_aliases_the_registry_instance():
    name = "test.serial.alias"
    try:
        counter = SerialCounter(name, start=3)
        clone = pickle.loads(pickle.dumps(counter))
        assert clone is counter  # __reduce__ resolves by name
    finally:
        _scrub(name)
