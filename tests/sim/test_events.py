"""EventQueue ordering and cancellation tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import EventQueue


def test_pop_returns_events_in_time_order():
    q = EventQueue()
    fired = []
    q.push(30, lambda: fired.append(30))
    q.push(10, lambda: fired.append(10))
    q.push(20, lambda: fired.append(20))
    while (ev := q.pop()) is not None:
        ev.callback()
    assert fired == [10, 20, 30]


def test_same_time_events_pop_in_insertion_order():
    q = EventQueue()
    order = []
    for i in range(5):
        q.push(100, lambda i=i: order.append(i))
    while (ev := q.pop()) is not None:
        ev.callback()
    assert order == [0, 1, 2, 3, 4]


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(10, lambda: None)
    drop = q.push(5, lambda: None)
    drop.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_len_excludes_cancelled():
    q = EventQueue()
    a = q.push(1, lambda: None)
    q.push(2, lambda: None)
    assert len(q) == 2
    a.cancel()
    assert len(q) == 1


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.push(1, lambda: None)
    q.push(7, lambda: None)
    head.cancel()
    assert q.peek_time() == 7


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1, lambda: None)


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
def test_pop_order_is_sorted_property(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (ev := q.pop()) is not None:
        popped.append(ev.time)
    assert popped == sorted(times)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=100),
    st.data(),
)
def test_cancellation_never_pops_cancelled(times, data):
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in times]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1), max_size=len(events))
    )
    for i in to_cancel:
        events[i].cancel()
    popped = []
    while (ev := q.pop()) is not None:
        popped.append(ev)
    assert all(not ev.cancelled for ev in popped)
    assert len(popped) == len(events) - len(to_cancel)


def test_push_with_args_binds_them_to_the_event():
    q = EventQueue()
    seen = []
    q.push(5, lambda a, b: seen.append((a, b)), "x", 2)
    ev = q.pop()
    ev.callback(*ev.args)
    assert seen == [("x", 2)]


def test_cancel_after_pop_is_a_noop():
    q = EventQueue()
    q.push(1, lambda: None)
    ev = q.pop()
    ev.cancel()  # already dispatched; must not corrupt the counters
    assert len(q) == 0
    q.push(2, lambda: None)
    assert len(q) == 1


def test_double_cancel_counts_once():
    q = EventQueue()
    ev = q.push(1, lambda: None)
    q.push(2, lambda: None)
    ev.cancel()
    ev.cancel()
    assert len(q) == 1
    assert q.pop().time == 2
    assert q.pop() is None


def test_compaction_removes_dead_entries_from_the_heap():
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in range(200)]
    for ev in events[:150]:
        ev.cancel()
    # Dead entries crossed the compaction threshold along the way, so
    # the raw heap must have been rebuilt: it cannot still hold all 150
    # cancelled entries, and what remains is live + the sub-threshold
    # dead tail.
    assert len(q) == 50
    assert len(q._heap) < 150
    assert len(q._heap) - q._dead == 50
    popped = []
    while (ev := q.pop()) is not None:
        popped.append(ev.time)
    assert popped == list(range(150, 200))


def test_compaction_preserves_same_time_insertion_order():
    q = EventQueue()
    order = []
    keep = []
    for i in range(100):
        keep.append(q.push(7, lambda i=i: order.append(i)))
        q.push(7, lambda: None).cancel()  # interleave dead entries
    # Force well past the compaction threshold.
    for _ in range(50):
        q.push(7, lambda: None).cancel()
    while (ev := q.pop()) is not None:
        ev.callback(*ev.args)
    assert order == list(range(100))


class _NaiveQueue:
    """Reference model: a sorted list that never compacts.

    Same semantics as :class:`EventQueue` — dispatch in ``(time, seq)``
    order, cancelled entries silently skipped — implemented the obvious
    O(n log n) way.  The property test interleaves pushes, cancels,
    pops, and forced compactions on the real queue and asserts both
    models observe the identical dispatch sequence.
    """

    def __init__(self):
        self.entries = []  # (time, seq, event_id, kind)
        self.cancelled = set()
        self.seq = 0

    def push(self, time, event_id, kind):
        self.entries.append((time, self.seq, event_id, kind))
        self.seq += 1

    def cancel(self, event_id):
        self.cancelled.add(event_id)

    def pop(self):
        live = [e for e in self.entries if e[2] not in self.cancelled]
        if not live:
            return None
        entry = min(live)
        self.entries.remove(entry)
        return entry[2]

    def live_count(self):
        return len([e for e in self.entries if e[2] not in self.cancelled])


@given(st.data())
def test_compact_matches_naive_reference_heap(data):
    """Interleaved push/cancel/pop/compact == a queue that never compacts.

    Times are drawn from a tiny range so same-timestamp runs (and
    cancellations *inside* them) are the norm, not the exception —
    compaction must rebuild exactly the uncompacted dispatch order even
    when every surviving key ties on time and only the sequence number
    discriminates.  Anonymous entries (never cancellable) are mixed in,
    as in the real engine heap.
    """
    q = EventQueue()
    ref = _NaiveQueue()
    handles = {}  # event_id -> Event (handled pushes only)
    next_id = 0
    n_ops = data.draw(st.integers(min_value=1, max_value=120), label="n_ops")
    for _ in range(n_ops):
        choices = ["push", "push_anon", "compact", "pop"]
        if handles:
            choices.append("cancel")
        op = data.draw(st.sampled_from(choices), label="op")
        if op == "push":
            t = data.draw(st.integers(min_value=0, max_value=3), label="t")
            event_id = next_id
            next_id += 1
            handles[event_id] = q.push(t, lambda: None)
            ref.push(t, event_id, "handled")
        elif op == "push_anon":
            t = data.draw(st.integers(min_value=0, max_value=3), label="t")
            event_id = next_id
            next_id += 1
            # Smuggle the id through the args tuple for identification.
            q.push_anon(t, lambda: None, (event_id,))
            ref.push(t, event_id, "anon")
        elif op == "cancel":
            event_id = data.draw(
                st.sampled_from(sorted(handles)), label="cancel_id"
            )
            handles.pop(event_id).cancel()  # double-cancel is covered elsewhere
            ref.cancel(event_id)
        elif op == "compact":
            q._compact()
            assert q._dead == 0
        else:  # pop
            got = q.pop()
            expected = ref.pop()
            if expected is None:
                assert got is None
            else:
                assert got is not None
                got_id = got.args[0] if got.args else _handle_id(handles, got, ref)
                assert got_id == expected
        assert len(q) == ref.live_count()
    # Drain: the full remaining dispatch order must match the reference.
    drained = []
    while (ev := q.pop()) is not None:
        drained.append(ev.args[0] if ev.args else _handle_id(handles, ev, ref))
    expected_drain = []
    while (event_id := ref.pop()) is not None:
        expected_drain.append(event_id)
    assert drained == expected_drain


def _handle_id(handles, event, ref):
    """Recover the model id of a popped handled event."""
    for event_id, handle in handles.items():
        if handle is event:
            return event_id
    raise AssertionError("popped an unknown (cancelled?) handled event")


def test_high_water_tracks_raw_heap_size():
    q = EventQueue()
    for t in range(10):
        q.push(t, lambda: None)
    for _ in range(10):
        q.pop()
    assert q.high_water == 10
    assert len(q) == 0
