"""Resumable runs: ``run(max_events=)`` legs compose byte-identically.

Satellite guarantee for the checkpoint machinery: stopping a run at an
event-count boundary leaves the simulator in a consistent mid-run state,
and continuing it produces exactly the trace and outputs a single
uninterrupted run would have — the property ``run_with_checkpoints``
leans on at every leg boundary.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.profiling.bench import build_incast_cell, incast_outputs
from repro.sim.engine import MaxEventsExceeded

from tests.net.test_golden_trace import CELL, GOLDEN_PATH, normalized_log

UNTIL = CELL["duration_ns"] + 50_000


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _trace_sha(dispatch_log) -> str:
    log = normalized_log(dispatch_log)
    canonical = "\n".join(f"{t} {name}" for t, name in log)
    return hashlib.sha256(canonical.encode()).hexdigest()


def test_split_run_equals_single_run():
    """One interruption mid-run: identical trace and outputs."""
    golden = _golden()
    sim, net = build_incast_cell(trace=True, **CELL)
    with pytest.raises(MaxEventsExceeded) as exc:
        sim.run(until=UNTIL, max_events=1500)
    assert exc.value.dispatched == 1500
    assert exc.value.max_events == 1500
    assert exc.value.pending > 0
    assert exc.value.now == sim.now < UNTIL
    # Resume: no rebuild, no replay — continue the same heap.
    sim.run(until=UNTIL)
    assert _trace_sha(sim.dispatch_log) == golden["sha256"]
    assert incast_outputs(net) == golden["outputs"]


def test_many_small_legs_equal_single_run():
    """run_with_checkpoints-style loop: many tiny legs, same answer."""
    golden = _golden()
    sim, net = build_incast_cell(trace=True, **CELL)
    legs = 0
    dispatched = 0
    while True:
        try:
            dispatched += sim.run(until=UNTIL, max_events=137)
        except MaxEventsExceeded as exc:
            dispatched += exc.dispatched
            legs += 1
        else:
            break
    assert legs == golden["n_events"] // 137
    assert dispatched == golden["n_events"]
    assert sim.events_dispatched == golden["n_events"]
    assert _trace_sha(sim.dispatch_log) == golden["sha256"]
    assert incast_outputs(net) == golden["outputs"]


def test_max_events_state_is_consistent_at_boundary():
    sim, net = build_incast_cell(trace=False, **CELL)
    with pytest.raises(MaxEventsExceeded) as exc:
        sim.run(until=UNTIL, max_events=1000)
    err = exc.value
    assert sim.events_dispatched == 1000 == err.dispatched
    assert len(sim._queue._heap) >= err.pending > 0
    assert "1000" in str(err)
    # The limit applies per run() call, not cumulatively.
    with pytest.raises(MaxEventsExceeded):
        sim.run(until=UNTIL, max_events=500)
    assert sim.events_dispatched == 1500
