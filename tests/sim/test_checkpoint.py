"""Checkpoint/restore: golden round-trips, header validation, replay.

The tentpole guarantee: run-to-T → :func:`repro.sim.checkpoint.save` →
restore (same process or a *fresh* one) → continue produces a dispatch
trace byte-identical to the uninterrupted run, pinned against the v2
golden trace of the in-cast cell.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import SanitizerError
from repro.profiling.bench import build_incast_cell, incast_outputs
from repro.sim import checkpoint as ck
from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.serial import restore_counters, snapshot_counters

from tests.net.test_golden_trace import CELL, GOLDEN_PATH, normalized_log

UNTIL = CELL["duration_ns"] + 50_000


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _trace_sha(dispatch_log) -> str:
    log = normalized_log(dispatch_log)
    canonical = "\n".join(f"{t} {name}" for t, name in log)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _run_to(max_events: int):
    """Build the golden cell and run it up to ``max_events`` dispatches."""
    sim, net = build_incast_cell(trace=True, **CELL)
    try:
        sim.run(until=UNTIL, max_events=max_events)
    except MaxEventsExceeded:
        pass
    return sim, net


class TestRoundTrip:
    def test_mid_run_round_trip_matches_golden(self, tmp_path):
        """Snapshot at 1500 events, restore, continue == v2 golden."""
        golden = _golden()
        sim, net = _run_to(1500)
        assert sim.now < UNTIL  # genuinely mid-run
        path = tmp_path / "ckpt-000000001500.ckpt"
        meta = ck.save(path, sim, net, scenario=CELL)
        assert meta.events_dispatched == 1500
        sim2, net2 = ck.load(path, scenario=CELL)
        assert sim2 is not sim and net2 is not net
        sim2.run(until=UNTIL)
        assert _trace_sha(sim2.dispatch_log) == golden["sha256"]
        assert incast_outputs(net2) == golden["outputs"]

    def test_restore_preserves_identity_aliases(self, tmp_path):
        """Heap callbacks and cached slots restore as the same objects."""
        sim, net = _run_to(1500)
        path = tmp_path / "c.ckpt"
        ck.save(path, sim, net, scenario=CELL)
        sim2, net2 = ck.load(path, scenario=CELL)
        links = list(net2.iter_links())
        # The cached per-link callback slots must alias any heap entries
        # scheduled for them (batch coalescing compares identity).
        cb_ids = {id(link._finish_cb) for link in links}
        heap_cbs = {
            id(entry[2])
            for entry in sim2._queue._heap
            if getattr(entry[2], "__name__", "") == "_finish"
        }
        assert heap_cbs <= cb_ids

    def test_serial_counters_round_trip(self, tmp_path):
        sim, net = _run_to(1500)
        before = snapshot_counters()
        assert before["net.message"] > 0
        path = tmp_path / "c.ckpt"
        ck.save(path, sim, net)
        # Perturb, then restore: load must rewind the id streams.
        restore_counters({name: v + 1000 for name, v in before.items()})
        ck.load(path)
        assert snapshot_counters() == before

    def test_census_names_components(self, tmp_path):
        sim, net = _run_to(1500)
        meta = ck.save(tmp_path / "c.ckpt", sim, net)
        # Under REPRO_SANITIZE=1 the engine is the sanitizing subclass;
        # the census records the concrete class either way.
        sims = {k: v for k, v in meta.census.items() if k.endswith("Simulator")}
        assert sum(sims.values()) == 1
        assert meta.census["repro.net.nic.NIC"] == CELL["n_senders"] + 1
        assert meta.census["repro.net.switch.Switch"] == 1

    @settings(max_examples=8, deadline=None)
    @given(split=st.integers(min_value=1, max_value=2900))
    def test_round_trip_at_random_event_index(self, split):
        """Property: any snapshot index yields an identical tail trace."""
        golden = _golden()
        sim, net = _run_to(split)
        buffer_path = Path(os.environ.get("TMPDIR", "/tmp")) / (
            f"repro-hyp-{os.getpid()}.ckpt"
        )
        try:
            ck.save(buffer_path, sim, net, scenario=CELL)
            sim2, net2 = ck.load(buffer_path, scenario=CELL)
        finally:
            buffer_path.unlink(missing_ok=True)
        sim2.run(until=UNTIL)
        assert _trace_sha(sim2.dispatch_log) == golden["sha256"]
        assert incast_outputs(net2) == golden["outputs"]


class TestFreshProcess:
    def test_fresh_process_continuation_matches_golden(self, tmp_path):
        """The acceptance criterion: restore in a *fresh interpreter*
        and continue — the full trace is byte-identical to the golden.
        """
        golden = _golden()
        sim, net = _run_to(1500)
        path = tmp_path / "ckpt-000000001500.ckpt"
        ck.save(path, sim, net, scenario=CELL)
        out_path = tmp_path / "result.json"
        script = (
            "import hashlib, json, sys\n"
            "from repro.sim import checkpoint as ck\n"
            "from repro.profiling.bench import incast_outputs\n"
            "from tests.net.test_golden_trace import CELL, normalized_log\n"
            f"sim, net = ck.load({str(path)!r}, scenario=CELL)\n"
            f"sim.run(until={UNTIL})\n"
            "log = normalized_log(sim.dispatch_log)\n"
            "canonical = '\\n'.join(f'{t} {n}' for t, n in log)\n"
            "json.dump({'sha256': hashlib.sha256(canonical.encode()).hexdigest(),"
            " 'outputs': incast_outputs(net)},"
            f" open({str(out_path)!r}, 'w'))\n"
        )
        repo_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(repo_root) / "src"), repo_root]
        )
        env.pop("REPRO_SANITIZE", None)
        subprocess.run(
            [sys.executable, "-c", script], env=env, check=True, timeout=300
        )
        result = json.loads(out_path.read_text())
        assert result["sha256"] == golden["sha256"]
        assert result["outputs"] == golden["outputs"]


class TestHeaderValidation:
    def _checkpoint(self, tmp_path) -> Path:
        sim, net = _run_to(500)
        path = tmp_path / "c.ckpt"
        ck.save(path, sim, net, scenario=CELL)
        return path

    def _rewrite_header(self, path: Path, **overrides) -> None:
        raw = path.read_bytes()
        header_line, payload = raw.split(b"\n", 1)
        header = json.loads(header_line)
        header.update(overrides)
        path.write_bytes(json.dumps(header, sort_keys=True).encode() + b"\n" + payload)

    def test_not_a_checkpoint(self, tmp_path):
        bogus = tmp_path / "x.ckpt"
        bogus.write_bytes(b"\x80\x04 definitely not json\n123")
        with pytest.raises(ck.CheckpointError) as exc:
            ck.read_meta(bogus)
        assert exc.value.reason == "bad-magic"

    def test_schema_mismatch(self, tmp_path):
        path = self._checkpoint(tmp_path)
        self._rewrite_header(path, schema=ck.CKPT_SCHEMA + 1)
        with pytest.raises(ck.CheckpointError) as exc:
            ck.load(path)
        assert exc.value.reason == "schema-mismatch"

    def test_code_version_mismatch(self, tmp_path):
        path = self._checkpoint(tmp_path)
        self._rewrite_header(path, code_version="0.0.0-older")
        with pytest.raises(ck.CheckpointError) as exc:
            ck.load(path)
        assert exc.value.reason == "code-version-mismatch"
        assert "0.0.0-older" in exc.value.detail

    def test_scenario_mismatch(self, tmp_path):
        path = self._checkpoint(tmp_path)
        other = dict(CELL, n_senders=CELL["n_senders"] + 1)
        with pytest.raises(ck.CheckpointError) as exc:
            ck.load(path, scenario=other)
        assert exc.value.reason == "scenario-mismatch"
        # No scenario passed -> no check; the same scenario -> clean load.
        ck.load(path)
        ck.load(path, scenario=dict(CELL))

    def test_payload_corruption_detected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ck.CheckpointError) as exc:
            ck.load(path)
        assert exc.value.reason == "payload-corrupt"

    def test_scenario_fingerprint_is_order_insensitive(self):
        a = ck.scenario_fingerprint({"x": 1, "y": 2})
        b = ck.scenario_fingerprint({"y": 2, "x": 1})
        assert a == b
        assert a != ck.scenario_fingerprint({"x": 1, "y": 3})

    def test_unpicklable_callback_fails_loudly(self, tmp_path):
        sim = Simulator()
        sim.schedule_anon(10, lambda: None)  # closure: cannot checkpoint
        with pytest.raises(ck.CheckpointError) as exc:
            ck.save(tmp_path / "c.ckpt", sim, None)
        assert exc.value.reason == "unpicklable-callback"


class TestRunWithCheckpoints:
    def test_periodic_legs_produce_golden_trace(self, tmp_path):
        golden = _golden()
        sim, net = build_incast_cell(trace=True, **CELL)
        run = ck.run_with_checkpoints(
            sim, net, until=UNTIL, directory=tmp_path, every=700, scenario=CELL
        )
        assert _trace_sha(sim.dispatch_log) == golden["sha256"]
        assert incast_outputs(net) == golden["outputs"]
        assert run.dispatched == golden["n_events"]
        # keep=2 prunes older checkpoints but the newest survives.
        kept = sorted(tmp_path.glob("ckpt-*.ckpt"))
        assert 1 <= len(kept) <= 2
        assert ck.latest_checkpoint(tmp_path) == kept[-1]

    def test_resume_or_start(self, tmp_path):
        golden = _golden()
        sim, net = _run_to(1500)
        ck.save(
            ck._ckpt_path(tmp_path, sim.events_dispatched), sim, net, scenario=CELL
        )

        def build():
            raise AssertionError("must resume, not rebuild")

        sim2, net2 = ck.resume_or_start(tmp_path, build, scenario=CELL)
        sim2.run(until=UNTIL)
        assert _trace_sha(sim2.dispatch_log) == golden["sha256"]
        # Empty directory: build() is used.
        empty = tmp_path / "empty"
        sim3, net3 = ck.resume_or_start(
            empty, lambda: build_incast_cell(trace=True, **CELL), scenario=CELL
        )
        sim3.run(until=UNTIL)
        assert _trace_sha(sim3.dispatch_log) == golden["sha256"]


def _corrupt_link(link):
    """Module-level sabotage callback: picklable inside the heap."""
    link._queued_bytes = -7


def _violating_run(tmp_path):
    sim = Simulator(sanitize=True)
    sim, net = build_incast_cell(sim=sim, **CELL)
    link = next(iter(net.iter_links()))
    sim.schedule_at_anon(250_000, _corrupt_link, link)
    with pytest.raises(SanitizerError) as exc:
        ck.run_with_checkpoints(
            sim, net, until=UNTIL, directory=tmp_path, every=500, scenario=CELL
        )
    return exc.value


class TestFailureReplay:
    def _violating_run(self, tmp_path):
        return _violating_run(tmp_path)

    def test_sanitizer_error_dumps_recipe(self, tmp_path):
        err = self._violating_run(tmp_path)
        recipe_path = Path(err.replay_recipe)
        assert recipe_path == tmp_path / "failure.json"
        recipe = json.loads(recipe_path.read_text())
        assert recipe["kind"] == "sanitizer-failure"
        assert recipe["error"]["invariant"] == "queue-depth"
        assert Path(recipe["checkpoint"]).exists()
        assert recipe["checkpoint_events"] <= 3000

    def test_replay_failure_reproduces(self, tmp_path):
        err = self._violating_run(tmp_path)
        report = ck.replay_failure(err.replay_recipe)
        assert report["reproduced"] is True
        assert report["invariant"] == "queue-depth"
        assert report["sanitizing"] is True
        assert report["time_ns"] == 250_000
        assert 0 < report["events_replayed"] < 1200  # tail only, not from zero

    def test_replay_failure_accepts_directory(self, tmp_path):
        self._violating_run(tmp_path)
        report = ck.replay_failure(tmp_path)
        assert report["reproduced"] is True

    def test_replay_failure_cli(self, tmp_path, capsys):
        from repro.cli import main

        err = self._violating_run(tmp_path)
        assert main(["replay-failure", err.replay_recipe]) == 0
        out = capsys.readouterr().out
        assert "reproduced queue-depth" in out
        assert main(["replay-failure", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["reproduced"] is True


class TestReplayFailureErrorPaths:
    """The replay CLI must fail loudly — exit 2 plus a structured
    ``--json`` error object — on every broken-input path."""

    def _rewrite_checkpoint_header(self, ckpt: Path, **overrides) -> None:
        raw = ckpt.read_bytes()
        header_line, payload = raw.split(b"\n", 1)
        header = json.loads(header_line)
        header.update(overrides)
        ckpt.write_bytes(
            json.dumps(header, sort_keys=True).encode() + b"\n" + payload
        )

    def test_missing_recipe_exits_2_with_structured_error(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        assert main(["replay-failure", str(tmp_path), "--json"]) == 2
        captured = capsys.readouterr()
        error = json.loads(captured.out)["error"]
        assert error["kind"] == "missing-recipe"
        assert error["reason"] == "missing-recipe"
        assert "failure.json" in error["detail"]
        assert "replay-failure:" in captured.err

    def test_corrupt_payload_exits_2_with_reason(self, tmp_path, capsys):
        from repro.cli import main

        err = _violating_run(tmp_path)
        recipe = json.loads(Path(err.replay_recipe).read_text())
        ckpt = Path(recipe["checkpoint"])
        raw = bytearray(ckpt.read_bytes())
        raw[-10] ^= 0xFF
        ckpt.write_bytes(bytes(raw))

        with pytest.raises(ck.CheckpointError) as exc:
            ck.replay_failure(err.replay_recipe)
        assert exc.value.reason == "payload-corrupt"

        assert main(["replay-failure", err.replay_recipe, "--json"]) == 2
        captured = capsys.readouterr()
        error = json.loads(captured.out)["error"]
        assert error["kind"] == "checkpoint"
        assert error["reason"] == "payload-corrupt"
        assert "replay-failure:" in captured.err

    def test_schema_mismatch_exits_2_with_reason(self, tmp_path, capsys):
        from repro.cli import main

        err = _violating_run(tmp_path)
        recipe = json.loads(Path(err.replay_recipe).read_text())
        self._rewrite_checkpoint_header(
            Path(recipe["checkpoint"]), schema=ck.CKPT_SCHEMA + 1
        )

        assert main(["replay-failure", err.replay_recipe, "--json"]) == 2
        captured = capsys.readouterr()
        error = json.loads(captured.out)["error"]
        assert error["kind"] == "checkpoint"
        assert error["reason"] == "schema-mismatch"
        assert "replay-failure:" in captured.err
