"""Simulator engine semantics."""

import pytest

from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.rng import make_rng, spawn_rngs


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_schedule_advances_clock_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(100, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [100]
    assert sim.now == 100


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(50, lambda: fired.append(50))
    sim.schedule(150, lambda: fired.append(150))
    sim.run(until=100)
    assert fired == [50]
    assert sim.now == 100  # clock advances to the boundary
    sim.run()
    assert fired == [50, 150]


def test_events_scheduled_during_run_are_dispatched():
    sim = Simulator()
    fired = []

    def cascade():
        fired.append(sim.now)
        if sim.now < 30:
            sim.schedule(10, cascade)

    sim.schedule(10, cascade)
    sim.run()
    assert fired == [10, 20, 30]


def test_schedule_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-5, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_max_events_guards_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(1, forever)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=100)


def test_max_events_error_reports_partial_state():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)
        sim.schedule(1, lambda: None)

    sim.schedule(1, forever)
    with pytest.raises(MaxEventsExceeded) as excinfo:
        sim.run(max_events=50)
    err = excinfo.value
    assert err.max_events == 50
    assert err.dispatched == 50
    assert err.now == sim.now  # snapshot matches the live simulator
    assert err.pending == sim.pending() > 0
    # The simulator stays usable for inspection.
    assert sim.events_dispatched == 50


def test_simulator_continues_after_max_events_error():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i + 1, lambda: None)
    with pytest.raises(MaxEventsExceeded):
        sim.run(max_events=2)
    # Remaining events are still queued and dispatchable.
    assert sim.run() == 3
    assert sim.events_dispatched == 5


def test_run_returns_dispatch_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i + 1, lambda: None)
    assert sim.run() == 7
    assert sim.events_dispatched == 7


def test_trace_mode_records_dispatches():
    sim = Simulator(trace=True)

    def named():
        pass

    sim.schedule(5, named)
    sim.run()
    assert sim.dispatch_log == [(5, named.__qualname__)]


def test_pending_counts_live_events():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    ev = sim.schedule(2, lambda: None)
    ev.cancel()
    assert sim.pending() == 1


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(10, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b"]


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert a.random() == b.random()

    def test_spawned_streams_differ(self):
        rngs = spawn_rngs(1, 3)
        draws = [r.random() for r in rngs]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [r.random() for r in spawn_rngs(9, 2)]
        b = [r.random() for r in spawn_rngs(9, 2)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero_ok(self):
        assert spawn_rngs(0, 0) == []


def test_schedule_passes_extra_args_to_callback():
    sim = Simulator()
    seen = []
    sim.schedule(5, seen.append, "a")
    sim.schedule_at(9, lambda x, y: seen.append(x + y), 1, 2)
    sim.run()
    assert seen == ["a", 3]


def test_trace_mode_records_args_dispatches():
    sim = Simulator(trace=True)

    def named(_tag):
        pass

    sim.schedule(5, named, "t")
    sim.run()
    assert sim.dispatch_log == [(5, named.__qualname__)]


def test_dispatch_order_identical_across_runs_with_cancellations():
    def build():
        sim = Simulator(trace=True)
        pending = []

        def churn(i):
            # Cancel-and-reschedule like DCQCN timers do; enough volume
            # to cross the queue's compaction threshold mid-run.
            for ev in pending:
                ev.cancel()
            pending.clear()
            for j in range(3):
                pending.append(sim.schedule(10 + j, noop, i))
            if i < 60:
                sim.schedule(5, churn, i + 1)

        def noop(_i):
            pass

        sim.schedule(1, churn, 0)
        sim.run()
        return sim.dispatch_log

    assert build() == build()
