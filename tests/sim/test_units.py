"""Unit-conversion tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import units


def test_time_constants_are_nanoseconds():
    assert units.NS == 1
    assert units.US == 1_000
    assert units.MS == 1_000_000
    assert units.SEC == 1_000_000_000


def test_size_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3


def test_gbps_constant_is_bytes_per_ns():
    # 1 Gbps = 0.125 GB/s = 0.125 bytes/ns.
    assert units.GBPS == pytest.approx(0.125)


def test_bytes_bits_round_trip():
    assert units.bytes_to_bits(10) == 80
    assert units.bits_to_bytes(80) == 10


def test_bits_to_bytes_rounds_up():
    assert units.bits_to_bytes(1) == 1
    assert units.bits_to_bytes(9) == 2


def test_rate_to_duration_40gbps():
    # 4 KiB at 40 Gbps = 4096 / 5 bytes-per-ns = 819.2 -> 819 ns.
    assert units.rate_to_duration_ns(4096, 40.0) == 819


def test_rate_to_duration_zero_bytes_still_positive():
    assert units.rate_to_duration_ns(0, 40.0) == 1


def test_rate_to_duration_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.rate_to_duration_ns(100, 0.0)
    with pytest.raises(ValueError):
        units.rate_to_duration_ns(100, -1.0)


def test_throughput_gbps_inverse_of_rate():
    # Moving 5 GB in one second is 40 Gbps.
    assert units.throughput_gbps(5_000_000_000, units.SEC) == pytest.approx(40.0)


def test_bytes_per_ns_rejects_bad_duration():
    with pytest.raises(ValueError):
        units.bytes_per_ns(10, 0)


@given(st.integers(min_value=1, max_value=10**12), st.floats(min_value=0.1, max_value=400))
def test_duration_roundtrip_property(nbytes, gbps):
    """Serialization time × rate recovers the byte count within rounding."""
    dur = units.rate_to_duration_ns(nbytes, gbps)
    recovered = dur * units.gbps_to_bytes_per_ns(gbps)
    assert recovered == pytest.approx(nbytes, rel=0.01, abs=units.gbps_to_bytes_per_ns(gbps))


@given(st.integers(min_value=0, max_value=10**15))
def test_bits_bytes_inverse_property(nbytes):
    assert units.bits_to_bytes(units.bytes_to_bits(nbytes)) == nbytes
