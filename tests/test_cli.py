"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_motivation(capsys):
    assert main(["motivation"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    assert "SRC" in out


def test_synthesize_and_replay_round_trip(tmp_path, capsys):
    path = tmp_path / "t.csv"
    assert main(["synthesize", "--profile", "vdi", "--reads", "300",
                 "--writes", "150", "-o", str(path)]) == 0
    assert path.exists()
    assert main(["replay", str(path), "--ssd", "A", "--weight", "2"]) == 0
    out = capsys.readouterr().out
    assert "read" in out and "Gbps" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_profile_engine_json(capsys):
    import json

    assert main(["profile", "--scenario", "engine", "--events", "3000",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # Slightly under the target is fine: the microbench cancels decoy
    # events, which are scheduled but never dispatched.
    assert payload["engine"]["events_dispatched"] >= 2500
    assert payload["engine"]["events_per_sec"] > 0
    assert payload["engine"]["site_counts"]


def test_profile_incast_text_output(capsys):
    assert main(["profile", "--scenario", "incast", "--duration-us", "100",
                 "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "--- incast ---" in out
    assert "events/sec" in out
    assert "top callback sites:" in out
