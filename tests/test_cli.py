"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_motivation(capsys):
    assert main(["motivation"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    assert "SRC" in out


def test_synthesize_and_replay_round_trip(tmp_path, capsys):
    path = tmp_path / "t.csv"
    assert main(["synthesize", "--profile", "vdi", "--reads", "300",
                 "--writes", "150", "-o", str(path)]) == 0
    assert path.exists()
    assert main(["replay", str(path), "--ssd", "A", "--weight", "2"]) == 0
    out = capsys.readouterr().out
    assert "read" in out and "Gbps" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
