"""End-to-end chaos cells: deterministic, never wedged, failure-recorded."""

from __future__ import annotations

from repro.experiments.faults import (
    POLICIES,
    fault_matrix,
    run_chaos_cell,
    run_chaos_matrix,
)
from repro.sim.units import MS


def test_fixed_seed_chaos_cell_replays_identically():
    # The acceptance cell: loss + flap + die at a fixed seed must finish
    # with zero wedged I/Os and identical measurements across two runs.
    a = run_chaos_cell("chaos", "static", seed=11, duration_ns=20 * MS)
    b = run_chaos_cell("chaos", "static", seed=11, duration_ns=20 * MS)
    assert a == b  # frozen dataclass: field-for-field equality
    assert a.wedged == 0
    assert a.faults_fired == len(fault_matrix(20 * MS, seed=11)["chaos"].specs)
    assert a.packets_lost > 0 or a.packets_dropped_down > 0
    assert a.retransmits > 0


def test_every_request_accounted_for():
    o = run_chaos_cell("chaos", "src", seed=4, duration_ns=20 * MS)
    # completed + failed + wedged covers every issued request; wedged
    # must be zero with the recovery path armed.
    assert o.wedged == 0
    assert o.completed + o.failed > 0
    assert o.failed <= o.completed // 10  # faults hurt, they don't kill


def test_matrix_records_failures_instead_of_aborting():
    outcomes, report = run_chaos_matrix(
        ("baseline",), POLICIES, seed=0, duration_ns=20 * MS, workers=1
    )
    assert report.n_failed == 0
    assert len(outcomes) == len(POLICIES)
    assert all(o is not None and o.wedged == 0 for o in outcomes)
    baseline = outcomes[0]
    assert baseline is not None
    assert baseline.retries_sent == 0 and baseline.retransmits == 0
