"""FaultInjector wiring: resolution, arming, and deterministic loss."""

from __future__ import annotations

import pytest

from repro.faults import DieFailure, FaultInjector, FaultPlan, LinkFlap, LossBurst
from repro.net.nic import NICConfig
from repro.net.reliability import ReliabilityConfig
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MS, US
from repro.ssd.flash import FlashBackend
from tests.conftest import FAST_SSD


def build_cell(plan: FaultPlan | None = None, *, reliability: bool = True):
    """Two-host star; ``a`` streams messages to ``b``; returns handles."""
    sim = Simulator()
    cfg = (
        NICConfig(reliability=ReliabilityConfig(seed=1, rto_ns=100_000))
        if reliability
        else None
    )
    net = build_star(sim, ["a", "b"], rate_gbps=40.0, delay_ns=US, nic_config=cfg)
    delivered: list[int] = []
    net.hosts["b"].endpoint = lambda payload, src, nbytes: delivered.append(nbytes)
    injector = None
    if plan is not None:
        injector = FaultInjector(sim, plan).attach_network(net)
        injector.arm()
    for _ in range(20):
        assert net.hosts["a"].send_message("b", 32 * KIB)
    return sim, net, delivered, injector


class TestResolution:
    def test_unknown_link_fails_at_arm(self):
        sim = Simulator()
        net = build_star(sim, ["a", "b"], rate_gbps=40.0, delay_ns=US)
        plan = FaultPlan(specs=(LinkFlap("nope->sw0", 0, 100),))
        with pytest.raises(KeyError, match="unknown link 'nope->sw0'"):
            FaultInjector(sim, plan).attach_network(net).arm()

    def test_unknown_ssd_fails_at_arm(self):
        sim = Simulator()
        plan = FaultPlan(specs=(DieFailure("ghost", chip=0, at_ns=0),))
        with pytest.raises(KeyError, match="unknown SSD 'ghost'"):
            FaultInjector(sim, plan).arm()

    def test_chip_out_of_range_fails_at_arm(self):
        sim = Simulator()
        backend = FlashBackend(sim, FAST_SSD)
        plan = FaultPlan(specs=(DieFailure("s", chip=10_000, at_ns=0),))
        injector = FaultInjector(sim, plan).attach_ssd("s", backend)
        with pytest.raises(ValueError, match="out of range"):
            injector.arm()

    def test_arming_twice_rejected(self):
        sim = Simulator()
        injector = FaultInjector(sim, FaultPlan())
        injector.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()


class TestInjection:
    def test_loss_burst_drops_and_recovers(self):
        plan = FaultPlan(
            seed=5, specs=(LossBurst("a->sw0", 0, 2 * MS, loss_prob=0.2),)
        )
        sim, net, delivered, injector = build_cell(plan)
        sim.run(until=50 * MS)
        assert injector is not None
        summary = injector.loss_summary()
        assert summary["a->sw0"]["lost"] > 0
        assert len(delivered) == 20  # every message recovered
        assert injector.faults_fired == 1

    def test_same_seed_same_loss_pattern(self):
        def counts(seed: int) -> tuple[int, int]:
            plan = FaultPlan(
                seed=seed,
                specs=(
                    LossBurst(
                        "a->sw0", 0, 2 * MS, loss_prob=0.1, corrupt_prob=0.05
                    ),
                ),
            )
            sim, net, delivered, injector = build_cell(plan)
            sim.run(until=50 * MS)
            assert injector is not None
            link = injector.loss_summary()["a->sw0"]
            return link["lost"], link["corrupted"]

        assert counts(7) == counts(7)
        # Different seeds draw a different pattern (overwhelmingly likely
        # over a few hundred packets; fixed seeds keep this stable).
        assert counts(7) != counts(8)

    def test_link_flap_freezes_then_delivers(self):
        plan = FaultPlan(specs=(LinkFlap("sw0->b", 100_000, 600_000),))
        sim, net, delivered, injector = build_cell(plan)
        sim.run(until=50 * MS)
        assert len(delivered) == 20
        link = net.find_link("sw0->b")
        assert not link.down

    def test_empty_plan_changes_nothing(self):
        sim_a, _, delivered_a, _ = build_cell(FaultPlan())
        sim_b, _, delivered_b, _ = build_cell(None)
        sim_a.run(until=50 * MS)
        sim_b.run(until=50 * MS)
        assert delivered_a == delivered_b
        assert sim_a.events_dispatched == sim_b.events_dispatched
