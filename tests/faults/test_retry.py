"""NVMe-oF command timeout + bounded retry at the initiator."""

from __future__ import annotations

import pytest

from repro.fabric.initiator import Initiator, RetryPolicy
from repro.fabric.target import Target
from repro.net.topology import build_star
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MS, US
from repro.ssd.device import SSD
from repro.workloads.request import IORequest, OpType
from tests.conftest import FAST_SSD


def make_request(size_bytes: int = 4 * KIB, op: OpType = OpType.READ) -> IORequest:
    req = IORequest(arrival_ns=0, op=op, lba=0, size_bytes=size_bytes)
    req.target = "tgt0"
    return req


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ns=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)


class TestTimeoutRetry:
    def test_black_hole_exhausts_retries_and_fails(self):
        # tgt0 exists on the network but runs no Target: every command
        # vanishes, so only the timeout path can terminate the request.
        sim = Simulator()
        net = build_star(sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US)
        policy = RetryPolicy(timeout_ns=1 * MS, max_retries=3, backoff=2.0)
        ini = Initiator(sim, net.hosts["init0"], retry_policy=policy)
        req = make_request()
        ini.issue(req)
        # Worst-case chain: 1 + 2 + 4 + 8 ms of timeouts.
        sim.run(until=30 * MS)
        assert ini.outstanding() == 0
        assert ini.failed_requests == 1 and ini.failures[0][1] is req
        assert req.error == "timeout"
        assert req.complete_ns >= 0
        assert req.retries == policy.max_retries
        assert ini.timeouts_fired == policy.max_retries + 1
        assert ini.retries_sent == policy.max_retries

    def test_no_policy_means_no_timeout(self):
        sim = Simulator()
        net = build_star(sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US)
        ini = Initiator(sim, net.hosts["init0"])
        req = make_request()
        ini.issue(req)
        sim.run(until=30 * MS)
        assert ini.outstanding() == 1  # wedged — the watchdog's job
        assert ini.failed_requests == 0

    def test_short_timeout_counts_duplicate_completions(self):
        # A timeout far below the service latency resubmits commands the
        # target eventually answers: the late original must be dropped
        # as a duplicate, and the request must complete exactly once.
        sim = Simulator()
        net = build_star(sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US)
        ssd = SSD(sim, FAST_SSD)
        Target(sim, net.hosts["tgt0"], [ssd], [SSQDriver(1, 1)])
        policy = RetryPolicy(timeout_ns=20_000, max_retries=5, backoff=1.0)
        ini = Initiator(sim, net.hosts["init0"], retry_policy=policy)
        req = make_request(size_bytes=64 * KIB)
        ini.issue(req)
        sim.run(until=50 * MS)
        assert ini.outstanding() == 0
        assert ini.reads_completed == 1
        assert ini.duplicate_completions >= 1


class TestMediaErrors:
    def test_dead_die_error_completion_fails_after_retries(self):
        sim = Simulator()
        net = build_star(sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US)
        ssd = SSD(sim, FAST_SSD)
        for chip in range(ssd.backend.config.n_chips):
            ssd.backend.fail_chip(chip)  # whole-device media failure
        target = Target(sim, net.hosts["tgt0"], [ssd], [SSQDriver(1, 1)])
        policy = RetryPolicy(timeout_ns=5 * MS, max_retries=2)
        ini = Initiator(sim, net.hosts["init0"], retry_policy=policy)
        req = make_request()
        ini.issue(req)
        sim.run(until=100 * MS)
        assert ini.outstanding() == 0
        assert req.error == "media"
        assert req.retries == policy.max_retries
        assert ini.failed_requests == 1
        assert target.error_completions == policy.max_retries + 1
        assert ini.timeouts_fired == 0  # errors arrive well before the RTO

    def test_retry_can_land_on_healthy_ssd(self):
        # Two SSDs behind one target, round-robin dispatch; the first is
        # fully dead.  A failed command's retry reaches the healthy one.
        sim = Simulator()
        net = build_star(sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US)
        dead, healthy = SSD(sim, FAST_SSD), SSD(sim, FAST_SSD)
        for chip in range(dead.backend.config.n_chips):
            dead.backend.fail_chip(chip)
        Target(
            sim, net.hosts["tgt0"], [dead, healthy], [SSQDriver(1, 1), SSQDriver(1, 1)]
        )
        policy = RetryPolicy(timeout_ns=5 * MS, max_retries=4)
        ini = Initiator(sim, net.hosts["init0"], retry_policy=policy)
        req = make_request()
        ini.issue(req)  # round-robin slot 0 → the dead SSD first
        sim.run(until=100 * MS)
        assert ini.outstanding() == 0
        assert ini.reads_completed == 1
        assert req.error == ""
        assert req.retries >= 1
