"""FaultPlan/spec validation: bad plans must fail at construction."""

from __future__ import annotations

import pytest

from repro.faults import (
    ChannelBrownout,
    DieFailure,
    FaultPlan,
    LinkFlap,
    LossBurst,
    NicStall,
    SlowDie,
)


class TestSpecValidation:
    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            LossBurst("l", start_ns=100, end_ns=100, loss_prob=0.1)
        with pytest.raises(ValueError):
            LinkFlap("l", down_ns=200, up_ns=100)
        with pytest.raises(ValueError):
            NicStall("h", start_ns=-1, end_ns=100)

    def test_loss_probabilities(self):
        with pytest.raises(ValueError):
            LossBurst("l", 0, 100, loss_prob=1.5)
        with pytest.raises(ValueError):
            LossBurst("l", 0, 100, loss_prob=0.7, corrupt_prob=0.7)
        with pytest.raises(ValueError):  # a burst that does nothing
            LossBurst("l", 0, 100)
        LossBurst("l", 0, 100, corrupt_prob=0.1)  # corrupt-only is fine

    def test_ssd_spec_validation(self):
        with pytest.raises(ValueError):
            DieFailure("s", chip=-1, at_ns=0)
        with pytest.raises(ValueError):
            SlowDie("s", chip=0, start_ns=0, end_ns=100, multiplier=1.0)
        with pytest.raises(ValueError):
            ChannelBrownout("s", channel=0, start_ns=0, end_ns=100, multiplier=0.5)


class TestFaultPlan:
    def test_overlapping_loss_bursts_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                specs=(
                    LossBurst("l", 0, 200, loss_prob=0.1),
                    LossBurst("l", 100, 300, loss_prob=0.1),
                )
            )

    def test_adjacent_and_cross_link_bursts_allowed(self):
        FaultPlan(
            specs=(
                LossBurst("l", 0, 100, loss_prob=0.1),
                LossBurst("l", 100, 200, loss_prob=0.1),  # back-to-back
                LossBurst("m", 50, 150, loss_prob=0.1),  # other link
            )
        )

    def test_name_accessors(self):
        plan = FaultPlan(
            specs=(
                LossBurst("a->sw", 0, 100, loss_prob=0.1),
                LinkFlap("sw->b", 0, 100),
                NicStall("a", 0, 100),
                DieFailure("t/ssd0", chip=0, at_ns=50),
                SlowDie("t/ssd1", chip=1, start_ns=0, end_ns=100),
            )
        )
        assert plan.link_names() == {"a->sw", "sw->b"}
        assert plan.host_names() == {"a"}
        assert plan.ssd_names() == {"t/ssd0", "t/ssd1"}
        assert len(plan.loss_bursts) == 1
