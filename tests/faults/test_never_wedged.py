"""Property: no loss pattern may wedge the fabric.

Whatever combination of loss bursts, corruption, and a link flap is
thrown at a cell with the recovery path armed (go-back-N + command
retry), every issued request must terminate — completed or explicitly
failed — within a bounded drain horizon.  "The simulation just stopped
delivering" is exactly the bug class this PR exists to kill.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.initiator import Initiator, RetryPolicy
from repro.fabric.target import Target
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFlap,
    LossBurst,
    StuckIOWatchdog,
)
from repro.net.nic import NICConfig
from repro.net.reliability import ReliabilityConfig
from repro.net.topology import build_star
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MS, US
from repro.ssd.device import SSD
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD

LINKS = ("init0->sw0", "sw0->init0", "tgt0->sw0", "sw0->tgt0")

bursts = st.lists(
    st.builds(
        LossBurst,
        link=st.sampled_from(LINKS),
        start_ns=st.integers(min_value=0, max_value=1 * MS),
        end_ns=st.integers(min_value=1 * MS + 1, max_value=2 * MS),
        loss_prob=st.floats(min_value=0.01, max_value=0.3),
        corrupt_prob=st.floats(min_value=0.0, max_value=0.1),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda b: b.link,  # one burst per link: no overlap
)
flaps = st.one_of(
    st.none(),
    st.builds(
        LinkFlap,
        link=st.sampled_from(LINKS),
        down_ns=st.integers(min_value=0, max_value=1 * MS),
        up_ns=st.integers(min_value=1 * MS + 1, max_value=int(1.5 * MS)),
    ),
)


@settings(max_examples=12, deadline=None)
@given(specs=bursts, flap=flaps, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_any_loss_pattern_terminates_every_io(specs, flap, seed):
    plan = FaultPlan(
        seed=seed, specs=tuple(specs) + ((flap,) if flap is not None else ())
    )
    sim = Simulator()
    net = build_star(
        sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US,
        nic_config=NICConfig(reliability=ReliabilityConfig(seed=seed, rto_ns=100_000)),
    )
    ssd = SSD(sim, FAST_SSD)
    Target(sim, net.hosts["tgt0"], [ssd], [SSQDriver(1, 1)])
    ini = Initiator(
        sim,
        net.hosts["init0"],
        retry_policy=RetryPolicy(timeout_ns=1 * MS, max_retries=3),
    )
    watchdog = StuckIOWatchdog().install(sim)
    watchdog.track_initiator(ini)
    trace = generate_micro_trace(
        MicroWorkloadConfig(mean_interarrival_ns=50_000, mean_size_bytes=8 * KIB),
        n_reads=15,
        n_writes=15,
        seed=seed,
    )
    ini.load_trace(trace, lambda _req: "tgt0")
    FaultInjector(sim, plan).attach_network(net).arm()

    # Run past every arrival first (nothing is in flight before the
    # requests are issued), then drain.  Generous grace: the retry chain
    # worst case is 1+2+4+8 ms, plus RTO backoff; 100 ms dwarfs both.
    sim.run(until=trace[-1].arrival_ns + 1)
    horizon = trace[-1].arrival_ns + 100 * MS
    while sim.now < horizon and ini.outstanding():
        sim.run(until=min(horizon, sim.now + MS))

    assert ini.outstanding() == 0, "wedged I/O despite recovery machinery"
    assert ini.reads_completed + ini.writes_completed + ini.failed_requests == 30
    for req in trace:
        assert req.complete_ns >= 0
        assert (req.error == "") == (
            req.req_id
            not in {r.req_id for _, r in ini.failures}
        )
    watchdog.check_now()
