"""Go-back-N sender state: RTO backoff schedule, recovery, abort."""

from __future__ import annotations

from repro.net.link import FAULT_DROP, FAULT_PASS
from repro.net.nic import NICConfig
from repro.net.reliability import ReliabilityConfig
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MS, US


def build_pair(rel: ReliabilityConfig):
    sim = Simulator()
    net = build_star(
        sim, ["a", "b"], rate_gbps=40.0, delay_ns=US,
        nic_config=NICConfig(reliability=rel),
    )
    delivered: list[int] = []
    net.hosts["b"].endpoint = lambda payload, src, nbytes: delivered.append(nbytes)
    return sim, net, delivered


def sender_rel(net):
    flow = next(iter(net.hosts["a"].flows.values()))
    assert flow._rel is not None
    return flow._rel


class TestBackoffSchedule:
    def test_rto_doubles_then_caps(self):
        # jitter_frac=0 makes the schedule exact: after k no-progress
        # timeouts the RTO is min(rto_max, rto * backoff**k).
        cfg = ReliabilityConfig(
            rto_ns=100_000, rto_max_ns=1_000_000, backoff=2.0,
            jitter_frac=0.0, max_retransmits=64,
        )
        sim, net, delivered = build_pair(cfg)
        net.find_link("a->sw0").fault_filter = lambda p: FAULT_DROP  # blackhole
        assert net.hosts["a"].send_message("b", 4 * KIB)
        sim.run(until=3 * MS)
        rel = sender_rel(net)
        assert rel.timeouts >= 4
        assert rel.rto_current_ns == min(
            cfg.rto_max_ns, int(cfg.rto_ns * cfg.backoff**rel.timeouts)
        )
        # The cap binds by 3 ms: 100us * 2^4 > 1 ms ceiling.
        assert rel.rto_current_ns == cfg.rto_max_ns
        assert not delivered

    def test_progress_resets_backoff(self):
        cfg = ReliabilityConfig(
            rto_ns=100_000, rto_max_ns=5_000_000, jitter_frac=0.0,
            max_retransmits=64,
        )
        sim, net, delivered = build_pair(cfg)
        link = net.find_link("a->sw0")
        link.fault_filter = lambda p: FAULT_DROP
        assert net.hosts["a"].send_message("b", 16 * KIB)
        sim.run(until=2 * MS)
        rel = sender_rel(net)
        assert rel.rto_current_ns > cfg.rto_ns  # backed off while black-holed
        link.fault_filter = None
        sim.run(until=20 * MS)
        assert delivered == [16 * KIB]
        assert rel.rto_current_ns == cfg.rto_ns  # acked ⇒ reset
        assert not rel.unacked and rel.base_seq == rel.next_seq


class TestRecovery:
    def test_heavy_loss_converges_in_order(self):
        cfg = ReliabilityConfig(seed=3, rto_ns=100_000, jitter_frac=0.1)
        sim, net, delivered = build_pair(cfg)
        link = net.find_link("a->sw0")
        drops = iter(range(10**9))
        # Deterministic 1-in-7 drop pattern, no RNG needed.  The period
        # must not divide the 16-segment retransmission round, or the
        # same segment is dropped every round and go-back-N (correctly)
        # livelocks — the probabilistic injector never aligns like that.
        link.fault_filter = (
            lambda p: FAULT_DROP if next(drops) % 7 == 0 else FAULT_PASS
        )
        for _ in range(10):
            assert net.hosts["a"].send_message("b", 64 * KIB)
        sim.run(until=200 * MS)
        assert delivered == [64 * KIB] * 10
        rel = sender_rel(net)
        assert rel.retransmits > 0
        assert not rel.unacked and not rel.retransmit_queue

    def test_window_limits_inflight_segments(self):
        cfg = ReliabilityConfig(window_packets=4, rto_ns=100_000, jitter_frac=0.0)
        sim, net, delivered = build_pair(cfg)
        net.find_link("a->sw0").fault_filter = lambda p: FAULT_DROP
        assert net.hosts["a"].send_message("b", 256 * KIB)
        sim.run(until=1 * MS)
        rel = sender_rel(net)
        assert len(rel.unacked) <= 4


class TestAbort:
    def test_blackhole_aborts_head_message_and_drains(self):
        cfg = ReliabilityConfig(
            rto_ns=50_000, rto_max_ns=100_000, jitter_frac=0.0, max_retransmits=3
        )
        sim, net, delivered = build_pair(cfg)
        net.find_link("a->sw0").fault_filter = lambda p: FAULT_DROP
        for _ in range(3):
            assert net.hosts["a"].send_message("b", 32 * KIB)
        sim.run(until=100 * MS)
        rel = sender_rel(net)
        assert rel.messages_aborted == 3
        assert not delivered
        # Aborts refund the TXQ and empty the flow: no wedged bytes.
        flow = next(iter(net.hosts["a"].flows.values()))
        assert flow.queued_bytes == 0
        assert not rel.unacked and not rel.retransmit_queue
        assert net.hosts["a"]._txq_used == 0
