"""Stuck-I/O watchdog: silent wedges become diagnostic failures."""

from __future__ import annotations

import pytest

from repro.fabric.initiator import Initiator
from repro.fabric.target import Target
from repro.faults import FaultPlan, LossBurst, StuckIOError, StuckIOWatchdog
from repro.faults.inject import FaultInjector
from repro.net.topology import build_star
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MS, US
from repro.ssd.device import SSD
from repro.workloads.request import IORequest, OpType
from tests.conftest import FAST_SSD


def build_cell(*, lossy: bool):
    sim = Simulator()
    net = build_star(sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US)
    ssd = SSD(sim, FAST_SSD)
    Target(sim, net.hosts["tgt0"], [ssd], [SSQDriver(1, 1)])
    ini = Initiator(sim, net.hosts["init0"])  # no retry, no reliability
    if lossy:
        # Certain loss with no recovery machinery: guaranteed wedge.
        plan = FaultPlan(specs=(LossBurst("init0->sw0", 0, 1 * MS, loss_prob=1.0),))
        FaultInjector(sim, plan).attach_network(net).arm()
    watchdog = StuckIOWatchdog().install(sim)
    watchdog.track_initiator(ini)
    for i in range(3):
        req = IORequest(arrival_ns=0, op=OpType.READ, lba=i * 64, size_bytes=4 * KIB)
        req.target = "tgt0"
        ini.issue(req)
    return sim, ini, watchdog


def test_wedged_run_raises_at_quiescence():
    sim, ini, _ = build_cell(lossy=True)
    with pytest.raises(StuckIOError) as excinfo:
        sim.run()  # heap drains with commands still in flight
    err = excinfo.value
    assert len(err.wedged) == 3
    names = {w[0] for w in err.wedged}
    assert names == {"init0"}
    assert "never completed" in str(err)
    assert ini.outstanding() == 3


def test_clean_run_stays_quiet():
    sim, ini, watchdog = build_cell(lossy=False)
    sim.run()
    assert ini.outstanding() == 0
    watchdog.check_now()  # explicit end-of-run assertion also passes


def test_horizon_stop_does_not_fire_watchdog():
    # Stopping at a horizon with events still queued is not quiescence:
    # the in-flight I/O may yet complete, so the watchdog must not fire.
    sim, ini, watchdog = build_cell(lossy=False)
    sim.run(until=1_000)  # far too early for any completion
    assert ini.outstanding() == 3
    with pytest.raises(StuckIOError):
        watchdog.check_now()  # but the explicit check still reports
