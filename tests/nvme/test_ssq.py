"""SSQ driver: routing, WRR fetch, QD partition, consistency check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvme.ssq import SSQDriver
from repro.workloads.request import IORequest, OpType


def req(op=OpType.READ, lba=0, size=512, arrival=0):
    return IORequest(arrival_ns=arrival, op=op, lba=lba, size_bytes=size)


def distinct_lba(i):
    """LBAs spaced far apart so requests never share a dependency bucket."""
    return i * 1_000_000


class TestRouting:
    def test_reads_to_rsq_writes_to_wsq(self):
        d = SSQDriver()
        d.submit(req(OpType.READ, lba=distinct_lba(1)))
        d.submit(req(OpType.WRITE, lba=distinct_lba(2)))
        assert d.queue_lengths() == (1, 1)

    def test_queued_and_has_pending(self):
        d = SSQDriver()
        assert not d.has_pending()
        d.submit(req(OpType.READ, lba=distinct_lba(1)))
        assert d.has_pending()
        assert d.queued() == 1


class TestConsistency:
    def test_overlapping_write_follows_waiting_read(self):
        d = SSQDriver()
        d.submit(req(OpType.READ, lba=0, size=4096))
        d.submit(req(OpType.WRITE, lba=0, size=4096))  # same bucket
        # The dependent write joins the RSQ behind the read.
        assert len(d.rsq) == 2
        assert len(d.wsq) == 0
        assert d.consistency_redirects == 1

    def test_overlapping_read_follows_waiting_write(self):
        d = SSQDriver()
        d.submit(req(OpType.WRITE, lba=64, size=4096))
        d.submit(req(OpType.READ, lba=64, size=512))
        assert len(d.wsq) == 2
        assert d.consistency_redirects == 1

    def test_dependent_pair_fetched_in_submission_order(self):
        d = SSQDriver(1, 8)  # heavy write preference
        first = req(OpType.READ, lba=0, size=4096)
        second = req(OpType.WRITE, lba=0, size=4096)
        d.submit(first)
        d.submit(second)
        a = d.fetch(0, 0, 64)
        b = d.fetch(1, 0, 64)
        assert a is first and b is second

    def test_dependency_cleared_after_fetch(self):
        d = SSQDriver()
        d.submit(req(OpType.READ, lba=0, size=4096))
        d.fetch(0, 0, 64)
        # The bucket is free again: a new write goes to its natural queue.
        d.submit(req(OpType.WRITE, lba=0, size=4096))
        assert len(d.wsq) == 1

    def test_non_overlapping_not_redirected(self):
        d = SSQDriver()
        d.submit(req(OpType.READ, lba=0, size=4096))
        d.submit(req(OpType.WRITE, lba=distinct_lba(5), size=4096))
        assert d.consistency_redirects == 0

    def test_same_type_overlap_no_redirect_counted(self):
        d = SSQDriver()
        d.submit(req(OpType.READ, lba=0, size=4096))
        d.submit(req(OpType.READ, lba=0, size=4096))
        # Same natural queue: placement unchanged, not a redirect.
        assert d.consistency_redirects == 0
        assert len(d.rsq) == 2


class TestFetch:
    def test_wrr_ratio_when_both_backlogged(self):
        d = SSQDriver(1, 3)
        for i in range(8):
            d.submit(req(OpType.READ, lba=distinct_lba(i)))
            d.submit(req(OpType.WRITE, lba=distinct_lba(100 + i)))
        ops = [d.fetch(0, 0, 1024).op for _ in range(8)]
        assert ops.count(OpType.WRITE) == 6
        assert ops.count(OpType.READ) == 2

    def test_empty_wsq_serves_reads_without_token_move(self):
        d = SSQDriver(1, 4)
        for i in range(5):
            d.submit(req(OpType.READ, lba=distinct_lba(i)))
        for _ in range(5):
            assert d.fetch(0, 0, 64).is_read
        # Tokens untouched: a following mixed burst still honors 1:4.
        assert d.wrr.read_tokens == 1
        assert d.wrr.write_tokens == 4

    def test_partition_blocks_overfetched_type(self):
        d = SSQDriver(1, 1)  # partition 32/32 at QD 64
        for i in range(4):
            d.submit(req(OpType.WRITE, lba=distinct_lba(i)))
        # Writes at their slot cap: fetch stalls (no read available and
        # the write head is ineligible).
        assert d.fetch(0, 32, 64) is None

    def test_partition_lets_other_type_proceed_when_queue_empty(self):
        d = SSQDriver(1, 1)
        d.submit(req(OpType.READ, lba=distinct_lba(1)))
        # Writes capped but WSQ empty: the read proceeds.
        assert d.fetch(0, 32, 64) is not None

    def test_blocked_turn_stalls_strictly(self):
        """When it's the read's turn but read slots are full, fetch waits."""
        d = SSQDriver(1, 1)
        d.submit(req(OpType.READ, lba=distinct_lba(1)))
        d.submit(req(OpType.WRITE, lba=distinct_lba(2)))
        first = d.fetch(0, 0, 64)  # write turn first at (1,1)
        assert first.op is OpType.WRITE
        # Read's turn now, but read slots are exhausted: stall even
        # though more writes could be fetched.
        d.submit(req(OpType.WRITE, lba=distinct_lba(3)))
        assert d.fetch(32, 1, 64) is None

    def test_fetch_empty_returns_none(self):
        assert SSQDriver().fetch(0, 0, 64) is None


class TestWeights:
    def test_set_weights_logged_and_applied(self):
        d = SSQDriver()
        d.set_weights(1, 5, now_ns=777)
        assert d.weight_ratio == 5.0
        assert d.weight_log == [(777, 1, 5)]

    def test_partition_split(self):
        d = SSQDriver(1, 3)
        read_slots, write_slots = d._partition(64)
        assert write_slots == 48
        assert read_slots == 16
        # Both classes always keep at least one slot.
        d2 = SSQDriver(1, 63)
        r, w = d2._partition(4)
        assert r >= 1 and w >= 1

    def test_weight_change_rings_doorbell(self):
        class FakeDevice:
            rings = 0

            def doorbell(self):
                FakeDevice.rings += 1

            def attach_driver(self, drv):
                pass

        d = SSQDriver()
        d.connect(FakeDevice())
        before = FakeDevice.rings
        d.set_weights(1, 2)
        assert FakeDevice.rings == before + 1


@settings(deadline=None, max_examples=30)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), min_size=1, max_size=60))
def test_every_submitted_request_is_fetched_exactly_once_property(specs):
    d = SSQDriver(1, 2)
    submitted = []
    for is_read, lba_bucket in specs:
        r = req(OpType.READ if is_read else OpType.WRITE, lba=lba_bucket * 8, size=512)
        submitted.append(r)
        d.submit(r)
    fetched = []
    while True:
        got = d.fetch(0, 0, 10**6)
        if got is None:
            break
        fetched.append(got)
    assert len(fetched) == len(submitted)
    assert {r.req_id for r in fetched} == {r.req_id for r in submitted}
    # The dependency index fully drains with the queues.
    assert not d._pending_buckets
