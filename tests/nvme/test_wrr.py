"""Token WRR arbitration tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nvme.wrr import TokenWRR
from repro.workloads.request import OpType


def drain_round(wrr, n):
    """Simulate n fetches with both queues backlogged; return op sequence."""
    ops = []
    for _ in range(n):
        op = wrr.choose(True, True)
        wrr.consume(op)
        ops.append(op)
    return ops


def test_weight_ratio():
    assert TokenWRR(1, 4).weight_ratio == 4.0
    assert TokenWRR(2, 3).weight_ratio == 1.5


def test_validation():
    with pytest.raises(ValueError):
        TokenWRR(0, 1)
    with pytest.raises(ValueError):
        TokenWRR(1, 0)
    with pytest.raises(ValueError):
        TokenWRR().set_weights(1, -1)


def test_equal_weights_alternate():
    ops = drain_round(TokenWRR(1, 1), 6)
    assert ops == [OpType.WRITE, OpType.READ] * 3


def test_ratio_respected_over_rounds():
    wrr = TokenWRR(1, 3)
    ops = drain_round(wrr, 12)
    assert ops.count(OpType.WRITE) == 9
    assert ops.count(OpType.READ) == 3


def test_nontrivial_weights_interleave():
    ops = drain_round(TokenWRR(2, 3), 10)
    assert ops.count(OpType.WRITE) == 6
    assert ops.count(OpType.READ) == 4
    # Not all writes first: interleaving within the round.
    first_round = ops[:5]
    assert OpType.READ in first_round and OpType.WRITE in first_round


def test_empty_queue_served_other():
    wrr = TokenWRR(1, 4)
    assert wrr.choose(True, False) is OpType.READ
    assert wrr.choose(False, True) is OpType.WRITE
    assert wrr.choose(False, False) is None


def test_set_weights_resets_tokens():
    wrr = TokenWRR(1, 1)
    wrr.consume(OpType.WRITE)
    wrr.set_weights(1, 5)
    assert wrr.read_tokens == 1
    assert wrr.write_tokens == 5


def test_consume_on_dry_type_clamps_at_zero():
    # The round reset belongs to choose (§III-A: "the type that should
    # go next"); consuming a dry class must not wipe the other class's
    # remaining budget mid-round.
    wrr = TokenWRR(1, 2)
    wrr.consume(OpType.WRITE)
    wrr.consume(OpType.WRITE)
    assert wrr.write_tokens == 0
    wrr.consume(OpType.WRITE)  # dry -> clamp, no reset
    assert wrr.write_tokens == 0
    assert wrr.read_tokens == 1  # read budget survives the cross charge


def test_cross_type_consume_preserves_other_budget():
    # A cross-typed fetch (consistency check parked a write in the read
    # queue) charges writes; reads keep their tokens and still get their
    # share of the round.
    wrr = TokenWRR(2, 2)
    wrr.consume(OpType.WRITE)
    wrr.consume(OpType.WRITE)
    wrr.consume(OpType.WRITE)  # dry write: clamp
    assert (wrr.read_tokens, wrr.write_tokens) == (2, 0)
    assert wrr.choose(True, True) is OpType.READ
    wrr.consume(OpType.READ)
    assert wrr.choose(True, True) is OpType.READ
    wrr.consume(OpType.READ)
    # Both dry now: next choice resets the round.
    assert wrr.choose(True, True) is OpType.WRITE
    assert (wrr.read_tokens, wrr.write_tokens) == (2, 2)


def test_choose_never_returns_dry_class():
    wrr = TokenWRR(1, 3)
    for _ in range(24):
        op = wrr.choose(True, True)
        tokens = wrr.read_tokens if op is OpType.READ else wrr.write_tokens
        assert tokens > 0
        wrr.consume(op)


def test_set_weights_mid_round_starts_fresh_round():
    wrr = TokenWRR(1, 1)
    wrr.consume(OpType.WRITE)  # half-way through a 1:1 round
    wrr.set_weights(1, 3)
    # The new round honours the new ratio exactly: 3 writes then 1 read.
    assert drain_round(wrr, 4) == [
        OpType.WRITE, OpType.WRITE, OpType.WRITE, OpType.READ
    ]


def test_skip_if_empty_leaves_tokens_untouched():
    # Only one queue has commands: it is served without moving tokens,
    # so WRR degenerates to plain RR under light load (Fig. 5 flat
    # bottom-left panels).
    wrr = TokenWRR(1, 4)
    for _ in range(10):
        assert wrr.choose(True, False) is OpType.READ
    assert (wrr.read_tokens, wrr.write_tokens) == (1, 4)
    for _ in range(10):
        assert wrr.choose(False, True) is OpType.WRITE
    assert (wrr.read_tokens, wrr.write_tokens) == (1, 4)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.lists(st.sampled_from([OpType.READ, OpType.WRITE]), max_size=60),
)
def test_tokens_never_negative_property(rw, ww, ops):
    # Arbitrary interleavings of cross-typed consumes (no choose guard)
    # can never drive a token below zero.
    wrr = TokenWRR(rw, ww)
    for op in ops:
        wrr.consume(op)
        assert wrr.read_tokens >= 0
        assert wrr.write_tokens >= 0


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
def test_long_run_ratio_property(rw, ww):
    wrr = TokenWRR(rw, ww)
    rounds = 30
    ops = drain_round(wrr, rounds * (rw + ww))
    assert ops.count(OpType.READ) == rounds * rw
    assert ops.count(OpType.WRITE) == rounds * ww
