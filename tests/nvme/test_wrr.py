"""Token WRR arbitration tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nvme.wrr import TokenWRR
from repro.workloads.request import OpType


def drain_round(wrr, n):
    """Simulate n fetches with both queues backlogged; return op sequence."""
    ops = []
    for _ in range(n):
        op = wrr.choose(True, True)
        wrr.consume(op)
        ops.append(op)
    return ops


def test_weight_ratio():
    assert TokenWRR(1, 4).weight_ratio == 4.0
    assert TokenWRR(2, 3).weight_ratio == 1.5


def test_validation():
    with pytest.raises(ValueError):
        TokenWRR(0, 1)
    with pytest.raises(ValueError):
        TokenWRR(1, 0)
    with pytest.raises(ValueError):
        TokenWRR().set_weights(1, -1)


def test_equal_weights_alternate():
    ops = drain_round(TokenWRR(1, 1), 6)
    assert ops == [OpType.WRITE, OpType.READ] * 3


def test_ratio_respected_over_rounds():
    wrr = TokenWRR(1, 3)
    ops = drain_round(wrr, 12)
    assert ops.count(OpType.WRITE) == 9
    assert ops.count(OpType.READ) == 3


def test_nontrivial_weights_interleave():
    ops = drain_round(TokenWRR(2, 3), 10)
    assert ops.count(OpType.WRITE) == 6
    assert ops.count(OpType.READ) == 4
    # Not all writes first: interleaving within the round.
    first_round = ops[:5]
    assert OpType.READ in first_round and OpType.WRITE in first_round


def test_empty_queue_served_other():
    wrr = TokenWRR(1, 4)
    assert wrr.choose(True, False) is OpType.READ
    assert wrr.choose(False, True) is OpType.WRITE
    assert wrr.choose(False, False) is None


def test_set_weights_resets_tokens():
    wrr = TokenWRR(1, 1)
    wrr.consume(OpType.WRITE)
    wrr.set_weights(1, 5)
    assert wrr.read_tokens == 1
    assert wrr.write_tokens == 5


def test_consume_on_dry_type_resets_round():
    wrr = TokenWRR(1, 2)
    wrr.consume(OpType.WRITE)
    wrr.consume(OpType.WRITE)
    assert wrr.write_tokens == 0
    wrr.consume(OpType.WRITE)  # dry -> round reset then consume
    assert wrr.write_tokens == 1
    assert wrr.read_tokens == 1


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
def test_long_run_ratio_property(rw, ww):
    wrr = TokenWRR(rw, ww)
    rounds = 30
    ops = drain_round(wrr, rounds * (rw + ww))
    assert ops.count(OpType.READ) == rounds * rw
    assert ops.count(OpType.WRITE) == rounds * ww
