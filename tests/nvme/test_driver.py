"""Default FIFO NVMe driver tests."""

import pytest

from repro.nvme.driver import DefaultNvmeDriver
from repro.workloads.request import IORequest, OpType


def req(i, op=OpType.READ):
    return IORequest(arrival_ns=i, op=op, lba=i * 100, size_bytes=512)


def test_fifo_order_single_queue():
    d = DefaultNvmeDriver(1)
    for i in range(5):
        d.submit(req(i))
    fetched = [d.fetch(0, 0, 64).arrival_ns for _ in range(5)]
    assert fetched == [0, 1, 2, 3, 4]


def test_no_type_awareness():
    d = DefaultNvmeDriver(1)
    d.submit(req(0, OpType.READ))
    d.submit(req(1, OpType.WRITE))
    d.submit(req(2, OpType.READ))
    ops = [d.fetch(0, 0, 64).op for _ in range(3)]
    assert ops == [OpType.READ, OpType.WRITE, OpType.READ]


def test_multi_queue_round_robin_preserves_per_queue_fifo():
    d = DefaultNvmeDriver(2)
    for i in range(6):
        d.submit(req(i))
    # Submission round-robins q0:[0,2,4] q1:[1,3,5]; fetch interleaves.
    fetched = [d.fetch(0, 0, 64).arrival_ns for _ in range(6)]
    assert fetched == [0, 1, 2, 3, 4, 5]


def test_fetch_empty_returns_none():
    assert DefaultNvmeDriver().fetch(0, 0, 64) is None


def test_has_pending_and_queued():
    d = DefaultNvmeDriver(2)
    assert not d.has_pending()
    d.submit(req(0))
    d.submit(req(1))
    assert d.has_pending()
    assert d.queued() == 2
    d.fetch(0, 0, 64)
    assert d.queued() == 1


def test_counters():
    d = DefaultNvmeDriver()
    d.submit(req(0))
    d.fetch(0, 0, 64)
    assert d.submitted == 1
    assert d.fetched == 1


def test_submit_stamps_time():
    d = DefaultNvmeDriver()
    r = req(0)
    d.submit(r, now_ns=123)
    assert r.submit_ns == 123


def test_doorbell_rings_connected_device():
    class FakeDevice:
        def __init__(self):
            self.rings = 0

        def doorbell(self):
            self.rings += 1

        def attach_driver(self, driver):
            self.driver = driver

    d = DefaultNvmeDriver()
    dev = FakeDevice()
    d.connect(dev)
    assert dev.driver is d
    d.submit(req(0))
    assert dev.rings == 1


def test_validation():
    with pytest.raises(ValueError):
        DefaultNvmeDriver(0)
