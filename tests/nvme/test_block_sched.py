"""Block-layer read throttle (§V extension)."""

import pytest

from repro.nvme.block_sched import BlockLayerThrottle
from repro.nvme.driver import DefaultNvmeDriver
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.ssd.device import SSD
from repro.workloads.request import IORequest, OpType
from tests.conftest import FAST_SSD


def req(op, lba=0, size=4096, arrival=0):
    return IORequest(arrival_ns=arrival, op=op, lba=lba, size_bytes=size)


def make(rate=None):
    sim = Simulator()
    inner = DefaultNvmeDriver()
    throttle = BlockLayerThrottle(sim, inner, read_rate_gbps=rate)
    return sim, inner, throttle


def test_unthrottled_passthrough():
    sim, inner, throttle = make()
    throttle.submit(req(OpType.READ))
    throttle.submit(req(OpType.WRITE, lba=1000))
    assert inner.queued() == 2
    assert throttle.staged_reads() == 0


def test_writes_never_throttled():
    sim, inner, throttle = make(rate=0.001)
    for i in range(5):
        throttle.submit(req(OpType.WRITE, lba=i * 1000))
    assert inner.queued() == 5


def test_reads_paced_at_rate():
    sim, inner, throttle = make(rate=1.0)  # 0.125 B/ns
    for i in range(4):
        throttle.submit(req(OpType.READ, lba=i * 1000, size=12_500))
    # First read releases immediately; the rest pace at 100 µs apart.
    assert inner.queued() == 1
    sim.run(until=150_000)
    assert inner.queued() == 2
    sim.run(until=350_000)
    assert inner.queued() == 4


def test_rate_change_releases_backlog():
    sim, inner, throttle = make(rate=0.001)
    for i in range(3):
        throttle.submit(req(OpType.READ, lba=i * 1000))
    assert throttle.staged_reads() >= 2
    throttle.set_read_rate(None)
    assert throttle.staged_reads() == 0
    assert inner.queued() == 3


def test_read_ordering_preserved_across_rate_lift():
    sim, inner, throttle = make(rate=0.001)
    first = req(OpType.READ, lba=0)
    throttle.submit(first)
    second = req(OpType.READ, lba=1000)
    throttle.submit(second)
    throttle.set_read_rate(None)
    got = [inner.fetch(0, 0, 64), inner.fetch(0, 0, 64)]
    # First submitted read reaches the driver first... the unthrottled
    # head released at submit time, then the staged one.
    assert got[0] is first
    assert got[1] is second


def test_rate_log_records_changes():
    sim, inner, throttle = make(rate=2.0)
    throttle.set_read_rate(1.0)
    throttle.set_read_rate(None)
    assert [r for _, r in throttle.rate_log] == [2.0, 1.0, None]


def test_validation():
    sim, inner, throttle = make()
    with pytest.raises(ValueError):
        throttle.set_read_rate(0)


def test_end_to_end_with_device():
    sim = Simulator()
    ssd = SSD(sim, FAST_SSD)
    throttle = BlockLayerThrottle(sim, DefaultNvmeDriver(), read_rate_gbps=0.5)
    throttle.connect(ssd)
    ssd.set_cq_listener(lambda _e: ssd.pop_completion())
    for i in range(20):
        throttle.submit(req(OpType.READ, lba=i * 1000, size=8192), now_ns=0)
    sim.run()
    assert ssd.controller.commands_completed == 20
    # 20 × 8 KiB at 0.5 Gbps ≈ 2.5 ms minimum: pacing really bounded it.
    assert sim.now > 2 * MS


def test_runner_block_driver(tiny_tpm):
    from repro.experiments.runner import TestbedConfig, run_testbed
    from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace

    trace = generate_micro_trace(
        MicroWorkloadConfig(20_000, 8 * 1024), n_reads=80, n_writes=80, seed=4
    )
    res = run_testbed(
        trace,
        TestbedConfig(ssd_config=FAST_SSD, driver="block", src_enabled=True),
    )
    assert res.controllers  # BlockRateController attached
    done = sum(i.reads_completed + i.writes_completed for i in res.initiators)
    assert done == len(trace)
