"""Property tests for TokenWRR's clamp-at-zero token semantics.

Under *any* interleaving of ``choose``/``consume`` — including
cross-typed consumes from the SSQ consistency check, weight changes
mid-round, and skip-if-empty turns — tokens must stay inside
``[0, weight]`` and a round reset must restore exactly the weights.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.nvme.wrr import TokenWRR
from repro.workloads.request import OpType

weights = st.integers(min_value=1, max_value=8)
steps = st.lists(
    st.tuples(
        st.booleans(),  # read queue non-empty
        st.booleans(),  # write queue non-empty
        st.sampled_from([OpType.READ, OpType.WRITE]),  # type actually fetched
    ),
    max_size=64,
)


def in_bounds(wrr: TokenWRR) -> bool:
    return (
        0 <= wrr.read_tokens <= wrr.read_weight
        and 0 <= wrr.write_tokens <= wrr.write_weight
    )


@given(rw=weights, ww=weights, ops=steps)
def test_tokens_never_leave_bounds(rw, ww, ops):
    wrr = TokenWRR(rw, ww)
    assert in_bounds(wrr)
    for read_avail, write_avail, fetched in ops:
        choice = wrr.choose(read_avail, write_avail)
        assert in_bounds(wrr)
        if choice is not None:
            # The consistency check may fetch the other type than chosen.
            wrr.consume(fetched)
        assert in_bounds(wrr)


@given(rw=weights, ww=weights, ops=steps)
def test_round_reset_restores_exactly_the_weights(rw, ww, ops):
    wrr = TokenWRR(rw, ww)
    for read_avail, write_avail, fetched in ops:
        if wrr.choose(read_avail, write_avail) is not None:
            wrr.consume(fetched)
    # Drain both classes, then force a contested choice: the §III-A
    # round reset must restore every token, conserving the weights.
    for _ in range(wrr.read_tokens):
        wrr.consume(OpType.READ)
    for _ in range(wrr.write_tokens):
        wrr.consume(OpType.WRITE)
    assert (wrr.read_tokens, wrr.write_tokens) == (0, 0)
    choice = wrr.choose(True, True)
    assert choice is not None
    assert (wrr.read_tokens, wrr.write_tokens) == (rw, ww)


@given(rw=weights, ww=weights, new_rw=weights, new_ww=weights, ops=steps)
def test_set_weights_resets_tokens_to_new_weights(rw, ww, new_rw, new_ww, ops):
    wrr = TokenWRR(rw, ww)
    for read_avail, write_avail, fetched in ops:
        if wrr.choose(read_avail, write_avail) is not None:
            wrr.consume(fetched)
    wrr.set_weights(new_rw, new_ww)
    assert (wrr.read_tokens, wrr.write_tokens) == (new_rw, new_ww)
    assert in_bounds(wrr)
