"""SSQ consistency-check toggle (ablation support)."""

from repro.nvme.ssq import SSQDriver
from repro.workloads.request import IORequest, OpType


def req(op, lba=0, size=4096):
    return IORequest(arrival_ns=0, op=op, lba=lba, size_bytes=size)


def test_disabled_check_routes_by_type_only():
    d = SSQDriver(1, 8, consistency_check=False)
    d.submit(req(OpType.READ, lba=0))
    d.submit(req(OpType.WRITE, lba=0))  # overlapping, but unchecked
    assert d.queue_lengths() == (1, 1)
    assert d.consistency_redirects == 0
    assert not d._pending_buckets  # no index maintained


def test_disabled_check_allows_reordering():
    d = SSQDriver(1, 8, consistency_check=False)
    first = req(OpType.READ, lba=0)
    second = req(OpType.WRITE, lba=0)
    d.submit(first)
    d.submit(second)
    # Write-preferring weights fetch the later write first.
    got = d.fetch(0, 0, 64)
    assert got is second


def test_enabled_check_preserves_order():
    d = SSQDriver(1, 8, consistency_check=True)
    first = req(OpType.READ, lba=0)
    second = req(OpType.WRITE, lba=0)
    d.submit(first)
    d.submit(second)
    assert d.fetch(0, 0, 64) is first
    assert d.fetch(1, 0, 64) is second


def test_default_is_enabled():
    assert SSQDriver().consistency_check
