"""Algorithm 1 (PredictWeightRatio / DynamicAdjustment) and the online SRC."""

import pytest

from repro.core.controller import SRCController, predict_weight_ratio
from repro.core.events import CongestionEvent, EventKind
from repro.core.tpm import ThroughputPredictionModel
from repro.workloads.features import WorkloadFeatures, extract_features
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace


def features():
    wl = MicroWorkloadConfig(3_000, 8 * 1024)
    return extract_features(generate_micro_trace(wl, n_reads=400, n_writes=400, seed=5))


class FakeTPM:
    """Deterministic TPM: read throughput = base / w (+ write fills up)."""

    def __init__(self, base=8.0):
        self.base = base
        self.fitted = True

    def predict(self, features, w):
        return self.base / w, 4.0 + self.base - self.base / w


class TestPredictWeightRatio:
    def test_returns_one_when_already_below_demand(self):
        assert predict_weight_ratio(FakeTPM(8.0), 10.0, None) == 1

    def test_picks_closest_ratio(self):
        # base/w: 8, 4, 2.67, 2, 1.6 ... demanded 2.5 -> w=3 (2.67).
        assert predict_weight_ratio(FakeTPM(8.0), 2.5, None, tau=0.01) == 3

    def test_exact_hit(self):
        assert predict_weight_ratio(FakeTPM(8.0), 4.0, None, tau=0.01) == 2

    def test_convergence_threshold_stops_search(self):
        # With tau=0.5, the walk stops as soon as successive predictions
        # differ by <50%: |8-4|/8 = 0.5 ≥ tau keeps going; |4-2.67|/4 =
        # 0.33 < 0.5 stops at w=3.
        w = predict_weight_ratio(FakeTPM(8.0), 0.1, None, tau=0.5)
        assert w == 3

    def test_max_ratio_cap(self):
        w = predict_weight_ratio(FakeTPM(1000.0), 0.001, None, tau=0.0001, max_ratio=10)
        assert w <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_weight_ratio(FakeTPM(), 0.0, None)
        with pytest.raises(ValueError):
            predict_weight_ratio(FakeTPM(), 1.0, None, tau=0.0)

    def test_with_real_tpm(self, tiny_tpm):
        f = features()
        base = tiny_tpm.predict_read(f, 1)
        w = predict_weight_ratio(tiny_tpm, base / 3, f)
        assert w >= 2
        # Demanding more than the device can read keeps weights neutral.
        assert predict_weight_ratio(tiny_tpm, base * 10, f) == 1


class TestDynamicAdjustmentOffline:
    def test_ratios_per_event(self):
        controller = SRCController(FakeTPM(8.0), window_ns=10_000, tau=0.01)
        wl = MicroWorkloadConfig(100, 8 * 1024)
        trace = generate_micro_trace(wl, n_reads=500, n_writes=500, seed=6)
        events = [
            CongestionEvent(20_000, 4.0, EventKind.PAUSE),
            CongestionEvent(40_000, 2.0, EventKind.PAUSE),
        ]
        ratios = controller.dynamic_adjustment(events, trace)
        assert ratios == [2, 4]

    def test_empty_window_defaults_to_one(self):
        controller = SRCController(FakeTPM(8.0), window_ns=1_000)
        trace = generate_micro_trace(
            MicroWorkloadConfig(100, 8 * 1024), n_reads=10, n_writes=10, seed=7,
            start_ns=10**9,
        )
        events = [CongestionEvent(500, 2.0, EventKind.PAUSE)]  # before any arrival
        assert controller.dynamic_adjustment(events, trace) == [1]


class TestOnlineController:
    def test_handle_event_requires_attachment(self):
        controller = SRCController(FakeTPM())
        with pytest.raises(RuntimeError):
            controller.handle_event(CongestionEvent(0, 1.0, EventKind.PAUSE))

    def test_attached_controller_adjusts_target(self, fast_ssd):
        from repro.fabric.initiator import Initiator
        from repro.fabric.target import Target
        from repro.net.topology import build_star
        from repro.nvme.ssq import SSQDriver
        from repro.sim.engine import Simulator
        from repro.ssd.device import SSD
        from repro.workloads.request import IORequest, OpType

        sim = Simulator()
        net = build_star(sim, ["ini", "tgt"])
        target = Target(sim, net.hosts["tgt"], [SSD(sim, fast_ssd)], [SSQDriver()])
        initiator = Initiator(sim, net.hosts["ini"])
        controller = SRCController(FakeTPM(8.0), window_ns=10**8, tau=0.01,
                                   min_adjust_interval_ns=0)
        controller.attach(target, sim)

        # Feed some traffic so the monitor has a window.
        for i in range(20):
            r = IORequest(arrival_ns=0, op=OpType.READ if i % 2 else OpType.WRITE,
                          lba=i * 1000, size_bytes=4096)
            r.target = "tgt"
            initiator.issue(r)
        sim.run()
        assert controller.monitor.observed == 20

        # Simulate a DCQCN cut notification.
        controller.handle_event(CongestionEvent(sim.now, 2.0, EventKind.PAUSE))
        assert controller.current_ratio == 4
        assert target.drivers[0].weight_ratio == 4.0
        assert controller.adjustments[-1].kind is EventKind.PAUSE

    def test_debounce_limits_adjustment_rate(self):
        controller = SRCController(FakeTPM(), min_adjust_interval_ns=1_000_000)

        class FakeSim:
            now = 0

        class FakeFlowRc:
            current_rate_gbps = 5.0

        class FakeFlow:
            rate_control = FakeFlowRc()

        class FakeNic:
            flows = {"x": FakeFlow()}
            rate_listeners = []

        class FakeTarget:
            nic = FakeNic()

            def set_ssq_weights(self, r, w):
                pass

            def add_rate_listener(self, listener):
                pass

        controller._sim = FakeSim()
        controller._target = FakeTarget()

        from repro.net.dcqcn import RateChange

        controller._on_rate_change(None, RateChange(0, 5.0, True))
        n = len(controller.adjustments)
        controller._on_rate_change(None, RateChange(0, 4.0, True))  # debounced
        assert len(controller.adjustments) == n

    def test_validation(self):
        with pytest.raises(ValueError):
            SRCController(FakeTPM(), min_adjust_interval_ns=-1)
