"""Congestion events and the workload monitor."""

import pytest

from repro.core.events import CongestionEvent, EventKind
from repro.core.monitor import WorkloadMonitor
from repro.workloads.request import IORequest, OpType


def req(size=4096, op=OpType.READ, lba=0):
    return IORequest(arrival_ns=0, op=op, lba=lba, size_bytes=size)


class TestEvents:
    def test_fields(self):
        e = CongestionEvent(100, 5.0, EventKind.PAUSE)
        assert e.time_ns == 100
        assert e.kind is EventKind.PAUSE

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionEvent(-1, 5.0, EventKind.PAUSE)
        with pytest.raises(ValueError):
            CongestionEvent(0, 0.0, EventKind.RETRIEVAL)


class TestMonitor:
    def test_window_eviction(self):
        m = WorkloadMonitor(window_ns=1000)
        m.observe(req(), now_ns=0)
        m.observe(req(), now_ns=500)
        m.observe(req(), now_ns=1400)
        assert m.in_window(1400) == 2  # the t=0 one fell out
        assert m.observed == 3

    def test_window_trace_uses_observation_times(self):
        m = WorkloadMonitor(window_ns=10_000)
        m.observe(req(size=1000), now_ns=100)
        m.observe(req(size=2000), now_ns=300)
        trace = m.window_trace(500)
        assert [r.arrival_ns for r in trace] == [100, 300]
        assert trace.total_bytes() == 3000

    def test_features_flow_speed_normalised_by_window(self):
        m = WorkloadMonitor(window_ns=10_000)
        for i in range(10):
            m.observe(req(size=1000), now_ns=i * 100)
        f = m.features(1000)
        assert f.read_flow_speed == pytest.approx(10 * 1000 / 10_000)

    def test_mixed_direction_features(self):
        m = WorkloadMonitor(window_ns=10_000)
        m.observe(req(op=OpType.READ), 0)
        m.observe(req(op=OpType.READ), 10)
        m.observe(req(op=OpType.WRITE), 20)
        f = m.features(100)
        assert f.read_write_ratio == pytest.approx(2.0)

    def test_empty_window(self):
        m = WorkloadMonitor(window_ns=100)
        assert m.in_window(0) == 0
        assert len(m.window_trace(0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadMonitor(0)
