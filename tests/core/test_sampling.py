"""Training-sample collection tests."""

import numpy as np
import pytest

from repro.core.sampling import (
    SamplingPlan,
    TrainingSet,
    collect_training_set,
    sample_trace,
)
from repro.workloads.features import FEATURE_NAMES
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD

TINY_PLAN = SamplingPlan(
    interarrival_ns=(3_000,),
    size_bytes=(8 * 1024,),
    weight_ratios=(1, 4),
    read_write_mixes=(1.0,),
    duration_ns=2_000_000,
    min_requests=100,
)


class TestPlan:
    def test_n_cells(self):
        assert TINY_PLAN.n_cells() == 2
        assert SamplingPlan().n_cells() == 4 * 4 * 5 * 3

    def test_requests_for_duration(self):
        plan = SamplingPlan(duration_ns=10_000_000)
        assert plan.requests_for(10_000) == 1000
        assert plan.requests_for(10**9) == plan.min_requests

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan(weight_ratios=())
        with pytest.raises(ValueError):
            SamplingPlan(weight_ratios=(0,))
        with pytest.raises(ValueError):
            SamplingPlan(duration_ns=0)
        with pytest.raises(ValueError):
            SamplingPlan(read_write_mixes=(0.0,))


class TestTrainingSet:
    def make(self, n=4):
        X = np.zeros((n, len(FEATURE_NAMES)))
        y = np.zeros((n, 2))
        return TrainingSet(X=X, y=y)

    def test_len(self):
        assert len(self.make(5)) == 5

    def test_merge(self):
        merged = self.make(3).merge(self.make(2))
        assert len(merged) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingSet(X=np.zeros((3, 2)), y=np.zeros((3, 2)))  # width
        with pytest.raises(ValueError):
            TrainingSet(X=np.zeros((3, len(FEATURE_NAMES))), y=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            TrainingSet(X=np.zeros((3, len(FEATURE_NAMES))), y=np.zeros((3, 3)))


class TestCollection:
    def test_collect_shapes_and_feature_order(self):
        ts = collect_training_set(FAST_SSD, TINY_PLAN)
        assert len(ts) == 2
        assert ts.X.shape[1] == len(FEATURE_NAMES)
        assert ts.feature_names == FEATURE_NAMES
        # Weight ratio is the last column and matches the plan.
        assert sorted(ts.X[:, -1].tolist()) == [1.0, 4.0]

    def test_throughputs_positive_under_saturation(self):
        ts = collect_training_set(FAST_SSD, TINY_PLAN)
        assert np.all(ts.y > 0)

    def test_higher_weight_lowers_read_throughput(self):
        ts = collect_training_set(FAST_SSD, TINY_PLAN)
        by_w = {ts.X[i, -1]: ts.y[i, 0] for i in range(len(ts))}
        assert by_w[4.0] < by_w[1.0]

    def test_extra_traces_sampled(self):
        wl = MicroWorkloadConfig(3_000, 8 * 1024)
        trace = generate_micro_trace(wl, n_reads=300, n_writes=300, seed=2)
        ts = collect_training_set(
            FAST_SSD, None, traces=[trace], weight_ratios=(1, 2)
        )
        assert len(ts) == 2

    def test_progress_callback(self):
        calls = []
        collect_training_set(
            FAST_SSD, TINY_PLAN, progress=lambda d, t: calls.append((d, t))
        )
        assert calls == [(1, 2), (2, 2)]

    def test_sample_trace_returns_feature_row(self):
        wl = MicroWorkloadConfig(3_000, 8 * 1024)
        trace = generate_micro_trace(wl, n_reads=200, n_writes=200, seed=3)
        x, y = sample_trace(trace, FAST_SSD, 2)
        assert x.shape == (len(FEATURE_NAMES),)
        assert x[-1] == 2.0
        assert y.shape == (2,)

    def test_sample_trace_validation(self):
        wl = MicroWorkloadConfig(3_000, 8 * 1024)
        trace = generate_micro_trace(wl, n_reads=50, n_writes=50, seed=4)
        with pytest.raises(ValueError):
            sample_trace(trace, FAST_SSD, 0)

    def test_parallel_collection_matches_serial(self):
        from repro.core.sampling import collect_training_set_with_report

        serial, serial_report = collect_training_set_with_report(
            FAST_SSD, TINY_PLAN, workers=1
        )
        pooled, pool_report = collect_training_set_with_report(
            FAST_SSD, TINY_PLAN, workers=2
        )
        assert np.array_equal(serial.X, pooled.X)
        assert np.array_equal(serial.y, pooled.y)
        assert serial_report.n_cells == TINY_PLAN.n_cells()
        assert serial_report.sim_events == pool_report.sim_events > 0
