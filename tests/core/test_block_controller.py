"""BlockRateController and per-device SRC scaling."""

import pytest

from repro.core.controller import BlockRateController, SRCController
from repro.net.dcqcn import RateChange


class FakeSim:
    now = 0


class FakeRc:
    def __init__(self, rate):
        self.current_rate_gbps = rate


class FakeFlow:
    def __init__(self, rate):
        self.rate_control = FakeRc(rate)


class FakeNic:
    def __init__(self, rates):
        self.flows = {f"f{i}": FakeFlow(r) for i, r in enumerate(rates)}
        self.rate_listeners = []


class FakeThrottle:
    def __init__(self):
        self.rates = []

    def set_read_rate(self, gbps):
        self.rates.append(gbps)


class FakeTarget:
    def __init__(self, rates, n_drivers=2):
        self.nic = FakeNic(rates)
        self.drivers = [FakeThrottle() for _ in range(n_drivers)]
        self.weight_calls = []

    def add_rate_listener(self, listener):
        self.nic.rate_listeners.append(listener)

    def set_ssq_weights(self, r, w):
        self.weight_calls.append((r, w))


class TestBlockRateController:
    def test_applies_per_device_rate(self):
        target = FakeTarget(rates=[6.0], n_drivers=2)
        ctrl = BlockRateController(min_adjust_interval_ns=0)
        ctrl.attach(target, FakeSim())
        ctrl._on_rate_change(None, RateChange(0, 6.0, True))
        # 6 Gbps demanded over 2 devices -> 3 each.
        for throttle in target.drivers:
            assert throttle.rates == [3.0]

    def test_lifts_cap_near_line_rate(self):
        target = FakeTarget(rates=[39.9], n_drivers=1)
        ctrl = BlockRateController(min_adjust_interval_ns=0)
        ctrl.attach(target, FakeSim())
        ctrl._on_rate_change(None, RateChange(0, 39.9, False))
        assert target.drivers[0].rates == [None]

    def test_debounce(self):
        target = FakeTarget(rates=[5.0])
        ctrl = BlockRateController(min_adjust_interval_ns=10**9)
        ctrl.attach(target, FakeSim())
        ctrl._on_rate_change(None, RateChange(0, 5.0, True))
        ctrl._on_rate_change(None, RateChange(0, 4.0, True))
        assert len(ctrl.adjustments) == 1

    def test_aggregate_rate_capped_at_line(self):
        target = FakeTarget(rates=[30.0, 30.0])
        ctrl = BlockRateController(min_adjust_interval_ns=0, line_rate_gbps=40.0)
        ctrl.attach(target, FakeSim())
        assert ctrl._aggregate_rate_gbps() == 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockRateController(min_adjust_interval_ns=-1)
        with pytest.raises(ValueError):
            BlockRateController(release_fraction=0.0)


class TestPerDeviceScalingInSRC:
    def test_demanded_rate_divided_by_array_width(self):
        calls = []

        class SpyTPM:
            fitted = True

            def predict(self, features, w):
                calls.append((features, w))
                return 0.1, 1.0  # immediately below any demand -> w=1

        target = FakeTarget(rates=[6.0], n_drivers=3)
        ctrl = SRCController(SpyTPM(), min_adjust_interval_ns=0)
        ctrl._target = target
        ctrl._sim = FakeSim()
        # Feed the monitor two requests so features are computed.
        from repro.workloads.request import IORequest, OpType

        ctrl.monitor.observe(IORequest(arrival_ns=0, op=OpType.READ, lba=0, size_bytes=512), 0)
        ctrl.monitor.observe(IORequest(arrival_ns=0, op=OpType.WRITE, lba=99999, size_bytes=512), 0)

        from repro.core.events import CongestionEvent, EventKind

        ctrl.handle_event(CongestionEvent(0, 6.0, EventKind.PAUSE))
        # The features handed to the TPM were thinned 3x.
        features, _ = calls[0]
        base = ctrl.monitor.features(0)
        assert features.read_flow_speed == pytest.approx(base.read_flow_speed / 3)
