"""Throughput-prediction model tests (uses the session-cached tiny TPM)."""

import numpy as np
import pytest

from repro.core.sampling import SamplingPlan, TrainingSet, collect_training_set
from repro.core.tpm import ThroughputPredictionModel
from repro.ml.linear import LinearRegression
from repro.workloads.features import FEATURE_NAMES, extract_features
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


def features():
    wl = MicroWorkloadConfig(3_000, 8 * 1024)
    trace = generate_micro_trace(wl, n_reads=400, n_writes=400, seed=5)
    return extract_features(trace)


def test_predict_returns_read_write_pair(tiny_tpm):
    r, w = tiny_tpm.predict(features(), 1)
    assert r > 0 and w > 0


def test_predict_read_shortcut(tiny_tpm):
    f = features()
    assert tiny_tpm.predict_read(f, 2) == tiny_tpm.predict(f, 2)[0]


def test_higher_weight_predicts_lower_read(tiny_tpm):
    f = features()
    assert tiny_tpm.predict_read(f, 8) < tiny_tpm.predict_read(f, 1)


def test_score_on_training_distribution(tiny_tpm):
    plan = SamplingPlan(
        interarrival_ns=(2_000, 6_000),
        size_bytes=(4 * 1024, 12 * 1024),
        weight_ratios=(2, 8),
        read_write_mixes=(1.0,),
        duration_ns=4_000_000,
        min_requests=100,
        seed=99,
    )
    validation = collect_training_set(FAST_SSD, plan)
    assert tiny_tpm.score(validation) > 0.5


def test_unfitted_raises():
    tpm = ThroughputPredictionModel()
    with pytest.raises(RuntimeError):
        tpm.predict(features(), 1)
    with pytest.raises(RuntimeError):
        tpm.score(TrainingSet(X=np.zeros((1, len(FEATURE_NAMES))), y=np.zeros((1, 2))))


def test_fit_requires_enough_samples():
    tpm = ThroughputPredictionModel()
    tiny = TrainingSet(X=np.zeros((2, len(FEATURE_NAMES))), y=np.zeros((2, 2)))
    with pytest.raises(ValueError):
        tpm.fit(tiny)


def test_feature_importances_named_and_normalised(tiny_tpm):
    imp = tiny_tpm.feature_importances()
    assert set(imp) == set(FEATURE_NAMES)
    assert sum(imp.values()) == pytest.approx(1.0)


def test_weight_ratio_is_informative(tiny_tpm):
    """The control knob must carry nontrivial importance."""
    imp = tiny_tpm.feature_importances()
    assert imp["weight_ratio"] > 0.05


def test_ch_importances_exclude_weight_and_renormalise(tiny_tpm):
    ch = tiny_tpm.ch_importances()
    assert "weight_ratio" not in ch
    assert sum(ch.values()) == pytest.approx(1.0)


def test_flow_speed_importance_accessor(tiny_tpm):
    ch = tiny_tpm.ch_importances()
    expected = ch["read_flow_speed"] + ch["write_flow_speed"]
    assert tiny_tpm.flow_speed_importance() == pytest.approx(expected)


def test_custom_model_without_importances():
    plan = SamplingPlan(
        interarrival_ns=(3_000,),
        size_bytes=(8 * 1024,),
        weight_ratios=(1, 2, 4, 8),
        read_write_mixes=(1.0,),
        duration_ns=2_000_000,
        min_requests=100,
    )
    training = collect_training_set(FAST_SSD, plan)
    tpm = ThroughputPredictionModel(LinearRegression()).fit(training)
    assert tpm.feature_importances() == {}
    r, w = tpm.predict(features(), 1)
    assert np.isfinite([r, w]).all()


def test_predictions_floored_at_zero():
    """A linear model can extrapolate negative; the TPM clamps."""
    plan = SamplingPlan(
        interarrival_ns=(3_000,),
        size_bytes=(8 * 1024,),
        weight_ratios=(1, 2, 4, 8),
        read_write_mixes=(1.0,),
        duration_ns=2_000_000,
        min_requests=100,
    )
    training = collect_training_set(FAST_SSD, plan)
    tpm = ThroughputPredictionModel(LinearRegression()).fit(training)
    r, w = tpm.predict(features(), 64)  # far outside the grid
    assert r >= 0.0 and w >= 0.0
