"""Dual-fidelity engine tests: fluid shares, CC, coupling, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.dcqcn import DCQCNConfig, fluid_rate_step
from repro.net.fluid import FluidConfig, FluidDomain, _mark_probability
from repro.net.link import Link
from repro.net.topology import build_clos, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import MS, US, gbps_to_bytes_per_ns


def small_clos(sim, *, fluid_hosts_per_tor=2):
    return build_clos(
        sim,
        n_pods=2,
        leaves_per_pod=2,
        tors_per_pod=2,
        hosts_per_tor=4,
        fluid_hosts_per_tor=fluid_hosts_per_tor,
    )


def dumbbell(sim, n=4, rate_gbps=40.0):
    return build_dumbbell(
        sim,
        [f"l{i}" for i in range(n)],
        [f"r{i}" for i in range(n)],
        rate_gbps=rate_gbps,
    )


# -- mean-field DCQCN ------------------------------------------------------

def test_fluid_rate_step_unmarked_increases_toward_line_rate():
    cfg = DCQCNConfig()
    rate, alpha = fluid_rate_step(20.0, 0.5, 0.0, cfg)
    assert rate == pytest.approx(20.0 + cfg.rate_ai_gbps)
    assert alpha == pytest.approx(0.5 * (1 - cfg.g))  # EWMA decays toward 0


def test_fluid_rate_step_full_marking_cuts_rate():
    cfg = DCQCNConfig()
    rate, alpha = fluid_rate_step(40.0, 1.0, 1.0, cfg)
    assert rate == pytest.approx(40.0 * 0.5)  # cut by alpha/2 at p=1
    assert alpha == pytest.approx(1.0)


def test_fluid_rate_step_clamps_to_bounds():
    cfg = DCQCNConfig()
    rate, _ = fluid_rate_step(cfg.line_rate_gbps, 0.0, 0.0, cfg)
    assert rate == cfg.line_rate_gbps  # never above line rate
    rate, _ = fluid_rate_step(cfg.min_rate_gbps, 1.0, 1.0, cfg)
    assert rate == cfg.min_rate_gbps  # never below the floor
    with pytest.raises(ValueError):
        fluid_rate_step(10.0, 0.5, 1.5, cfg)


def test_mark_probability_ramp():
    cfg = FluidConfig()
    assert _mark_probability(0.0, cfg) == 0.0
    assert _mark_probability(cfg.ecn_kmin_util, cfg) == 0.0
    mid = (cfg.ecn_kmin_util + cfg.ecn_kmax_util) / 2
    assert _mark_probability(mid, cfg) == pytest.approx(cfg.ecn_pmax / 2)
    assert _mark_probability(cfg.ecn_kmax_util, cfg) == 1.0
    assert _mark_probability(1.5, cfg) == 1.0


# -- share solver ----------------------------------------------------------

def test_single_flow_gets_demand_when_uncongested():
    sim = Simulator()
    net = small_clos(sim)
    dom = FluidDomain(sim, net)
    hosts = net.fluid_hosts()
    flow = dom.add_flow(hosts[0], hosts[-1], demand_gbps=5.0)
    assert flow.rate_bytes_per_ns == pytest.approx(gbps_to_bytes_per_ns(5.0))
    assert dom.fluid_violation() is None


def test_shares_respect_headroom_capacity():
    """Many high-demand flows through one bottleneck split its budget."""
    sim = Simulator()
    net = dumbbell(sim, n=4)
    net.tag_fidelity("l0", "fluid")
    dom = FluidDomain(sim, net)
    # 4 flows l_i -> r_i all cross the single inter-switch trunk.
    for i in range(4):
        dom.add_flow(f"l{i}", f"r{i}", demand_gbps=40.0)
    trunk_capacity = gbps_to_bytes_per_ns(40.0)
    total = sum(f.rate_bytes_per_ns for f in dom.flows)
    assert total <= dom.config.headroom * trunk_capacity + 1e-9
    # Max-min with equal demands = equal shares.
    rates = [f.rate_bytes_per_ns for f in dom.flows]
    assert max(rates) == pytest.approx(min(rates))
    assert dom.fluid_violation() is None


def test_cap_limited_flow_frees_share_for_others():
    sim = Simulator()
    net = dumbbell(sim, n=2)
    dom = FluidDomain(sim, net)
    small = dom.add_flow("l0", "r0", demand_gbps=2.0)
    big = dom.add_flow("l1", "r1", demand_gbps=40.0)
    assert small.rate_bytes_per_ns == pytest.approx(gbps_to_bytes_per_ns(2.0))
    # The big flow takes the rest of the trunk budget.
    budget = dom.config.headroom * gbps_to_bytes_per_ns(40.0)
    assert big.rate_bytes_per_ns == pytest.approx(
        budget - small.rate_bytes_per_ns
    )


def test_departure_restores_shares_and_settles_accrual():
    sim = Simulator()
    net = dumbbell(sim, n=2)
    dom = FluidDomain(sim, net)
    a = dom.add_flow("l0", "r0", demand_gbps=40.0)
    b = dom.add_flow("l1", "r1", demand_gbps=40.0)
    half = a.rate_bytes_per_ns
    sim.schedule_at_anon(50 * US, dom.remove_flow, a)
    dom.start(until_ns=100 * US)
    sim.run(until=100 * US)
    assert not a.active and a.rate_bytes_per_ns == 0.0
    assert a.bytes_served == pytest.approx(half * 50 * US, rel=0.05)
    # Survivor doubled once the peer left.
    assert b.rate_bytes_per_ns == pytest.approx(2 * half)
    assert dom.fluid_violation() is None


# -- coupling to the packet domain ----------------------------------------

class _Sink:
    name = "sink"

    def receive(self, packet, in_port):
        pass


def test_fluid_load_inflates_packet_serialization():
    """A loaded link serialises foreground packets at the residual rate."""
    sim = Simulator()
    link = Link(sim, rate_gbps=40.0, delay_ns=0, dst=_Sink(), dst_port=0)
    base = link.serialization_ns(4096)
    link.set_fluid_load(0.5 * link._bytes_per_ns)
    assert link.serialization_ns(4096) == 2 * base
    link.set_fluid_load(0.0)
    assert link.serialization_ns(4096) == base
    assert link._eff_bytes_per_ns == link._bytes_per_ns


def test_fluid_load_floor_keeps_residual_bandwidth():
    sim = Simulator()
    link = Link(sim, rate_gbps=40.0, delay_ns=0, dst=_Sink(), dst_port=0)
    link.set_fluid_load(10 * link._bytes_per_ns)  # absurd oversubscription
    assert link._eff_bytes_per_ns == pytest.approx(0.01 * link._bytes_per_ns)


def test_foreground_rate_feeds_back_into_shares():
    """Packet-domain bytes shrink what the solver hands fluid flows."""
    sim = Simulator()
    net = dumbbell(sim, n=2)
    dom = FluidDomain(sim, net)
    flow = dom.add_flow("l0", "r0", demand_gbps=40.0)
    unloaded = flow.rate_bytes_per_ns
    # Fake a hot foreground: bump bytes_sent on the flow's first link
    # between two control ticks, as real packet traffic would.
    link = flow.links[0]
    interval = dom.config.update_interval_ns
    fg_rate = 0.5 * link._bytes_per_ns

    def inject() -> None:
        link.bytes_sent += int(fg_rate * interval)

    sim.schedule_recurring_anon(interval // 2, inject, until_ns=5 * interval)
    dom.start(until_ns=5 * interval)
    sim.run(until=5 * interval)
    assert flow.rate_bytes_per_ns <= unloaded - 0.9 * fg_rate + 1e-9
    assert dom.fluid_violation() is None


def test_sustained_congestion_reduces_cc_rate():
    """Utilization-driven marking pulls the mean-field DCQCN rate down."""
    sim = Simulator()
    net = dumbbell(sim, n=4)
    dom = FluidDomain(sim, net)
    for i in range(4):
        dom.add_flow(f"l{i}", f"r{i}", demand_gbps=40.0)
    dom.start(until_ns=2 * MS)
    sim.run(until=2 * MS)
    line = dom.config.dcqcn.line_rate_gbps
    assert all(f.cc_rate_gbps < line for f in dom.flows)
    assert all(f.alpha > 0.0 for f in dom.flows)
    assert dom.fluid_violation() is None


# -- invariants ------------------------------------------------------------

def test_envelope_violation_detected():
    sim = Simulator()
    net = small_clos(sim)
    dom = FluidDomain(sim, net)
    hosts = net.fluid_hosts()
    flow = dom.add_flow(hosts[0], hosts[-1], demand_gbps=5.0)
    flow.bytes_served = 1e15  # corrupt: far beyond rho*t + sigma
    failure = dom.fluid_violation()
    assert failure is not None and failure[0] == "fluid-envelope"


def test_conservation_violation_detected():
    sim = Simulator()
    net = small_clos(sim)
    dom = FluidDomain(sim, net)
    hosts = net.fluid_hosts()
    flow = dom.add_flow(hosts[0], hosts[-1], demand_gbps=5.0)
    flow.rate_bytes_per_ns *= 2  # corrupt: rate above cap, sums drift
    failure = dom.fluid_violation()
    assert failure is not None and failure[0] == "fluid-conservation"


def test_sanitizing_simulator_sweeps_fluid_domain():
    from repro.analysis.sanitizer import SanitizerError

    sim = Simulator(sanitize=True)
    net = small_clos(sim)
    dom = FluidDomain(sim, net)
    hosts = net.fluid_hosts()
    flow = dom.add_flow(hosts[0], hosts[-1], demand_gbps=5.0)
    dom.start(until_ns=1 * MS)
    sim.schedule_at_anon(
        500 * US, lambda: setattr(flow, "bytes_served", 1e15)
    )
    with pytest.raises(SanitizerError) as exc:
        sim.run(until=1 * MS)
    assert exc.value.invariant == "fluid-envelope"


def test_projected_packet_events_counts_path_hops():
    sim = Simulator()
    net = small_clos(sim)
    dom = FluidDomain(sim, net)
    hosts = net.fluid_hosts()
    flow = dom.add_flow(hosts[0], hosts[-1], demand_gbps=5.0)
    flow.bytes_served = 10 * 4096.0
    per_packet = 2 * len(flow.links) + 1
    assert dom.projected_packet_events(4096) == 10 * per_packet


def test_add_flow_validation():
    sim = Simulator()
    net = small_clos(sim)
    dom = FluidDomain(sim, net)
    hosts = net.fluid_hosts()
    with pytest.raises(ValueError):
        dom.add_flow(hosts[0], hosts[1], demand_gbps=0.0)
    with pytest.raises(KeyError):
        dom.add_flow("nope", hosts[1], demand_gbps=1.0)


def test_fluid_config_validation():
    with pytest.raises(ValueError):
        FluidConfig(update_interval_ns=0)
    with pytest.raises(ValueError):
        FluidConfig(headroom=1.5)
    with pytest.raises(ValueError):
        FluidConfig(ecn_kmin_util=0.9, ecn_kmax_util=0.5)
    with pytest.raises(ValueError):
        FluidConfig(envelope_slack_intervals=0)


# -- property: conservation under arbitrary arrival/departure orders -------

@settings(max_examples=40, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove"]),
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=0.5, max_value=60.0),
        ),
        min_size=1,
        max_size=24,
    )
)
def test_shares_conserve_capacity_across_arrival_departure_sequences(steps):
    """After any add/remove sequence: rates non-negative, capped by the
    flow's demand/CC limit, and per-link sums within headroom*capacity —
    checked from scratch by ``fluid_violation`` after every step."""
    sim = Simulator()
    net = dumbbell(sim, n=4)
    dom = FluidDomain(sim, net)
    live = []
    for op, idx, demand in steps:
        if op == "add":
            live.append(
                dom.add_flow(f"l{idx % 4}", f"r{(idx // 2) % 4}", demand)
            )
        elif live:
            dom.remove_flow(live.pop(idx % len(live)))
        assert dom.fluid_violation() is None
        for flow in dom.flows:
            assert flow.rate_bytes_per_ns >= 0.0
            assert flow.rate_bytes_per_ns <= flow.cap_bytes_per_ns() + 1e-9
