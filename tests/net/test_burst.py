"""Burst-batched serialization tests (``Link.send_burst`` + burst pump)."""

import pytest

from repro.net.link import Link
from repro.net.nic import NICConfig
from repro.net.packet import Packet, PacketKind
from repro.net.switch import SwitchConfig
from repro.net.topology import build_star
from repro.profiling.bench import incast_outputs, run_incast_cell
from repro.sim.engine import Simulator


class Sink:
    def __init__(self, sim, name="sink"):
        self.sim = sim
        self.name = name
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((self.sim.now, packet))


def make_link(rate=40.0, delay=1000):
    sim = Simulator()
    sink = Sink(sim)
    link = Link(sim, rate_gbps=rate, delay_ns=delay, dst=sink, dst_port=0)
    return sim, sink, link


def data(size=4096):
    return Packet(kind=PacketKind.DATA, src="a", dst="sink", size_bytes=size)


def test_burst_segments_default_and_validation():
    assert NICConfig().burst_segments == 1
    with pytest.raises(ValueError):
        NICConfig(burst_segments=0)


def test_send_burst_total_time_matches_scalar_serialization():
    """One burst event finishes exactly when N scalar sends would."""
    sizes = [4096, 1024, 333, 8192]
    sim_a, sink_a, link_a = make_link()
    for s in sizes:
        link_a.send(data(s))
    sim_a.run()
    sim_b, sink_b, link_b = make_link()
    link_b.send_burst([data(s) for s in sizes])
    sim_b.run()
    # The burst's vectorised cumsum reproduces the scalar rounding per
    # packet, so the last-packet delivery instants coincide exactly.
    assert sink_b.received[-1][0] == sink_a.received[-1][0]
    assert len(sink_b.received) == len(sizes)
    assert link_b.bytes_sent == link_a.bytes_sent == sum(sizes)
    assert link_b.packets_sent == len(sizes)


def test_send_burst_single_packet_and_busy_fallback():
    sim, sink, link = make_link()
    link.send(data(4096))  # occupies the wire
    link.send_burst([data(1024), data(1024)])  # falls back to send()
    link.send_burst([data(512)])  # len < 2 -> scalar path
    sim.run()
    assert len(sink.received) == 4
    # FIFO order preserved through the fallback path.
    times = [t for t, _ in sink.received]
    assert times == sorted(times)
    assert link.bytes_sent == 4096 + 1024 + 1024 + 512


def test_send_burst_counts_one_event_per_burst():
    sim_a, _, link_a = make_link()
    for _ in range(8):
        link_a.send(data(1024))
    sim_a.run()
    scalar_events = sim_a.events_dispatched
    sim_b, _, link_b = make_link()
    link_b.send_burst([data(1024) for _ in range(8)])
    sim_b.run()
    # 8 finish events collapse into 1 (+1 delivery vs 8 coalesced).
    assert sim_b.events_dispatched < scalar_events


def test_burst_pump_delivers_every_message():
    """K=8 pump: same messages delivered as the classic scalar pump."""
    bench_scalar, _, net_scalar = run_incast_cell(
        n_senders=1, duration_ns=200_000, message_bytes=32 * 1024
    )
    bench_burst, _, net_burst = run_incast_cell(
        n_senders=1,
        duration_ns=200_000,
        message_bytes=32 * 1024,
        nic_config=NICConfig(burst_segments=8),
    )
    scalar_out = incast_outputs(net_scalar)
    burst_out = incast_outputs(net_burst)
    assert burst_out["messages_delivered"] == scalar_out["messages_delivered"]
    assert burst_out["bytes_received"] == scalar_out["bytes_received"]
    assert bench_burst.events < bench_scalar.events


def test_burst_forwarding_switch_end_to_end():
    """Bursts survive the switch hop with burst_forwarding on."""
    sim = Simulator()
    net = build_star(
        sim,
        ["s0", "r0"],
        nic_config=NICConfig(burst_segments=8),
        switch_config=SwitchConfig(burst_forwarding=True),
    )
    net.hosts["s0"].send_message("r0", 64 * 1024)
    sim.run()
    assert net.hosts["r0"].messages_delivered == 1
    assert net.hosts["r0"].bytes_received == 64 * 1024
    assert net.switches["sw0"].packets_forwarded == 16  # 64 KiB / 4 KiB MTU


def test_burst_respects_reliability_mode():
    """Reliability flows never take the burst path (seq numbering)."""
    from repro.net.reliability import ReliabilityConfig

    sim = Simulator()
    net = build_star(
        sim,
        ["s0", "r0"],
        nic_config=NICConfig(
            burst_segments=8, reliability=ReliabilityConfig()
        ),
    )
    net.hosts["s0"].send_message("r0", 64 * 1024)
    sim.run()
    assert net.hosts["r0"].messages_delivered == 1
    assert net.hosts["r0"].bytes_received == 64 * 1024
