"""DCQCN reaction-point state machine tests.

Three layers:

* behavioural tests of the scalar :class:`DCQCNRateControl`;
* regression tests pinning the *lazy* alpha evaluation against an
  embedded eager reference (:class:`_EagerDCQCN`, the pre-lazy
  implementation with both timers as real scheduled events) — in
  particular the CNP-exactly-on-a-decay-boundary and the
  recovery-exactly-on-a-decay-boundary tie-breaks;
* equivalence tests pinning the batched :class:`RateTable` against the
  scalar reference, flow by flow, bit for bit.
"""

import random

import pytest

from repro.net.dcqcn import DCQCNConfig, DCQCNRateControl, RateTable
from repro.sim.engine import Simulator


def make(config=None):
    sim = Simulator()
    return sim, DCQCNRateControl(sim, config or DCQCNConfig())


def test_starts_at_line_rate():
    _, rp = make()
    assert rp.current_rate_gbps == 40.0
    assert rp.alpha == 1.0


def test_first_cnp_halves_rate():
    _, rp = make()
    rp.on_cnp()
    # alpha=1 => cut by alpha/2 = 50%.
    assert rp.current_rate_gbps == pytest.approx(20.0)
    assert rp.target_rate_gbps == pytest.approx(40.0)


def test_alpha_rises_on_cnp_and_decays_after():
    sim, rp = make()
    rp.on_cnp()
    assert rp.alpha == pytest.approx(1.0)  # (1-g)*1 + g with alpha0=1
    rp.on_cnp()
    a = rp.alpha
    sim.run(until=sim.now + 10 * 55_000)
    assert rp.alpha < a  # decay timers fired


def test_repeated_cnps_drive_rate_to_floor():
    _, rp = make()
    for _ in range(50):
        rp.on_cnp()
    assert rp.current_rate_gbps == pytest.approx(0.1)  # min rate clamp


def test_fast_recovery_approaches_target():
    sim, rp = make()
    rp.on_cnp()
    cut = rp.current_rate_gbps
    sim.run(until=2 * 55_000 + 10)
    # Two timer ticks of fast recovery: rate climbed toward target 40.
    assert rp.current_rate_gbps > cut
    assert rp.current_rate_gbps <= 40.0


def test_full_recovery_reaches_line_rate():
    sim, rp = make()
    rp.on_cnp()
    sim.run(until=sim.now + 400 * 55_000)
    assert rp.current_rate_gbps == pytest.approx(40.0)
    assert not rp._congested


def test_byte_counter_triggers_increase():
    sim, rp = make()
    rp.on_cnp()
    cut = rp.current_rate_gbps
    rp.on_bytes_sent(DCQCNConfig().byte_counter_bytes)
    assert rp.current_rate_gbps > cut


def test_byte_counter_idle_when_uncongested():
    _, rp = make()
    rp.on_bytes_sent(10**9)
    assert rp.current_rate_gbps == 40.0


def test_listeners_see_decreases_and_increases():
    sim, rp = make()
    changes = []
    rp.listeners.append(lambda c: changes.append(c))
    rp.on_cnp()
    sim.run(until=5 * 55_000)
    assert changes[0].decreased
    assert changes[0].rate_gbps == pytest.approx(20.0)
    assert any(not c.decreased for c in changes[1:])


def test_cnp_counter():
    _, rp = make()
    rp.on_cnp()
    rp.on_cnp()
    assert rp.cnp_count == 2


def test_config_validation():
    with pytest.raises(ValueError):
        DCQCNConfig(line_rate_gbps=0)
    with pytest.raises(ValueError):
        DCQCNConfig(min_rate_gbps=50, line_rate_gbps=40)
    with pytest.raises(ValueError):
        DCQCNConfig(g=0)
    with pytest.raises(ValueError):
        DCQCNConfig(alpha_timer_ns=0)
    with pytest.raises(ValueError):
        DCQCNConfig(fast_recovery_threshold=0)


def test_rate_never_exceeds_line_or_drops_below_min():
    sim, rp = make()
    for i in range(20):
        rp.on_cnp()
        sim.run(until=sim.now + 55_000)
        assert 0.1 <= rp.current_rate_gbps <= 40.0


# -- eager reference (pre-lazy-alpha implementation) --------------------------

class _EagerDCQCN:
    """The pre-lazy RP: both timers as real self-rescheduling events.

    This is the implementation the lazy ``DCQCNRateControl`` replaced.
    Alpha decay is an actual scheduled event firing every
    ``alpha_timer_ns``, so same-timestamp ordering against CNPs and
    increase ticks is decided by the engine's sequence numbers — which
    is precisely the semantics the lazy replay must reproduce.  Kept
    minimal (no listeners, no pacing mirror): the comparison axis is
    the (alpha, current, target) trajectory.
    """

    def __init__(self, sim, config=None):
        self.sim = sim
        self.config = config or DCQCNConfig()
        self.current_rate_gbps = self.config.line_rate_gbps
        self.target_rate_gbps = self.config.line_rate_gbps
        self.alpha = self.config.initial_alpha
        self._bytes_since_increase = 0
        self._timer_stage = 0
        self._byte_stage = 0
        self._congested = False
        self._alpha_timer_event = None
        self._increase_timer_event = None

    def _set_rate(self, rate_gbps):
        self.current_rate_gbps = min(
            self.config.line_rate_gbps, max(self.config.min_rate_gbps, rate_gbps)
        )

    def on_cnp(self):
        self.target_rate_gbps = self.current_rate_gbps
        self._set_rate(self.current_rate_gbps * (1.0 - self.alpha / 2.0))
        self.alpha = (1.0 - self.config.g) * self.alpha + self.config.g
        self._congested = True
        self._timer_stage = 0
        self._byte_stage = 0
        self._bytes_since_increase = 0
        for ev in (self._alpha_timer_event, self._increase_timer_event):
            if ev is not None:
                ev.cancel()
        self._alpha_timer_event = self.sim.schedule(
            self.config.alpha_timer_ns, self._alpha_decay
        )
        self._increase_timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    def _alpha_decay(self):
        # Applies unconditionally — an event already in the heap fires
        # even if an earlier same-instant tick just cleared congestion.
        self.alpha *= 1.0 - self.config.g
        if self._congested:
            self._alpha_timer_event = self.sim.schedule(
                self.config.alpha_timer_ns, self._alpha_decay
            )

    def _timer_tick(self):
        if not self._congested:
            return
        self._timer_stage += 1
        self._increase_rate()
        self._increase_timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    def on_bytes_sent(self, nbytes):
        if not self._congested:
            return
        self._bytes_since_increase += nbytes
        if self._bytes_since_increase >= self.config.byte_counter_bytes:
            self._bytes_since_increase = 0
            self._byte_stage += 1
            self._increase_rate()

    def _increase_rate(self):
        cfg = self.config
        if max(self._timer_stage, self._byte_stage) <= cfg.fast_recovery_threshold:
            pass
        elif min(self._timer_stage, self._byte_stage) <= cfg.fast_recovery_threshold:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_ai_gbps
            )
        else:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_hai_gbps
            )
        self._set_rate((self.target_rate_gbps + self.current_rate_gbps) / 2.0)
        if (
            self.current_rate_gbps >= cfg.line_rate_gbps
            and self.target_rate_gbps >= cfg.line_rate_gbps
        ):
            self._congested = False


def _drive(sim, rp, schedule, ordering, probes):
    """Schedule CNP/bytes events plus probes; return the observation log.

    ``ordering`` controls the sequence number a CNP event carries
    relative to any eager decay event due at the same instant:
    ``"cnp-first"`` pushes the CNP up-front (low seq — the CNP
    dispatches before a coincident decay), ``"decay-first"`` defers the
    push to one nanosecond before the deadline (high seq — the decay
    event, pushed a full alpha period earlier, dispatches first).  The
    realistic network ordering is decay-first: a CNP's arrival event is
    pushed one propagation delay before it fires, well under an alpha
    period.
    """
    log = []

    def cnp():
        rp.on_cnp()
        log.append(
            ("cnp", sim.now, rp.alpha, rp.current_rate_gbps, rp.target_rate_gbps)
        )

    def sent(nbytes):
        rp.on_bytes_sent(nbytes)
        log.append(
            ("sent", sim.now, rp.alpha, rp.current_rate_gbps, rp.target_rate_gbps)
        )

    def probe():
        log.append(
            ("probe", sim.now, rp.alpha, rp.current_rate_gbps, rp.target_rate_gbps)
        )

    for kind, t, *rest in schedule:
        if ordering == "cnp-first":
            if kind == "cnp":
                sim.schedule_at(t, cnp)
            else:
                sim.schedule_at(t, sent, rest[0])
        elif kind == "cnp":
            sim.schedule_at(max(0, t - 1), lambda t=t: sim.schedule_at(t, cnp))
        else:
            # Byte counters fire from the NIC pump, whose wake-up is
            # likewise pushed well under one alpha period ahead.
            sim.schedule_at(
                max(0, t - 1),
                lambda t=t, nb=rest[0]: sim.schedule_at(t, sent, nb),
            )
    for t in probes:
        # Probes read lazily-evaluated state, so their intra-instant
        # position is irrelevant; push them late for symmetry anyway.
        sim.schedule_at(max(0, t - 1), lambda t=t: sim.schedule_at(t, probe))
    sim.run()
    return log


def _run_lazy(schedule, ordering, probes, config):
    sim = Simulator()
    return _drive(sim, DCQCNRateControl(sim, config), schedule, ordering, probes)


def _run_eager(schedule, ordering, probes, config):
    sim = Simulator()
    return _drive(sim, _EagerDCQCN(sim, config), schedule, ordering, probes)


P = DCQCNConfig().alpha_timer_ns  # 55_000


@pytest.mark.parametrize("k", [1, 2, 3, 5, 6])
def test_cnp_exactly_on_decay_boundary_applies_k_decays(k):
    """A CNP at ``anchor + k*alpha_timer_ns`` sees k decays, not k-1.

    The eager implementation fired the decay timer before processing a
    same-timestamp CNP (the decay event carries the lower sequence
    number); the lazy replay must count the boundary coinciding with
    the CNP as already fired.
    """
    cfg = DCQCNConfig()
    sim, rp = make(cfg)
    sim.schedule_at(10, rp.on_cnp)
    sim.run(until=10)
    alpha_after_first = rp._alpha_value
    # Read alpha exactly on the k-th boundary: k decays materialised.
    sim.run(until=10 + k * P)
    expected = alpha_after_first
    for _ in range(k):
        expected *= 1.0 - cfg.g
    assert rp.alpha == expected
    under_decayed = alpha_after_first
    for _ in range(k - 1):
        under_decayed *= 1.0 - cfg.g
    assert rp.alpha != under_decayed  # k-1 decays would be the old bug
    # The second CNP's rate cut uses the k-times-decayed alpha.
    rate_before = rp.current_rate_gbps
    rp.on_cnp()
    assert rp.current_rate_gbps == pytest.approx(
        max(cfg.min_rate_gbps, rate_before * (1.0 - expected / 2.0))
    )


def _boundary_schedules():
    """Schedules that land CNPs and byte counters on decay boundaries."""
    cases = []
    for k in (1, 2, 3, 6):
        cases.append(
            (
                [("cnp", 10), ("cnp", 10 + k * P)],
                [10 + k * P + 1, 10 + (k + 3) * P + 7, 10 + 600 * P],
            )
        )
    cases.append(
        (
            [("cnp", 10), ("cnp", 10 + 3 * P - 1), ("cnp", 10 + 5 * P + 1)],
            [10 + 7 * P, 10 + 600 * P],
        )
    )
    cases.append(
        (
            [
                ("cnp", 10),
                ("sent", 10 + P // 2, 11 * 1024 * 1024),
                ("cnp", 10 + 2 * P),
                ("sent", 10 + 3 * P, 11 * 1024 * 1024),
            ],
            [10 + 4 * P, 10 + 600 * P],
        )
    )
    return cases


@pytest.mark.parametrize("schedule,probes", _boundary_schedules())
def test_lazy_matches_eager_reference_decay_first(schedule, probes):
    """Lazy trajectory == eager with realistic (decay-first) ordering."""
    cfg = DCQCNConfig()
    assert _run_lazy(schedule, "decay-first", probes, cfg) == _run_eager(
        schedule, "decay-first", probes, cfg
    )


@pytest.mark.parametrize("k", [1, 2, 4])
def test_lazy_alpha_tie_is_push_order_independent(k):
    """The alpha tie-break does not depend on how the CNP was pushed.

    Config chosen so no increase tick coincides with a decay boundary
    (13_000 does not divide k * 55_000 for small k): the only same-
    instant race is CNP-vs-decay.  The lazy RP has no decay events to
    race against, so both push orderings yield one trajectory — the
    decay-first one (the realistic ordering: a decay event is pushed a
    full alpha period before it fires, a CNP arrival one propagation
    delay).  The eager reference under cnp-first ordering diverges by
    exactly the boundary decay, proving the tie is real.
    """
    cfg = DCQCNConfig(alpha_timer_ns=55_000, increase_timer_ns=13_000)
    schedule = [("cnp", 10), ("cnp", 10 + k * 55_000)]
    probes = [10 + k * 55_000 + 3, 10 + (k + 300) * 55_000]
    decay_first = _run_lazy(schedule, "decay-first", probes, cfg)
    assert _run_lazy(schedule, "cnp-first", probes, cfg) == decay_first
    assert _run_eager(schedule, "decay-first", probes, cfg) == decay_first
    assert _run_eager(schedule, "cnp-first", probes, cfg) != decay_first


def test_eager_orderings_genuinely_differ_on_boundaries():
    """The tie the lazy RP pins is real: eager orderings disagree.

    With a CNP exactly on a decay boundary, eager cnp-first cuts the
    rate from an alpha one decay behind eager decay-first — so the test
    above is pinning an actual semantic choice, not a vacuous equality.
    """
    cfg = DCQCNConfig()
    schedule = [("cnp", 10), ("cnp", 10 + 2 * P)]
    probes = [10 + 2 * P + 3]
    assert _run_eager(schedule, "cnp-first", probes, cfg) != _run_eager(
        schedule, "decay-first", probes, cfg
    )


@pytest.mark.parametrize(
    "alpha_timer_ns,increase_timer_ns",
    [
        (10_000, 13_000),  # alpha < increase: the clearing tick wins ties
        (55_000, 55_000),  # equal periods: the decay event wins ties
        (60_000, 13_000),  # alpha > increase: the decay event wins ties
    ],
)
def test_decay_cap_after_recovery_matches_eager(alpha_timer_ns, increase_timer_ns):
    """Recovery landing exactly on a decay boundary freezes the right cap.

    Regression for the clear-on-boundary off-by-one: the old cap
    formula unconditionally counted a boundary coinciding with the
    clearing instant as fired, but when ``alpha_timer < increase_timer``
    the clearing increase tick carries the *lower* sequence number and
    the eager reference applies one decay fewer.  Seeded differential
    fuzz against the eager reference under decay-first CNP ordering;
    the (10_000, 13_000) case reproduced the bug deterministically.
    """
    cfg = DCQCNConfig(
        alpha_timer_ns=alpha_timer_ns, increase_timer_ns=increase_timer_ns
    )
    rng = random.Random(hash((alpha_timer_ns, increase_timer_ns)) & 0xFFFF)
    period = alpha_timer_ns
    for _ in range(25):
        t = 10
        schedule = [("cnp", t)]
        for _ in range(rng.randint(1, 4)):
            # Mix boundary-exact and off-boundary CNPs, far enough apart
            # for full recovery (and its decay cap) to engage sometimes.
            gap_periods = rng.choice([1, 2, 3, 7, 60, 90, 150])
            t += gap_periods * period + rng.choice([0, 0, 0, 1, -1, 17])
            schedule.append(("cnp", t))
            if rng.random() < 0.3:
                schedule.append(("sent", t + rng.randint(1, period), 11 * 2**20))
        probes = [t + k * period for k in (1, 2, 5, 100, 300)]
        probes += [t + k * period + 7 for k in (3, 50, 200)]
        lazy = _run_lazy(schedule, "decay-first", probes, cfg)
        eager = _run_eager(schedule, "decay-first", probes, cfg)
        assert lazy == eager, f"schedule={schedule}"


# -- RateTable equivalence ----------------------------------------------------

def _random_config(rng):
    return DCQCNConfig(
        alpha_timer_ns=rng.choice([10_000, 13_000, 55_000, 60_000]),
        increase_timer_ns=rng.choice([13_000, 55_000]),
        g=rng.choice([1 / 16, 1 / 256]),
        byte_counter_bytes=rng.choice([64 * 1024, 10 * 2**20]),
        fast_recovery_threshold=rng.choice([1, 5]),
    )


def _pair_logs(sim, scalar, view):
    """Attach listeners to a scalar/view pair; return their change logs."""
    a, b = [], []
    scalar.listeners.append(lambda c: a.append((c.time_ns, c.rate_gbps, c.decreased)))
    view.listeners.append(lambda c: b.append((c.time_ns, c.rate_gbps, c.decreased)))
    return a, b


def test_rate_table_matches_scalar_reference_fuzz():
    """Packed-table flows track the scalar reference bit for bit.

    Each trial drives N scalar controls and N table views with
    identical per-flow CNP / bytes-sent schedules inside *one*
    simulator (so every lazy-alpha read happens at a common instant),
    then compares full listener trajectories and final state exactly.
    Shared CNP instants across flows force multi-row due sets through
    the vectorized ``RateTable._tick`` sweep.
    """
    rng = random.Random(0xD0C4)
    for trial in range(20):
        cfg = _random_config(rng)
        period = cfg.alpha_timer_ns
        sim = Simulator()
        table = RateTable(sim, cfg)
        n_flows = rng.randint(1, 5)
        pairs = []
        for _ in range(n_flows):
            scalar = DCQCNRateControl(sim, cfg)
            view = table.new_flow()
            pairs.append((scalar, view, *_pair_logs(sim, scalar, view)))
        # Half the trials synchronise CNPs across flows (vector path
        # with due.size == n_flows); the rest stagger them.
        synchronise = trial % 2 == 0
        shared_times = sorted(
            {
                10 + rng.randint(0, 20) * period + rng.choice([0, 0, 1, -1, 23])
                for _ in range(rng.randint(1, 5))
            }
        )
        for scalar, view, _, _ in pairs:
            times = (
                shared_times
                if synchronise
                else sorted(
                    {
                        10
                        + rng.randint(0, 20) * period
                        + rng.choice([0, 0, 1, -1, 23])
                        for _ in range(rng.randint(1, 5))
                    }
                )
            )
            for t in times:
                t = max(0, t)
                sim.schedule_at(t, scalar.on_cnp)
                sim.schedule_at(t, view.on_cnp)
                if rng.random() < 0.4:
                    nbytes = rng.choice([cfg.byte_counter_bytes, 2**20])
                    ts = t + rng.randint(1, 3 * period)
                    sim.schedule_at(ts, scalar.on_bytes_sent, nbytes)
                    sim.schedule_at(ts, view.on_bytes_sent, nbytes)
        sim.run()  # drain: both sides end at the same sim.now
        for scalar, view, scalar_log, view_log in pairs:
            assert view_log == scalar_log, f"trial={trial} cfg={cfg}"
            assert view.current_rate_gbps == scalar.current_rate_gbps
            assert view.target_rate_gbps == scalar.target_rate_gbps
            assert view.current_bytes_per_ns == scalar.current_bytes_per_ns
            assert view.alpha == scalar.alpha
            assert view._congested == scalar._congested
            assert view.cnp_count == scalar.cnp_count


def test_rate_table_view_is_api_drop_in():
    """The view answers the whole scalar surface the NIC relies on."""
    sim = Simulator()
    table = RateTable(sim)
    view = table.new_flow()
    assert view.current_rate_gbps == 40.0
    assert view.alpha == 1.0
    assert view.config is table.config
    changes = []
    view.listeners.append(changes.append)
    view.on_cnp()
    assert view.cnp_count == 1
    assert view.current_rate_gbps == pytest.approx(20.0)
    assert changes and changes[0].decreased
    sim.run(until=2 * P)
    assert view.current_rate_gbps > 20.0  # shared timer drove recovery


def test_rate_table_row_growth_preserves_state():
    """Allocating past the initial capacity keeps live rows intact."""
    sim = Simulator()
    table = RateTable(sim)
    first = table.new_flow()
    first.on_cnp()
    cut = first.current_rate_gbps
    views = [table.new_flow() for _ in range(20)]  # forces array growth
    assert first.current_rate_gbps == cut
    assert float(table.current_rate[first.row]) == cut
    assert all(v.current_rate_gbps == 40.0 for v in views)
    sim.run()
    assert first.current_rate_gbps == pytest.approx(40.0)


def test_rate_table_shared_timer_is_exact():
    """The single shared event always sits at min(next_tick).

    Cancel-and-reschedule on every CNP means a stale deadline can never
    fire: after each mutation the scheduled event matches the array
    minimum exactly.
    """
    sim = Simulator()
    table = RateTable(sim)
    a, b = table.new_flow(), table.new_flow()
    sim.schedule_at(5, a.on_cnp)
    sim.schedule_at(11, b.on_cnp)

    def check():
        expected = int(table.next_tick[: table._n].min())
        if table._timer_event is None:
            assert expected == table._deadline
        else:
            assert table._timer_event.time == expected == table._deadline

    for t in (6, 12, 30_000, 70_000, 200_000):
        sim.schedule_at(t, check)
    sim.run()
    assert table._timer_event is None  # fully recovered: timer retired
