"""DCQCN reaction-point state machine tests."""

import pytest

from repro.net.dcqcn import DCQCNConfig, DCQCNRateControl
from repro.sim.engine import Simulator


def make(config=None):
    sim = Simulator()
    return sim, DCQCNRateControl(sim, config or DCQCNConfig())


def test_starts_at_line_rate():
    _, rp = make()
    assert rp.current_rate_gbps == 40.0
    assert rp.alpha == 1.0


def test_first_cnp_halves_rate():
    _, rp = make()
    rp.on_cnp()
    # alpha=1 => cut by alpha/2 = 50%.
    assert rp.current_rate_gbps == pytest.approx(20.0)
    assert rp.target_rate_gbps == pytest.approx(40.0)


def test_alpha_rises_on_cnp_and_decays_after():
    sim, rp = make()
    rp.on_cnp()
    assert rp.alpha == pytest.approx(1.0)  # (1-g)*1 + g with alpha0=1
    rp.on_cnp()
    a = rp.alpha
    sim.run(until=sim.now + 10 * 55_000)
    assert rp.alpha < a  # decay timers fired


def test_repeated_cnps_drive_rate_to_floor():
    _, rp = make()
    for _ in range(50):
        rp.on_cnp()
    assert rp.current_rate_gbps == pytest.approx(0.1)  # min rate clamp


def test_fast_recovery_approaches_target():
    sim, rp = make()
    rp.on_cnp()
    cut = rp.current_rate_gbps
    sim.run(until=2 * 55_000 + 10)
    # Two timer ticks of fast recovery: rate climbed toward target 40.
    assert rp.current_rate_gbps > cut
    assert rp.current_rate_gbps <= 40.0


def test_full_recovery_reaches_line_rate():
    sim, rp = make()
    rp.on_cnp()
    sim.run(until=sim.now + 400 * 55_000)
    assert rp.current_rate_gbps == pytest.approx(40.0)
    assert not rp._congested


def test_byte_counter_triggers_increase():
    sim, rp = make()
    rp.on_cnp()
    cut = rp.current_rate_gbps
    rp.on_bytes_sent(DCQCNConfig().byte_counter_bytes)
    assert rp.current_rate_gbps > cut


def test_byte_counter_idle_when_uncongested():
    _, rp = make()
    rp.on_bytes_sent(10**9)
    assert rp.current_rate_gbps == 40.0


def test_listeners_see_decreases_and_increases():
    sim, rp = make()
    changes = []
    rp.listeners.append(lambda c: changes.append(c))
    rp.on_cnp()
    sim.run(until=5 * 55_000)
    assert changes[0].decreased
    assert changes[0].rate_gbps == pytest.approx(20.0)
    assert any(not c.decreased for c in changes[1:])


def test_cnp_counter():
    _, rp = make()
    rp.on_cnp()
    rp.on_cnp()
    assert rp.cnp_count == 2


def test_config_validation():
    with pytest.raises(ValueError):
        DCQCNConfig(line_rate_gbps=0)
    with pytest.raises(ValueError):
        DCQCNConfig(min_rate_gbps=50, line_rate_gbps=40)
    with pytest.raises(ValueError):
        DCQCNConfig(g=0)
    with pytest.raises(ValueError):
        DCQCNConfig(alpha_timer_ns=0)
    with pytest.raises(ValueError):
        DCQCNConfig(fast_recovery_threshold=0)


def test_rate_never_exceeds_line_or_drops_below_min():
    sim, rp = make()
    for i in range(20):
        rp.on_cnp()
        sim.run(until=sim.now + 55_000)
        assert 0.1 <= rp.current_rate_gbps <= 40.0
