"""Topology builders and ECMP routing tests."""

import pytest

from repro.net.topology import Network, build_clos, build_dumbbell, build_star
from repro.sim.engine import Simulator


def test_star_structure():
    sim = Simulator()
    net = build_star(sim, ["a", "b", "c"])
    assert set(net.hosts) == {"a", "b", "c"}
    assert set(net.switches) == {"sw0"}
    sw = net.switches["sw0"]
    for host in net.hosts:
        assert sw.routes[host]


def test_star_needs_two_hosts():
    with pytest.raises(ValueError):
        build_star(Simulator(), ["solo"])


def test_duplicate_names_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_host("x")
    with pytest.raises(ValueError):
        net.add_host("x")
    with pytest.raises(ValueError):
        net.add_switch("x")


def test_host_single_uplink_enforced():
    sim = Simulator()
    net = Network(sim)
    net.add_host("h")
    net.add_switch("s1")
    net.add_switch("s2")
    net.connect("h", "s1", rate_gbps=40)
    with pytest.raises(ValueError):
        net.connect("h", "s2", rate_gbps=40)


def test_dumbbell_end_to_end():
    sim = Simulator()
    net = build_dumbbell(sim, ["l0", "l1"], ["r0"], bottleneck_gbps=10.0)
    got = []
    net.hosts["r0"].endpoint = lambda p, src, size: got.append(src)
    net.hosts["l0"].send_message("r0", 4096)
    net.hosts["l1"].send_message("r0", 4096)
    sim.run()
    assert sorted(got) == ["l0", "l1"]


def test_dumbbell_validation():
    with pytest.raises(ValueError):
        build_dumbbell(Simulator(), [], ["r"])


def test_clos_paper_dimensions():
    sim = Simulator()
    net = build_clos(sim)
    # 4 pods × (2 leaves + 4 ToRs) switches, 4 × 64 hosts.
    assert len(net.hosts) == 256
    assert len(net.switches) == 24
    # §IV-A: half initiators, half targets — the builder just provides
    # the 256 nodes; role split happens in the experiment.


def test_clos_small_end_to_end_cross_pod():
    sim = Simulator()
    net = build_clos(sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=2)
    src, dst = "h0_0_0", "h1_1_1"
    got = []
    net.hosts[dst].endpoint = lambda p, s, size: got.append(s)
    net.hosts[src].send_message(dst, 8192)
    sim.run()
    assert got == [src]


def test_clos_ecmp_multiple_next_hops():
    sim = Simulator()
    net = build_clos(sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=2)
    tor = net.switches["tor0_0"]
    # A cross-pod destination is reachable via both leaves.
    assert len(tor.routes["h1_0_0"]) == 2


def test_clos_same_pod_routing_stays_local():
    sim = Simulator()
    net = build_clos(sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=2)
    got = []
    net.hosts["h0_1_0"].endpoint = lambda p, s, size: got.append(s)
    net.hosts["h0_0_0"].send_message("h0_1_0", 4096)
    sim.run()
    assert got == ["h0_0_0"]


def test_clos_validation():
    with pytest.raises(ValueError):
        build_clos(Simulator(), n_pods=0)


def test_total_counters():
    sim = Simulator()
    net = build_star(sim, ["a", "b"])
    assert net.total_cnps() == 0
    assert net.total_pfc_pauses() == 0


def test_routes_to_all_hosts_from_all_switches():
    sim = Simulator()
    net = build_clos(sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=2)
    for sw in net.switches.values():
        for host in net.hosts:
            assert host in sw.routes, f"{sw.name} missing route to {host}"


def test_duplicate_cable_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_switch("swA")
    net.add_switch("swB")
    net.connect("swA", "swB", rate_gbps=40.0)
    with pytest.raises(ValueError, match="duplicate cable"):
        net.connect("swA", "swB", rate_gbps=40.0)
    with pytest.raises(ValueError, match="duplicate cable"):
        net.connect("swB", "swA", rate_gbps=40.0)  # same pair, reversed


def test_self_loop_cable_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_switch("swA")
    with pytest.raises(ValueError, match="itself"):
        net.connect("swA", "swA", rate_gbps=40.0)


def test_fidelity_tagging():
    sim = Simulator()
    net = build_star(sim, ["a", "b", "c"])
    assert net.fidelity_of("a") == "packet"
    net.tag_fidelity("b", "fluid")
    assert net.fidelity_of("b") == "fluid"
    assert net.fluid_hosts() == ["b"]
    with pytest.raises(KeyError):
        net.tag_fidelity("nope", "fluid")
    with pytest.raises(ValueError):
        net.tag_fidelity("a", "analog")


def test_build_clos_fluid_tagging():
    sim = Simulator()
    net = build_clos(
        sim,
        n_pods=2,
        leaves_per_pod=2,
        tors_per_pod=2,
        hosts_per_tor=4,
        fluid_hosts_per_tor=1,
    )
    fluid = net.fluid_hosts()
    # The *last* host of every ToR is tagged: 2 pods x 2 ToRs x 1.
    assert len(fluid) == 4
    assert all(name.endswith("_3") for name in fluid)
    with pytest.raises(ValueError):
        build_clos(sim, fluid_hosts_per_tor=99)


def test_path_links_follows_packet_forwarding():
    sim = Simulator()
    net = build_clos(
        sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=2
    )
    src, dst = "h0_0_0", "h1_1_0"
    links = net.path_links(src, dst, flow_id=3)
    # Cross-pod: uplink, ToR->leaf, leaf->leaf', leaf'->ToR', downlink.
    assert len(links) == 5
    assert links[0] is net.hosts[src].link
    assert links[-1].dst is net.hosts[dst]
    # The walk uses the same ECMP pick the switches would.
    tor = links[0].dst
    ports = tor.routes[dst]
    expected = ports[3 % len(ports)] if len(ports) > 1 else ports[0]
    assert links[1] is tor.out_link(expected)
    # Same-pod stays under the pod's leaves (3 hops: up, across, down).
    assert len(net.path_links("h0_0_0", "h0_1_0")) <= 4
    with pytest.raises(KeyError):
        net.path_links("nope", dst)
    with pytest.raises(KeyError):
        net.path_links(src, "nope")
