"""NIC: TXQ accounting, pacing, CNP generation, reassembly."""

import pytest

from repro.net.nic import NICConfig
from repro.net.dcqcn import DCQCNConfig
from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS


def pair(nic_config=None):
    sim = Simulator()
    net = build_star(sim, ["a", "b"], nic_config=nic_config)
    return sim, net


def test_nic_config_validation():
    with pytest.raises(ValueError):
        NICConfig(mtu_bytes=0)
    with pytest.raises(ValueError):
        NICConfig(txq_capacity_bytes=0)
    with pytest.raises(ValueError):
        NICConfig(cnp_interval_ns=0)
    with pytest.raises(ValueError):
        NICConfig(max_link_backlog_packets=0)


def test_message_segmentation_and_reassembly():
    sim, net = pair(NICConfig(mtu_bytes=1000))
    got = []
    net.hosts["b"].endpoint = lambda p, src, size: got.append((p, src, size))
    net.hosts["a"].send_message("b", 5500, payload="tail")
    sim.run()
    # Delivered once, with the payload carried on the last segment.
    assert got == [("tail", "a", 5500)]
    assert net.hosts["b"].bytes_received == 5500


def test_txq_capacity_rejects_when_full():
    # Pacing at 0.1 Gbps: only the first MTU departs synchronously, the
    # rest waits in the TXQ so capacity accounting is observable.
    slow = DCQCNConfig(line_rate_gbps=0.1, min_rate_gbps=0.05)
    sim, net = pair(NICConfig(txq_capacity_bytes=10_000, dcqcn=slow))
    a = net.hosts["a"]
    assert a.send_message("b", 9_000)
    used_after_first_segment = 9_000 - 4096
    assert a.txq_free_bytes == 10_000 - used_after_first_segment
    assert not a.send_message("b", 6_000)  # would exceed capacity
    assert a.send_message("b", 5_000)


def test_txq_drains_as_segments_leave():
    sim, net = pair(NICConfig(txq_capacity_bytes=10_000))
    a = net.hosts["a"]
    a.send_message("b", 10_000)
    sim.run()
    assert a.txq_free_bytes == 10_000


def test_txq_drain_listener_fires():
    sim, net = pair()
    fired = []
    a = net.hosts["a"]
    a.txq_drain_listeners.append(lambda: fired.append(sim.now))
    a.send_message("b", 8192)
    sim.run()
    assert fired  # at least one drain notification


def test_flow_created_per_destination():
    sim, net = pair()
    a = net.hosts["a"]
    a.send_message("b", 100)
    a.send_message("b", 100)
    assert len(a.flows) == 1
    assert "b" in a.flows


def test_pacing_respects_flow_rate():
    # Flow rate limited to 1 Gbps while the link runs at 40.
    dcqcn = DCQCNConfig(line_rate_gbps=1.0, min_rate_gbps=0.1)
    sim, net = pair(NICConfig(dcqcn=dcqcn))
    got = []
    net.hosts["b"].endpoint = lambda p, src, size: got.append(sim.now)
    net.hosts["a"].send_message("b", 125_000)  # ~1 ms at 1 Gbps
    sim.run()
    # 31 segments; 30 pacing gaps of 4096 B / 0.125 B-per-ns each.
    assert got[0] >= 30 * 32_768


def test_send_ack_bypasses_txq():
    sim, net = pair(NICConfig(txq_capacity_bytes=1000))
    a = net.hosts["a"]
    a.send_message("b", 1000)  # TXQ now full
    got = []
    net.hosts["b"].endpoint = lambda p, src, size: got.append(p)
    a.send_ack("b", payload="ack!")
    sim.run()
    assert "ack!" in got


def test_cnp_generated_for_marked_packets_and_rate_limited():
    sim, net = pair(NICConfig(cnp_interval_ns=50_000))
    a, b = net.hosts["a"], net.hosts["b"]
    a.send_message("b", 40_000)
    sim.run()
    # Manually mark incoming data by replaying: send several marked
    # packets through b's receive path within one CNP interval.
    from repro.net.packet import Packet, PacketKind

    flow = a.flows["b"]
    for _ in range(5):
        pkt = Packet(
            kind=PacketKind.DATA, src="a", dst="b", size_bytes=1000,
            flow_id=flow.id, ecn_marked=True, message_id=999_999, message_bytes=10**9,
        )
        b.receive(pkt, 0)
    # Deliver the CNP but stop before DCQCN's recovery timers restore
    # the line rate.
    sim.run(until=sim.now + 10_000)
    assert len(b._last_cnp_ns) == 1
    assert flow.rate_control.cnp_count == 1
    assert flow.rate_control.current_rate_gbps < 40.0


def test_cnp_received_is_logged_at_sender_nic():
    sim, net = pair()
    a, b = net.hosts["a"], net.hosts["b"]
    from repro.net.packet import Packet, PacketKind

    a.send_message("b", 10_000)
    sim.run()
    flow = a.flows["b"]
    marked = Packet(
        kind=PacketKind.DATA, src="a", dst="b", size_bytes=1000,
        flow_id=flow.id, ecn_marked=True, message_id=888, message_bytes=10**9,
    )
    b.receive(marked, 0)
    sim.run()
    assert len(a.cnp_log) == 1  # the CNP traveled back to a


def test_send_message_validation():
    sim, net = pair()
    with pytest.raises(ValueError):
        net.hosts["a"].send_message("b", 0)


def test_messages_delivered_counter():
    sim, net = pair()
    net.hosts["a"].send_message("b", 100)
    net.hosts["a"].send_message("b", 100)
    sim.run()
    assert net.hosts["b"].messages_delivered == 2


def _data(src, dst, *, size, message_id, message_bytes, last=False):
    from repro.net.packet import Packet, PacketKind

    return Packet(
        kind=PacketKind.DATA, src=src, dst=dst, size_bytes=size,
        message_id=message_id, message_bytes=message_bytes, last_of_message=last,
    )


def test_resent_message_id_does_not_leak_reassembly_state():
    # A message id arrives partially (no last segment), then the message
    # is re-sent as a single packet carrying ``last_of_message``.  Before
    # the fix, delivery was keyed on byte-completeness alone: the lone
    # re-sent packet (1000 of 3000 accumulated... plus the stale 1000)
    # never summed to ``message_bytes``, so nothing was delivered and the
    # partial entry for id 7 leaked forever.
    sim, net = pair()
    b = net.hosts["b"]
    b.receive(_data("a", "b", size=1000, message_id=7, message_bytes=3000), 0)
    assert b.reassembly_pending == 1
    b.receive(_data("a", "b", size=1000, message_id=7, message_bytes=3000, last=True), 0)
    assert b.messages_delivered == 1
    assert b.reassembly_pending == 0  # nothing left behind


def test_last_of_message_always_clears_partial_state():
    # Even a short re-send (fewer bytes than message_bytes) must clear
    # the pending entry once its last segment arrives.
    sim, net = pair()
    b = net.hosts["b"]
    b.receive(_data("a", "b", size=500, message_id=3, message_bytes=9000), 0)
    b.receive(_data("a", "b", size=500, message_id=3, message_bytes=9000, last=True), 0)
    assert b.messages_delivered == 1
    assert b.reassembly_pending == 0


def test_reassembly_high_water_counts_concurrent_partials():
    sim, net = pair()
    b = net.hosts["b"]
    for mid in range(4):
        b.receive(_data("a", "b", size=100, message_id=mid, message_bytes=1000), 0)
    assert b.reassembly_pending == 4
    assert b.reassembly_high_water == 4
    for mid in range(4):
        b.receive(_data("a", "b", size=900, message_id=mid, message_bytes=1000, last=True), 0)
    assert b.reassembly_pending == 0
    assert b.reassembly_high_water == 4  # high-water latches the peak
