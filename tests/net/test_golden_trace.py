"""Golden dispatch-trace test: the optimised engine is bit-identical.

The golden file was recorded from the *pre-optimisation* engine (the
``order=True`` dataclass heap, per-packet link closures, and real DCQCN
alpha-decay timer events) running the standard in-cast cell from
:mod:`repro.profiling.bench` with ``trace=True``.  This test replays the
same cell on the current engine and asserts the full ``(time, callback)``
dispatch log — and therefore every simulation output downstream of it —
is unchanged.

Two normalisations make the comparison survive the refactor without
weakening it:

* callback *names* are mapped to stable tags (the link's per-packet
  closures became bound methods; same dispatch, new ``__qualname__``);
* ``DCQCNRateControl._alpha_decay`` dispatches are dropped: alpha decay
  is now evaluated lazily from elapsed time instead of via scheduled
  events.  Those events only ever mutated the (sender-private) alpha
  estimate, never packet timing, so removing them cannot reorder
  anything else — which is exactly what the remaining log proves.

The golden file stores a SHA-256 of the canonical normalised log plus
per-tag counts, head/tail excerpts, and the run's externally visible
outputs, so a mismatch pinpoints *which* callback class diverged.

Re-baselining policy: the golden file may only be regenerated together
with a written justification here, and only when the run's ``outputs``
block is byte-identical before and after (or the behaviour change is
itself the point of the PR and is called out as such).

* **v2 (2026-08, batched dispatch + rate table).**  Outputs identical
  to v1 to the last float bit.  Two bookkeeping shifts: the per-flow
  DCQCN increase timers became one shared ``RateTable._tick`` event
  (same 14 dispatches at the same instants — normalised above), and
  ``Flow.pump`` wake-ups changed from cancel-and-reschedule to
  fire-and-check, so formerly-cancelled wake-ups now dispatch as cheap
  no-ops (237 -> 491 pump entries; ``link.finish``/``link.deliver``
  counts and times unchanged, proving packet timing did not move).

Regenerate (only when intentionally changing simulation behaviour)::

    PYTHONPATH=src python tests/net/test_golden_trace.py --regen
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.profiling.bench import incast_outputs, run_incast_cell

GOLDEN_PATH = Path(__file__).parent / "golden" / "incast_trace.json"

#: Scenario parameters — fixed forever for this golden file.
CELL = dict(n_senders=3, duration_ns=600_000, message_bytes=32 * 1024)

#: Callback-qualname normalisation: pre- and post-refactor names of the
#: same dispatch map to one stable tag.
NORMALIZE = {
    # Link: per-packet closures (old) -> bound methods (new).
    "Link._try_start.<locals>.finish": "link.finish",
    "Link._try_start.<locals>.finish.<locals>.<lambda>": "link.deliver",
    "Link._finish": "link.finish",
    "Link._deliver": "link.deliver",
    # DCQCN rate-increase timer keeps firing as a real event; the
    # per-flow events became one shared RateTable tick (same instants,
    # same count — the table wakes at min over per-row deadlines).
    "DCQCNRateControl._timer_tick": "dcqcn.timer_tick",
    "RateTable._tick": "dcqcn.timer_tick",
}

#: Dispatches with no externally visible effect, removed by the lazy-
#: alpha optimisation (see module docstring).
DROP = {"DCQCNRateControl._alpha_decay"}


def normalized_log(dispatch_log: list[tuple[int, str]]) -> list[tuple[int, str]]:
    out = []
    for t, name in dispatch_log:
        if name in DROP:
            continue
        out.append((t, NORMALIZE.get(name, name)))
    return out


def capture() -> dict:
    """Run the golden cell and summarise its normalised dispatch log."""
    _, sim, net = run_incast_cell(trace=True, **CELL)
    log = normalized_log(sim.dispatch_log)
    canonical = "\n".join(f"{t} {name}" for t, name in log)
    counts: dict[str, int] = {}
    for _, name in log:
        counts[name] = counts.get(name, 0) + 1
    return {
        "cell": CELL,
        "sha256": hashlib.sha256(canonical.encode()).hexdigest(),
        "n_events": len(log),
        "per_tag_counts": dict(sorted(counts.items())),
        "first_50": [[t, n] for t, n in log[:50]],
        "last_50": [[t, n] for t, n in log[-50:]],
        "sim_end_ns": sim.now,
        "outputs": incast_outputs(net),
    }


def test_incast_dispatch_trace_matches_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    got = capture()

    # Most diagnostic comparisons first, strongest (the hash) last.
    assert got["cell"] == golden["cell"], "scenario drifted; see module docstring"
    assert got["outputs"] == golden["outputs"]
    assert got["per_tag_counts"] == golden["per_tag_counts"]
    assert got["n_events"] == golden["n_events"]
    assert got["first_50"] == golden["first_50"]
    assert got["last_50"] == golden["last_50"]
    assert got["sha256"] == golden["sha256"]


def test_incast_trace_is_deterministic_across_runs():
    """Two fresh runs of the cell produce byte-identical traces."""
    a = capture()
    b = capture()
    assert a == b


def test_dual_fidelity_off_is_byte_identical_to_golden():
    """Explicit burst_segments=1 + a withdrawn fluid load == the v2 trace.

    The dual-fidelity engine must be invisible when off: pumping with
    ``burst_segments=1`` takes the classic scalar path, and setting a
    fluid load on every link then clearing it must restore the pristine
    serialisation constant *exactly* (``set_fluid_load(0)`` re-assigns
    the original float rather than recomputing it), so the dispatch
    trace stays byte-identical to the v2 golden.
    """
    from repro.net.nic import NICConfig
    from repro.profiling.bench import build_incast_cell

    golden = json.loads(GOLDEN_PATH.read_text())
    sim, net = build_incast_cell(
        trace=True, nic_config=NICConfig(burst_segments=1), **CELL
    )
    for link in net.iter_links():
        link.set_fluid_load(0.37 * link._bytes_per_ns)
        link.set_fluid_load(0.0)
    sim.run(until=CELL["duration_ns"] + 50_000)
    log = normalized_log(sim.dispatch_log)
    canonical = "\n".join(f"{t} {name}" for t, name in log)
    assert len(log) == golden["n_events"]
    assert hashlib.sha256(canonical.encode()).hexdigest() == golden["sha256"]
    assert incast_outputs(net) == golden["outputs"]


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to overwrite the golden file")
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    data = capture()
    GOLDEN_PATH.write_text(json.dumps(data, indent=1) + "\n")
    print(
        f"wrote {GOLDEN_PATH}: {data['n_events']} events, "
        f"sha256={data['sha256'][:16]}..."
    )
