"""Link serialization, ordering, and PFC pause tests."""

import pytest

from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator


class Sink:
    def __init__(self, sim, name="sink"):
        self.sim = sim
        self.name = name
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((self.sim.now, packet, in_port))


def make_link(rate=40.0, delay=1000):
    sim = Simulator()
    sink = Sink(sim)
    link = Link(sim, rate_gbps=rate, delay_ns=delay, dst=sink, dst_port=3)
    return sim, sink, link


def data(size=4096, src="a", dst="sink"):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, size_bytes=size)


def test_delivery_time_is_serialization_plus_delay():
    sim, sink, link = make_link(rate=40.0, delay=1000)
    link.send(data(4096))
    sim.run()
    # 4096 B at 5 B/ns = 819 ns + 1000 ns propagation.
    t, pkt, port = sink.received[0]
    assert t == 819 + 1000
    assert port == 3


def test_fifo_order_and_pipelining():
    sim, sink, link = make_link(rate=40.0, delay=1000)
    link.send(data(4096))
    link.send(data(4096))
    sim.run()
    t1, t2 = sink.received[0][0], sink.received[1][0]
    assert t2 - t1 == 819  # second waits one serialization, shares the wire


def test_control_packets_jump_queue():
    sim, sink, link = make_link()
    link.send(data(4096))
    link.send(data(4096))
    cnp = Packet(kind=PacketKind.CNP, src="a", dst="sink", size_bytes=64)
    link.send(cnp)
    sim.run()
    kinds = [p.kind for _, p, _ in sink.received]
    # First data was already serializing; the CNP passes the queued data.
    assert kinds == [PacketKind.DATA, PacketKind.CNP, PacketKind.DATA]


def test_pause_stops_data_but_not_control():
    sim, sink, link = make_link()
    link.pause()
    link.send(data(4096))
    link.send(Packet(kind=PacketKind.CNP, src="a", dst="sink", size_bytes=64))
    sim.run()
    kinds = [p.kind for _, p, _ in sink.received]
    assert kinds == [PacketKind.CNP]
    link.resume()
    sim.run()
    assert len(sink.received) == 2


def test_pause_mid_stream_then_resume():
    sim, sink, link = make_link()
    link.send(data(4096))
    sim.run()
    link.pause()
    link.send(data(4096))
    sim.run()
    assert len(sink.received) == 1
    link.resume()
    sim.run()
    assert len(sink.received) == 2


def test_queue_accounting():
    sim, sink, link = make_link()
    link.send(data(4096))
    link.send(data(4096))
    link.send(data(4096))
    # One is serializing, two queued.
    assert link.queued_packets == 2
    assert link.queued_bytes == 2 * 4096
    sim.run()
    assert link.queued_packets == 0
    assert link.queued_bytes == 0
    assert link.bytes_sent == 3 * 4096
    assert link.packets_sent == 3


def test_on_depart_hook():
    sim, sink, link = make_link()
    departed = []
    link.on_depart = lambda pkt: departed.append(pkt.size_bytes)
    link.send(data(1000))
    sim.run()
    assert departed == [1000]


def test_validation():
    sim = Simulator()
    sink = Sink(sim)
    with pytest.raises(ValueError):
        Link(sim, rate_gbps=0, delay_ns=0, dst=sink, dst_port=0)
    with pytest.raises(ValueError):
        Link(sim, rate_gbps=1, delay_ns=-1, dst=sink, dst_port=0)
    with pytest.raises(ValueError):
        Packet(kind=PacketKind.DATA, src="a", dst="b", size_bytes=0)
