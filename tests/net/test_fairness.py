"""DCQCN system-level behavior: fairness and bottleneck tracking."""

import pytest

from repro.net.topology import build_star
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS


def incast(n_senders, msg_bytes=64 * 1024, gap_ns=10_000, run_ms=8):
    """n senders blast one receiver; returns (net, per-sender goodput)."""
    sim = Simulator()
    names = ["dst"] + [f"s{i}" for i in range(n_senders)]
    net = build_star(sim, names)
    received = {f"s{i}": 0 for i in range(n_senders)}

    def endpoint(payload, src, size):
        received[src] += size

    net.hosts["dst"].endpoint = endpoint

    def make_feeder(name):
        nic = net.hosts[name]

        def feed():
            nic.send_message("dst", msg_bytes)
            sim.schedule(gap_ns, feed)

        return feed

    for i in range(n_senders):
        sim.schedule_at(0, make_feeder(f"s{i}"))
    sim.run(until=run_ms * MS)
    # Goodput over the second half (past convergence).
    return net, received, run_ms


def test_two_flow_fairness():
    net, received, run_ms = incast(2)
    rates = [received[s] / (run_ms * MS) / GBPS for s in received]
    # Combined goodput near the 40 Gbps bottleneck...
    assert sum(rates) == pytest.approx(40.0, rel=0.25)
    # ...split roughly fairly.
    assert min(rates) / max(rates) > 0.6


def test_four_flow_fairness_and_bottleneck():
    net, received, run_ms = incast(4)
    rates = sorted(received[s] / (run_ms * MS) / GBPS for s in received)
    assert sum(rates) == pytest.approx(40.0, rel=0.3)
    assert rates[0] / rates[-1] > 0.45


def test_congestion_control_keeps_queues_bounded():
    net, received, _ = incast(3)
    sw = net.switches["sw0"]
    # ECN-based control holds the buffer far below the PFC threshold in
    # steady state (no drops, few or no pauses).
    assert sw.packets_dropped == 0
    assert sw._buffered_bytes < sw.config.buffer_bytes


def test_single_flow_reaches_line_rate():
    net, received, run_ms = incast(1)
    rate = received["s0"] / (run_ms * MS) / GBPS
    # One uncongested flow delivers most of the 40 Gbps (message gaps
    # and delivery delay cost a little).
    assert rate > 30.0
    # And its DCQCN state was never cut below half line rate for long:
    flow = net.hosts["s0"].flows["dst"]
    assert flow.rate_control.current_rate_gbps > 20.0
