"""ECMP path selection: per-flow stability (the in-order guarantee)."""

from repro.net.packet import Packet, PacketKind
from repro.net.topology import build_clos
from repro.sim.engine import Simulator
from repro.sim.units import MS


def test_flow_packets_stay_on_one_path():
    """All packets of one flow cross the same leaf (no reordering)."""
    sim = Simulator()
    net = build_clos(sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=2)
    src, dst = "h0_0_0", "h1_1_0"
    leaf_counts = {name: 0 for name in net.switches if name.startswith("leaf")}
    for name in leaf_counts:
        sw = net.switches[name]
        original = sw.receive

        def counting(packet, in_port, sw_name=name, original=original):
            if packet.kind is PacketKind.DATA and packet.dst == dst:
                leaf_counts[sw_name] += 1
            original(packet, in_port)

        sw.receive = counting

    for _ in range(20):
        net.hosts[src].send_message(dst, 4096)
    sim.run(until=2 * MS)
    used = [n for n, c in leaf_counts.items() if c > 0]
    # The flow hashes onto exactly one leaf per pod layer crossing.
    pod0 = [n for n in used if n.startswith("leaf0")]
    pod1 = [n for n in used if n.startswith("leaf1")]
    assert len(pod0) == 1
    assert len(pod1) == 1


def test_different_flows_can_take_different_paths():
    """Across many flows, ECMP spreads load over the parallel leaves."""
    sim = Simulator()
    net = build_clos(sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=4)
    tor = net.switches["tor0_0"]
    dst = "h1_0_0"
    ports = set()
    for flow_id in range(32):
        pkt = Packet(
            kind=PacketKind.DATA, src="h0_0_0", dst=dst, size_bytes=64,
            flow_id=flow_id, message_id=flow_id, message_bytes=64,
        )
        candidates = tor.routes[dst]
        ports.add(candidates[pkt.flow_id % len(candidates)])
    assert len(ports) == 2  # both uplinks used across the flow population


def test_delivery_in_order_within_flow():
    sim = Simulator()
    net = build_clos(sim, n_pods=2, leaves_per_pod=2, tors_per_pod=2, hosts_per_tor=2)
    src, dst = "h0_0_0", "h1_0_1"
    order = []
    net.hosts[dst].endpoint = lambda p, s, size: order.append(p)
    for i in range(15):
        net.hosts[src].send_message(dst, 4096, payload=i)
    sim.run(until=2 * MS)
    assert order == sorted(order)
    assert len(order) == 15
