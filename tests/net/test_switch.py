"""Switch forwarding, ECN marking, and PFC tests."""

import pytest

from repro.net.switch import SwitchConfig
from repro.net.packet import Packet, PacketKind
from repro.net.topology import Network, build_star
from repro.sim.engine import Simulator
from repro.sim.units import MS


def test_switch_config_validation():
    with pytest.raises(ValueError):
        SwitchConfig(ecn_kmin_bytes=0)
    with pytest.raises(ValueError):
        SwitchConfig(ecn_kmin_bytes=100, ecn_kmax_bytes=50)
    with pytest.raises(ValueError):
        SwitchConfig(ecn_pmax=0.0)
    with pytest.raises(ValueError):
        SwitchConfig(pfc_xon_bytes=100, pfc_xoff_bytes=50)
    with pytest.raises(ValueError):
        SwitchConfig(buffer_bytes=1000, pfc_xoff_bytes=2000)


def test_forwarding_through_star():
    sim = Simulator()
    net = build_star(sim, ["a", "b"])
    got = []
    net.hosts["b"].endpoint = lambda p, src, size: got.append((src, size))
    net.hosts["a"].send_message("b", 10_000, payload=None)
    sim.run()
    assert got == [("a", 10_000)]
    assert net.switches["sw0"].packets_forwarded > 0


def test_unroutable_destination_raises():
    sim = Simulator()
    net = build_star(sim, ["a", "b"])
    sw = net.switches["sw0"]
    pkt = Packet(kind=PacketKind.DATA, src="a", dst="nowhere", size_bytes=64)
    with pytest.raises(RuntimeError, match="no route"):
        sw.receive(pkt, 0)


def test_ecn_marks_under_sustained_overload():
    sim = Simulator()
    # Two senders at full rate into one receiver: egress queue builds.
    net = build_star(sim, ["dst", "s1", "s2"])
    for name in ("s1", "s2"):
        host = net.hosts[name]

        def feeder(h=host):
            h.send_message("dst", 64 * 1024)
            sim.schedule(10_000, feeder)  # ~52 Gbps offered each

        feeder()
    sim.run(until=3 * MS)
    assert net.switches["sw0"].ecn_marks > 0


def test_no_ecn_marks_when_underloaded():
    sim = Simulator()
    net = build_star(sim, ["dst", "s1"])
    host = net.hosts["s1"]

    def feeder():
        host.send_message("dst", 4096)
        sim.schedule(100_000, feeder)  # ~0.3 Gbps

    feeder()
    sim.run(until=2 * MS)
    assert net.switches["sw0"].ecn_marks == 0


def test_pfc_pause_fires_when_ingress_backs_up():
    sim = Simulator()
    # Small PFC thresholds so the test triggers quickly; receiver link
    # is slower than the sender's, so the switch buffers.
    cfg = SwitchConfig(
        ecn_kmin_bytes=10**9,  # disable ECN so only PFC acts
        ecn_kmax_bytes=2 * 10**9,
        pfc_xoff_bytes=64 * 1024,
        pfc_xon_bytes=32 * 1024,
        buffer_bytes=10**9,
    )
    net = Network(sim)
    net.add_switch("sw", cfg)
    net.add_host("fast")
    net.add_host("slow")
    net.connect("fast", "sw", rate_gbps=40.0)
    net.connect("slow", "sw", rate_gbps=1.0)
    net.build_routes()
    host = net.hosts["fast"]

    def feeder():
        host.send_message("slow", 32 * 1024)
        sim.schedule(10_000, feeder)

    feeder()
    sim.run(until=2 * MS)
    sw = net.switches["sw"]
    assert sw.pauses_sent > 0
    assert len(net.hosts["fast"].pfc_pause_log) > 0


def test_buffer_overflow_drops():
    sim = Simulator()
    cfg = SwitchConfig(
        ecn_kmin_bytes=10**8,
        ecn_kmax_bytes=2 * 10**8,
        pfc_xoff_bytes=256 * 1024,
        pfc_xon_bytes=128 * 1024,
        buffer_bytes=300 * 1024,
    )
    net = Network(sim)
    net.add_switch("sw", cfg)
    net.add_host("fast")
    net.add_host("slow")
    net.connect("fast", "sw", rate_gbps=100.0)
    net.connect("slow", "sw", rate_gbps=0.5)
    net.build_routes()
    host = net.hosts["fast"]

    # Ignore PFC by flooding faster than pauses propagate.
    def feeder():
        host.send_message("slow", 64 * 1024)
        sim.schedule(4_000, feeder)

    feeder()
    sim.run(until=2 * MS)
    # Either PFC protected the buffer or drops occurred — but occupancy
    # never exceeded it (drops counted when it would).
    sw = net.switches["sw"]
    assert sw._buffered_bytes <= cfg.buffer_bytes
