"""Shared fixtures: fast device configs and pre-trained models.

The Table II presets have ms-scale saturated latencies — fine for
benchmarks, too slow for unit tests.  ``fast_ssd`` scales every latency
down ~30× so a full saturation experiment fits in a few ms of simulated
time and well under a second of wall time.
"""

from __future__ import annotations

import pytest

from repro.core.sampling import SamplingPlan, collect_training_set
from repro.core.tpm import ThroughputPredictionModel
from repro.sim.units import KIB, MIB, US
from repro.ssd.config import SSDConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace


FAST_SSD = SSDConfig(
    name="fast-test",
    queue_depth=16,
    write_cache_bytes=1 * MIB,
    cmt_bytes=256 * KIB,
    page_bytes=4 * KIB,
    read_latency_ns=2 * US,
    write_latency_ns=8 * US,
    n_channels=2,
    chips_per_channel=2,
    channel_bw_bytes_per_ns=0.8,
    # 4 chips × 256 blocks × 64 pages × 4 KiB = 256 MiB physical — roomy
    # enough that sustained test write streams never exhaust free blocks.
    blocks_per_chip=256,
    pages_per_block=64,
    erase_latency_ns=40 * US,
)


@pytest.fixture
def fast_ssd() -> SSDConfig:
    return FAST_SSD


@pytest.fixture
def small_trace():
    """Balanced 200r+200w micro trace, saturating for FAST_SSD."""
    wl = MicroWorkloadConfig(mean_interarrival_ns=3_000, mean_size_bytes=8 * KIB)
    return generate_micro_trace(wl, n_reads=200, n_writes=200, seed=7)


def _make_tiny_tpm() -> ThroughputPredictionModel:
    plan = SamplingPlan(
        interarrival_ns=(2_000, 6_000),
        size_bytes=(4 * KIB, 12 * KIB),
        # Contiguous low ratios keep the Algorithm-1 walk's convergence
        # check meaningful (sparse grids create flat prediction steps).
        weight_ratios=(1, 2, 3, 4, 6, 8),
        read_write_mixes=(1.0,),
        duration_ns=4_000_000,
        min_requests=100,
    )
    training = collect_training_set(FAST_SSD, plan)
    return ThroughputPredictionModel().fit(training)


_TINY_TPM = None


@pytest.fixture
def tiny_tpm() -> ThroughputPredictionModel:
    """A TPM fitted on FAST_SSD; built once per test session."""
    global _TINY_TPM
    if _TINY_TPM is None:
        _TINY_TPM = _make_tiny_tpm()
    return _TINY_TPM
