"""Process-pool sweep executor: ordering, determinism, fallback, retry."""

import time

import pytest

from repro.parallel import (
    SweepCellError,
    SweepReport,
    cell_seed,
    resolve_workers,
    run_cells,
)

# Cell functions must be module-level so the pool path can pickle them.


def square_cell(x):
    return {"v": x * x, "sim_events": x}


def slow_cell(x):
    time.sleep(0.8)
    return {"v": x}


def failing_cell(x):
    raise ValueError(f"cell {x} always fails")


def odd_failing_cell(x):
    if x % 2:
        raise ValueError(f"cell {x} fails")
    return {"v": x * x, "sim_events": x}


_FLAKY_CALLS = {"n": 0}


def flaky_cell(x):
    # Serial path only (module global would not propagate from a pool
    # worker): fails on the first attempt, succeeds on the retry.
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] == 1:
        raise RuntimeError("transient")
    return {"v": x}


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(42, 7) == cell_seed(42, 7)

    def test_varies_with_index_and_root(self):
        seeds = {cell_seed(0, i) for i in range(100)}
        assert len(seeds) == 100
        assert cell_seed(1, 0) != cell_seed(2, 0)

    def test_range_and_validation(self):
        assert 0 <= cell_seed(123456789, 987654) < 2**31
        with pytest.raises(ValueError):
            cell_seed(0, -1)


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_auto(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSerial:
    def test_ordered_results(self):
        report = run_cells(square_cell, [(i,) for i in range(6)], workers=1)
        assert [r["v"] for r in report.results] == [i * i for i in range(6)]
        assert report.mode == "serial"
        assert report.n_cells == 6

    def test_perf_counters(self):
        report = run_cells(square_cell, [(i,) for i in range(4)], workers=1)
        assert report.sim_events == 0 + 1 + 2 + 3
        assert report.cell_wall_s <= report.wall_s
        assert 0.0 <= report.utilization() <= 1.0
        d = report.perf_dict()
        assert d["n_cells"] == 4 and d["workers"] == 1

    def test_progress_in_order(self):
        calls = []
        run_cells(
            square_cell,
            [(i,) for i in range(3)],
            workers=1,
            progress=lambda d, t: calls.append((d, t)),
        )
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_retry_then_success(self):
        _FLAKY_CALLS["n"] = 0
        report = run_cells(flaky_cell, [(5,)], workers=1, retries=1)
        assert report.results[0] == {"v": 5}
        assert report.cell_stats[0].attempts == 2

    def test_exhausted_retries_raise(self):
        with pytest.raises(SweepCellError) as excinfo:
            run_cells(failing_cell, [(0,), (1,)], workers=1, retries=2)
        assert excinfo.value.index == 0
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.cause, ValueError)

    def test_empty_sweep(self):
        report = run_cells(square_cell, [], workers=4)
        assert report.results == []
        assert report.n_cells == 0


class TestPool:
    def test_matches_serial_bit_for_bit(self):
        cells = [(i,) for i in range(8)]
        serial = run_cells(square_cell, cells, workers=1)
        pooled = run_cells(square_cell, cells, workers=2)
        assert pooled.results == serial.results
        assert pooled.mode in ("pool", "serial")  # serial if pool unavailable

    def test_cell_failure_retried_serially(self):
        # A failing cell inside the pool is retried in-process; with the
        # failure deterministic it exhausts retries and aborts loudly.
        with pytest.raises(SweepCellError):
            run_cells(failing_cell, [(0,), (1,)], workers=2, retries=0)

    def test_timeout_falls_back_to_serial(self):
        report = run_cells(
            slow_cell, [(1,), (2,)], workers=2, timeout_s=0.05
        )
        # All results present despite the timed-out pool path.
        assert [r["v"] for r in report.results] == [1, 2]
        assert report.mode in ("pool+serial-fallback", "serial")

    def test_timeout_reaps_orphaned_workers(self):
        report = run_cells(
            slow_cell, [(1,), (2,), (3,)], workers=2, timeout_s=0.05
        )
        if report.mode == "serial":
            pytest.skip("process pool unavailable on this platform")
        # The abandoned pool's workers were still sleeping when the
        # timeout fired; they must be terminated, not orphaned.
        assert report.workers_reaped >= 1
        assert report.perf_dict()["workers_reaped"] == report.workers_reaped
        assert [r["v"] for r in report.results] == [1, 2, 3]

    def test_timeout_exhaustion_recorded_with_kind(self):
        # retries=0: the pool-side kill consumes the victim's whole
        # attempt budget, so record mode quarantines it as a timeout.
        report = run_cells(
            slow_cell, [(1,), (2,)], workers=2, timeout_s=0.05,
            retries=0, on_error="record",
        )
        if report.mode == "serial":
            pytest.skip("process pool unavailable on this platform")
        assert report.n_failed == 1
        victim = report.failures[0]
        assert victim.kind == "timeout"
        assert victim.attempts == 1
        assert report.results[victim.index] is None
        # The non-victim cell still completed via the serial fallback.
        other = 1 - victim.index
        assert report.results[other] == {"v": other + 1}

    def test_report_stats_cover_every_cell(self):
        report = run_cells(square_cell, [(i,) for i in range(5)], workers=3)
        assert sorted(s.index for s in report.cell_stats) == list(range(5))
        assert all(s.attempts >= 1 for s in report.cell_stats)


class TestRecordMode:
    def test_failures_recorded_not_raised(self):
        report = run_cells(
            odd_failing_cell, [(i,) for i in range(6)], workers=1,
            retries=1, on_error="record",
        )
        assert report.n_failed == 3
        assert [f.index for f in report.failures] == [1, 3, 5]
        for f in report.failures:
            assert f.attempts == 2  # 1 + retries
            assert "ValueError" in f.error and "fails" in f.error
        # Healthy cells still produced results; failed slots hold None.
        assert [r["v"] if r else None for r in report.results] == [
            0, None, 4, None, 16, None,
        ]
        assert {s.mode for s in report.cell_stats if s.index % 2} == {"failed"}

    def test_record_mode_on_pool_path(self):
        report = run_cells(
            odd_failing_cell, [(i,) for i in range(6)], workers=2,
            retries=0, on_error="record",
        )
        assert report.n_failed == 3
        assert sorted(s.index for s in report.cell_stats) == list(range(6))
        assert report.perf_dict()["n_failed"] == 3

    def test_default_still_raises(self):
        with pytest.raises(SweepCellError):
            run_cells(failing_cell, [(0,)], workers=1, retries=0)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_cells(square_cell, [(1,)], on_error="ignore")


def test_sweep_report_zero_division_guards():
    report = SweepReport(results=[], cell_stats=[], workers=0, wall_s=0.0, mode="serial")
    assert report.events_per_sec() == 0.0
    assert report.utilization() == 0.0


def test_cell_failure_default_kind_is_exception():
    report = run_cells(
        failing_cell, [(0,)], workers=1, retries=0, on_error="record"
    )
    assert report.failures[0].kind == "exception"
