"""Supervised sweeps: crash recovery, quarantine, checkpoint resume.

The determinism contract under test: a sweep whose worker is SIGKILLed
mid-cell (the OOM-killer case) recovers from the cell's last periodic
checkpoint and produces results identical to an uncrashed sweep.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import pytest

from repro.parallel import (
    SweepCellError,
    run_cells,
    run_cells_supervised,
)

CELL_ARGS = [(i,) for i in range(6)]


# -- module-level cell functions (workers fork/spawn these) -----------------

def square_cell(x):
    return {"v": x * x, "sim_events": x}


def square_cell_ckpt(x, checkpoint_dir=None):
    return {"v": x * x, "sim_events": x}


def sigkill_once_cell(x, checkpoint_dir=None):
    """SIGKILL the worker on cell 3's first attempt; succeed on retry."""
    if x == 3:
        marker = Path(checkpoint_dir) / "attempted"
        if not marker.exists():
            marker.write_text("1")
            os.kill(os.getpid(), signal.SIGKILL)
    return {"v": x * x, "sim_events": x}


def always_exit_cell(x, checkpoint_dir=None):
    os._exit(77)


def raising_cell(x):
    raise ValueError(f"cell {x} is bad")


def sleepy_cell(x):
    time.sleep(30.0)
    return x


def simulated_sweep_cell(n_senders, checkpoint_dir=None):
    """A real checkpointed simulation cell: resumes from its directory.

    Crashes itself partway through the *first* attempt (after at least
    one periodic checkpoint exists), so the retry genuinely restores
    mid-run state rather than re-running from zero.
    """
    from repro.profiling.bench import build_incast_cell, incast_outputs
    from repro.sim import checkpoint as ck

    cell = dict(n_senders=n_senders, duration_ns=600_000, message_bytes=32 * 1024)
    directory = Path(checkpoint_dir)
    resumed = ck.latest_checkpoint(directory) is not None
    sim, net = ck.resume_or_start(
        directory,
        lambda: build_incast_cell(trace=True, **cell),
        scenario=cell,
    )
    if not resumed:
        # First attempt: checkpoint a while, then die like an OOM kill.
        run = ck.run_with_checkpoints(
            sim, net, until=300_000, directory=directory, every=400, scenario=cell
        )
        assert len(run.checkpoints) >= 1
        os.kill(os.getpid(), signal.SIGKILL)
    start_events = sim.events_dispatched
    assert start_events > 0  # restored mid-run, not rebuilt from zero
    sim.run(until=650_000)
    outputs = incast_outputs(net)
    outputs["resumed_at_event"] = start_events
    return outputs


def uncrashed_sweep_cell(n_senders):
    from repro.profiling.bench import build_incast_cell, incast_outputs

    cell = dict(n_senders=n_senders, duration_ns=600_000, message_bytes=32 * 1024)
    sim, net = build_incast_cell(trace=True, **cell)
    sim.run(until=650_000)
    return incast_outputs(net)


# -- tests -----------------------------------------------------------------

def test_supervised_matches_pool_results():
    plain = run_cells(square_cell, CELL_ARGS, workers=2)
    supervised = run_cells_supervised(square_cell, CELL_ARGS, workers=2)
    assert supervised.results == plain.results
    assert supervised.failures == []
    assert supervised.workers_reaped == 0
    assert all(a.outcome == "ok" for a in supervised.attempts)


def test_sigkill_mid_cell_recovers(tmp_path):
    """Acceptance criterion: a SIGKILLed worker is detected, re-executed,
    and the sweep's results equal the uncrashed sweep's."""
    uncrashed = run_cells_supervised(
        square_cell_ckpt,
        CELL_ARGS,
        workers=3,
        heartbeat_s=0.5,
        retries=1,
        checkpoint_root=tmp_path / "clean",
    )
    crashed = run_cells_supervised(
        sigkill_once_cell,
        CELL_ARGS,
        workers=3,
        heartbeat_s=0.5,
        retries=1,
        checkpoint_root=tmp_path / "crashy",
    )
    assert crashed.results == uncrashed.results
    assert crashed.failures == []
    kills = [a for a in crashed.attempts if a.outcome == "crash"]
    assert len(kills) == 1
    assert kills[0].index == 3
    assert kills[0].exitcode == -signal.SIGKILL
    assert "signal 9" in kills[0].detail
    retry = [a for a in crashed.attempts if a.index == 3 and a.outcome == "ok"]
    assert retry and retry[0].attempt == 2


def test_persistent_crash_is_quarantined(tmp_path):
    report = run_cells_supervised(
        always_exit_cell,
        [(1,), (2,)],
        workers=2,
        heartbeat_s=0.3,
        retries=1,
        checkpoint_root=tmp_path,
    )
    assert report.results == [None, None]
    assert len(report.failures) == 2
    for failure in sorted(report.failures, key=lambda f: f.index):
        assert failure.kind == "crash"
        assert failure.attempts == 2
        assert "status 77" in failure.error


def test_worker_exception_is_kind_exception():
    report = run_cells_supervised(raising_cell, [(5,)], heartbeat_s=0.3, retries=0)
    assert len(report.failures) == 1
    assert report.failures[0].kind == "exception"
    assert "cell 5 is bad" in report.failures[0].error


def test_timeout_kills_and_records():
    t0 = time.perf_counter()
    report = run_cells_supervised(
        sleepy_cell, [(1,)], heartbeat_s=0.2, timeout_s=0.6, retries=0
    )
    wall = time.perf_counter() - t0
    assert wall < 10.0  # killed, not waited out
    assert report.workers_reaped >= 1
    assert len(report.failures) == 1
    assert report.failures[0].kind == "timeout"
    assert report.attempts[0].outcome == "timeout"


def test_on_error_raise():
    with pytest.raises(SweepCellError):
        run_cells_supervised(
            raising_cell, [(5,)], heartbeat_s=0.3, retries=0, on_error="raise"
        )
    with pytest.raises(ValueError):
        run_cells_supervised(square_cell, CELL_ARGS, on_error="explode")


def test_checkpoint_resume_after_sigkill_matches_uncrashed(tmp_path):
    """End-to-end: a real simulation cell crashes after checkpointing,
    the retry restores mid-run, and outputs equal the uncrashed run."""
    baseline = run_cells_supervised(
        uncrashed_sweep_cell, [(3,)], heartbeat_s=1.0, retries=0
    )
    assert baseline.failures == []
    crashed = run_cells_supervised(
        simulated_sweep_cell,
        [(3,)],
        heartbeat_s=1.0,
        retries=1,
        checkpoint_root=tmp_path,
    )
    assert crashed.failures == []
    (outputs,) = crashed.results
    resumed_at = outputs.pop("resumed_at_event")
    assert resumed_at > 0
    assert outputs == baseline.results[0]
    # The crash really happened and really restored from disk.
    assert [a.outcome for a in crashed.attempts if a.index == 0] == ["crash", "ok"]
    assert list((tmp_path / "cell-0").glob("ckpt-*.ckpt"))
