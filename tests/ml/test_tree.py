"""CART decision-tree regression tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


def step_data():
    X = np.linspace(0, 1, 100).reshape(-1, 1)
    y = (X.ravel() > 0.5).astype(float)
    return X, y


def test_learns_step_function_with_one_split():
    X, y = step_data()
    tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
    assert r2_score(y, tree.predict(X)) == pytest.approx(1.0)
    assert tree.depth() == 1
    assert tree.n_leaves() == 2


def test_full_tree_memorises():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 2))
    y = rng.normal(size=50)
    tree = DecisionTreeRegressor().fit(X, y)
    assert np.allclose(tree.predict(X), y)


def test_max_depth_limits_tree():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(200, 3))
    y = rng.normal(size=200)
    tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
    assert tree.depth() <= 3
    assert tree.n_leaves() <= 8


def test_min_samples_leaf_respected():
    X, y = step_data()
    tree = DecisionTreeRegressor(min_samples_leaf=30).fit(X, y)
    # With 100 points and min leaf 30, at most 3 leaves.
    assert tree.n_leaves() <= 3


def test_pure_node_stops_splitting():
    X = np.arange(10.0).reshape(-1, 1)
    y = np.zeros(10)
    tree = DecisionTreeRegressor().fit(X, y)
    assert tree.n_leaves() == 1


def test_constant_feature_never_split():
    X = np.ones((20, 1))
    y = np.arange(20.0)
    tree = DecisionTreeRegressor().fit(X, y)
    assert tree.n_leaves() == 1
    assert tree.predict(X)[0] == pytest.approx(y.mean())


def test_multioutput():
    X = np.linspace(0, 1, 60).reshape(-1, 1)
    y = np.column_stack([(X.ravel() > 0.3).astype(float), (X.ravel() > 0.7) * 2.0])
    tree = DecisionTreeRegressor().fit(X, y)
    pred = tree.predict(X)
    assert pred.shape == (60, 2)
    assert r2_score(y, pred) == pytest.approx(1.0)


def test_feature_importances_identify_relevant_feature():
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(300, 3))
    y = (X[:, 1] > 0.5).astype(float)  # only feature 1 matters
    tree = DecisionTreeRegressor(seed=0).fit(X, y)
    imp = tree.feature_importances_
    assert imp.shape == (3,)
    assert imp[1] > 0.9
    assert imp.sum() == pytest.approx(1.0)


def test_importances_zero_when_no_splits():
    X = np.ones((10, 2))
    y = np.zeros(10)
    tree = DecisionTreeRegressor().fit(X, y)
    assert np.all(tree.feature_importances_ == 0.0)


def test_max_features_subsampling_still_fits():
    rng = np.random.default_rng(3)
    X = rng.uniform(size=(200, 4))
    y = X[:, 0] + X[:, 3]
    tree = DecisionTreeRegressor(max_features=2, seed=1).fit(X, y)
    assert r2_score(y, tree.predict(X)) > 0.9


def test_validation():
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_depth=0)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_split=1)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_leaf=0)
    with pytest.raises(RuntimeError):
        DecisionTreeRegressor().predict(np.zeros((1, 1)))
    with pytest.raises(RuntimeError):
        _ = DecisionTreeRegressor().feature_importances_


def test_prediction_deterministic():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(100, 3))
    y = rng.normal(size=100)
    a = DecisionTreeRegressor(max_features=2, seed=9).fit(X, y).predict(X)
    b = DecisionTreeRegressor(max_features=2, seed=9).fit(X, y).predict(X)
    assert np.array_equal(a, b)


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=5, max_value=60), st.integers(min_value=0, max_value=10**6))
def test_predictions_within_target_range_property(n, seed):
    """Tree predictions are means of training targets: always in range."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = rng.uniform(-5, 5, size=n)
    tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
    pred = tree.predict(rng.normal(size=(20, 2)) * 10)
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9
