"""Random-forest regression tests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score


def friedman_like(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 4))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 20 * (X[:, 2] - 0.5) ** 2
    return X, y


def test_fits_nonlinear_function():
    X, y = friedman_like()
    model = RandomForestRegressor(30, seed=1).fit(X[:300], y[:300])
    assert r2_score(y[300:], model.predict(X[300:])) > 0.75


def test_forest_beats_or_matches_single_tree_out_of_sample():
    from repro.ml.tree import DecisionTreeRegressor

    X, y = friedman_like(seed=2)
    noise = np.random.default_rng(3).normal(0, 2.0, size=y.shape)
    y_noisy = y + noise
    tree = DecisionTreeRegressor(seed=0).fit(X[:300], y_noisy[:300])
    forest = RandomForestRegressor(40, seed=0).fit(X[:300], y_noisy[:300])
    tree_score = r2_score(y[300:], tree.predict(X[300:]))
    forest_score = r2_score(y[300:], forest.predict(X[300:]))
    assert forest_score >= tree_score - 0.02


def test_deterministic_with_seed():
    X, y = friedman_like(100)
    a = RandomForestRegressor(10, seed=5).fit(X, y).predict(X)
    b = RandomForestRegressor(10, seed=5).fit(X, y).predict(X)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    X, y = friedman_like(100)
    a = RandomForestRegressor(10, seed=5).fit(X, y).predict(X)
    b = RandomForestRegressor(10, seed=6).fit(X, y).predict(X)
    assert not np.array_equal(a, b)


def test_n_estimators_respected():
    X, y = friedman_like(50)
    model = RandomForestRegressor(7, seed=0).fit(X, y)
    assert len(model.trees_) == 7


def test_multioutput():
    X, y = friedman_like(100)
    Y = np.column_stack([y, -y])
    model = RandomForestRegressor(10, seed=0).fit(X, Y)
    pred = model.predict(X)
    assert pred.shape == (100, 2)
    assert np.allclose(pred[:, 0], -pred[:, 1])


def test_feature_importances_sum_to_one_and_rank():
    rng = np.random.default_rng(4)
    X = rng.uniform(size=(400, 3))
    y = 5.0 * X[:, 2] + 0.01 * rng.normal(size=400)
    model = RandomForestRegressor(20, seed=0).fit(X, y)
    imp = model.feature_importances_
    assert imp.sum() == pytest.approx(1.0)
    assert imp[2] == imp.max()


def test_no_bootstrap_mode():
    X, y = friedman_like(100)
    model = RandomForestRegressor(5, bootstrap=False, max_features=None, seed=0).fit(X, y)
    # Without bootstrap or feature sampling, all trees are identical full
    # trees: the forest memorises the training set.
    assert np.allclose(model.predict(X), y)


def test_predictions_within_target_range():
    X, y = friedman_like(150, seed=5)
    model = RandomForestRegressor(10, seed=0).fit(X, y)
    pred = model.predict(np.random.default_rng(6).uniform(size=(50, 4)) * 3)
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9


def test_validation():
    with pytest.raises(ValueError):
        RandomForestRegressor(0)
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict(np.zeros((1, 1)))
    with pytest.raises(RuntimeError):
        _ = RandomForestRegressor().feature_importances_
