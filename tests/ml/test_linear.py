"""Linear and polynomial regression tests."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression
from repro.ml.metrics import r2_score
from repro.ml.polynomial import PolynomialRegression, polynomial_features


class TestLinear:
    def test_recovers_exact_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 * X[:, 2] + 4.0
        model = LinearRegression().fit(X, y)
        assert r2_score(y, model.predict(X)) == pytest.approx(1.0, abs=1e-9)

    def test_multioutput(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = np.column_stack([X @ [1.0, 2.0], X @ [-1.0, 0.5] + 3.0])
        model = LinearRegression().fit(X, y)
        pred = model.predict(X)
        assert pred.shape == (50, 2)
        assert r2_score(y, pred) == pytest.approx(1.0, abs=1e-9)

    def test_single_output_returns_1d(self):
        X = np.arange(10.0).reshape(-1, 1)
        model = LinearRegression().fit(X, X.ravel())
        assert model.predict(X).ndim == 1

    def test_constant_feature_handled(self):
        """Zero-variance columns must not produce NaNs."""
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = 3.0 * X[:, 1] + 1.0
        model = LinearRegression().fit(X, y)
        assert np.isfinite(model.predict(X)).all()
        assert r2_score(y, model.predict(X)) == pytest.approx(1.0, abs=1e-9)

    def test_badly_scaled_features(self):
        """Nanosecond-scale and unit-scale features in one matrix."""
        rng = np.random.default_rng(2)
        X = np.column_stack([rng.uniform(1e4, 1e5, 80), rng.uniform(0, 1, 80)])
        y = 1e-4 * X[:, 0] + 5.0 * X[:, 1]
        model = LinearRegression().fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_predict_wrong_width_raises(self):
        model = LinearRegression().fit(np.zeros((5, 3)), np.zeros(5))
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 2)))

    def test_rejects_nan_input(self):
        X = np.zeros((4, 2))
        y = np.array([0.0, 1.0, np.nan, 2.0])
        with pytest.raises(ValueError):
            LinearRegression().fit(X, y)

    def test_1d_X_reshaped(self):
        X = np.arange(10.0)
        model = LinearRegression().fit(X, 2 * X)
        assert model.predict(np.array([20.0])) == pytest.approx(40.0)


class TestPolynomialFeatures:
    def test_degree_one_is_identity(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(polynomial_features(X, 1), X)

    def test_degree_two_column_count(self):
        # d features -> d + d(d+1)/2 columns.
        X = np.zeros((1, 3))
        assert polynomial_features(X, 2).shape[1] == 3 + 6

    def test_degree_two_values(self):
        X = np.array([[2.0, 3.0]])
        phi = polynomial_features(X, 2)
        # Order: x0, x1, x0², x0·x1, x1².
        assert phi.tolist() == [[2.0, 3.0, 4.0, 6.0, 9.0]]

    def test_validation(self):
        with pytest.raises(ValueError):
            polynomial_features(np.zeros((2, 2)), 0)
        with pytest.raises(ValueError):
            polynomial_features(np.zeros(3), 2)


class TestPolynomialRegression:
    def test_fits_quadratic_exactly(self):
        x = np.linspace(-2, 2, 40).reshape(-1, 1)
        y = 3.0 * x.ravel() ** 2 - x.ravel() + 1.0
        model = PolynomialRegression(degree=2).fit(x, y)
        assert r2_score(y, model.predict(x)) == pytest.approx(1.0, abs=1e-6)

    def test_captures_interaction_terms(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, size=(100, 2))
        y = X[:, 0] * X[:, 1]
        model = PolynomialRegression(degree=2).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_linear_beats_poly_extrapolation_noise(self):
        """Collinear expanded features stay solvable thanks to the ridge."""
        X = np.column_stack([np.arange(20.0), np.arange(20.0)])  # duplicated col
        y = X[:, 0] * 2.0
        model = PolynomialRegression(degree=2).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_multioutput(self):
        x = np.linspace(0, 1, 30).reshape(-1, 1)
        y = np.column_stack([x.ravel() ** 2, 1 - x.ravel()])
        model = PolynomialRegression(2).fit(x, y)
        assert model.predict(x).shape == (30, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialRegression(degree=0)
        with pytest.raises(ValueError):
            PolynomialRegression(ridge=-1.0)
        with pytest.raises(RuntimeError):
            PolynomialRegression().predict(np.zeros((1, 1)))
