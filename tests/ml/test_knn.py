"""K-nearest-neighbor regression tests."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsRegressor
from repro.ml.metrics import r2_score


def test_k1_memorises_training_points():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 2))
    y = rng.normal(size=30)
    model = KNeighborsRegressor(1).fit(X, y)
    assert np.allclose(model.predict(X), y)


def test_k_larger_than_n_uses_all():
    X = np.arange(4.0).reshape(-1, 1)
    y = np.array([1.0, 2.0, 3.0, 4.0])
    model = KNeighborsRegressor(100).fit(X, y)
    assert model.predict(np.array([[0.0]]))[0] == pytest.approx(y.mean())


def test_uniform_average_of_neighbors():
    X = np.array([[0.0], [1.0], [10.0]])
    y = np.array([0.0, 2.0, 100.0])
    model = KNeighborsRegressor(2).fit(X, y)
    # Query at 0.4: neighbors are 0.0 and 1.0.
    assert model.predict(np.array([[0.4]]))[0] == pytest.approx(1.0)


def test_distance_weighting_prefers_closer():
    X = np.array([[0.0], [1.0]])
    y = np.array([0.0, 10.0])
    uni = KNeighborsRegressor(2, weights="uniform").fit(X, y)
    dist = KNeighborsRegressor(2, weights="distance").fit(X, y)
    q = np.array([[0.1]])
    assert uni.predict(q)[0] == pytest.approx(5.0)
    assert dist.predict(q)[0] < 2.0  # dominated by the nearby 0.0 label


def test_exact_match_with_distance_weights():
    X = np.array([[0.0], [5.0]])
    y = np.array([1.0, 9.0])
    model = KNeighborsRegressor(2, weights="distance").fit(X, y)
    assert model.predict(np.array([[0.0]]))[0] == pytest.approx(1.0, abs=1e-6)


def test_smooth_function_accuracy():
    rng = np.random.default_rng(1)
    X = rng.uniform(-3, 3, size=(800, 1))
    y = np.sin(X.ravel())
    model = KNeighborsRegressor(5).fit(X[:600], y[:600])
    assert r2_score(y[600:], model.predict(X[600:])) > 0.98


def test_standardisation_makes_scales_comparable():
    """A feature in nanoseconds must not drown one in ratios."""
    rng = np.random.default_rng(2)
    big = rng.uniform(0, 1e6, 300)  # irrelevant
    small = rng.uniform(0, 1, 300)  # fully determines y
    X = np.column_stack([big, small])
    y = small * 10
    model = KNeighborsRegressor(3).fit(X[:200], y[:200])
    assert r2_score(y[200:], model.predict(X[200:])) > 0.5


def test_multioutput_shape():
    X = np.arange(10.0).reshape(-1, 1)
    y = np.column_stack([X.ravel(), -X.ravel()])
    model = KNeighborsRegressor(3).fit(X, y)
    assert model.predict(X).shape == (10, 2)


def test_validation():
    with pytest.raises(ValueError):
        KNeighborsRegressor(0)
    with pytest.raises(ValueError):
        KNeighborsRegressor(3, weights="triangle")
    with pytest.raises(RuntimeError):
        KNeighborsRegressor().predict(np.zeros((1, 1)))
