"""R² and MSE tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import mean_squared_error, r2_score


def test_perfect_prediction_is_one():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, y) == 1.0


def test_mean_prediction_is_zero():
    y = np.array([1.0, 2.0, 3.0])
    pred = np.full(3, 2.0)
    assert r2_score(y, pred) == pytest.approx(0.0)


def test_worse_than_mean_is_negative():
    y = np.array([1.0, 2.0, 3.0])
    pred = np.array([3.0, 2.0, 1.0])
    assert r2_score(y, pred) < 0.0


def test_known_value():
    y = np.array([0.0, 2.0])  # ss_tot = 2
    pred = np.array([0.0, 1.0])  # ss_res = 1
    assert r2_score(y, pred) == pytest.approx(0.5)


def test_multioutput_averages_uniformly():
    y = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
    pred = y.copy()
    pred[:, 1] = 20.0  # second column predicted by its mean -> 0
    assert r2_score(y, pred) == pytest.approx(0.5)


def test_constant_target_conventions():
    y = np.full(5, 3.0)
    assert r2_score(y, y) == 1.0
    assert r2_score(y, y + 1) == 0.0


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        r2_score(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        r2_score(np.zeros((0,)), np.zeros((0,)))


def test_mse_known_value():
    assert mean_squared_error(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == pytest.approx(2.5)


def test_mse_zero_for_perfect():
    y = np.arange(10.0)
    assert mean_squared_error(y, y) == 0.0


@given(
    arrays(np.float64, st.integers(min_value=2, max_value=40),
           elements=st.floats(min_value=-1e6, max_value=1e6)),
)
def test_r2_of_identity_property(y):
    assert r2_score(y, y) == 1.0


@given(
    arrays(np.float64, st.integers(min_value=3, max_value=40),
           elements=st.floats(min_value=-1e3, max_value=1e3)),
)
def test_r2_of_mean_at_most_zero_plus_eps(y):
    if np.var(y) == 0.0:
        # Constant targets predicted exactly score 1.0 by convention.
        assert r2_score(y, np.full_like(y, y.mean())) == 1.0
        return
    pred = np.full_like(y, y.mean())
    assert r2_score(y, pred) <= 1e-9
