"""Splitting and cross-validation tests."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression
from repro.ml.model_selection import KFold, cross_val_score, train_test_split


def data(n=50, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = X @ np.array([1.0, -2.0, 0.5]) + 0.01 * rng.normal(size=n)
    return X, y


class TestTrainTestSplit:
    def test_sizes_at_60_40(self):
        X, y = data(100)
        Xtr, Xva, ytr, yva = train_test_split(X, y, train_fraction=0.6, seed=1)
        assert Xtr.shape[0] == 60 and Xva.shape[0] == 40
        assert ytr.shape[0] == 60 and yva.shape[0] == 40

    def test_partition_is_exact(self):
        X, y = data(30)
        Xtr, Xva, _, _ = train_test_split(X, y, seed=2)
        combined = np.vstack([Xtr, Xva])
        assert combined.shape == X.shape
        # Every original row appears exactly once.
        orig = {tuple(row) for row in X}
        split = {tuple(row) for row in combined}
        assert orig == split

    def test_deterministic_with_seed(self):
        X, y = data(20)
        a = train_test_split(X, y, seed=5)[0]
        b = train_test_split(X, y, seed=5)[0]
        assert np.array_equal(a, b)

    def test_shuffles(self):
        X, y = data(50)
        Xtr, _, _, _ = train_test_split(X, y, seed=3)
        assert not np.array_equal(Xtr, X[:30])

    def test_both_sides_nonempty_even_extreme(self):
        X, y = data(10)
        Xtr, Xva, _, _ = train_test_split(X, y, train_fraction=0.99, seed=1)
        assert Xva.shape[0] >= 1
        Xtr, Xva, _, _ = train_test_split(X, y, train_fraction=0.01, seed=1)
        assert Xtr.shape[0] >= 1

    def test_validation(self):
        X, y = data(10)
        with pytest.raises(ValueError):
            train_test_split(X, y, train_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y[:5])
        with pytest.raises(ValueError):
            train_test_split(X[:1], y[:1])


class TestKFold:
    def test_folds_partition_indices(self):
        folds = list(KFold(4, seed=0).split(23))
        assert len(folds) == 4
        all_val = np.concatenate([v for _, v in folds])
        assert sorted(all_val.tolist()) == list(range(23))

    def test_train_and_val_disjoint(self):
        for train, val in KFold(5, seed=1).split(40):
            assert set(train).isdisjoint(set(val))
            assert len(train) + len(val) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            KFold(1)
        with pytest.raises(ValueError):
            list(KFold(5).split(3))


class TestCrossValScore:
    def test_linear_model_scores_high_on_linear_data(self):
        X, y = data(100)
        scores = cross_val_score(LinearRegression(), X, y, n_splits=4, seed=2)
        assert scores.shape == (4,)
        assert np.all(scores > 0.95)

    def test_fresh_clone_per_fold(self):
        """The passed model instance must stay unfitted."""
        X, y = data(40)
        model = LinearRegression()
        cross_val_score(model, X, y, n_splits=4, seed=3)
        assert model.coef_ is None
