"""NVMe-oF fabric: initiator ↔ target end-to-end over the network sim."""

import pytest

from repro.fabric.capsule import CAPSULE_BYTES, Capsule, CapsuleKind
from repro.fabric.initiator import Initiator
from repro.fabric.target import Target
from repro.net.nic import NICConfig
from repro.net.topology import build_star
from repro.nvme.driver import DefaultNvmeDriver
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.ssd.device import SSD
from repro.workloads.request import IORequest, OpType
from repro.workloads.traces import Trace
from tests.conftest import FAST_SSD


def build(driver_factory=DefaultNvmeDriver, n_ssds=1, nic_config=None):
    sim = Simulator()
    net = build_star(sim, ["ini", "tgt"], nic_config=nic_config)
    ssds = [SSD(sim, FAST_SSD) for _ in range(n_ssds)]
    drivers = [driver_factory() for _ in range(n_ssds)]
    target = Target(sim, net.hosts["tgt"], ssds, drivers)
    initiator = Initiator(sim, net.hosts["ini"])
    return sim, net, initiator, target


def req(op=OpType.READ, lba=0, size=4096, arrival=0):
    r = IORequest(arrival_ns=arrival, op=op, lba=lba, size_bytes=size)
    r.target = "tgt"
    return r


class TestCapsule:
    def test_wire_bytes(self):
        read_cmd = Capsule(CapsuleKind.COMMAND, req(OpType.READ, size=8192))
        write_cmd = Capsule(CapsuleKind.COMMAND, req(OpType.WRITE, size=8192))
        read_data = Capsule(CapsuleKind.READ_DATA, req(OpType.READ, size=8192))
        ack = Capsule(CapsuleKind.WRITE_ACK, req(OpType.WRITE, size=8192))
        assert read_cmd.wire_bytes == CAPSULE_BYTES
        assert write_cmd.wire_bytes == CAPSULE_BYTES + 8192
        assert read_data.wire_bytes == CAPSULE_BYTES + 8192
        assert ack.wire_bytes == CAPSULE_BYTES


class TestEndToEnd:
    def test_read_round_trip(self):
        sim, net, ini, tgt = build()
        r = req(OpType.READ, size=12_288)
        ini.issue(r)
        sim.run()
        assert ini.reads_completed == 1
        assert r.complete_ns > r.arrival_ns
        assert ini.read_deliveries == [(r.complete_ns, 12_288)]
        assert tgt.commands_received == 1

    def test_write_round_trip(self):
        sim, net, ini, tgt = build()
        w = req(OpType.WRITE, size=8192)
        ini.issue(w)
        sim.run()
        assert ini.writes_completed == 1
        assert len(tgt.write_completions) == 1
        assert tgt.write_completions[0][1] == 8192

    def test_mixed_workload_all_complete(self):
        sim, net, ini, tgt = build()
        n = 30
        for i in range(n):
            op = OpType.READ if i % 2 else OpType.WRITE
            ini.issue(req(op, lba=i * 1000, size=4096, arrival=0))
        sim.run()
        assert ini.reads_completed + ini.writes_completed == n
        assert ini.outstanding() == 0

    def test_load_trace_schedules_arrivals(self):
        sim, net, ini, tgt = build()
        trace = Trace(
            [IORequest(arrival_ns=i * 10_000, op=OpType.READ, lba=i, size_bytes=4096)
             for i in range(5)]
        )
        ini.load_trace(trace, target_of=lambda r: "tgt")
        sim.run()
        assert ini.reads_completed == 5

    def test_multiple_ssds_round_robin(self):
        sim, net, ini, tgt = build(n_ssds=3)
        for i in range(9):
            ini.issue(req(OpType.READ, lba=i * 1000))
        sim.run()
        per_ssd = [len(s.controller.completion_log) for s in tgt.ssds]
        assert per_ssd == [3, 3, 3]

    def test_ssq_driver_works_over_fabric(self):
        sim, net, ini, tgt = build(driver_factory=lambda: SSQDriver(1, 2))
        for i in range(10):
            op = OpType.READ if i % 2 else OpType.WRITE
            ini.issue(req(op, lba=i * 1000))
        sim.run()
        assert ini.reads_completed + ini.writes_completed == 10

    def test_set_ssq_weights_applies_to_all_drivers(self):
        sim, net, ini, tgt = build(driver_factory=lambda: SSQDriver(1, 1), n_ssds=2)
        tgt.set_ssq_weights(1, 6)
        assert all(d.weight_ratio == 6.0 for d in tgt.drivers)

    def test_issue_requires_target(self):
        sim, net, ini, tgt = build()
        bare = IORequest(arrival_ns=0, op=OpType.READ, lba=0, size_bytes=512)
        with pytest.raises(ValueError):
            ini.issue(bare)


class TestBackpressure:
    def test_small_txq_still_drains_eventually(self):
        """Read data larger than the target TXQ trickles out correctly."""
        nic_config = NICConfig(txq_capacity_bytes=16 * 1024)
        sim, net, ini, tgt = build(nic_config=nic_config)
        for i in range(8):
            ini.issue(req(OpType.READ, lba=i * 1000, size=8192))
        sim.run()
        assert ini.reads_completed == 8

    def test_target_validation(self):
        sim = Simulator()
        net = build_star(sim, ["i", "t"])
        with pytest.raises(ValueError):
            Target(sim, net.hosts["t"], [], [])
        ssd = SSD(sim, FAST_SSD)
        with pytest.raises(ValueError):
            Target(sim, net.hosts["t"], [ssd], [])

    def test_pause_count_exposed(self):
        sim, net, ini, tgt = build()
        assert tgt.pause_count() == 0
