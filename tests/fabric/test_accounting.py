"""Target completion accounting: device-service time, not drain time."""

from repro.fabric.initiator import Initiator
from repro.fabric.target import Target
from repro.net.nic import NICConfig
from repro.net.topology import build_star
from repro.nvme.driver import DefaultNvmeDriver
from repro.sim.engine import Simulator
from repro.ssd.device import SSD
from repro.workloads.request import IORequest, OpType
from tests.conftest import FAST_SSD


def build(nic_config=None):
    sim = Simulator()
    net = build_star(sim, ["ini", "tgt"], nic_config=nic_config)
    target = Target(sim, net.hosts["tgt"], [SSD(sim, FAST_SSD)], [DefaultNvmeDriver()])
    initiator = Initiator(sim, net.hosts["ini"])
    return sim, initiator, target


def req(op, lba, size=4096):
    r = IORequest(arrival_ns=0, op=op, lba=lba, size_bytes=size)
    r.target = "tgt"
    return r


def test_write_counted_even_behind_blocked_read():
    """A read stuck at the CQ head must not hide later write service.

    The TXQ is sized below one read response, so the read completion can
    never ship; the write behind it still counts at its device-post time
    (§IV-B measures write throughput at the target device).
    """
    tiny_txq = NICConfig(txq_capacity_bytes=2048)  # < read response size
    sim, ini, tgt = build(tiny_txq)
    ini.issue(req(OpType.READ, lba=0, size=16 * 4096))
    # Small enough that its command capsule fits the initiator's TXQ too.
    ini.issue(req(OpType.WRITE, lba=10**6, size=1024))
    sim.run()
    assert len(tgt.write_completions) == 1
    # The read served at the device too (counted), even though its
    # response never left the target.
    assert len(tgt.read_device_completions) == 1
    assert ini.reads_completed == 0  # data really is stuck


def test_completion_timestamps_are_post_times():
    sim, ini, tgt = build()
    w = req(OpType.WRITE, lba=0)
    ini.issue(w)
    sim.run()
    t, size = tgt.write_completions[0]
    assert t == w.device_done_ns
    assert size == 4096
