"""Dispatch-trace determinism: same seed ⇒ byte-identical event order.

Stronger than the series-level determinism test in
``tests/experiments``: here the *full dispatch trace* — every event's
time and callback site, in order — must match across runs of a small
initiator→target fabric cell, and must be unchanged when the runtime
sanitizer observes the run.
"""

from __future__ import annotations

from repro.fabric.initiator import Initiator
from repro.fabric.target import Target
from repro.net.topology import build_star
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MS, US
from repro.ssd.device import SSD
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


def run_cell(seed: int, *, sanitize: bool = False) -> list[tuple[int, str]]:
    sim = Simulator(trace=True, sanitize=sanitize)
    net = build_star(sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US)
    ssd = SSD(sim, FAST_SSD)
    driver = SSQDriver(read_weight=1, write_weight=2)
    Target(sim, net.hosts["tgt0"], [ssd], [driver])
    initiator = Initiator(sim, net.hosts["init0"])
    trace = generate_micro_trace(
        MicroWorkloadConfig(mean_interarrival_ns=3_000, mean_size_bytes=8 * KIB),
        n_reads=60,
        n_writes=60,
        seed=seed,
    )
    initiator.load_trace(trace, lambda _req: "tgt0")
    sim.run(until=1 * MS)
    assert initiator.reads_completed > 0 and initiator.writes_completed > 0
    return sim.dispatch_log


def as_bytes(log: list[tuple[int, str]]) -> bytes:
    return "\n".join(f"{t} {site}" for t, site in log).encode()


def test_same_seed_gives_byte_identical_trace():
    a, b = run_cell(seed=42), run_cell(seed=42)
    assert as_bytes(a) == as_bytes(b)


def test_different_seeds_give_different_traces():
    assert as_bytes(run_cell(seed=1)) != as_bytes(run_cell(seed=2))


def test_sanitizer_does_not_perturb_the_trace():
    assert as_bytes(run_cell(seed=42)) == as_bytes(run_cell(seed=42, sanitize=True))
