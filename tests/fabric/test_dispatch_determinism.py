"""Dispatch-trace determinism: same seed ⇒ byte-identical event order.

Stronger than the series-level determinism test in
``tests/experiments``: here the *full dispatch trace* — every event's
time and callback site, in order — must match across runs of a small
initiator→target fabric cell, and must be unchanged when the runtime
sanitizer observes the run.
"""

from __future__ import annotations

from repro.fabric.initiator import Initiator, RetryPolicy
from repro.fabric.target import Target
from repro.faults import FaultInjector, FaultPlan, LossBurst
from repro.net.nic import NICConfig
from repro.net.reliability import ReliabilityConfig
from repro.net.topology import build_star
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MS, US
from repro.ssd.device import SSD
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from tests.conftest import FAST_SSD


def run_cell(
    seed: int, *, sanitize: bool = False, lossy: bool = False
) -> list[tuple[int, str]]:
    sim = Simulator(trace=True, sanitize=sanitize)
    nic_config = (
        NICConfig(reliability=ReliabilityConfig(seed=seed, rto_ns=100_000))
        if lossy
        else None
    )
    net = build_star(
        sim, ["init0", "tgt0"], rate_gbps=40.0, delay_ns=US, nic_config=nic_config
    )
    ssd = SSD(sim, FAST_SSD)
    driver = SSQDriver(read_weight=1, write_weight=2)
    Target(sim, net.hosts["tgt0"], [ssd], [driver])
    retry = RetryPolicy(timeout_ns=500_000, max_retries=3) if lossy else None
    initiator = Initiator(sim, net.hosts["init0"], retry_policy=retry)
    trace = generate_micro_trace(
        MicroWorkloadConfig(mean_interarrival_ns=3_000, mean_size_bytes=8 * KIB),
        n_reads=60,
        n_writes=60,
        seed=seed,
    )
    initiator.load_trace(trace, lambda _req: "tgt0")
    if lossy:
        plan = FaultPlan(
            seed=seed,
            specs=(
                LossBurst("tgt0->sw0", 100_000, 700_000, loss_prob=0.05),
                LossBurst(
                    "sw0->init0", 200_000, 600_000, loss_prob=0.03, corrupt_prob=0.01
                ),
            ),
        )
        FaultInjector(sim, plan).attach_network(net).arm()
    sim.run(until=1 * MS)
    assert initiator.reads_completed > 0 and initiator.writes_completed > 0
    return sim.dispatch_log


def as_bytes(log: list[tuple[int, str]]) -> bytes:
    return "\n".join(f"{t} {site}" for t, site in log).encode()


def test_same_seed_gives_byte_identical_trace():
    a, b = run_cell(seed=42), run_cell(seed=42)
    assert as_bytes(a) == as_bytes(b)


def test_different_seeds_give_different_traces():
    assert as_bytes(run_cell(seed=1)) != as_bytes(run_cell(seed=2))


def test_sanitizer_does_not_perturb_the_trace():
    assert as_bytes(run_cell(seed=42)) == as_bytes(run_cell(seed=42, sanitize=True))


def test_lossy_seed_gives_byte_identical_trace():
    # Fault injection + go-back-N recovery must replay exactly: the
    # loss draws, retransmit timers, and command retries are all seeded.
    a, b = run_cell(seed=42, lossy=True), run_cell(seed=42, lossy=True)
    assert as_bytes(a) == as_bytes(b)


def test_lossy_trace_differs_from_clean_trace():
    # Sanity: the loss bursts actually perturbed the event order.
    assert as_bytes(run_cell(seed=42, lossy=True)) != as_bytes(run_cell(seed=42))


def test_sanitizer_does_not_perturb_the_lossy_trace():
    # Retransmit windows, backoff state, and retry bookkeeping are all
    # observed by the sanitizer; observation must not shift one event.
    plain = run_cell(seed=42, lossy=True)
    sanitized = run_cell(seed=42, lossy=True, sanitize=True)
    assert as_bytes(plain) == as_bytes(sanitized)
