"""Command-line interface: quick paper experiments from the shell.

::

    python -m repro motivation            # Fig. 2 fluid model
    python -m repro sweep [--ssd A|B|C]   # a small Fig. 5-style sweep
    python -m repro synthesize --profile vdi -o trace.csv
    python -m repro replay trace.csv [--ssd A] [--weight 4]
    python -m repro profile [--scenario engine|incast|both] [--cprofile]
    python -m repro lint src [--format json|github]   # whole-program linter
    python -m repro faults [--cell chaos] [--seed 7]   # chaos matrix

The full-scale reproductions live in ``benchmarks/`` (pytest-benchmark);
this CLI exists for interactive exploration at small scale.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.motivation import (
    MotivationScenario,
    dcqcn_only,
    dcqcn_src,
    no_congestion,
)
from repro.experiments.replay import replay_on_device
from repro.experiments.tables import format_table
from repro.experiments.weight_sweep import run_weight_sweep
from repro.nvme.ssq import SSQDriver
from repro.ssd.config import SSD_A, SSD_B, SSD_C
from repro.workloads.profiles import FUJITSU_VDI, TENCENT_CBS, synthesize_from_profile
from repro.workloads.traces import Trace

SSDS = {"A": SSD_A, "B": SSD_B, "C": SSD_C}
PROFILES = {"vdi": FUJITSU_VDI, "cbs": TENCENT_CBS}


def cmd_motivation(_args) -> int:
    s = MotivationScenario()
    rows = []
    for name, outcome in (
        ("no congestion", no_congestion(s)),
        ("DCQCN", dcqcn_only(s)),
        ("SRC", dcqcn_src(s)),
    ):
        rows.append(
            [name, outcome.read_delivered, outcome.write_delivered,
             outcome.aggregated, outcome.wasted_read]
        )
    print(format_table(
        ["scenario", "read", "write", "aggregate", "wasted"],
        rows,
        title="Fig. 2 motivation (I/Os per time unit)",
    ))
    return 0


def _nonneg_int(value: str) -> int:
    n = int(value)
    if n < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {n}")
    return n


def cmd_sweep(args) -> int:
    from repro.sim.units import KIB, MS

    config = SSDS[args.ssd]
    cells = run_weight_sweep(
        config,
        interarrivals_ns=(10_000, 25_000),
        sizes_bytes=(16 * KIB, 40 * KIB),
        weight_ratios=(1, 2, 4, 8),
        duration_ns=args.duration_ms * MS,
        workers=args.workers,
    )
    rows = [
        [
            f"{c.interarrival_ns/1000:.0f}us",
            f"{c.size_bytes/1024:.0f}KB",
            " ".join(f"{v:5.2f}" for v in c.read_gbps),
            " ".join(f"{v:5.2f}" for v in c.write_gbps),
        ]
        for c in cells
    ]
    print(format_table(
        ["inter-arr", "size", "read Gbps @ w=1,2,4,8", "write Gbps @ w=1,2,4,8"],
        rows,
        title=f"weight sweep on {config.name}",
    ))
    return 0


def cmd_synthesize(args) -> int:
    profile = PROFILES[args.profile]
    trace = synthesize_from_profile(
        profile, n_reads=args.reads, n_writes=args.writes, seed=args.seed
    )
    trace.save(args.output)
    print(f"wrote {len(trace)} requests ({profile.name}) to {args.output}")
    return 0


def cmd_replay(args) -> int:
    trace = Trace.load(args.trace)
    config = SSDS[args.ssd]
    driver = SSQDriver(read_weight=1, write_weight=args.weight)
    result = replay_on_device(
        trace, config, driver, drain=False, measure_start_fraction=0.4
    )
    print(
        f"{config.name} @ w={args.weight}: "
        f"read {result.read_tput_gbps:.2f} Gbps, "
        f"write {result.write_tput_gbps:.2f} Gbps "
        f"({result.reads_completed}r/{result.writes_completed}w)"
    )
    return 0


def cmd_profile(args) -> int:
    """Profile the DES engine on the standard scenarios.

    ``engine`` is the pure event-loop microbench (no network model);
    ``incast`` is the packet-level in-cast cell.  Both run on an
    :class:`~repro.profiling.InstrumentedSimulator`, so the output shows
    events/sec, the heap high-water mark, and per-callback-site dispatch
    counts; ``--cprofile`` adds a function-level cumulative-time report.
    """
    from repro.profiling import (
        InstrumentedSimulator,
        engine_microbench,
        run_incast_cell,
        run_with_cprofile,
    )
    from repro.sim.units import US

    scenarios = ("engine", "incast") if args.scenario == "both" else (args.scenario,)
    payload = {}
    for scenario in scenarios:
        sim = InstrumentedSimulator()
        if scenario == "engine":
            run = lambda: engine_microbench(n_events=args.events, sim=sim)  # noqa: E731
        else:
            run = lambda: run_incast_cell(  # noqa: E731
                duration_ns=args.duration_us * US, sim=sim
            )
        if args.cprofile:
            _, report = run_with_cprofile(run, top=args.top)
        else:
            run()
            report = None
        profile = sim.profile()
        payload[scenario] = profile.as_dict()
        if not args.json:
            print(f"--- {scenario} ---")
            print(profile.format(top=args.top))
            if report:
                print(report)
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def cmd_faults(args) -> int:
    """Run the deterministic chaos matrix (see repro.experiments.faults).

    Each cell injects one fault class (or all of them) against both
    contention policies with the full recovery path armed; a wedged
    cell is reported as a failure, not silently dropped.  Exit status
    is 1 when any cell failed or left wedged I/Os.
    """
    from repro.experiments.faults import POLICIES, fault_matrix, run_chaos_matrix
    from repro.sim.units import MS

    duration_ns = args.duration_ms * MS
    cells = (
        tuple(fault_matrix(duration_ns, seed=args.seed))
        if args.cell == "all"
        else (args.cell,)
    )
    outcomes, report = run_chaos_matrix(
        cells, POLICIES, seed=args.seed, duration_ns=duration_ns,
        workers=args.workers,
    )
    if args.json:
        payload = {
            "outcomes": [o.as_dict() for o in outcomes if o is not None],
            "failures": [
                {"index": f.index, "error": f.error, "attempts": f.attempts}
                for f in report.failures
            ],
            "perf": report.perf_dict(),
        }
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            [
                o.cell, o.policy, o.completed, o.failed, o.wedged,
                f"{o.goodput_gbps:.2f}",
                f"{o.p99_read_us:.0f}", f"{o.p99_write_us:.0f}",
                f"{o.recovery_us:.0f}",
                o.retries_sent, o.retransmits,
                o.packets_lost + o.packets_corrupted + o.packets_dropped_down,
            ]
            for o in outcomes
            if o is not None
        ]
        print(format_table(
            ["cell", "policy", "ok", "fail", "wedged", "goodput",
             "p99r us", "p99w us", "recov us", "retries", "rtx", "pkt faults"],
            rows,
            title=f"chaos matrix (seed {args.seed}, {args.duration_ms} ms/cell)",
        ))
        for failure in report.failures:
            cell_name, policy = outcomes_grid_label(cells, POLICIES, failure.index)
            print(
                f"FAILED cell {cell_name}/{policy} after "
                f"{failure.attempts} attempt(s): {failure.error}"
            )
    bad = bool(report.failures) or any(o and o.wedged for o in outcomes)
    return 1 if bad else 0


def outcomes_grid_label(
    cells: tuple[str, ...], policies: tuple[str, ...], index: int
) -> tuple[str, str]:
    """Map a flat sweep index back to its (cell, policy) grid label."""
    return cells[index // len(policies)], policies[index % len(policies)]


def cmd_replay_failure(args) -> int:
    """Time-travel replay of a dumped sanitizer failure.

    Restores the nearest checkpoint named by the failure recipe and
    deterministically re-runs to the violating event under full-fidelity
    sanitizing (stride forced to 1 — the escalation
    :func:`repro.analysis.sanitizer.escalate` applies from time zero,
    applied from the checkpoint instead).
    """
    import json as _json

    from repro.sim.checkpoint import CheckpointError, replay_failure

    try:
        report = replay_failure(args.recipe, until=args.until)
    except CheckpointError as err:
        if args.json:
            print(
                _json.dumps(
                    {
                        "error": {
                            "kind": "checkpoint",
                            "reason": err.reason,
                            "detail": err.detail,
                        }
                    },
                    indent=1,
                    sort_keys=True,
                )
            )
        print(f"replay-failure: {err}", file=sys.stderr)
        return 2
    except FileNotFoundError as err:
        if args.json:
            print(
                _json.dumps(
                    {
                        "error": {
                            "kind": "missing-recipe",
                            "reason": "missing-recipe",
                            "detail": str(err),
                        }
                    },
                    indent=1,
                    sort_keys=True,
                )
            )
        print(f"replay-failure: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(report, indent=1, sort_keys=True))
    elif report["reproduced"]:
        print(
            f"reproduced {report['invariant']} at t={report['time_ns']}ns "
            f"after replaying {report['events_replayed']} events "
            f"from checkpoint {report['checkpoint']} "
            f"(event {report['checkpoint_events']})"
        )
        print(f"  site:   {report.get('site')}")
        print(f"  detail: {report.get('detail')}")
    else:
        print(
            f"not reproduced: replayed {report['events_replayed']} events "
            f"from {report['checkpoint']} without a violation "
            "(bug fixed, or the failure needs state outside the checkpoint)"
        )
    if not report["sanitizing"]:
        print(
            "note: checkpoint was not sanitizing — replay was deterministic "
            "but invariant checks were off",
            file=sys.stderr,
        )
    return 0 if report["reproduced"] else 1


def cmd_lint(args) -> int:
    """Run the whole-program simulation linter (see repro.analysis).

    Per-file determinism rules (SIM001–SIM005), units-of-measure
    dataflow (SIM101–SIM104), and event-callback purity (SIM201–SIM203)
    in one pass — plus, with ``--shards`` / ``--snapshots``, the
    interprocedural effect pass and the shard-safety (SIM301–SIM304) /
    snapshot-safety (SIM401–SIM404) rules — minus the checked-in
    baseline.  ``--select`` / ``--ignore`` narrow the rule set by
    rule-id prefix or group key.  Exit status: 0 = clean (no *new*
    findings, no twice-stale baseline entries, within the time budget),
    1 = findings, 2 = bad rule selector.
    """
    from pathlib import Path

    from repro.analysis.baseline import DEFAULT_BASELINE_PATH
    from repro.analysis.run import ALL_RULES, lint_project
    from repro.analysis.sarif import to_sarif
    from repro.analysis.simlint import format_violations

    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = DEFAULT_BASELINE_PATH

    try:
        report = lint_project(
            args.paths,
            baseline_path=baseline_path,
            update_baseline=args.update_baseline,
            cache_path=Path(args.cache) if args.cache else None,
            shards=args.shards,
            prune_baseline=args.prune_baseline,
            snapshots=args.snapshots,
            select=args.select,
            ignore=args.ignore,
        )
    except ValueError as err:
        print(f"simlint: {err}", file=sys.stderr)
        return 2
    if args.format == "sarif":
        out = to_sarif(report.violations, ALL_RULES).rstrip("\n")
    else:
        out = format_violations(report.violations, fmt=args.format)
    if out:
        print(out)
    if args.sarif_output:
        Path(args.sarif_output).write_text(
            to_sarif(report.violations, ALL_RULES)
        )
    if args.format == "text":
        if report.baselined:
            print(f"simlint: {len(report.baselined)} baselined finding(s)")
        for entry in report.pruned:
            print(
                f"simlint: pruned stale baseline entry {entry.rule} "
                f"{entry.path} ({entry.line_text!r})"
            )
        for entry in report.stale:
            print(
                f"simlint: stale baseline entry {entry.rule} {entry.path} "
                f"({entry.line_text!r}) — remove it (fails next run)"
            )
        if args.update_baseline and baseline_path is not None:
            print(f"simlint: baseline written to {baseline_path}")
    for entry in report.stale_failures:
        print(
            f"simlint: baseline entry {entry.rule} {entry.path} "
            f"({entry.line_text!r}) stale for >1 run — prune it "
            "(repro lint --prune-baseline)",
            file=sys.stderr,
        )
    failed = bool(report.violations) or bool(report.stale_failures)
    if args.max_seconds is not None and report.elapsed_s > args.max_seconds:
        print(
            f"simlint: whole-program pass took {report.elapsed_s:.2f}s, "
            f"over the {args.max_seconds:.2f}s budget "
            f"({report.file_count} files)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SRC paper-reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("motivation", help="print the Fig. 2 fluid model").set_defaults(
        fn=cmd_motivation
    )

    p = sub.add_parser("sweep", help="small Fig. 5-style weight sweep")
    p.add_argument("--ssd", choices=sorted(SSDS), default="A")
    p.add_argument("--duration-ms", type=int, default=30)
    p.add_argument(
        "--workers", type=_nonneg_int, default=1,
        help="worker processes for the sweep (0 = all cores); "
        "results are identical for any value",
    )
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("synthesize", help="generate a synthetic trace CSV")
    p.add_argument("--profile", choices=sorted(PROFILES), default="vdi")
    p.add_argument("--reads", type=int, default=2000)
    p.add_argument("--writes", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("replay", help="replay a trace CSV on a simulated SSD")
    p.add_argument("trace")
    p.add_argument("--ssd", choices=sorted(SSDS), default="A")
    p.add_argument("--weight", type=int, default=1)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("profile", help="profile the DES engine hot paths")
    p.add_argument(
        "--scenario", choices=("engine", "incast", "both"), default="both",
        help="pure event-loop microbench, packet-level in-cast cell, or both",
    )
    p.add_argument(
        "--events", type=int, default=200_000,
        help="events to dispatch in the engine microbench",
    )
    p.add_argument(
        "--duration-us", type=int, default=2_000,
        help="simulated microseconds for the in-cast cell",
    )
    p.add_argument("--top", type=int, default=10, help="callback sites to show")
    p.add_argument(
        "--cprofile", action="store_true",
        help="also run under cProfile and print a cumulative-time report",
    )
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "faults", help="run the deterministic chaos matrix (SRC vs static)"
    )
    p.add_argument(
        "--cell", default="all",
        choices=("all", "baseline", "loss", "flap", "die", "chaos"),
        help="which fault cell to run (default: the whole matrix)",
    )
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument("--duration-ms", type=int, default=20)
    p.add_argument(
        "--workers", type=_nonneg_int, default=1,
        help="worker processes (0 = all cores); results are identical "
        "for any value",
    )
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "replay-failure",
        help="restore a failure's nearest checkpoint and re-run to the "
        "violation under full-fidelity sanitizing",
    )
    p.add_argument(
        "recipe",
        help="failure recipe JSON (or a checkpoint directory holding "
        "failure.json) dumped by run_with_checkpoints",
    )
    p.add_argument(
        "--until", type=int, default=None,
        help="override the replay horizon in ns (default: the recipe's)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.set_defaults(fn=cmd_replay_failure)

    p = sub.add_parser(
        "lint",
        help="whole-program simulation linter (SIM001-005, SIM101-104, "
        "SIM201-203; --shards adds SIM301-304, --snapshots adds "
        "SIM401-404, --select/--ignore pick rules)",
    )
    p.add_argument(
        "paths", nargs="+", help="files or directories to lint (e.g. src)"
    )
    p.add_argument(
        "--format", choices=("text", "json", "github", "sarif"),
        default="text",
        help="violation report format ('github' emits ::error annotations, "
        "'sarif' a SARIF 2.1.0 log)",
    )
    p.add_argument(
        "--shards", action="store_true",
        help="run the interprocedural effect/escape pass and the "
        "shard-safety rules SIM301-304 (effect summaries cached as "
        "effects.json beside the AST cache)",
    )
    p.add_argument(
        "--snapshots", action="store_true",
        help="run the snapshot-safety rules SIM401-404 (checkpoint "
        "picklability, root-set completeness, manifest/reducer drift, "
        "restore-order typestate; findings cached as snapshots.json "
        "beside the AST cache)",
    )
    p.add_argument(
        "--select", action="append", default=None, metavar="RULES",
        help="only run rules matching these comma-separated rule-id "
        "prefixes or group keys (e.g. 'SIM4', 'SIM203', 'shards'); "
        "repeatable; --shards/--snapshots add their group on top",
    )
    p.add_argument(
        "--ignore", action="append", default=None, metavar="RULES",
        help="drop rules matching these selectors after --select "
        "(same syntax); SIM999 cannot be ignored",
    )
    p.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries that matched nothing this run "
        "(default: first miss marks them stale, second miss fails)",
    )
    p.add_argument(
        "--sarif-output", default=None, metavar="PATH",
        help="additionally write a SARIF 2.1.0 log to PATH "
        "(independent of --format)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline JSON of accepted findings "
        "(default: benchmarks/results/lint_baseline.json)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from current findings "
        "(new entries get a 'TODO: justify' reason)",
    )
    p.add_argument(
        "--cache", default=None, metavar="PATH",
        help="pickle cache for the parsed-AST index (content-hashed; "
        "safe to reuse across runs)",
    )
    p.add_argument(
        "--max-seconds", type=float, default=None,
        help="fail if the whole pass exceeds this wall-clock budget",
    )
    p.set_defaults(fn=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
