"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a zero-argument callback.
:class:`EventQueue` is a binary heap keyed on ``(time, seq)`` — the
monotonically increasing sequence number makes ordering deterministic for
events scheduled at the same instant, which in turn makes every
simulation in the library exactly reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so heap order is total and
    deterministic.  ``cancelled`` supports O(1) lazy deletion: cancelled
    events stay in the heap but are skipped when popped.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the top."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or ``None`` if drained."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> int | None:
        """Firing time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
