"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a callback (plus optional
pre-bound arguments).  :class:`EventQueue` is a binary heap of plain
tuples — the monotonically increasing sequence number makes ordering
deterministic for events scheduled at the same instant, which in turn
makes every simulation in the library exactly reproducible for a fixed
seed.

Every heap entry is a 4-tuple; the third element discriminates two
kinds:

* ``(time, seq, HANDLED_MARK, Event)`` — a *handled* event: the
  :class:`Event` object (``__slots__``, no ordering protocol) exists so
  callers can cancel or inspect the scheduled callback.
* ``(time, seq, callback, args)`` — an *anonymous* event pushed with
  :meth:`EventQueue.push_anon`: no handle, no cancellation, no per-event
  object allocation.  This is the hot-path shape for fire-and-forget
  work (link serialization/propagation, feeder ticks) where the handle
  was pure overhead.

``HANDLED_MARK`` is a unique sentinel that can never equal a real
callback, so dispatch loops discriminate with a single identity check
(``entry[2] is HANDLED_MARK``) — measurably cheaper than a ``len()``
call per dispatched event.  The two kinds never confuse the heap
ordering: sequence numbers are unique, so tuple comparison is decided
at element 0 or 1 and never reaches the third element.

Cancellation (handled events only) is lazy (cancelled entries stay in
the heap and are skipped when they surface) but *accounted*: a
live-event counter makes ``len()`` O(1), and when dead entries
outnumber live ones the heap is compacted in place, so
cancel-and-reschedule patterns (DCQCN timers, NIC pacing) cannot bloat
the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Compaction triggers only above this many dead entries (small heaps
#: never pay the rebuild) and only when dead entries outnumber live ones.
_COMPACT_MIN_DEAD = 64


class _HandledMark:
    """Sentinel type marking handled heap entries (single instance)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<HANDLED_MARK>"

    def __reduce__(self) -> str:
        # Pickle by reference to the module singleton: every run loop
        # distinguishes handled from anonymous heap entries with an
        # ``is HANDLED_MARK`` identity test, so a restored heap must
        # alias the same object, not a fresh instance.
        return "HANDLED_MARK"


#: The sentinel occupying slot 2 of every handled heap entry.
HANDLED_MARK = _HandledMark()


class Event:
    """Handle for a scheduled callback.

    Supports O(1) lazy deletion via :meth:`cancel`: the entry stays in
    the heap but is skipped when popped.  The handle carries the queue's
    live/dead accounting back-reference while pending; it is detached on
    pop so a late ``cancel()`` on an already-dispatched event is a no-op.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        queue: "EventQueue | None",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the top."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            queue._dead += 1
            if (
                queue._dead >= _COMPACT_MIN_DEAD
                and queue._dead * 2 > len(queue._heap)
            ):
                queue._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time} seq={self.seq} {name} {state}>"


class EventQueue:
    """A deterministic min-heap of handled and anonymous event tuples."""

    __slots__ = ("_heap", "_seq", "_live", "_dead", "high_water")

    def __init__(self) -> None:
        self._heap: list[tuple[Any, ...]] = []
        self._seq = 0
        self._live = 0  # pending, non-cancelled events
        self._dead = 0  # cancelled entries still sitting in the heap
        #: Largest raw heap size ever reached (profiling reads this).
        self.high_water = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``; return its handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, callback, args, self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, HANDLED_MARK, ev))
        self._live += 1
        if len(heap) > self.high_water:
            self.high_water = len(heap)
        return ev

    def push_anon(
        self, time: int, callback: Callable[..., None], args: tuple = ()
    ) -> None:
        """Schedule ``callback(*args)`` at ``time`` with no handle.

        Anonymous events cannot be cancelled or inspected; in exchange
        they skip the per-event :class:`Event` allocation entirely.  Use
        for fire-and-forget hot paths.
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (time, seq, callback, args))
        self._live += 1
        if len(heap) > self.high_water:
            self.high_water = len(heap)

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or ``None`` if drained.

        Anonymous entries come back wrapped in a detached (queue-less)
        :class:`Event` so callers see one handle type; this is a cold
        path — the engine's run loop dispatches raw tuples directly.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[2] is not HANDLED_MARK:
                self._live -= 1
                return Event(entry[0], entry[1], entry[2], entry[3], None)
            ev: Event = entry[3]
            if ev.cancelled:
                self._dead -= 1
                continue
            ev._queue = None
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> int | None:
        """Firing time of the next live event without removing it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is HANDLED_MARK and entry[3].cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return int(entry[0])
        return None

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (``heap[:] =``) so the engine's loop-local alias of the
        heap list stays valid even when a callback cancels enough events
        to trigger compaction mid-run.  Surviving entries keep their
        original ``(time, seq)`` keys — anonymous entries are always
        live and always survive — so the heapify rebuilds exactly the
        dispatch order of an uncompacted heap (sequence numbers are
        unique; no comparison ever ties).
        """
        heap = self._heap
        heap[:] = [
            entry
            for entry in heap
            if entry[2] is not HANDLED_MARK or not entry[3].cancelled
        ]
        heapq.heapify(heap)
        self._dead = 0
