"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a callback (plus optional
pre-bound arguments).  :class:`EventQueue` is a binary heap of plain
``(time, seq, Event)`` tuples — the monotonically increasing sequence
number makes ordering deterministic for events scheduled at the same
instant, which in turn makes every simulation in the library exactly
reproducible for a fixed seed.

The tuple heap is the hot-path representation: CPython compares the
leading ``int`` of a tuple far faster than it dispatches a dataclass's
generated ``__lt__``, and the :class:`Event` handle itself (``__slots__``,
no ordering protocol) exists only so callers can cancel or inspect a
scheduled callback.

Cancellation is lazy (cancelled entries stay in the heap and are
skipped when they surface) but *accounted*: a live-event counter makes
``len()`` O(1), and when dead entries outnumber live ones the heap is
compacted in place, so cancel-and-reschedule patterns (DCQCN timers,
NIC pacing) cannot bloat the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Compaction triggers only above this many dead entries (small heaps
#: never pay the rebuild) and only when dead entries outnumber live ones.
_COMPACT_MIN_DEAD = 64


class Event:
    """Handle for a scheduled callback.

    Supports O(1) lazy deletion via :meth:`cancel`: the entry stays in
    the heap but is skipped when popped.  The handle carries the queue's
    live/dead accounting back-reference while pending; it is detached on
    pop so a late ``cancel()`` on an already-dispatched event is a no-op.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        queue: "EventQueue | None",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the top."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            queue._dead += 1
            if (
                queue._dead >= _COMPACT_MIN_DEAD
                and queue._dead * 2 > len(queue._heap)
            ):
                queue._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time} seq={self.seq} {name} {state}>"


class EventQueue:
    """A deterministic min-heap of ``(time, seq, Event)`` tuples."""

    __slots__ = ("_heap", "_seq", "_live", "_dead", "high_water")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0  # pending, non-cancelled events
        self._dead = 0  # cancelled entries still sitting in the heap
        #: Largest raw heap size ever reached (profiling reads this).
        self.high_water = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``; return its handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, callback, args, self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, ev))
        self._live += 1
        if len(heap) > self.high_water:
            self.high_water = len(heap)
        return ev

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or ``None`` if drained."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev.cancelled:
                self._dead -= 1
                continue
            ev._queue = None
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> int | None:
        """Firing time of the next live event without removing it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return entry[0]
        return None

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (``heap[:] =``) so the engine's loop-local alias of the
        heap list stays valid even when a callback cancels enough events
        to trigger compaction mid-run.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._dead = 0
