"""The discrete-event simulator engine.

One :class:`Simulator` instance owns the global clock.  Components
(:class:`repro.net.link.Link`, :class:`repro.ssd.device.SSD`, ...)
hold a reference to it and call :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` to arrange future work.

The engine is intentionally minimal — no process abstraction, no
co-routines — because profiling showed plain callback dispatch is the
fastest way to push millions of events through CPython (see
``DESIGN.md`` §5).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.events import Event, EventQueue


class MaxEventsExceeded(RuntimeError):
    """:meth:`Simulator.run` hit its ``max_events`` safety valve.

    Raised *after* the limit-hitting event ran, so the simulator's state
    is partial — ``now`` sits at that event's time and later events are
    still queued — but fully consistent and open for inspection: the
    clock, ``events_dispatched``, and the pending queue all reflect
    exactly what was dispatched.  The attributes carry the same snapshot
    for handlers that only see the exception.
    """

    def __init__(
        self, max_events: int, dispatched: int, pending: int, now: int
    ) -> None:
        super().__init__(
            f"simulation exceeded max_events={max_events} after dispatching "
            f"{dispatched} events in this run() call ({pending} events still "
            f"pending at t={now}); possible livelock — simulator state is "
            f"partial but consistent for inspection"
        )
        self.max_events = max_events
        self.dispatched = dispatched
        self.pending = pending
        self.now = now


class Simulator:
    """Single-clock discrete-event simulator.

    Parameters
    ----------
    trace:
        When true, every dispatched event is appended to
        :attr:`dispatch_log` as ``(time, callback_qualname)`` — useful in
        tests, far too slow for real runs.
    """

    def __init__(self, *, trace: bool = False) -> None:
        self.now: int = 0
        self._queue = EventQueue()
        self._trace = trace
        self.dispatch_log: list[tuple[int, str]] = []
        self.events_dispatched: int = 0

    # -- scheduling -----------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self._queue.push(time, callback)

    # -- execution ------------------------------------------------------
    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the
            clock is advanced to ``until`` itself.  ``None`` runs until
            the queue drains.
        max_events:
            Safety valve for tests; raises :class:`MaxEventsExceeded` (a
            ``RuntimeError``) when hit so a livelocked model fails loudly
            rather than hanging CI.  The simulator is left mid-run —
            clock advanced, remaining events queued — but consistent, so
            callers may inspect ``now``, ``pending()``, and
            ``events_dispatched`` after catching the error.

        Returns
        -------
        int
            The number of events dispatched during this call.
        """
        dispatched = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            ev = self._queue.pop()
            assert ev is not None
            self.now = ev.time
            if self._trace:
                name = getattr(ev.callback, "__qualname__", repr(ev.callback))
                self.dispatch_log.append((self.now, name))
            ev.callback()
            dispatched += 1
            self.events_dispatched += 1
            if max_events is not None and dispatched >= max_events:
                raise MaxEventsExceeded(
                    max_events, dispatched, len(self._queue), self.now
                )
        if until is not None and until > self.now:
            self.now = until
        return dispatched

    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)
