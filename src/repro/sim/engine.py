"""The discrete-event simulator engine.

One :class:`Simulator` instance owns the global clock.  Components
(:class:`repro.net.link.Link`, :class:`repro.ssd.device.SSD`, ...)
hold a reference to it and call :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` to arrange future work.

The engine is intentionally minimal — no process abstraction, no
co-routines — because profiling showed plain callback dispatch is the
fastest way to push millions of events through CPython (see
``DESIGN.md`` §5).  :meth:`Simulator.run` works directly on the event
queue's tuple heap: each iteration peeks the head tuple once, pops it,
and dispatches, instead of paying a ``peek_time()`` + ``pop()`` double
traversal per event.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Event, EventQueue

if TYPE_CHECKING:
    from repro.analysis.sanitizer import Sanitizer
    from repro.core.units import Nanoseconds


class MaxEventsExceeded(RuntimeError):
    """:meth:`Simulator.run` hit its ``max_events`` safety valve.

    Raised *after* the limit-hitting event ran, so the simulator's state
    is partial — ``now`` sits at that event's time and later events are
    still queued — but fully consistent and open for inspection: the
    clock, ``events_dispatched``, and the pending queue all reflect
    exactly what was dispatched.  The attributes carry the same snapshot
    for handlers that only see the exception.
    """

    def __init__(
        self, max_events: int, dispatched: int, pending: int, now: Nanoseconds
    ) -> None:
        super().__init__(
            f"simulation exceeded max_events={max_events} after dispatching "
            f"{dispatched} events in this run() call ({pending} events still "
            f"pending at t={now}); possible livelock — simulator state is "
            f"partial but consistent for inspection"
        )
        self.max_events = max_events
        self.dispatched = dispatched
        self.pending = pending
        self.now = now


class Simulator:
    """Single-clock discrete-event simulator.

    Parameters
    ----------
    trace:
        When true, every dispatched event is appended to
        :attr:`dispatch_log` as ``(time, callback_qualname)`` — useful in
        tests, far too slow for real runs.
    sanitize:
        When true (or when the ``REPRO_SANITIZE`` environment variable
        is set and ``sanitize`` is left as ``None``), constructing
        ``Simulator(...)`` transparently yields a
        :class:`repro.analysis.sanitizer.SanitizingSimulator`, whose
        dispatch loop checks runtime invariants (clock monotonicity,
        queue depths, byte conservation, ...) and raises
        :class:`~repro.analysis.sanitizer.SanitizerError` on violation.
        The sanitized run is bit-identical to a plain one, just slower.
    """

    #: Set by :class:`~repro.analysis.sanitizer.SanitizingSimulator`;
    #: components register themselves here when it is not ``None``.
    sanitizer: "Sanitizer | None" = None

    #: Quiescence hook (e.g. the stuck-I/O watchdog from
    #: :mod:`repro.faults.watchdog`): called with the simulator once per
    #: :meth:`run` call, only when the event heap fully drained — i.e.
    #: the model has nothing left to do.  Zero per-event cost.  The hook
    #: may raise (``StuckIOError``) to turn a silent wedge into a
    #: diagnostic failure.
    watchdog: "Callable[[Simulator], None] | None" = None

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        if cls is Simulator:
            sanitize = kwargs.get("sanitize")
            if sanitize is None:
                from repro.analysis.sanitizer import env_sanitize_enabled

                sanitize = env_sanitize_enabled(os.environ.get("REPRO_SANITIZE"))
            if sanitize:
                from repro.analysis.sanitizer import SanitizingSimulator

                return object.__new__(SanitizingSimulator)
        return object.__new__(cls)

    def __init__(self, *, trace: bool = False, sanitize: bool | None = None) -> None:
        self.now: Nanoseconds = 0
        self._queue = EventQueue()
        self._trace = trace
        self.dispatch_log: list[tuple[int, str]] = []
        self.events_dispatched: int = 0

    # -- scheduling -----------------------------------------------------
    def schedule(
        self, delay: Nanoseconds, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` ns from now.

        Extra positional ``args`` are stored on the event handle and
        passed to the callback at dispatch — cheaper than allocating a
        closure per scheduled call on hot paths.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self.now + delay, callback, *args)

    def schedule_at(
        self, time: Nanoseconds, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self._queue.push(time, callback, *args)

    # -- execution ------------------------------------------------------
    def run(
        self, until: Nanoseconds | None = None, max_events: int | None = None
    ) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the
            clock is advanced to ``until`` itself.  ``None`` runs until
            the queue drains.
        max_events:
            Safety valve for tests; raises :class:`MaxEventsExceeded` (a
            ``RuntimeError``) when hit so a livelocked model fails loudly
            rather than hanging CI.  The simulator is left mid-run —
            clock advanced, remaining events queued — but consistent, so
            callers may inspect ``now``, ``pending()``, and
            ``events_dispatched`` after catching the error.

        Returns
        -------
        int
            The number of events dispatched during this call.
        """
        queue = self._queue
        heap = queue._heap  # the queue compacts in place; alias stays valid
        heappop = heapq.heappop
        trace = self._trace
        dispatched = 0
        try:
            while heap:
                time, _seq, ev = heap[0]
                if ev.cancelled:
                    heappop(heap)
                    queue._dead -= 1
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                ev._queue = None
                queue._live -= 1
                self.now = time
                callback = ev.callback
                if trace:
                    self.dispatch_log.append(
                        (time, getattr(callback, "__qualname__", repr(callback)))
                    )
                args = ev.args
                if args:
                    callback(*args)
                else:
                    callback()
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise MaxEventsExceeded(
                        max_events, dispatched, queue._live, self.now
                    )
        finally:
            self.events_dispatched += dispatched
        if until is not None and until > self.now:
            self.now = until
        if self.watchdog is not None and not heap:
            self.watchdog(self)
        return dispatched

    def pending(self) -> int:
        """Number of live events still scheduled (O(1))."""
        return len(self._queue)
