"""The discrete-event simulator engine.

One :class:`Simulator` instance owns the global clock.  Components
(:class:`repro.net.link.Link`, :class:`repro.ssd.device.SSD`, ...)
hold a reference to it and call :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` to arrange future work.

The engine is intentionally minimal — no process abstraction, no
co-routines — because profiling showed plain callback dispatch is the
fastest way to push millions of events through CPython (see
``DESIGN.md`` §5).  :meth:`Simulator.run` works directly on the event
queue's tuple heap: each iteration peeks the head tuple once, pops it,
and dispatches, instead of paying a ``peek_time()`` + ``pop()`` double
traversal per event.

Two event kinds flow through the loop (see :mod:`repro.sim.events`):
handled ``(time, seq, HANDLED_MARK, Event)`` entries for anything that
might be cancelled, and anonymous ``(time, seq, callback, args)``
entries (:meth:`Simulator.schedule_anon`) for fire-and-forget hot
paths; one sentinel identity check per dispatch tells them apart.
Adjacent anonymous entries at the *same timestamp* with the *same
callback object* are coalesced into one batch dispatch when the
callback has a batch handler registered via
:meth:`Simulator.register_batch` — a burst of packets landing on a link
in one tick then costs one Python call instead of N.  Coalescing is
strictly order-preserving: batch members are exactly the consecutive
run of equal-``(time, callback)`` heap heads, popped in sequence order,
and anonymous events cannot be cancelled, so a batched dispatch is
semantically identical to dispatching the members one by one.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import HANDLED_MARK, Event, EventQueue

if TYPE_CHECKING:
    from repro.analysis.sanitizer import Sanitizer
    from repro.core.units import Nanoseconds

#: Sentinel "no deadline" for the run loop's ``until`` comparison —
#: far beyond any simulated instant, so one int compare replaces an
#: ``is not None`` check per dispatched event.
_NO_DEADLINE = 1 << 62


class MaxEventsExceeded(RuntimeError):
    """:meth:`Simulator.run` hit its ``max_events`` safety valve.

    Raised *after* the limit-hitting event ran, so the simulator's state
    is partial — ``now`` sits at that event's time and later events are
    still queued — but fully consistent and open for inspection: the
    clock, ``events_dispatched``, and the pending queue all reflect
    exactly what was dispatched.  The attributes carry the same snapshot
    for handlers that only see the exception.
    """

    def __init__(
        self, max_events: int, dispatched: int, pending: int, now: Nanoseconds
    ) -> None:
        super().__init__(
            f"simulation exceeded max_events={max_events} after dispatching "
            f"{dispatched} events in this run() call ({pending} events still "
            f"pending at t={now}); possible livelock — simulator state is "
            f"partial but consistent for inspection"
        )
        self.max_events = max_events
        self.dispatched = dispatched
        self.pending = pending
        self.now = now


class Simulator:
    """Single-clock discrete-event simulator.

    Parameters
    ----------
    trace:
        When true, every dispatched event is appended to
        :attr:`dispatch_log` as ``(time, callback_qualname)`` — useful in
        tests, far too slow for real runs.  Batched dispatches log one
        line per batch *member*, so a traced run produces the same log
        whether or not coalescing fired.
    sanitize:
        When true (or when the ``REPRO_SANITIZE`` environment variable
        is set and ``sanitize`` is left as ``None``), constructing
        ``Simulator(...)`` transparently yields a
        :class:`repro.analysis.sanitizer.SanitizingSimulator`, whose
        dispatch loop checks runtime invariants (clock monotonicity,
        queue depths, byte conservation, ...) and raises
        :class:`~repro.analysis.sanitizer.SanitizerError` on violation.
        The string form ``"stride:K"`` (e.g. ``"stride:64"``, also
        accepted in ``REPRO_SANITIZE``) samples the invariant sweep
        every K-th event instead of every event — see DESIGN.md §6.
        The sanitized run is bit-identical to a plain one, just slower.
    """

    #: ``__slots__`` keeps every hot attribute (``now`` above all — read
    #: and written once per dispatched event) a fixed-offset slot load
    #: instead of a dict lookup.  Subclasses declare their own additions.
    __slots__ = (
        "now",
        "_queue",
        "_trace",
        "dispatch_log",
        "events_dispatched",
        "_batch_callbacks",
        "sanitizer",
        "watchdog",
    )

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        if cls is Simulator:
            sanitize = kwargs.get("sanitize")
            if sanitize is None:
                from repro.analysis.sanitizer import env_sanitize_mode

                sanitize = env_sanitize_mode(os.environ.get("REPRO_SANITIZE"))
            if sanitize:
                from repro.analysis.sanitizer import SanitizingSimulator

                return object.__new__(SanitizingSimulator)
        return object.__new__(cls)

    def __init__(
        self, *, trace: bool = False, sanitize: bool | str | None = None
    ) -> None:
        self.now: Nanoseconds = 0
        self._queue = EventQueue()
        self._trace = trace
        self.dispatch_log: list[tuple[int, str]] = []
        self.events_dispatched: int = 0
        #: item callback -> batch callback (see :meth:`register_batch`).
        self._batch_callbacks: dict[Callable[..., None], Callable[..., None]] = {}
        #: Set by :class:`~repro.analysis.sanitizer.SanitizingSimulator`;
        #: components register themselves here when it is not ``None``.
        self.sanitizer: "Sanitizer | None" = None
        #: Quiescence hook (e.g. the stuck-I/O watchdog from
        #: :mod:`repro.faults.watchdog`): called with the simulator once
        #: per :meth:`run` call, only when the event heap fully drained —
        #: i.e. the model has nothing left to do.  Zero per-event cost.
        #: The hook may raise (``StuckIOError``) to turn a silent wedge
        #: into a diagnostic failure.
        self.watchdog: "Callable[[Simulator], None] | None" = None

    # -- scheduling -----------------------------------------------------
    def schedule(
        self, delay: Nanoseconds, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` ns from now.

        Extra positional ``args`` are stored on the event handle and
        passed to the callback at dispatch — cheaper than allocating a
        closure per scheduled call on hot paths.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self.now + delay, callback, *args)

    def schedule_at(
        self, time: Nanoseconds, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self._queue.push(time, callback, *args)

    def schedule_anon(
        self, delay: Nanoseconds, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` ``delay`` ns from now, handle-free.

        The anonymous twin of :meth:`schedule`: no :class:`Event` is
        allocated and the call cannot be cancelled.  Use on
        fire-and-forget hot paths (per-packet link steps); keep
        :meth:`schedule` for anything a component may need to cancel.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        # push_anon inlined: this is the per-packet scheduling path, and
        # the extra call frame measurably shows up on the incast cell.
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        heap = queue._heap
        heapq.heappush(heap, (self.now + delay, seq, callback, args))
        queue._live += 1
        if len(heap) > queue.high_water:
            queue.high_water = len(heap)

    def schedule_at_anon(
        self, time: Nanoseconds, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute ``time``, handle-free."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        heap = queue._heap
        heapq.heappush(heap, (time, seq, callback, args))
        queue._live += 1
        if len(heap) > queue.high_water:
            queue.high_water = len(heap)

    def schedule_recurring_anon(
        self,
        interval_ns: Nanoseconds,
        callback: Callable[[], None],
        *,
        until_ns: Nanoseconds,
    ) -> None:
        """Fire ``callback()`` every ``interval_ns`` until ``until_ns``.

        The recurring twin of :meth:`schedule_anon` for coarse-clock
        subsystems (the fluid background-traffic domain of
        :mod:`repro.net.fluid` above all): exactly one anonymous heap
        entry exists per series at any moment — the driver reschedules
        itself after invoking ``callback`` — so a domain ticking every
        ~100 µs costs the heap one slot, not one entry per future tick.
        The last firing is the largest ``now + k * interval_ns`` that is
        ``<= until_ns``; the series then ends (nothing to cancel — the
        driver simply stops rescheduling).
        """
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        first_ns = self.now + interval_ns
        if first_ns <= until_ns:
            self.schedule_at_anon(
                first_ns, self._recurring_tick, interval_ns, until_ns, callback
            )

    def _recurring_tick(
        self,
        interval_ns: Nanoseconds,
        until_ns: Nanoseconds,
        callback: Callable[[], None],
    ) -> None:
        """Driver for :meth:`schedule_recurring_anon` (one hop per tick)."""
        callback()
        next_ns = self.now + interval_ns
        if next_ns <= until_ns:
            self.schedule_at_anon(
                next_ns, self._recurring_tick, interval_ns, until_ns, callback
            )

    def register_batch(
        self,
        callback: Callable[..., None],
        batch_callback: Callable[[list[tuple[Any, ...]]], None],
    ) -> None:
        """Declare ``batch_callback`` the coalesced form of ``callback``.

        When consecutive *anonymous* heap entries share one timestamp
        and the same ``callback`` object, the run loop pops the whole
        run and dispatches ``batch_callback([args, args, ...])`` once —
        each element the args tuple of one member, in dispatch order.
        The callback must be the identical object across schedules
        (e.g. a bound method cached once at construction); equal-but-
        distinct bound methods never coalesce, they just dispatch
        one by one.
        """
        self._batch_callbacks[callback] = batch_callback

    # -- execution ------------------------------------------------------
    def run(
        self, until: Nanoseconds | None = None, max_events: int | None = None
    ) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the
            clock is advanced to ``until`` itself.  ``None`` runs until
            the queue drains.
        max_events:
            Safety valve for tests; raises :class:`MaxEventsExceeded` (a
            ``RuntimeError``) when hit so a livelocked model fails loudly
            rather than hanging CI.  The simulator is left mid-run —
            clock advanced, remaining events queued — but consistent, so
            callers may inspect ``now``, ``pending()``, and
            ``events_dispatched`` after catching the error.  Batch
            coalescing is disabled under ``max_events`` so the limit is
            exact to the single event.

        Returns
        -------
        int
            The number of events dispatched during this call (batch
            members count individually).
        """
        queue = self._queue
        heap = queue._heap  # the queue compacts in place; alias stays valid
        heappop = heapq.heappop
        trace = self._trace
        batch_map = self._batch_callbacks
        deadline = _NO_DEADLINE if until is None else until
        coalesce = batch_map and max_events is None
        dispatched = 0
        if not trace and max_events is None:
            # Lean loop for the overwhelmingly common configuration: no
            # dispatch log, no event limit.  Identical semantics to the
            # general loop below minus its per-event trace/limit checks,
            # which measurably add up at millions of events.
            try:
                while heap:
                    time, _seq, callback, tail = heap[0]
                    if time > deadline:
                        break
                    heappop(heap)
                    if callback is not HANDLED_MARK:
                        queue._live -= 1
                        self.now = time
                        if (
                            coalesce
                            and heap
                            and (head := heap[0])[0] == time
                            and head[2] is callback
                        ):
                            batch_callback = batch_map.get(callback)
                            if batch_callback is not None:
                                batch = [tail]
                                append = batch.append
                                while heap:
                                    head = heap[0]
                                    if head[0] != time or head[2] is not callback:
                                        break
                                    heappop(heap)
                                    append(head[3])
                                queue._live -= len(batch) - 1
                                batch_callback(batch)
                                dispatched += len(batch)
                                continue
                        callback(*tail)
                    else:
                        ev = tail
                        if ev.cancelled:
                            queue._dead -= 1
                            continue
                        ev._queue = None
                        queue._live -= 1
                        self.now = time
                        args = ev.args
                        if args:
                            ev.callback(*args)
                        else:
                            ev.callback()
                    dispatched += 1
            finally:
                self.events_dispatched += dispatched
            if until is not None and until > self.now:
                self.now = until
            if self.watchdog is not None and not heap:
                self.watchdog(self)
            return dispatched
        try:
            while heap:
                time, _seq, callback, tail = heap[0]
                if time > deadline:
                    break
                heappop(heap)
                if callback is not HANDLED_MARK:
                    queue._live -= 1
                    self.now = time
                    if (
                        coalesce
                        and heap
                        and (head := heap[0])[0] == time
                        and head[2] is callback
                    ):
                        batch_callback = batch_map.get(callback)
                        if batch_callback is not None:
                            batch = [tail]
                            append = batch.append
                            while heap:
                                head = heap[0]
                                if head[0] != time or head[2] is not callback:
                                    break
                                heappop(heap)
                                append(head[3])
                            queue._live -= len(batch) - 1
                            if trace:
                                name = getattr(
                                    callback, "__qualname__", repr(callback)
                                )
                                self.dispatch_log.extend(
                                    (time, name) for _ in batch
                                )
                            batch_callback(batch)
                            dispatched += len(batch)
                            continue
                    if trace:
                        self.dispatch_log.append(
                            (time, getattr(callback, "__qualname__", repr(callback)))
                        )
                    callback(*tail)
                else:
                    ev = tail
                    if ev.cancelled:
                        queue._dead -= 1
                        continue
                    ev._queue = None
                    queue._live -= 1
                    self.now = time
                    callback = ev.callback
                    if trace:
                        self.dispatch_log.append(
                            (time, getattr(callback, "__qualname__", repr(callback)))
                        )
                    args = ev.args
                    if args:
                        callback(*args)
                    else:
                        callback()
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise MaxEventsExceeded(
                        max_events, dispatched, queue._live, self.now
                    )
        finally:
            self.events_dispatched += dispatched
        if until is not None and until > self.now:
            self.now = until
        if self.watchdog is not None and not heap:
            self.watchdog(self)
        return dispatched

    def pending(self) -> int:
        """Number of live events still scheduled (O(1))."""
        return len(self._queue)
