"""Discrete-event simulation core shared by the network and SSD simulators.

The engine is a classic calendar-queue design: a binary heap of
``(time, sequence, Event)`` entries driven by :class:`Simulator.run`.
Both the packet-level network simulator (:mod:`repro.net`) and the
transaction-level SSD simulator (:mod:`repro.ssd`) schedule callbacks on
one shared :class:`Simulator` instance so that end-to-end NVMe-oF
experiments advance a single global clock.

Time is measured in integer nanoseconds, sizes in integer bytes; the
:mod:`repro.sim.units` module holds the conversion helpers so that unit
mistakes fail loudly in one place.
"""

from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.rng import make_rng, spawn_rngs
from repro.sim.units import (
    GBPS,
    KIB,
    MIB,
    GIB,
    MS,
    NS,
    US,
    SEC,
    bits_to_bytes,
    bytes_per_ns,
    bytes_to_bits,
    gbps_to_bytes_per_ns,
    rate_to_duration_ns,
    throughput_gbps,
)

__all__ = [
    "MaxEventsExceeded",
    "Simulator",
    "Event",
    "EventQueue",
    "make_rng",
    "spawn_rngs",
    "GBPS",
    "KIB",
    "MIB",
    "GIB",
    "NS",
    "US",
    "MS",
    "SEC",
    "bits_to_bytes",
    "bytes_to_bits",
    "bytes_per_ns",
    "gbps_to_bytes_per_ns",
    "rate_to_duration_ns",
    "throughput_gbps",
]
