"""Seeded random-number helpers.

Every stochastic component in the library draws from a
``numpy.random.Generator`` created here.  Experiments spawn independent
child generators per component (workload generator, MMPP phases, GC
victim selection, ...) from a single master seed so that

* results are exactly reproducible for a fixed seed, and
* changing the number of draws in one component does not perturb the
  streams of the others.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a generator from ``seed`` (``None`` ⇒ OS entropy)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
