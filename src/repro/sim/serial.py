"""Checkpointable serial-id counters.

Several modules hand out monotonically increasing ids (flow ids,
message ids, request ids, page-transaction ids) from process-global
``itertools.count()`` objects.  Those counters are invisible to
checkpoint/restore: a C ``count`` can neither report its position nor
be rewound, so a simulator restored in a fresh process would restart
id allocation at zero and diverge from the uninterrupted run (message
reassembly keys and ECMP flow hashes both consume the ids).

:class:`SerialCounter` is a drop-in replacement — ``next(counter)``
works unchanged — that registers itself under a stable name so
:mod:`repro.sim.checkpoint` can snapshot every counter's position into
the payload and restore it on load.
"""

from __future__ import annotations

from typing import Iterator

#: All live counters by name.  Populated at import time by the modules
#: that own a counter; iterated in sorted order for determinism.
_REGISTRY: dict[str, "SerialCounter"] = {}

#: Restored positions waiting for their counter's module to be imported.
#: A checkpoint may carry counters whose owning module the restoring
#: process has not imported yet (the module's objects were absent from
#: the pickled graph); the position is adopted at registration time.
_PENDING: dict[str, int] = {}


class SerialCounter:
    """A named, snapshot-able ``itertools.count()`` equivalent."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, start: int = 0) -> None:
        if name in _REGISTRY:
            raise ValueError(f"duplicate SerialCounter name: {name!r}")
        self.name = name
        self.value = _PENDING.pop(name, start)
        _REGISTRY[name] = self

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value

    def __iter__(self) -> Iterator[int]:
        return self

    def __repr__(self) -> str:
        return f"SerialCounter({self.name!r}, value={self.value})"

    def __reduce__(self) -> tuple[object, ...]:
        # Counters are module-level singletons: pickle by name so a
        # restored object graph aliases the registry's instance instead
        # of forking a private copy.
        return (_lookup, (self.name,))


def _lookup(name: str) -> SerialCounter:
    return _REGISTRY[name]


def snapshot_counters() -> dict[str, int]:
    """Position of every registered counter, keyed by name."""
    return {name: _REGISTRY[name].value for name in sorted(_REGISTRY)}


def restore_counters(state: dict[str, int]) -> None:
    """Rewind/advance counters to ``state``.

    Counters not registered yet (their owning module is not imported in
    this process) have their position parked in ``_PENDING`` and adopted
    when the module's import registers them; counters that exist here
    but not in ``state`` are left untouched (a newer module's counter
    the old run never used).
    """
    for name in sorted(state):
        counter = _REGISTRY.get(name)
        if counter is not None:
            counter.value = state[name]
        else:
            _PENDING[name] = state[name]
