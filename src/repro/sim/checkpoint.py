"""Versioned, deterministic checkpoint/restore of the whole simulator.

One checkpoint file captures everything a continuation needs to replay
the uninterrupted run byte-for-byte:

* the event heap — tuple entries whose callbacks are bound methods of
  live components.  Bound methods do not pickle stably (name-mangled
  privates fail outright, and the default machinery resolves through
  *instance* getattr, which the sanitizer's instance-attribute wrappers
  shadow), so a custom pickler re-binds each method through its owner's
  **class**: at save time the attribute name is found by searching the
  owner's MRO class dicts for the exact function object; at load time
  ``getattr(type(owner), name).__get__(owner, ...)`` rebuilds the bound
  method without touching instance state.  The pickle memo preserves
  object identity, so cached callback slots (``Link._deliver_cb``,
  ``RateTable._tick_cb``) restore as the *same* object the heap entries
  alias — batch-coalescing identity checks keep working;
* every component's state vectors (queues, NumPy rate-table columns,
  reliability windows, FTL/CMT/write-cache/GC state, inflight maps,
  fault-injector arms) — reached through the ``world`` object pickled
  together with the simulator in one pickle;
* all RNG stream states (``numpy.random.Generator`` pickles exactly);
* the positions of every :class:`repro.sim.serial.SerialCounter`, so a
  fresh process continues id allocation where the saver stopped.

The file layout is one JSON header line (magic, schema version, code
version, scenario fingerprint, payload SHA-256, component census,
simulated time) followed by the raw pickle payload.  Restores validate
the header **before** unpickling anything and fail loudly with a
structured :class:`CheckpointError`.

:func:`run_with_checkpoints` drives a run in ``max_events`` legs,
saving after each leg; on a :class:`~repro.analysis.sanitizer.
SanitizerError` it dumps the nearest checkpoint plus a replay recipe
that :func:`replay_failure` (and the ``repro replay-failure`` CLI)
re-executes under full-fidelity sanitizing — time-travel debugging for
violations deep into long runs.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import types
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro import __version__ as _CODE_VERSION
from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.serial import restore_counters, snapshot_counters

CKPT_MAGIC = "repro-ckpt"
CKPT_SCHEMA = 1
CKPT_SUFFIX = ".ckpt"
#: Default checkpoint cadence (events per leg) — the budget the
#: ``--checkpoint`` benchmark leg pins is measured at this value.
DEFAULT_EVERY = 100_000

__all__ = [
    "CKPT_MAGIC",
    "CKPT_SCHEMA",
    "CheckpointError",
    "CheckpointMeta",
    "CheckpointedRun",
    "latest_checkpoint",
    "load",
    "read_meta",
    "replay_failure",
    "resume_or_start",
    "run_with_checkpoints",
    "save",
    "scenario_fingerprint",
]


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or restored.

    ``reason`` is a stable machine-readable code:

    * ``"unpicklable-callback"`` — the object graph holds a callback
      (closure, lambda, or unbound-able method) the pickler cannot
      re-bind; the detail names it;
    * ``"bad-magic"`` — the file is not a repro checkpoint;
    * ``"schema-mismatch"`` — written by an incompatible format version;
    * ``"code-version-mismatch"`` — written by a different release of
      this library (state vectors may have drifted);
    * ``"scenario-mismatch"`` — the caller's scenario fingerprint does
      not match the one recorded at save time;
    * ``"payload-corrupt"`` — the payload hash does not verify.
    """

    def __init__(self, reason: str, detail: str) -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}")


@dataclass(frozen=True)
class CheckpointMeta:
    """Parsed header of one checkpoint file."""

    path: Path
    schema: int
    code_version: str
    scenario: str | None
    payload_sha256: str
    census: dict[str, int]
    time_ns: int
    events_dispatched: int


def scenario_fingerprint(scenario: Any) -> str:
    """Stable 16-hex digest of a scenario description.

    ``scenario`` is whatever JSON-serialisable value identifies the run
    (a cell dict with seeds, a config mapping, a plain string); the
    canonical form sorts keys so dict ordering cannot perturb it.
    """
    canonical = json.dumps(scenario, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- save-side pickler ----------------------------------------------------


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _slot_names(cls: type) -> list[str]:
    """All slot names across ``cls``'s MRO, in definition order."""
    names: list[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__"):
                names.append(name)
    return names


def _new_instance(cls: type) -> Any:
    """Allocate without ``__init__`` *or* ``cls.__new__``.

    ``Simulator.__new__`` consults the ``REPRO_SANITIZE`` environment
    and may substitute the sanitizing subclass — correct at build time,
    wrong at unpickle time (the checkpoint records which class actually
    ran).  ``object.__new__`` restores exactly the recorded class.
    """
    return object.__new__(cls)


def _rebind_method(owner: Any, name: str) -> Any:
    """Re-bind ``owner``'s method ``name`` through its **class**.

    Never resolved via instance getattr: sanitizer wrappers are
    instance attributes shadowing the class method, and resolving
    through them here would alias the wrapper where the heap held the
    real method (or recurse after a restore).
    """
    if isinstance(owner, type):
        return getattr(owner, name)
    func = getattr(type(owner), name)
    return func.__get__(owner, type(owner))


def _find_method_name(owner: Any, func: Any) -> str | None:
    """Attribute name of ``func`` searched over the owner's MRO.

    ``__func__.__name__`` is wrong for name-mangled privates (the class
    dict key is ``_Cls__name`` while the function keeps ``__name``), so
    the search compares function object identity instead.
    """
    if isinstance(owner, type):
        mro = owner.__mro__
    else:
        mro = type(owner).__mro__
    for klass in mro:
        for name, member in sorted(klass.__dict__.items()):
            if member is func:
                return name
            if isinstance(member, classmethod) and member.__func__ is func:
                return name
    return None


class _CheckpointPickler(pickle.Pickler):
    """Pickler with class-based method re-binding and a component census."""

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=4)
        #: qualname -> set of instance ids seen as method owners.
        self._owners: dict[str, set[int]] = {}

    def census(self) -> dict[str, int]:
        return {name: len(ids) for name, ids in sorted(self._owners.items())}

    def reducer_override(
        self, obj: Any
    ) -> tuple[Callable[..., Any], tuple[Any, ...], Any] | Any:
        if isinstance(obj, types.MethodType):
            owner = obj.__self__
            name = _find_method_name(owner, obj.__func__)
            if name is None:
                raise CheckpointError(
                    "unpicklable-callback",
                    f"bound method {obj.__func__.__qualname__!r} of "
                    f"{type(owner).__name__} instance is not reachable "
                    "through its class",
                )
            cls = owner if isinstance(owner, type) else type(owner)
            self._owners.setdefault(_qualname(cls), set()).add(id(owner))
            return (_rebind_method, (owner, name), None)
        if isinstance(obj, Simulator):
            cls = type(obj)
            self._owners.setdefault(_qualname(cls), set()).add(id(obj))
            state = {}
            for slot in _slot_names(cls):
                try:
                    state[slot] = getattr(obj, slot)
                except AttributeError:
                    continue  # slot never assigned; leave unset on restore
            return (_new_instance, (cls,), (None, state))
        return NotImplemented


# -- file format ----------------------------------------------------------


def save(
    path: str | Path,
    sim: Simulator,
    world: Any = None,
    *,
    scenario: Any = None,
) -> CheckpointMeta:
    """Snapshot ``sim`` plus ``world`` (the object graph that owns the
    components — a Network, a testbed result, any picklable container)
    into one atomic checkpoint file.

    ``sim`` and ``world`` must be pickled together: heap reachability
    alone misses idle components, and a separate pickle would fork the
    shared objects into two copies.
    """
    path = Path(path)
    buffer = io.BytesIO()
    pickler = _CheckpointPickler(buffer)
    payload_obj = {
        "sim": sim,
        "world": world,
        "counters": snapshot_counters(),
    }
    try:
        pickler.dump(payload_obj)
    except CheckpointError:
        raise
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise CheckpointError("unpicklable-callback", str(exc)) from exc
    payload = buffer.getvalue()
    header = {
        "magic": CKPT_MAGIC,
        "schema": CKPT_SCHEMA,
        "code_version": _CODE_VERSION,
        "scenario": None if scenario is None else scenario_fingerprint(scenario),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "census": pickler.census(),
        "time_ns": sim.now,
        "events_dispatched": sim.events_dispatched,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
        fh.write(payload)
    os.replace(tmp, path)  # atomic: a crashed save never corrupts path
    return _meta_from_header(path, header)


def _meta_from_header(path: Path, header: dict[str, Any]) -> CheckpointMeta:
    return CheckpointMeta(
        path=path,
        schema=header["schema"],
        code_version=header["code_version"],
        scenario=header["scenario"],
        payload_sha256=header["payload_sha256"],
        census=header["census"],
        time_ns=header["time_ns"],
        events_dispatched=header["events_dispatched"],
    )


def read_meta(path: str | Path) -> CheckpointMeta:
    """Parse and validate a checkpoint's header without unpickling."""
    path = Path(path)
    with open(path, "rb") as fh:
        first = fh.readline()
    try:
        header = json.loads(first)
    except ValueError as exc:
        raise CheckpointError("bad-magic", f"{path}: unreadable header") from exc
    if not isinstance(header, dict) or header.get("magic") != CKPT_MAGIC:
        raise CheckpointError("bad-magic", f"{path}: not a repro checkpoint")
    if header.get("schema") != CKPT_SCHEMA:
        raise CheckpointError(
            "schema-mismatch",
            f"{path}: written with schema {header.get('schema')}, "
            f"this code reads schema {CKPT_SCHEMA}",
        )
    return _meta_from_header(path, header)


def load(
    path: str | Path,
    *,
    scenario: Any = None,
    verify_payload: bool = True,
) -> tuple[Simulator, Any]:
    """Restore ``(sim, world)`` from a checkpoint file.

    Header validation happens before any unpickling: magic, schema,
    code version, scenario fingerprint (when the caller supplies a
    ``scenario``), and the payload hash all fail loudly with a
    :class:`CheckpointError` naming the mismatch.
    """
    path = Path(path)
    meta = read_meta(path)
    if meta.code_version != _CODE_VERSION:
        raise CheckpointError(
            "code-version-mismatch",
            f"{path}: written by repro {meta.code_version}, "
            f"running repro {_CODE_VERSION}",
        )
    if scenario is not None:
        expected = scenario_fingerprint(scenario)
        if meta.scenario != expected:
            raise CheckpointError(
                "scenario-mismatch",
                f"{path}: checkpoint scenario {meta.scenario}, "
                f"caller scenario {expected}",
            )
    with open(path, "rb") as fh:
        fh.readline()  # header, already validated
        payload = fh.read()
    if verify_payload:
        digest = hashlib.sha256(payload).hexdigest()
        if digest != meta.payload_sha256:
            raise CheckpointError(
                "payload-corrupt",
                f"{path}: payload sha256 {digest[:16]}... != recorded "
                f"{meta.payload_sha256[:16]}...",
            )
    payload_obj = pickle.loads(payload)
    restore_counters(payload_obj["counters"])
    return payload_obj["sim"], payload_obj["world"]


def latest_checkpoint(directory: str | Path) -> Path | None:
    """Newest checkpoint (by events dispatched) in ``directory``."""
    directory = Path(directory)
    best: tuple[int, Path] | None = None
    if not directory.is_dir():
        return None
    for entry in sorted(directory.glob(f"ckpt-*{CKPT_SUFFIX}")):
        try:
            events = int(entry.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        if best is None or events > best[0]:
            best = (events, entry)
    return None if best is None else best[1]


# -- periodic checkpointing + failure capture -----------------------------


@dataclass
class CheckpointedRun:
    """Outcome of :func:`run_with_checkpoints`."""

    checkpoints: list[CheckpointMeta]
    dispatched: int
    failure_recipe: Path | None = None


def _ckpt_path(directory: Path, events: int) -> Path:
    return directory / f"ckpt-{events:012d}{CKPT_SUFFIX}"


def run_with_checkpoints(
    sim: Simulator,
    world: Any,
    *,
    until: int,
    directory: str | Path,
    every: int = DEFAULT_EVERY,
    scenario: Any = None,
    keep: int = 2,
) -> CheckpointedRun:
    """Run to ``until`` in ``every``-event legs, checkpointing each leg.

    The hot dispatch loop is untouched: each leg is a plain
    ``sim.run(until=..., max_events=every)`` call and the
    :class:`MaxEventsExceeded` it raises at a leg boundary is the
    resume point (``run`` leaves the heap and clock mid-run but
    consistent — satellite guarantee tested by
    ``tests/sim/test_resume.py``).

    A checkpoint is also written on entry, so crash recovery and
    failure replay always have a floor to restore from.  On a
    ``SanitizerError`` the nearest checkpoint and a replay recipe are
    dumped to ``directory/failure.json`` (the path is attached to the
    exception as ``replay_recipe``) and the error re-raised.
    """
    from repro.analysis.sanitizer import SanitizerError

    if every < 1:
        raise ValueError("checkpoint cadence must be >= 1 event")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    checkpoints = [save(_ckpt_path(directory, sim.events_dispatched), sim, world, scenario=scenario)]
    dispatched = 0
    while True:
        try:
            dispatched += sim.run(until=until, max_events=every)
        except MaxEventsExceeded as exc:
            dispatched += exc.dispatched
            checkpoints.append(
                save(
                    _ckpt_path(directory, sim.events_dispatched),
                    sim,
                    world,
                    scenario=scenario,
                )
            )
            while len(checkpoints) > max(1, keep):
                old = checkpoints.pop(0)
                old.path.unlink(missing_ok=True)
        except SanitizerError as err:
            recipe_path = _dump_failure(
                directory, checkpoints[-1], err, until=until, scenario=scenario
            )
            err.replay_recipe = str(recipe_path)  # type: ignore[attr-defined]
            raise
        else:
            return CheckpointedRun(checkpoints=checkpoints, dispatched=dispatched)


def _dump_failure(
    directory: Path,
    nearest: CheckpointMeta,
    err: Any,
    *,
    until: int,
    scenario: Any,
) -> Path:
    recipe = {
        "kind": "sanitizer-failure",
        "checkpoint": str(nearest.path),
        "checkpoint_events": nearest.events_dispatched,
        "until": until,
        "scenario": scenario,
        "error": {
            "invariant": getattr(err, "invariant", None),
            "detail": getattr(err, "detail", str(err)),
            "time_ns": getattr(err, "time_ns", None),
            "site": getattr(err, "site", None),
        },
    }
    path = directory / "failure.json"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(recipe, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


# -- restore-side helpers --------------------------------------------------


def resume_or_start(
    directory: str | Path,
    build: Callable[[], tuple[Simulator, Any]],
    *,
    scenario: Any = None,
) -> tuple[Simulator, Any]:
    """Restore the newest checkpoint in ``directory`` or build afresh.

    The resume primitive for crash-recovering sweep workers: attempt N
    picks up exactly where attempt N-1 last checkpointed instead of
    replaying the cell from zero.
    """
    path = latest_checkpoint(directory)
    if path is None:
        return build()
    return load(path, scenario=scenario)


def replay_failure(
    recipe: str | Path | dict[str, Any],
    *,
    until: int | None = None,
) -> dict[str, Any]:
    """Time-travel to a dumped failure: restore its nearest checkpoint
    and deterministically re-run to the violating event.

    When the checkpointed simulator is a ``SanitizingSimulator`` its
    stride is forced to 1 (full fidelity — every event checked, the
    same escalation PR 6's ``escalate()`` applies from time zero, but
    starting at the checkpoint instead).  Returns a report dict; the
    violation is *expected* — ``reproduced`` is False when the re-run
    completes cleanly (e.g. the bug was since fixed).
    """
    from repro.analysis.sanitizer import SanitizerError

    if isinstance(recipe, (str, Path)):
        recipe_path = Path(recipe)
        if recipe_path.is_dir():
            recipe_path = recipe_path / "failure.json"
        recipe_obj: dict[str, Any] = json.loads(recipe_path.read_text())
    else:
        recipe_obj = recipe
    sim, _world = load(
        recipe_obj["checkpoint"], scenario=recipe_obj.get("scenario")
    )
    start_events = sim.events_dispatched
    sanitizing = hasattr(sim, "check_stride")
    if sanitizing:
        sim.check_stride = 1  # full fidelity from the checkpoint on
        sim._check_countdown = 1
    horizon = until if until is not None else recipe_obj["until"]
    report: dict[str, Any] = {
        "reproduced": False,
        "checkpoint": recipe_obj["checkpoint"],
        "checkpoint_events": start_events,
        "sanitizing": sanitizing,
        "events_replayed": 0,
    }
    try:
        sim.run(until=horizon)
    except SanitizerError as err:
        report.update(
            reproduced=True,
            invariant=err.invariant,
            detail=err.detail,
            time_ns=err.time_ns,
            site=err.site,
        )
    report["events_replayed"] = sim.events_dispatched - start_events
    return report
