"""Unit constants and conversions.

Conventions used across the whole library:

* **time** — integer nanoseconds (``int``).  All public APIs that accept a
  duration or timestamp take nanoseconds unless the name says otherwise.
* **size** — integer bytes.
* **rate** — Gbps at configuration boundaries, converted once into
  bytes/ns internally.

Keeping every conversion in this module means a unit bug is a one-file
audit rather than a simulation-wide hunt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.units import Bytes, BytesPerNs, Gbps, Nanoseconds

# --- time ------------------------------------------------------------------
NS: int = 1
US: int = 1_000
MS: int = 1_000_000
SEC: int = 1_000_000_000

# --- size ------------------------------------------------------------------
KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024

# --- rate ------------------------------------------------------------------
#: 1 Gbps expressed in bytes per nanosecond.
GBPS: float = 1e9 / 8 / SEC  # == 0.125 bytes/ns


def bytes_to_bits(nbytes: Bytes) -> int:
    """Convert a byte count to bits."""
    return nbytes * 8


def bits_to_bytes(nbits: int) -> Bytes:
    """Convert a bit count to bytes, rounding up partial bytes."""
    return -(-nbits // 8)


def gbps_to_bytes_per_ns(gbps: Gbps) -> BytesPerNs:
    """Convert a Gbps link/flow rate to bytes per nanosecond."""
    return gbps * GBPS


def bytes_per_ns(nbytes: Bytes, duration_ns: Nanoseconds) -> BytesPerNs:
    """Average rate in bytes/ns of ``nbytes`` moved over ``duration_ns``."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return nbytes / duration_ns


def rate_to_duration_ns(nbytes: Bytes, gbps: Gbps) -> Nanoseconds:
    """Serialization time in ns for ``nbytes`` at ``gbps``, rounded up.

    A zero-byte payload still costs 1 ns so that event ordering around
    control packets stays strict.
    """
    if gbps <= 0:
        raise ValueError(f"rate must be positive, got {gbps}")
    ns = nbytes / gbps_to_bytes_per_ns(gbps)
    return max(1, int(ns + 0.5))


def throughput_gbps(nbytes: Bytes, duration_ns: Nanoseconds) -> Gbps:
    """Throughput in Gbps of ``nbytes`` delivered over ``duration_ns``."""
    return bytes_per_ns(nbytes, duration_ns) / GBPS
