"""Process-pool execution of independent simulation sweep cells.

Every reproduced figure/table is a sweep: a grid of independent cells,
each of which builds its own :class:`repro.sim.engine.Simulator` from
explicit parameters and returns plain measurements.  Nothing couples
the cells, so they fan out across cores — the same decomposition that
lets sampled/parallel estimators scale in the data-center simulation
literature (see PAPERS.md).

Determinism contract
--------------------
A cell's output may depend *only* on its submitted ``(fn, args)`` —
never on execution order, process identity, wall-clock time, or shared
mutable state.  Callers derive any randomness from an explicit seed in
the cell's arguments (:func:`cell_seed` mixes a root seed with the cell
index), so ``workers=N`` is bit-identical to ``workers=1``.

Failure handling
----------------
``run_cells`` keeps the sweep alive when the pool cannot:

* pool creation fails (restricted sandboxes, missing ``/dev/shm``) —
  the whole sweep silently runs serially in-process;
* a cell raises — it is retried (serially, in-process) up to
  ``retries`` more times; what happens when the budget is exhausted is
  the ``on_error`` knob: ``"raise"`` aborts the sweep with
  :class:`SweepCellError` (the default), ``"record"`` stores a
  structured :class:`CellFailure` (cell index, exception repr, attempt
  count) in ``SweepReport.failures`` and keeps going — a 200-cell chaos
  matrix should report its three broken cells, not die on the first;
* a cell exceeds ``timeout_s`` or the pool breaks — the pool is torn
  down, every orphaned worker process is terminated and reaped (a
  timed-out cell's worker keeps computing otherwise), and every
  uncollected cell falls back to the serial path (timeouts cannot be
  enforced in-process; the fallback runs to completion).  The kill is
  charged against the victim cell's attempt budget and recorded in its
  :class:`CellFailure` as ``kind="timeout"``/``"crash"`` when the
  budget runs out.

For worker *heartbeats*, SIGKILL/OOM detection, and bounded
re-execution from periodic checkpoints, see the supervised runner in
:mod:`repro.parallel.supervise`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "CellFailure",
    "CellStats",
    "SweepCellError",
    "SweepReport",
    "cell_seed",
    "resolve_workers",
    "run_cells",
]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def cell_seed(root_seed: int, index: int) -> int:
    """Deterministic per-cell seed: splitmix64 of (root seed, cell index).

    Adjacent indices map to well-separated 31-bit seeds, so per-cell RNG
    streams do not overlap the way ``root_seed + index`` streams can.
    """
    if index < 0:
        raise ValueError(f"cell index must be non-negative, got {index}")
    x = (root_seed ^ (index * _GOLDEN)) & _MASK64
    z = (x + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return int(z % (1 << 31))


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` knob: ``None``/``0`` means all cores."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 or None, got {workers}")
    return workers


class SweepCellError(RuntimeError):
    """A sweep cell kept failing after all retry attempts."""

    def __init__(self, index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"sweep cell {index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.index = index
        self.attempts = attempts
        self.cause = cause


@dataclass(frozen=True)
class CellFailure:
    """One cell that exhausted its retry budget (``on_error="record"``).

    The failing cell's slot in ``SweepReport.results`` holds ``None``;
    this record carries what a post-mortem needs: which cell, what it
    raised, how many attempts were spent on it, and how it died:
    ``"exception"`` (the cell raised), ``"timeout"`` (its worker blew
    the per-cell deadline and was killed), or ``"crash"`` (the worker
    process died — SIGKILL, OOM, broken pool).
    """

    index: int
    error: str  # repr() of the last exception — picklable, log-friendly
    attempts: int
    kind: str = "exception"  # "exception" | "timeout" | "crash"


@dataclass(frozen=True)
class CellStats:
    """Per-cell execution record."""

    index: int
    wall_s: float
    attempts: int
    sim_events: int
    mode: str  # "pool" | "serial" | "failed"


@dataclass
class SweepReport:
    """Ordered sweep results plus lightweight perf counters."""

    results: list[Any]
    cell_stats: list[CellStats]
    workers: int
    wall_s: float
    mode: str  # "serial" | "pool" | "pool+serial-fallback"
    #: Cells that exhausted their retries (``on_error="record"`` only);
    #: each failed cell's ``results`` slot is ``None``.
    failures: list[CellFailure] = field(default_factory=list)
    #: Orphaned worker processes terminated after a timeout/pool break.
    workers_reaped: int = 0

    @property
    def n_cells(self) -> int:
        return len(self.results)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @property
    def cell_wall_s(self) -> float:
        """Summed in-cell wall time (the work the sweep actually did)."""
        return sum(s.wall_s for s in self.cell_stats)

    @property
    def sim_events(self) -> int:
        """Total simulator events dispatched across cells (when reported)."""
        return sum(s.sim_events for s in self.cell_stats)

    def events_per_sec(self) -> float:
        """Aggregate simulated events per wall-clock second."""
        return self.sim_events / self.wall_s if self.wall_s > 0 else 0.0

    def utilization(self) -> float:
        """Fraction of the worker pool kept busy (1.0 = perfect overlap)."""
        if self.wall_s <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.cell_wall_s / (self.wall_s * self.workers))

    def perf_dict(self) -> dict[str, Any]:
        """JSON-ready counters for BENCH_*.json / ``extra_info``."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "n_cells": self.n_cells,
            "wall_s": round(self.wall_s, 4),
            "cell_wall_s": round(self.cell_wall_s, 4),
            "mean_cell_wall_s": round(
                self.cell_wall_s / self.n_cells, 4
            ) if self.n_cells else 0.0,
            "sim_events": self.sim_events,
            "events_per_sec": round(self.events_per_sec(), 1),
            "utilization": round(self.utilization(), 3),
            "n_failed": self.n_failed,
            "workers_reaped": self.workers_reaped,
        }


def _probe_events(value: Any) -> int:
    """Extract a cell's reported simulator event count, if any."""
    if isinstance(value, dict):
        v = value.get("sim_events")
    else:
        v = getattr(value, "sim_events", None)
    try:
        return int(v) if v is not None else 0
    except (TypeError, ValueError):
        return 0


def _run_cell(fn: Callable[..., Any], args: Sequence[Any]) -> tuple[Any, float]:
    """Worker-side wrapper: invoke the cell and time it."""
    t0 = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - t0


def _run_serial(
    fn: Callable[..., Any],
    args: Sequence[Any],
    index: int,
    retries: int,
    prior_attempts: int = 0,
    last_exc: BaseException | None = None,
) -> tuple[Any, float, int]:
    """In-process execution with retry; returns (value, wall_s, attempts).

    ``prior_attempts`` counts pool-side failures already spent from the
    cell's budget of ``1 + retries`` total attempts.
    """
    attempts = prior_attempts
    max_attempts = 1 + max(0, retries)
    while attempts < max_attempts:
        attempts += 1
        try:
            value, wall = _run_cell(fn, args)
            return value, wall, attempts
        except Exception as exc:  # noqa: BLE001 — cell code is arbitrary
            last_exc = exc
    assert last_exc is not None
    raise SweepCellError(index, attempts, last_exc)


def _reap_processes(executor: ProcessPoolExecutor) -> int:
    """Terminate and join every still-live worker of a dead pool.

    ``shutdown(wait=False)`` abandons running workers: a timed-out
    cell's process would keep computing (and holding memory) for the
    rest of the sweep.  Returns how many live workers were killed.
    """
    procs = list((getattr(executor, "_processes", None) or {}).values())
    live = [p for p in procs if p.is_alive()]
    for p in live:
        p.terminate()
    for p in live:
        p.join(timeout=2.0)
        if p.is_alive():  # ignored SIGTERM (stuck in C code): escalate
            p.kill()
            p.join(timeout=2.0)
    return len(live)


def _make_executor(workers: int) -> ProcessPoolExecutor:
    # Fork keeps already-imported numpy/repro state and is the cheap,
    # deterministic-friendly option on Linux; spawn is the fallback.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


def run_cells(
    fn: Callable[..., Any],
    cells: Iterable[Sequence[Any]],
    *,
    workers: int | None = 1,
    timeout_s: float | None = None,
    retries: int = 1,
    on_error: str = "raise",
    progress: Callable[[int, int], None] | None = None,
) -> SweepReport:
    """Run ``fn(*cell)`` for every cell, fanning across processes.

    Parameters
    ----------
    fn:
        A **module-level** function (it is pickled by reference for the
        pool path).  If a returned value exposes ``sim_events`` (attr or
        dict key), it feeds the report's events/sec counter.
    cells:
        One positional-argument tuple per cell.  Results come back in
        cell order regardless of completion order.
    workers:
        Process count; ``None``/``0`` uses every core, ``1`` runs
        serially in-process (no pool, no pickling).
    timeout_s:
        Per-cell deadline, enforced only on the pool path; a timed-out
        sweep degrades to serial for the uncollected cells.  The
        orphaned worker is terminated and reaped (counted in
        ``SweepReport.workers_reaped``) and the kill is charged as one
        attempt against the victim cell's budget.
    retries:
        Extra attempts per failing cell before it counts as failed.
    on_error:
        ``"raise"`` aborts the sweep with :class:`SweepCellError` when a
        cell's attempts are exhausted; ``"record"`` logs a
        :class:`CellFailure` in the report, leaves ``None`` in that
        cell's result slot, and finishes the rest of the sweep.
    progress:
        Optional ``(done, total)`` callback, invoked in cell order.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    cell_list = [tuple(c) for c in cells]
    n = len(cell_list)
    n_workers = resolve_workers(workers)
    results: list[Any] = [None] * n
    stats: list[CellStats | None] = [None] * n
    failures: list[CellFailure] = []
    t_start = time.perf_counter()

    def record(i: int, value: Any, wall: float, attempts: int, mode: str) -> None:
        results[i] = value
        stats[i] = CellStats(
            index=i,
            wall_s=wall,
            attempts=attempts,
            sim_events=_probe_events(value),
            mode=mode,
        )
        if progress:
            progress(sum(s is not None for s in stats), n)

    def record_failure(i: int, err: SweepCellError, kind: str = "exception") -> None:
        if on_error == "raise":
            raise err
        results[i] = None
        stats[i] = CellStats(
            index=i, wall_s=0.0, attempts=err.attempts, sim_events=0, mode="failed"
        )
        failures.append(
            CellFailure(
                index=i, error=repr(err.cause), attempts=err.attempts, kind=kind
            )
        )
        if progress:
            progress(sum(s is not None for s in stats), n)

    mode = "serial"
    start_index = 0
    workers_reaped = 0
    #: Set when the pool died mid-sweep: (victim cell index, cause).
    pool_break: tuple[int, BaseException] | None = None
    executor: ProcessPoolExecutor | None = None
    futures: list[Future[tuple[Any, float]]] = []
    if n_workers > 1 and n > 1:
        try:
            executor = _make_executor(min(n_workers, n))
            futures = [executor.submit(_run_cell, fn, c) for c in cell_list]
        except (OSError, ValueError, ImportError, PermissionError):
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            executor = None  # pool unavailable: graceful serial fallback
            futures = []

    if executor is not None:
        mode = "pool"
        pool_dead = False
        try:
            for i in range(n):
                try:
                    value, wall = futures[i].result(timeout=timeout_s)
                    record(i, value, wall, 1, "pool")
                except (_FutureTimeout, BrokenProcessPool, OSError) as exc:
                    # Pool-level failure: abandon it, finish serially.
                    # The victim cell is charged one attempt (the kill).
                    pool_dead = True
                    mode = "pool+serial-fallback"
                    start_index = i
                    pool_break = (i, exc)
                    break
                except Exception as exc:  # cell failure: retry in-process
                    try:
                        value, wall, attempts = _run_serial(
                            fn, cell_list[i], i, retries,
                            prior_attempts=1, last_exc=exc,
                        )
                    except SweepCellError as err:
                        record_failure(i, err)
                    else:
                        record(i, value, wall, attempts, "serial")
                start_index = i + 1
        finally:
            if pool_dead:
                # Reap before shutdown(): shutdown drops the executor's
                # process table, and with wait=False it would abandon
                # still-running workers as orphans.
                workers_reaped = _reap_processes(executor)
            executor.shutdown(wait=not pool_dead, cancel_futures=True)

    for i in range(start_index, n):
        if stats[i] is not None:
            continue
        prior_attempts = 0
        last_exc: BaseException | None = None
        kind = "exception"
        if pool_break is not None and i == pool_break[0]:
            prior_attempts, last_exc = 1, pool_break[1]
            kind = "timeout" if isinstance(last_exc, _FutureTimeout) else "crash"
        try:
            value, wall, attempts = _run_serial(
                fn, cell_list[i], i, retries,
                prior_attempts=prior_attempts, last_exc=last_exc,
            )
        except SweepCellError as err:
            record_failure(i, err, kind)
        else:
            record(i, value, wall, attempts, "serial")

    assert all(s is not None for s in stats)
    return SweepReport(
        results=results,
        cell_stats=[s for s in stats if s is not None],
        workers=n_workers,
        wall_s=time.perf_counter() - t_start,
        mode=mode,
        failures=failures,
        workers_reaped=workers_reaped,
    )
