"""Crash-resilient sweep supervision: heartbeats, kill detection, resume.

:func:`repro.parallel.pool.run_cells` retries cells whose *code*
raises, but a worker that dies — SIGKILL from the OOM killer, a
segfaulting native extension, a cluster preemption — takes its pool
down and loses every event the cell had simulated.  This module runs
each cell in its own supervised ``multiprocessing.Process`` and closes
that gap:

* **liveness** — the worker publishes a monotonic heartbeat from a
  daemon thread (``time.monotonic`` is system-wide on Linux, so parent
  and child timestamps compare directly); a stalled heartbeat gets the
  worker SIGKILLed and handled like any other crash;
* **crash recovery** — a worker that exits with a signal (negative
  ``exitcode``), a nonzero status, or a heartbeat stall is re-executed
  with a bounded budget.  Cells that checkpoint periodically through
  :func:`repro.sim.checkpoint.run_with_checkpoints` (the worker
  receives a per-cell checkpoint directory) resume from their last
  checkpoint instead of from zero — attempt N starts where attempt
  N-1 last saved;
* **quarantine** — a cell that keeps killing workers exhausts its
  budget and is recorded as a structured
  :class:`~repro.parallel.pool.CellFailure` (``kind="crash"`` or
  ``"timeout"``) without sinking the sweep;
* **reaping** — every spawned process is terminated and joined on
  timeout, shutdown, and supervisor exit; no orphans outlive the
  sweep.

Determinism contract: identical to the pool's — a cell's result may
depend only on its ``(fn, args)``, so a crashed-and-resumed sweep is
bit-identical to an uncrashed one (asserted by
``tests/parallel/test_supervise.py``).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.parallel.pool import CellFailure, SweepCellError, resolve_workers

__all__ = [
    "SupervisedReport",
    "WorkerState",
    "run_cells_supervised",
]

#: Heartbeats per interval the worker publishes (the parent declares a
#: stall only after ``_STALL_FACTOR`` full intervals of silence, so a
#: worker would have to miss many beats, not one).
_BEATS_PER_INTERVAL = 4
_STALL_FACTOR = 3


@dataclass(frozen=True)
class WorkerState:
    """Post-mortem record of one worker attempt."""

    index: int
    attempt: int
    outcome: str  # "ok" | "error" | "crash" | "timeout" | "stall"
    exitcode: int | None
    wall_s: float
    detail: str = ""


@dataclass
class SupervisedReport:
    """Ordered results of a supervised sweep."""

    results: list[Any]
    failures: list[CellFailure] = field(default_factory=list)
    attempts: list[WorkerState] = field(default_factory=list)
    workers_reaped: int = 0
    wall_s: float = 0.0

    @property
    def n_failed(self) -> int:
        return len(self.failures)


def _heartbeat_loop(beat: Any, interval_s: float, stop: threading.Event) -> None:
    while not stop.is_set():
        beat.value = time.monotonic()
        stop.wait(interval_s / _BEATS_PER_INTERVAL)


def _worker_entry(
    fn: Callable[..., Any],
    args: tuple[Any, ...],
    checkpoint_dir: str | None,
    conn: Connection,
    beat: Any,
    heartbeat_s: float,
) -> None:
    """Child-process main: run the cell, stream back (status, payload)."""
    stop = threading.Event()
    thread = threading.Thread(
        target=_heartbeat_loop, args=(beat, heartbeat_s, stop), daemon=True
    )
    thread.start()
    try:
        if checkpoint_dir is not None:
            value = fn(*args, checkpoint_dir=checkpoint_dir)
        else:
            value = fn(*args)
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 — reported, not swallowed
        try:
            conn.send(("error", repr(exc)))
        except (ValueError, OSError):
            pass  # parent gone or result unpicklable; exitcode still reports
        raise SystemExit(1) from exc
    finally:
        stop.set()
        conn.close()


def _kill_and_join(proc: multiprocessing.Process) -> bool:
    """SIGKILL ``proc`` if still alive; True when a live process was reaped."""
    was_alive = proc.is_alive()
    if was_alive:
        proc.kill()
    proc.join(timeout=5.0)
    return was_alive


def run_cells_supervised(
    fn: Callable[..., Any],
    cells: Iterable[Sequence[Any]],
    *,
    workers: int | None = 1,
    heartbeat_s: float = 5.0,
    timeout_s: float | None = None,
    retries: int = 1,
    checkpoint_root: str | Path | None = None,
    on_error: str = "record",
) -> SupervisedReport:
    """Run ``fn(*cell)`` per cell under per-process supervision.

    Parameters
    ----------
    fn:
        Module-level cell function.  When ``checkpoint_root`` is set it
        is called as ``fn(*cell, checkpoint_dir=<root>/cell-<i>)`` and
        should resume from that directory's newest checkpoint (see
        :func:`repro.sim.checkpoint.resume_or_start`) so retried
        attempts continue rather than restart.
    workers:
        Concurrent worker processes (``None``/``0`` = all cores).
    heartbeat_s:
        Liveness interval; a worker silent for ``3 × heartbeat_s`` is
        presumed wedged, SIGKILLed, and treated as a crash.
    timeout_s:
        Hard per-attempt deadline (wall clock); exceeded → SIGKILL,
        recorded as ``kind="timeout"``.
    retries:
        Extra attempts a crashing/timing-out/raising cell gets before
        quarantine.
    on_error:
        ``"record"`` (default) quarantines exhausted cells into
        ``SupervisedReport.failures``; ``"raise"`` aborts the sweep
        with :class:`~repro.parallel.pool.SweepCellError`.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    if heartbeat_s <= 0:
        raise ValueError("heartbeat_s must be positive")
    cell_list = [tuple(c) for c in cells]
    n = len(cell_list)
    n_workers = resolve_workers(workers)
    max_attempts = 1 + max(0, retries)
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )

    root = None if checkpoint_root is None else Path(checkpoint_root)
    if root is not None:
        root.mkdir(parents=True, exist_ok=True)

    results: list[Any] = [None] * n
    done = [False] * n
    attempts_used = [0] * n
    last_error = [""] * n
    last_kind = ["exception"] * n
    failures: list[CellFailure] = []
    attempt_log: list[WorkerState] = []
    workers_reaped = 0
    t_start = time.perf_counter()

    @dataclass
    class _Live:
        index: int
        attempt: int
        proc: multiprocessing.Process
        conn: Connection
        beat: Any
        started: float

    pending = list(range(n))
    live: list[_Live] = []

    def launch(index: int) -> None:
        attempt = attempts_used[index] + 1
        attempts_used[index] = attempt
        recv, send = ctx.Pipe(duplex=False)
        beat = ctx.Value("d", time.monotonic())
        ckpt_dir: str | None = None
        if root is not None:
            cell_dir = root / f"cell-{index}"
            cell_dir.mkdir(parents=True, exist_ok=True)
            ckpt_dir = str(cell_dir)
        proc = ctx.Process(
            target=_worker_entry,
            args=(fn, cell_list[index], ckpt_dir, send, beat, heartbeat_s),
            daemon=False,
        )
        proc.start()
        send.close()  # parent keeps only the read end
        live.append(
            _Live(
                index=index,
                attempt=attempt,
                proc=proc,
                conn=recv,
                beat=beat,
                started=time.perf_counter(),
            )
        )

    def settle(worker: _Live, outcome: str, detail: str) -> None:
        """Record one finished attempt and decide retry vs quarantine."""
        nonlocal workers_reaped
        index = worker.index
        wall = time.perf_counter() - worker.started
        if outcome == "ok":
            # Normal exit: give the worker its shutdown grace before
            # escalating, so successful cells don't count as reaped.
            worker.proc.join(timeout=5.0)
        if _kill_and_join(worker.proc):
            workers_reaped += 1
        worker.conn.close()
        code = worker.proc.exitcode
        if outcome == "crash" and code is not None and str(code) not in detail:
            # Pipe-EOF detection can fire before the exitcode is
            # reaped; fold the status in once it is known.
            cause = f"killed by signal {-code}" if code < 0 else f"exit status {code}"
            detail = f"{detail} ({cause})"
        attempt_log.append(
            WorkerState(
                index=index,
                attempt=worker.attempt,
                outcome=outcome,
                exitcode=worker.proc.exitcode,
                wall_s=wall,
                detail=detail,
            )
        )
        if outcome == "ok":
            done[index] = True
            return
        last_error[index] = detail
        last_kind[index] = {
            "error": "exception",
            "timeout": "timeout",
        }.get(outcome, "crash")
        if attempts_used[index] < max_attempts:
            pending.append(index)  # bounded re-execution (from checkpoint)
            return
        err = SweepCellError(
            index, attempts_used[index], RuntimeError(detail or outcome)
        )
        if on_error == "raise":
            raise err
        done[index] = True
        failures.append(
            CellFailure(
                index=index,
                error=detail or outcome,
                attempts=attempts_used[index],
                kind=last_kind[index],
            )
        )

    try:
        while pending or live:
            while pending and len(live) < n_workers:
                launch(pending.pop(0))
            time.sleep(min(0.02, heartbeat_s / 10))
            now = time.perf_counter()
            for worker in list(live):
                outcome: str | None = None
                detail = ""
                if worker.conn.poll():
                    try:
                        status, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        # poll() is also true at EOF: the worker died
                        # before it could report (SIGKILL/OOM/segfault).
                        outcome = "crash"
                        detail = "worker died before reporting a result"
                    else:
                        if status == "ok":
                            results[worker.index] = payload
                            outcome, detail = "ok", ""
                        else:
                            outcome, detail = "error", str(payload)
                elif worker.proc.exitcode is not None:
                    code = worker.proc.exitcode
                    if code < 0:
                        outcome = "crash"
                        detail = f"worker killed by signal {-code}"
                    elif code != 0:
                        outcome = "crash"
                        detail = f"worker exited with status {code}"
                    else:
                        outcome = "crash"
                        detail = "worker exited without a result"
                elif timeout_s is not None and now - worker.started > timeout_s:
                    outcome = "timeout"
                    detail = f"attempt exceeded timeout_s={timeout_s}"
                elif now - worker.beat.value > _STALL_FACTOR * heartbeat_s:
                    outcome = "stall"
                    detail = (
                        f"heartbeat silent for {now - worker.beat.value:.1f}s "
                        f"(> {_STALL_FACTOR}x heartbeat_s)"
                    )
                if outcome is not None:
                    live.remove(worker)
                    settle(worker, outcome, detail)
    finally:
        # Orphan reaping: nothing spawned here survives the supervisor.
        for worker in live:
            if _kill_and_join(worker.proc):
                workers_reaped += 1
            worker.conn.close()

    return SupervisedReport(
        results=results,
        failures=failures,
        attempts=attempt_log,
        workers_reaped=workers_reaped,
        wall_s=time.perf_counter() - t_start,
    )
