"""Parallel sweep execution.

:mod:`repro.parallel.pool` fans independent cells across a process
pool; :mod:`repro.parallel.supervise` adds per-worker heartbeats,
SIGKILL/OOM crash recovery with checkpoint-based re-execution, and
orphan reaping for long unattended sweeps.
"""

from repro.parallel.pool import (
    CellFailure,
    CellStats,
    SweepCellError,
    SweepReport,
    cell_seed,
    resolve_workers,
    run_cells,
)
from repro.parallel.supervise import (
    SupervisedReport,
    WorkerState,
    run_cells_supervised,
)

__all__ = [
    "CellFailure",
    "CellStats",
    "SupervisedReport",
    "SweepCellError",
    "SweepReport",
    "WorkerState",
    "cell_seed",
    "resolve_workers",
    "run_cells",
    "run_cells_supervised",
]
