"""Parallel sweep execution (see :mod:`repro.parallel.pool`)."""

from repro.parallel.pool import (
    CellStats,
    SweepCellError,
    SweepReport,
    cell_seed,
    resolve_workers,
    run_cells,
)

__all__ = [
    "CellStats",
    "SweepCellError",
    "SweepReport",
    "cell_seed",
    "resolve_workers",
    "run_cells",
]
