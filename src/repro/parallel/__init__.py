"""Parallel sweep execution (see :mod:`repro.parallel.pool`)."""

from repro.parallel.pool import (
    CellFailure,
    CellStats,
    SweepCellError,
    SweepReport,
    cell_seed,
    resolve_workers,
    run_cells,
)

__all__ = [
    "CellFailure",
    "CellStats",
    "SweepCellError",
    "SweepReport",
    "cell_seed",
    "resolve_workers",
    "run_cells",
]
