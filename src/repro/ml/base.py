"""Shared estimator protocol and input validation."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Regressor(Protocol):
    """Minimal estimator protocol all regressors in this package follow."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


def check_Xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalise a training pair.

    Returns float64 copies with ``X`` of shape ``(n, d)`` and ``y`` of
    shape ``(n,)`` or ``(n, k)``.  Raises ``ValueError`` on empty data,
    dimension mismatch, or non-finite values.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim not in (1, 2):
        raise ValueError(f"y must be 1-D or 2-D, got shape {y.shape}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on empty data")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if not np.isfinite(X).all():
        raise ValueError("X contains non-finite values")
    if not np.isfinite(y).all():
        raise ValueError("y contains non-finite values")
    return X, y


def check_X(X: np.ndarray, n_features: int) -> np.ndarray:
    """Validate a prediction input against the fitted feature count."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2 or X.shape[1] != n_features:
        raise ValueError(f"expected shape (n, {n_features}), got {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains non-finite values")
    return X
