"""Random-forest regression: bagged CART trees with feature subsampling.

The ensemble the paper adopts for its throughput-prediction model
(Table I: best accuracy, 0.94).  Predictions average the trees; feature
importances average the trees' Breiman importances — the quantity behind
the paper's "read and write arrival flow speed carries weight 0.39"
observation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_X, check_Xy
from repro.ml.tree import DecisionTreeRegressor
from repro.sim.rng import spawn_rngs


class RandomForestRegressor:
    """Bootstrap-aggregated regression forest.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Per-split feature candidates (default 1/3 of features, the
        classic regression-forest heuristic).
    bootstrap:
        Draw each tree's training set with replacement (size n).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | None = 1 / 3,
        bootstrap: bool = True,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []
        self._n_features = 0
        self._single_output = True

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = check_Xy(X, y)
        self._single_output = y.ndim == 1
        y2 = y.reshape(-1, 1) if self._single_output else y
        self._n_features = X.shape[1]
        rngs = spawn_rngs(self.seed, self.n_estimators)
        self.trees_ = []
        n = X.shape[0]
        for rng in rngs:
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                Xb, yb = X[idx], y2[idx]
            else:
                Xb, yb = X, y2
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31)),
            )
            tree.fit(Xb, yb)
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self._n_features)
        acc = np.zeros((X.shape[0], self.trees_[0]._root.value.shape[0]))
        for tree in self.trees_:
            acc += tree.predict(X)
        acc /= len(self.trees_)
        return acc.ravel() if self._single_output else acc

    @property
    def feature_importances_(self) -> np.ndarray:
        """Forest-averaged Breiman importances (sum to 1)."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        stacked = np.vstack([t.feature_importances_ for t in self.trees_])
        mean = stacked.mean(axis=0)
        total = mean.sum()
        return mean / total if total > 0 else mean
