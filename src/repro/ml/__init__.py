"""From-scratch statistical learning algorithms (NumPy only).

Implements the five regression families the paper compares in Table I —
Linear, Polynomial, K-Nearest-Neighbor, Decision-Tree (CART) and
Random-Forest regression — plus the evaluation machinery: coefficient of
determination (R²), train/validation splitting, k-fold cross-validation
and Breiman (mean-decrease-in-impurity) feature importance used in
§III-B's feature analysis.

All estimators follow a small common protocol (:class:`Regressor`):
``fit(X, y) -> self`` and ``predict(X) -> np.ndarray``, with 2-D ``X`` of
shape ``(n_samples, n_features)`` and multi-output ``y`` of shape
``(n_samples,)`` or ``(n_samples, n_outputs)`` — the TPM predicts read
and write throughput jointly.
"""

from repro.ml.base import Regressor, check_Xy
from repro.ml.metrics import mean_squared_error, r2_score
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.linear import LinearRegression
from repro.ml.polynomial import PolynomialRegression, polynomial_features
from repro.ml.knn import KNeighborsRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor

__all__ = [
    "Regressor",
    "check_Xy",
    "r2_score",
    "mean_squared_error",
    "train_test_split",
    "KFold",
    "cross_val_score",
    "LinearRegression",
    "PolynomialRegression",
    "polynomial_features",
    "KNeighborsRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
]
