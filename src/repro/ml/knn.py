"""K-nearest-neighbor regression.

Brute-force Euclidean neighbours on standardised features.  Training
sets in this library are a few thousand rows, where vectorised
brute-force distance computation beats tree indices in NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_X, check_Xy


class KNeighborsRegressor:
    """Uniform or inverse-distance weighted k-NN regression."""

    def __init__(self, n_neighbors: int = 5, *, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None
        self._single_output = True

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsRegressor":
        X, y = check_Xy(X, y)
        self._single_output = y.ndim == 1
        self._y = y.reshape(-1, 1) if self._single_output else y
        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        self._sigma = np.where(sigma == 0.0, 1.0, sigma)
        self._X = (X - self._mu) / self._sigma
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self._X.shape[1])
        Xs = (X - self._mu) / self._sigma
        k = min(self.n_neighbors, self._X.shape[0])
        # (n_query, n_train) squared distances via the expansion trick.
        d2 = (
            np.sum(Xs**2, axis=1)[:, None]
            + np.sum(self._X**2, axis=1)[None, :]
            - 2.0 * Xs @ self._X.T
        )
        np.maximum(d2, 0.0, out=d2)
        nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
        neigh_y = self._y[nn]  # (n_query, k, n_out)
        if self.weights == "uniform":
            pred = neigh_y.mean(axis=1)
        else:
            d = np.sqrt(np.take_along_axis(d2, nn, axis=1))
            # Exact matches get (effectively) all the weight.
            w = 1.0 / np.maximum(d, 1e-12)
            pred = (neigh_y * w[:, :, None]).sum(axis=1) / w.sum(axis=1)[:, None]
        return pred.ravel() if self._single_output else pred
