"""Polynomial regression: expanded features + ridge-regularised OLS.

Degree-2 expansion (all monomials up to total degree 2, including cross
terms) is the paper's "Polynomial Regression" comparator.  A small ridge
penalty keeps the expanded design matrix solvable when cross terms are
collinear.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.ml.base import check_X, check_Xy


def polynomial_features(X: np.ndarray, degree: int) -> np.ndarray:
    """All monomials of the columns of ``X`` with total degree 1..degree.

    The constant term is excluded (the regressor adds its own intercept).
    Column order is deterministic: degree-1 terms first, then degree-2,
    each in lexicographic index order.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n, d = X.shape
    cols = []
    for deg in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(range(d), deg):
            col = np.ones(n)
            for idx in combo:
                col = col * X[:, idx]
            cols.append(col)
    return np.column_stack(cols)


class PolynomialRegression:
    """Least squares on a polynomial basis expansion."""

    def __init__(self, degree: int = 2, *, ridge: float = 1e-8) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.degree = degree
        self.ridge = ridge
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None
        self._n_features = 0
        self._single_output = True

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PolynomialRegression":
        X, y = check_Xy(X, y)
        self._n_features = X.shape[1]
        self._single_output = y.ndim == 1
        y2 = y.reshape(-1, 1) if self._single_output else y
        phi = polynomial_features(X, self.degree)
        self._mu = phi.mean(axis=0)
        sigma = phi.std(axis=0)
        self._sigma = np.where(sigma == 0.0, 1.0, sigma)
        phi_s = (phi - self._mu) / self._sigma
        n, p = phi_s.shape
        design = np.hstack([np.ones((n, 1)), phi_s])
        # Ridge-regularised normal equations; the intercept is not penalised.
        penalty = self.ridge * np.eye(p + 1)
        penalty[0, 0] = 0.0
        gram = design.T @ design + penalty
        beta = np.linalg.solve(gram, design.T @ y2)
        self.intercept_ = beta[0]
        self.coef_ = beta[1:]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self._n_features)
        phi = polynomial_features(X, self.degree)
        phi_s = (phi - self._mu) / self._sigma
        pred = phi_s @ self.coef_ + self.intercept_
        return pred.ravel() if self._single_output else pred
