"""Dataset splitting and cross-validation.

§IV-C: "we shuffle the whole data set and use the partial data set for
training and the rest for validation" — :func:`train_test_split` with the
paper's 60/40 ratio reproduces Table I; :class:`KFold` +
:func:`cross_val_score` back the Table III style evaluations.
"""

from __future__ import annotations

import copy
from typing import Iterator

import numpy as np

from repro.ml.base import Regressor
from repro.ml.metrics import r2_score
from repro.sim.rng import make_rng


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    train_fraction: float = 0.6,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (X_train, X_val, y_train, y_val).

    Both splits are guaranteed non-empty, which requires at least two
    samples.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    if n != y.shape[0]:
        raise ValueError(f"X has {n} rows but y has {y.shape[0]}")
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = make_rng(seed)
    perm = rng.permutation(n)
    n_train = min(max(int(round(n * train_fraction)), 1), n - 1)
    tr, va = perm[:n_train], perm[n_train:]
    return X[tr], X[va], y[tr], y[va]


class KFold:
    """Shuffled k-fold splitter yielding (train_idx, val_idx) pairs."""

    def __init__(self, n_splits: int = 5, *, seed: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot make {self.n_splits} folds from {n_samples} samples"
            )
        rng = make_rng(self.seed)
        perm = rng.permutation(n_samples)
        folds = np.array_split(perm, self.n_splits)
        for i in range(self.n_splits):
            val = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, val


def cross_val_score(
    model: Regressor,
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_splits: int = 5,
    seed: int | None = None,
) -> np.ndarray:
    """Per-fold R² scores of a fresh clone of ``model`` on each fold.

    The model is deep-copied per fold so repeated fitting never leaks
    state between folds.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, val_idx in KFold(n_splits, seed=seed).split(X.shape[0]):
        fold_model = copy.deepcopy(model)
        fold_model.fit(X[train_idx], y[train_idx])
        scores.append(r2_score(y[val_idx], fold_model.predict(X[val_idx])))
    return np.array(scores)
