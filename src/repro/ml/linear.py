"""Ordinary least-squares linear regression.

Solved via ``numpy.linalg.lstsq`` on the column-augmented design matrix;
features are standardised internally so the normal equations stay well
conditioned when inputs mix nanoseconds (1e4) with ratios (1e0).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_X, check_Xy


class LinearRegression:
    """Multi-output ordinary least squares."""

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None
        self._single_output = True

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = check_Xy(X, y)
        self._single_output = y.ndim == 1
        y2 = y.reshape(-1, 1) if self._single_output else y
        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        self._sigma = np.where(sigma == 0.0, 1.0, sigma)
        Xs = (X - self._mu) / self._sigma
        design = np.hstack([np.ones((Xs.shape[0], 1)), Xs])
        beta, *_ = np.linalg.lstsq(design, y2, rcond=None)
        self.intercept_ = beta[0]
        self.coef_ = beta[1:]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self.coef_.shape[0])
        Xs = (X - self._mu) / self._sigma
        pred = Xs @ self.coef_ + self.intercept_
        return pred.ravel() if self._single_output else pred
