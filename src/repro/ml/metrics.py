"""Regression metrics.

The paper reports the coefficient of determination (R²) as "accuracy"
(Tables I and III); multi-output targets are averaged uniformly, which
is the behaviour assumed when a single accuracy number is quoted for a
model predicting both read and write throughput.
"""

from __future__ import annotations

import numpy as np


def _as_2d(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    return a.reshape(-1, 1) if a.ndim == 1 else a


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination, uniformly averaged over outputs.

    A constant target column scores 1.0 if predicted exactly, else 0.0
    (the convention that keeps the score bounded for degenerate data).
    """
    yt, yp = _as_2d(y_true), _as_2d(y_pred)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    if yt.shape[0] == 0:
        raise ValueError("cannot score empty arrays")
    ss_res = np.sum((yt - yp) ** 2, axis=0)
    ss_tot = np.sum((yt - yt.mean(axis=0)) ** 2, axis=0)
    scores = np.empty(yt.shape[1])
    for j in range(yt.shape[1]):
        if ss_tot[j] == 0.0:
            scores[j] = 1.0 if ss_res[j] == 0.0 else 0.0
        else:
            scores[j] = 1.0 - ss_res[j] / ss_tot[j]
    return float(scores.mean())


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error over all outputs."""
    yt, yp = _as_2d(y_true), _as_2d(y_pred)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    if yt.shape[0] == 0:
        raise ValueError("cannot score empty arrays")
    return float(np.mean((yt - yp) ** 2))
