"""CART regression tree with variance-reduction splitting.

Split search is vectorised per node: for each candidate feature the
sorted prefix sums of ``y`` and ``y**2`` give the weighted child
impurities of every threshold in one pass.  Multi-output targets use the
summed per-output variance as the impurity, so one tree can predict read
and write throughput jointly (as the TPM requires).

Feature importances follow Breiman's mean-decrease-in-impurity: each
split credits its feature with ``n_node * (impurity - weighted child
impurity)``, normalised to sum to one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import check_X, check_Xy
from repro.sim.rng import make_rng


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int
    threshold: float
    left: "_Node | None"
    right: "_Node | None"
    value: np.ndarray  # mean target of the node's training rows

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _impurity_sums(y: np.ndarray) -> float:
    """Total variance impurity * n (summed over outputs) of target block."""
    return float(np.sum(y.var(axis=0)) * y.shape[0])


class DecisionTreeRegressor:
    """CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity/min-samples stop.
    min_samples_split:
        Minimum rows required to attempt a split.
    min_samples_leaf:
        Minimum rows each child must keep.
    max_features:
        Features examined per split: ``None`` (all), an int, or a float
        fraction — the hook random forests use for decorrelation.
    seed:
        RNG seed for the feature subsampling (only relevant when
        ``max_features`` restricts the candidate set).
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | None = None,
        seed: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._n_features = 0
        self._importance_raw: np.ndarray | None = None
        self._single_output = True

    # -- fitting -----------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = check_Xy(X, y)
        self._single_output = y.ndim == 1
        y2 = y.reshape(-1, 1) if self._single_output else y
        self._n_features = X.shape[1]
        self._importance_raw = np.zeros(self._n_features)
        self._rng = make_rng(self.seed)
        self._root = self._build(X, y2, depth=0)
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self._n_features
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValueError("fractional max_features must be in (0, 1]")
            return max(1, int(self.max_features * self._n_features))
        if self.max_features < 1:
            raise ValueError(f"max_features must be >= 1, got {self.max_features}")
        return min(self.max_features, self._n_features)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Find (feature, threshold, impurity_decrease) or None."""
        n = X.shape[0]
        parent_imp = _impurity_sums(y)
        if parent_imp <= 1e-12:
            return None
        k = self._n_candidate_features()
        if k < self._n_features:
            features = self._rng.choice(self._n_features, size=k, replace=False)
        else:
            features = np.arange(self._n_features)

        best: tuple[int, float, float] | None = None
        min_leaf = self.min_samples_leaf
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            ys = y[order]
            # Prefix sums over rows for every output column.
            csum = np.cumsum(ys, axis=0)
            csum2 = np.cumsum(ys**2, axis=0)
            total, total2 = csum[-1], csum2[-1]
            # Candidate split after position i (1-indexed sizes).
            sizes_l = np.arange(1, n)
            valid = (xs[:-1] < xs[1:]) & (sizes_l >= min_leaf) & (n - sizes_l >= min_leaf)
            if not valid.any():
                continue
            sl = csum[:-1]
            sl2 = csum2[:-1]
            nl = sizes_l[:, None].astype(np.float64)
            nr = (n - sizes_l)[:, None].astype(np.float64)
            # n * variance = sum(y^2) - sum(y)^2 / n, per child, per output.
            imp_l = (sl2 - sl**2 / nl).sum(axis=1)
            imp_r = ((total2 - sl2) - (total - sl) ** 2 / nr).sum(axis=1)
            decrease = parent_imp - (imp_l + imp_r)
            decrease[~valid] = -np.inf
            i = int(np.argmax(decrease))
            if decrease[i] <= 1e-12:
                continue
            thr = 0.5 * (xs[i] + xs[i + 1])
            if best is None or decrease[i] > best[2]:
                best = (int(f), float(thr), float(decrease[i]))
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        value = y.mean(axis=0)
        n = X.shape[0]
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return _Node(-1, 0.0, None, None, value)
        split = self._best_split(X, y)
        if split is None:
            return _Node(-1, 0.0, None, None, value)
        feature, threshold, decrease = split
        self._importance_raw[feature] += decrease
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], depth + 1)
        return _Node(feature, threshold, left, right, value)

    # -- inference -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self._n_features)
        out = np.empty((X.shape[0], self._root.value.shape[0]))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out.ravel() if self._single_output else out

    @property
    def feature_importances_(self) -> np.ndarray:
        """Breiman mean-decrease-in-impurity importances (sum to 1)."""
        if self._importance_raw is None:
            raise RuntimeError("model is not fitted")
        total = self._importance_raw.sum()
        if total == 0.0:
            return np.zeros_like(self._importance_raw)
        return self._importance_raw / total

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 = single leaf)."""
        if self._root is None:
            raise RuntimeError("model is not fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def n_leaves(self) -> int:
        """Number of leaf nodes in the fitted tree."""
        if self._root is None:
            raise RuntimeError("model is not fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)
