"""NVMe-oF target: storage node bridging network and NVMe driver(s).

Arriving command capsules are submitted into the NVMe driver of one of
the target's SSDs (round-robin across the flash array).  Completions are
drained from each device CQ in order:

* **write** completions always pop — a small ack capsule returns to the
  initiator, and the completion time is the "write throughput obtained
  at Targets" measurement point (§IV-B);
* **read** completions pop only when the RDMA TXQ can take the data;
  a congested inbound path therefore backs read completions up into the
  CQ until the device's completion posting — and with it command slots —
  stalls.  This is the §II-B degradation chain.

The target also exposes its NIC's DCQCN rate-change stream, which the
SRC controller (:mod:`repro.core.controller`) subscribes to.
"""

from __future__ import annotations

from repro.fabric.capsule import Capsule, CapsuleKind
from repro.net.nic import NIC
from repro.sim.engine import Simulator
from repro.ssd.device import SSD
from repro.workloads.request import IORequest


class Target:
    """One storage node with a flash array behind an NVMe-oF port."""

    def __init__(self, sim: Simulator, nic: NIC, ssds: list[SSD], drivers: list) -> None:
        if not ssds:
            raise ValueError("a target needs at least one SSD")
        if len(ssds) != len(drivers):
            raise ValueError("need exactly one driver per SSD")
        self.sim = sim
        self.nic = nic
        self.name = nic.name
        self.ssds = ssds
        self.drivers = drivers
        for ssd, driver in zip(ssds, drivers):
            driver.connect(ssd)
            ssd.set_cq_listener(self._on_completion_posted)
        nic.endpoint = self._on_message
        nic.txq_drain_listeners.append(self._drain_all)
        self._rr = 0
        self._draining = False
        self._drain_again = False
        #: (time_ns, nbytes) of write completions at the device — the
        #: paper's write throughput measurement point.
        self.write_completions: list[tuple[int, int]] = []
        self.read_device_completions: list[tuple[int, int]] = []
        self.commands_received = 0
        #: Commands completed with a device error (surfaced to the
        #: initiator as ERROR capsules instead of data/acks).
        self.error_completions = 0

    # -- command arrival -------------------------------------------------------
    def _on_message(self, payload, src: str, size_bytes: int) -> None:
        if not isinstance(payload, Capsule) or payload.kind is not CapsuleKind.COMMAND:
            return
        req = payload.request
        req.initiator = req.initiator or src
        self.commands_received += 1
        driver = self.drivers[self._rr]
        self._rr = (self._rr + 1) % len(self.drivers)
        driver.submit(req, now_ns=self.sim.now)

    # -- completion drain ---------------------------------------------------------
    def _on_completion_posted(self, entry) -> None:
        """Account device completions at CQ post time (§IV-B metric:
        write throughput *obtained at Targets* is device service, not the
        later response transmission), then try to drain."""
        req = entry.request
        if req.is_read:
            self.read_device_completions.append((entry.posted_ns, req.size_bytes))
        else:
            self.write_completions.append((entry.posted_ns, req.size_bytes))
        self._drain_all()

    def _drain_all(self) -> None:
        """Drain every SSD's CQ, safely against re-entrancy.

        ``send_message`` can synchronously fire the TXQ-drain listener,
        which calls back into this method while a CQ head is mid-send;
        the guard defers that nested drain to the outer loop instead of
        double-shipping the head entry.
        """
        if self._draining:
            self._drain_again = True
            return
        self._draining = True
        try:
            again = True
            while again:
                self._drain_again = False
                for ssd in self.ssds:
                    self._drain_cq(ssd)
                again = self._drain_again
        finally:
            self._draining = False

    def _drain_cq(self, ssd: SSD) -> None:
        cq = ssd.controller.cq
        while cq:
            head = cq[0]
            req: IORequest = head.request
            if req.error:
                # Device fault (e.g. die failure): a bare error capsule
                # goes back instead of data — small enough to ride the
                # control class, so a congested TXQ cannot delay the
                # bad news behind the data it replaces.
                ssd.pop_completion()
                self.error_completions += 1
                self.nic.send_ack(
                    req.initiator, payload=Capsule(kind=CapsuleKind.ERROR, request=req)
                )
                continue
            if req.is_read:
                capsule = Capsule(kind=CapsuleKind.READ_DATA, request=req)
                if not self.nic.send_message(
                    req.initiator, capsule.wire_bytes, payload=capsule
                ):
                    return  # TXQ full: leave the CQ head in place
                ssd.pop_completion()
            else:
                ssd.pop_completion()
                self.nic.send_ack(
                    req.initiator, payload=Capsule(kind=CapsuleKind.WRITE_ACK, request=req)
                )

    # -- SRC integration hooks ---------------------------------------------------
    def add_rate_listener(self, listener) -> None:
        """Subscribe ``listener(flow, RateChange)`` to DCQCN rate changes."""
        self.nic.rate_listeners.append(listener)

    def set_ssq_weights(self, read_weight: int, write_weight: int) -> None:
        """Apply SSQ weights on every driver that supports them."""
        for driver in self.drivers:
            setter = getattr(driver, "set_weights", None)
            if setter is not None:
                setter(read_weight, write_weight, now_ns=self.sim.now)

    # -- metrics ---------------------------------------------------------------
    def pause_count(self) -> int:
        """Congestion signals received (CNPs at this target's NIC)."""
        return len(self.nic.cnp_log)
