"""NVMe-oF capsules: the payloads the fabric layer exchanges."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.workloads.request import IORequest

#: Wire size of a bare command/response capsule (64 B SQE + framing).
CAPSULE_BYTES = 128


class CapsuleKind(enum.Enum):
    COMMAND = "command"  # initiator -> target: read cmd, or write cmd (+ data)
    READ_DATA = "read_data"  # target -> initiator: read response with data
    WRITE_ACK = "write_ack"  # target -> initiator: write completion
    ERROR = "error"  # target -> initiator: command failed (see request.error)


@dataclass(frozen=True)
class Capsule:
    """One fabric-level message payload."""

    kind: CapsuleKind
    request: IORequest

    @property
    def wire_bytes(self) -> int:
        """Bytes this capsule occupies on the wire.

        Write commands carry their data in-capsule (outbound flow); read
        commands are bare; read responses carry the retrieved data
        (inbound flow); write acks and error completions are bare.
        """
        if self.kind is CapsuleKind.COMMAND:
            if self.request.is_read:
                return CAPSULE_BYTES
            return CAPSULE_BYTES + self.request.size_bytes
        if self.kind is CapsuleKind.READ_DATA:
            return CAPSULE_BYTES + self.request.size_bytes
        return CAPSULE_BYTES
