"""NVMe-over-Fabrics layer: initiators and targets over the network sim.

The :class:`~repro.fabric.initiator.Initiator` replays a trace: read
command capsules and write data travel over its NIC's flows (outbound);
the :class:`~repro.fabric.target.Target` submits arriving commands into
its NVMe driver(s)/SSD(s) and returns read data (inbound flows, the
congestion-sensitive direction) and write acknowledgments.

Read data leaves the target only when the RDMA TXQ has space; stuck
read completions eventually fill the device CQ and hold command slots —
the back-pressure chain through which network congestion control
degrades storage throughput (§II-B), and the chain SRC breaks.
"""

from repro.fabric.capsule import Capsule, CapsuleKind
from repro.fabric.initiator import Initiator, RetryPolicy
from repro.fabric.target import Target

__all__ = ["Capsule", "CapsuleKind", "Initiator", "RetryPolicy", "Target"]
