"""NVMe-oF initiator: replays a workload against remote targets.

Each request is dispatched at its arrival time: a bare command capsule
for reads, command+data for writes.  A full local TXQ parks requests in
a retry queue drained on TXQ space (outbound back-pressure).  Read
completions are recorded when the data message arrives — the
measurement point for "read throughput received at Initiators" (§IV-B).
"""

from __future__ import annotations

from collections import deque

from repro.fabric.capsule import Capsule, CapsuleKind
from repro.net.nic import NIC
from repro.sim.engine import Simulator
from repro.workloads.request import IORequest
from repro.workloads.traces import Trace


class Initiator:
    """One compute node issuing remote I/O."""

    def __init__(self, sim: Simulator, nic: NIC) -> None:
        self.sim = sim
        self.nic = nic
        self.name = nic.name
        nic.endpoint = self._on_message
        nic.txq_drain_listeners.append(self._retry_pending)
        self._pending: deque[IORequest] = deque()
        #: (time_ns, nbytes) of read data received — the paper's read
        #: throughput measurement point.
        self.read_deliveries: list[tuple[int, int]] = []
        #: (time_ns, nbytes) of write acks received.
        self.write_acks: list[tuple[int, int]] = []
        self.requests_sent = 0
        self.reads_completed = 0
        self.writes_completed = 0

    # -- workload ------------------------------------------------------------
    def load_trace(self, trace: Trace, target_of) -> None:
        """Schedule every request; ``target_of(request) -> target name``."""
        for req in trace:
            req.initiator = self.name
            req.target = target_of(req)
            self.sim.schedule_at(req.arrival_ns, lambda r=req: self.issue(r))

    def issue(self, request: IORequest) -> None:
        """Send one request now (queues locally if the TXQ is full)."""
        if not request.target:
            raise ValueError("request has no target assigned")
        request.initiator = self.name
        if not self._try_send(request):
            self._pending.append(request)

    def _try_send(self, request: IORequest) -> bool:
        capsule = Capsule(kind=CapsuleKind.COMMAND, request=request)
        ok = self.nic.send_message(request.target, capsule.wire_bytes, payload=capsule)
        if ok:
            request.submit_ns = self.sim.now
            self.requests_sent += 1
        return ok

    def _retry_pending(self) -> None:
        while self._pending and self._try_send(self._pending[0]):
            self._pending.popleft()

    # -- completions ----------------------------------------------------------
    def _on_message(self, payload, src: str, size_bytes: int) -> None:
        if not isinstance(payload, Capsule):
            return
        req = payload.request
        if payload.kind is CapsuleKind.READ_DATA:
            req.complete_ns = self.sim.now
            self.read_deliveries.append((self.sim.now, req.size_bytes))
            self.reads_completed += 1
        elif payload.kind is CapsuleKind.WRITE_ACK:
            req.complete_ns = self.sim.now
            self.write_acks.append((self.sim.now, req.size_bytes))
            self.writes_completed += 1

    # -- metrics -------------------------------------------------------------
    def outstanding(self) -> int:
        return self.requests_sent - self.reads_completed - self.writes_completed
