"""NVMe-oF initiator: replays a workload against remote targets.

Each request is dispatched at its arrival time: a bare command capsule
for reads, command+data for writes.  A full local TXQ parks requests in
a retry queue drained on TXQ space (outbound back-pressure).  Read
completions are recorded when the data message arrives — the
measurement point for "read throughput received at Initiators" (§IV-B).

Fault recovery (opt-in via :class:`RetryPolicy`): every command sent
carries a timeout; expiry resubmits it with exponential backoff on the
timeout, up to ``max_retries`` resubmissions, after which the request
completes *failed* (``request.error``) rather than hanging forever.
Device-side ``ERROR`` capsules (e.g. die failures surfaced by the
target) go through the same retry path — a retried command may land on
a different SSD of the target's array and succeed.  Late responses to a
command that was already retried and completed are counted and dropped
(``duplicate_completions``), so each request finishes exactly once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.fabric.capsule import Capsule, CapsuleKind
from repro.net.nic import NIC
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.workloads.request import IORequest
from repro.workloads.traces import Trace

if TYPE_CHECKING:
    from repro.core.units import Nanoseconds


@dataclass(frozen=True)
class RetryPolicy:
    """NVMe-oF command timeout + bounded retry parameters.

    ``timeout_ns`` is the first attempt's deadline; attempt ``n`` waits
    ``timeout_ns * backoff**n``.  ``max_retries`` counts resubmissions
    (so a command is sent at most ``max_retries + 1`` times).
    """

    timeout_ns: Nanoseconds = 2_000_000
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_ns <= 0:
            raise ValueError("command timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff multiplier must be >= 1")


class Initiator:
    """One compute node issuing remote I/O."""

    def __init__(
        self, sim: Simulator, nic: NIC, retry_policy: RetryPolicy | None = None
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.name = nic.name
        self.retry_policy = retry_policy
        nic.endpoint = self._on_message
        nic.txq_drain_listeners.append(self._retry_pending)
        self._pending: deque[IORequest] = deque()
        #: req_id -> request, for every issued request not yet completed
        #: or failed (the initiator's responsibility set).
        self._inflight: dict[int, IORequest] = {}
        #: req_id -> armed timeout event (retry mode only).
        self._timers: dict[int, Event] = {}
        #: (time_ns, nbytes) of read data received — the paper's read
        #: throughput measurement point.
        self.read_deliveries: list[tuple[int, int]] = []
        #: (time_ns, nbytes) of write acks received.
        self.write_acks: list[tuple[int, int]] = []
        #: (time_ns, request) of requests that exhausted their retries.
        self.failures: list[tuple[int, IORequest]] = []
        self.requests_sent = 0
        self.reads_completed = 0
        self.writes_completed = 0
        self.failed_requests = 0
        #: Command resubmissions (timeout- or error-triggered).
        self.retries_sent = 0
        self.timeouts_fired = 0
        #: Responses to commands already completed via a retry.
        self.duplicate_completions = 0

    # -- workload ------------------------------------------------------------
    def load_trace(self, trace: Trace, target_of) -> None:
        """Schedule every request; ``target_of(request) -> target name``."""
        for req in trace:
            req.initiator = self.name
            req.target = target_of(req)
            self.sim.schedule_at(req.arrival_ns, self.issue, req)

    def issue(self, request: IORequest) -> None:
        """Send one request now (queues locally if the TXQ is full)."""
        if not request.target:
            raise ValueError("request has no target assigned")
        request.initiator = self.name
        self._inflight[request.req_id] = request
        if not self._try_send(request):
            self._pending.append(request)

    def _try_send(self, request: IORequest) -> bool:
        capsule = Capsule(kind=CapsuleKind.COMMAND, request=request)
        ok = self.nic.send_message(request.target, capsule.wire_bytes, payload=capsule)
        if ok:
            request.submit_ns = self.sim.now
            self.requests_sent += 1
            if self.retry_policy is not None:
                self._arm_timer(request)
        return ok

    def _retry_pending(self) -> None:
        pending = self._pending
        while pending:
            head = pending[0]
            if head.req_id not in self._inflight:
                # Completed while parked (a late response beat the
                # resubmission to it) — nothing left to send.
                pending.popleft()
                continue
            if not self._try_send(head):
                return
            pending.popleft()

    # -- command timeout / retry -------------------------------------------
    def _arm_timer(self, request: IORequest) -> None:
        policy = self.retry_policy
        assert policy is not None
        old = self._timers.pop(request.req_id, None)
        if old is not None:
            old.cancel()
        deadline = int(policy.timeout_ns * policy.backoff**request.retries)
        self._timers[request.req_id] = self.sim.schedule(
            deadline, self._on_timeout, request
        )

    def _cancel_timer(self, req_id: int) -> None:
        timer = self._timers.pop(req_id, None)
        if timer is not None:
            timer.cancel()

    def _on_timeout(self, request: IORequest) -> None:
        self._timers.pop(request.req_id, None)
        if request.req_id not in self._inflight:
            return  # completed while the cancel was in flight
        self.timeouts_fired += 1
        self._retry_or_fail(request, "timeout")

    def _retry_or_fail(self, request: IORequest, cause: str) -> None:
        policy = self.retry_policy
        if policy is None or request.retries >= policy.max_retries:
            request.error = request.error or cause
            request.complete_ns = self.sim.now
            self._inflight.pop(request.req_id, None)
            self._cancel_timer(request.req_id)
            self.failed_requests += 1
            self.failures.append((self.sim.now, request))
            return
        request.retries += 1
        request.error = ""  # the new attempt starts clean
        self.retries_sent += 1
        if not self._try_send(request):
            self._pending.append(request)

    # -- completions ----------------------------------------------------------
    def _on_message(self, payload, src: str, size_bytes: int) -> None:
        if not isinstance(payload, Capsule):
            return
        req = payload.request
        live = self._inflight.pop(req.req_id, None)
        if live is None:
            # A retried command completed twice (e.g. the original
            # response was merely late, not lost).
            self.duplicate_completions += 1
            return
        if payload.kind is CapsuleKind.ERROR:
            # Put it back while the retry decision is made: a retry
            # keeps the request in flight, exhaustion removes it.
            self._inflight[req.req_id] = req
            self._cancel_timer(req.req_id)
            self._retry_or_fail(req, req.error or "media")
            return
        self._cancel_timer(req.req_id)
        if payload.kind is CapsuleKind.READ_DATA:
            req.complete_ns = self.sim.now
            self.read_deliveries.append((self.sim.now, req.size_bytes))
            self.reads_completed += 1
        elif payload.kind is CapsuleKind.WRITE_ACK:
            req.complete_ns = self.sim.now
            self.write_acks.append((self.sim.now, req.size_bytes))
            self.writes_completed += 1

    # -- metrics -------------------------------------------------------------
    def outstanding(self) -> int:
        """Requests issued but neither completed nor failed."""
        return len(self._inflight)

    def wedged_requests(self) -> list[IORequest]:
        """Snapshot of in-flight requests (for watchdog diagnostics)."""
        return list(self._inflight.values())
