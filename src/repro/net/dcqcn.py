"""DCQCN reaction-point (RP) state machine — Zhu et al., SIGCOMM'15.

Per-flow sender-side rate control:

* **on CNP**: remember the current rate as the target, cut the current
  rate by ``alpha/2``, and raise ``alpha`` (congestion severity
  estimate);
* **alpha decay**: every ``alpha_timer_ns`` without a CNP, decay alpha;
* **rate increase**: two independent counters — an elapsed-time timer
  and a transmitted-byte counter — each advance a stage; the first
  ``fast_recovery_threshold`` stages halve the gap to the target (fast
  recovery), later stages grow the target additively, and much later
  hyper-additively.

The :class:`RateChange` listener hook is the integration point SRC uses:
every decrease is a *pause* event carrying the demanded sending rate,
and increases back toward line rate are *retrieval* events (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class DCQCNConfig:
    """RP parameters (SIGCOMM'15 defaults, scaled to 40 Gbps links)."""

    line_rate_gbps: float = 40.0
    min_rate_gbps: float = 0.1
    g: float = 1 / 16  # alpha gain
    initial_alpha: float = 1.0
    alpha_timer_ns: int = 55_000
    increase_timer_ns: int = 55_000
    byte_counter_bytes: int = 10 * 1024 * 1024
    fast_recovery_threshold: int = 5
    rate_ai_gbps: float = 0.4  # additive increase step
    rate_hai_gbps: float = 4.0  # hyper increase step

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0 or self.min_rate_gbps <= 0:
            raise ValueError("rates must be positive")
        if self.min_rate_gbps > self.line_rate_gbps:
            raise ValueError("min rate exceeds line rate")
        if not 0 < self.g <= 1:
            raise ValueError("g must be in (0, 1]")
        if self.alpha_timer_ns <= 0 or self.increase_timer_ns <= 0:
            raise ValueError("timers must be positive")
        if self.byte_counter_bytes <= 0:
            raise ValueError("byte counter must be positive")
        if self.fast_recovery_threshold < 1:
            raise ValueError("fast recovery threshold must be >= 1")


@dataclass(frozen=True)
class RateChange:
    """One rate adjustment, as reported to listeners."""

    time_ns: int
    rate_gbps: float
    decreased: bool  # True = cut (pause-like), False = raise (retrieval-like)


class DCQCNRateControl:
    """RP state for one flow."""

    def __init__(self, sim: Simulator, config: DCQCNConfig | None = None) -> None:
        self.sim = sim
        self.config = config or DCQCNConfig()
        self.current_rate_gbps = self.config.line_rate_gbps
        self.target_rate_gbps = self.config.line_rate_gbps
        self.alpha = self.config.initial_alpha
        self._bytes_since_increase = 0
        self._timer_stage = 0
        self._byte_stage = 0
        self._congested = False  # a CNP has been seen since line rate
        self._alpha_timer_event = None
        self._increase_timer_event = None
        self.listeners: list[Callable[[RateChange], None]] = []
        self.cnp_count = 0

    # -- listener plumbing -------------------------------------------------
    def _notify(self, decreased: bool) -> None:
        change = RateChange(
            time_ns=self.sim.now, rate_gbps=self.current_rate_gbps, decreased=decreased
        )
        for listener in self.listeners:
            listener(change)

    def _set_rate(self, rate_gbps: float, *, decreased: bool) -> None:
        rate_gbps = min(
            self.config.line_rate_gbps, max(self.config.min_rate_gbps, rate_gbps)
        )
        if rate_gbps == self.current_rate_gbps:
            return
        self.current_rate_gbps = rate_gbps
        self._notify(decreased)

    # -- CNP reaction ----------------------------------------------------------
    def on_cnp(self) -> None:
        """React to a congestion notification packet."""
        self.cnp_count += 1
        self.target_rate_gbps = self.current_rate_gbps
        self._set_rate(
            self.current_rate_gbps * (1.0 - self.alpha / 2.0), decreased=True
        )
        self.alpha = (1.0 - self.config.g) * self.alpha + self.config.g
        self._congested = True
        self._timer_stage = 0
        self._byte_stage = 0
        self._bytes_since_increase = 0
        self._restart_timers()

    def _restart_timers(self) -> None:
        for ev_name in ("_alpha_timer_event", "_increase_timer_event"):
            ev = getattr(self, ev_name)
            if ev is not None:
                ev.cancel()
        self._alpha_timer_event = self.sim.schedule(
            self.config.alpha_timer_ns, self._alpha_decay
        )
        self._increase_timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    def _alpha_decay(self) -> None:
        self.alpha *= 1.0 - self.config.g
        if self._congested:
            self._alpha_timer_event = self.sim.schedule(
                self.config.alpha_timer_ns, self._alpha_decay
            )

    def _timer_tick(self) -> None:
        if not self._congested:
            return
        self._timer_stage += 1
        self._increase_rate()
        self._increase_timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    # -- byte counter (driven by the NIC on each data packet sent) -----------
    def on_bytes_sent(self, nbytes: int) -> None:
        if not self._congested:
            return
        self._bytes_since_increase += nbytes
        if self._bytes_since_increase >= self.config.byte_counter_bytes:
            self._bytes_since_increase = 0
            self._byte_stage += 1
            self._increase_rate()

    # -- increase logic ----------------------------------------------------------
    def _increase_rate(self) -> None:
        cfg = self.config
        stage = min(self._timer_stage, self._byte_stage)
        if max(self._timer_stage, self._byte_stage) <= cfg.fast_recovery_threshold:
            pass  # fast recovery: target unchanged
        elif stage <= cfg.fast_recovery_threshold:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_ai_gbps
            )
        else:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_hai_gbps
            )
        self._set_rate(
            (self.target_rate_gbps + self.current_rate_gbps) / 2.0, decreased=False
        )
        if (
            self.current_rate_gbps >= cfg.line_rate_gbps
            and self.target_rate_gbps >= cfg.line_rate_gbps
        ):
            # Fully recovered; stop the increase/decay machinery until the
            # next CNP.
            self._congested = False
