"""DCQCN reaction-point (RP) state machine — Zhu et al., SIGCOMM'15.

Per-flow sender-side rate control:

* **on CNP**: remember the current rate as the target, cut the current
  rate by ``alpha/2``, and raise ``alpha`` (congestion severity
  estimate);
* **alpha decay**: every ``alpha_timer_ns`` without a CNP, decay alpha;
* **rate increase**: two independent counters — an elapsed-time timer
  and a transmitted-byte counter — each advance a stage; the first
  ``fast_recovery_threshold`` stages halve the gap to the target (fast
  recovery), later stages grow the target additively, and much later
  hyper-additively.

The :class:`RateChange` listener hook is the integration point SRC uses:
every decrease is a *pause* event carrying the demanded sending rate,
and increases back toward line rate are *retrieval* events (§III-C).

Timer implementation
--------------------
The original RP as specified runs *two* always-rescheduling timer events
per congested flow.  Only one of them — the rate-increase timer — has
externally visible effects at its firing time (rate changes feed pacing
and listeners).  Alpha, by contrast, is only ever *read* when the next
CNP arrives, so its decay is evaluated lazily here: :attr:`alpha` is
computed from the elapsed time since the last CNP, replaying exactly the
multiplicative decays the scheduled events would have applied (same
repeated-multiplication float sequence, so results are bit-identical).
A decay boundary coinciding exactly with a CNP counts as having fired
first, matching the event engine's tie-break (the decay event is pushed
long before the packet-arrival event, so it carries the lower sequence
number whenever the propagation delay is below ``alpha_timer_ns``).
Each flow therefore schedules at most one real event — the increase
timer — and a CNP burst cancels/reschedules one event instead of two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.units import gbps_to_bytes_per_ns


@dataclass(frozen=True)
class DCQCNConfig:
    """RP parameters (SIGCOMM'15 defaults, scaled to 40 Gbps links)."""

    line_rate_gbps: float = 40.0
    min_rate_gbps: float = 0.1
    g: float = 1 / 16  # alpha gain
    initial_alpha: float = 1.0
    alpha_timer_ns: int = 55_000
    increase_timer_ns: int = 55_000
    byte_counter_bytes: int = 10 * 1024 * 1024
    fast_recovery_threshold: int = 5
    rate_ai_gbps: float = 0.4  # additive increase step
    rate_hai_gbps: float = 4.0  # hyper increase step

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0 or self.min_rate_gbps <= 0:
            raise ValueError("rates must be positive")
        if self.min_rate_gbps > self.line_rate_gbps:
            raise ValueError("min rate exceeds line rate")
        if not 0 < self.g <= 1:
            raise ValueError("g must be in (0, 1]")
        if self.alpha_timer_ns <= 0 or self.increase_timer_ns <= 0:
            raise ValueError("timers must be positive")
        if self.byte_counter_bytes <= 0:
            raise ValueError("byte counter must be positive")
        if self.fast_recovery_threshold < 1:
            raise ValueError("fast recovery threshold must be >= 1")


@dataclass(frozen=True)
class RateChange:
    """One rate adjustment, as reported to listeners."""

    time_ns: int
    rate_gbps: float
    decreased: bool  # True = cut (pause-like), False = raise (retrieval-like)


class DCQCNRateControl:
    """RP state for one flow."""

    __slots__ = (
        "sim",
        "config",
        "current_rate_gbps",
        "target_rate_gbps",
        "current_bytes_per_ns",
        "_alpha_value",
        "_alpha_anchor_ns",
        "_decay_stop_ns",
        "_bytes_since_increase",
        "_timer_stage",
        "_byte_stage",
        "_congested",
        "_timer_event",
        "listeners",
        "cnp_count",
    )

    def __init__(self, sim: Simulator, config: DCQCNConfig | None = None) -> None:
        self.sim = sim
        self.config = config or DCQCNConfig()
        self.current_rate_gbps = self.config.line_rate_gbps
        self.target_rate_gbps = self.config.line_rate_gbps
        #: Pacing-ready form of ``current_rate_gbps`` (NIC hot path).
        self.current_bytes_per_ns = gbps_to_bytes_per_ns(self.current_rate_gbps)
        # Lazy alpha: value as of the anchor instant, plus the window in
        # which decay boundaries (anchor + k*alpha_timer_ns) still fire.
        self._alpha_value = self.config.initial_alpha
        self._alpha_anchor_ns: int | None = None  # None = no decay accruing
        self._decay_stop_ns: int | None = None  # congestion cleared here
        self._bytes_since_increase = 0
        self._timer_stage = 0
        self._byte_stage = 0
        self._congested = False  # a CNP has been seen since line rate
        self._timer_event = None  # the one real scheduled event per flow
        self.listeners: list[Callable[[RateChange], None]] = []
        self.cnp_count = 0

    # -- lazy alpha --------------------------------------------------------
    @property
    def alpha(self) -> float:
        """Congestion severity estimate, decayed up to the current instant."""
        return self._alpha_at(self.sim.now)

    def _alpha_at(self, now: int) -> float:
        anchor = self._alpha_anchor_ns
        if anchor is None:
            return self._alpha_value
        period = self.config.alpha_timer_ns
        n = (now - anchor) // period
        if n <= 0:
            return self._alpha_value
        stop = self._decay_stop_ns
        if stop is not None:
            # Decay events fire at every boundary up to the congestion-
            # clear instant, plus the one already scheduled past it.
            cap = (stop - anchor) // period + 1
            if n > cap:
                n = cap
        # Replay the exact repeated multiplication the eager timer
        # performed — (a*f)*f != a*(f*f) in floats, so no pow() shortcut.
        value = self._alpha_value
        factor = 1.0 - self.config.g
        for _ in range(n):
            if value == 0.0:
                break
            value *= factor
        return value

    # -- listener plumbing -------------------------------------------------
    def _notify(self, decreased: bool) -> None:
        change = RateChange(
            time_ns=self.sim.now, rate_gbps=self.current_rate_gbps, decreased=decreased
        )
        for listener in self.listeners:
            listener(change)

    def _set_rate(self, rate_gbps: float, *, decreased: bool) -> None:
        rate_gbps = min(
            self.config.line_rate_gbps, max(self.config.min_rate_gbps, rate_gbps)
        )
        if rate_gbps == self.current_rate_gbps:
            return
        self.current_rate_gbps = rate_gbps
        self.current_bytes_per_ns = gbps_to_bytes_per_ns(rate_gbps)
        self._notify(decreased)

    # -- CNP reaction ----------------------------------------------------------
    def on_cnp(self) -> None:
        """React to a congestion notification packet."""
        self.cnp_count += 1
        now = self.sim.now
        alpha = self._alpha_at(now)  # materialise decays pending since anchor
        self.target_rate_gbps = self.current_rate_gbps
        self._set_rate(self.current_rate_gbps * (1.0 - alpha / 2.0), decreased=True)
        self._alpha_value = (1.0 - self.config.g) * alpha + self.config.g
        self._alpha_anchor_ns = now
        self._decay_stop_ns = None
        self._congested = True
        self._timer_stage = 0
        self._byte_stage = 0
        self._bytes_since_increase = 0
        if self._timer_event is not None:
            self._timer_event.cancel()
        self._timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    def _timer_tick(self) -> None:
        if not self._congested:
            return
        self._timer_stage += 1
        self._increase_rate()
        self._timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    # -- byte counter (driven by the NIC on each data packet sent) -----------
    def on_bytes_sent(self, nbytes: int) -> None:
        if not self._congested:
            return
        self._bytes_since_increase += nbytes
        if self._bytes_since_increase >= self.config.byte_counter_bytes:
            self._bytes_since_increase = 0
            self._byte_stage += 1
            self._increase_rate()

    # -- increase logic ----------------------------------------------------------
    def _increase_rate(self) -> None:
        cfg = self.config
        stage = min(self._timer_stage, self._byte_stage)
        if max(self._timer_stage, self._byte_stage) <= cfg.fast_recovery_threshold:
            pass  # fast recovery: target unchanged
        elif stage <= cfg.fast_recovery_threshold:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_ai_gbps
            )
        else:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_hai_gbps
            )
        self._set_rate(
            (self.target_rate_gbps + self.current_rate_gbps) / 2.0, decreased=False
        )
        if (
            self.current_rate_gbps >= cfg.line_rate_gbps
            and self.target_rate_gbps >= cfg.line_rate_gbps
        ):
            # Fully recovered; stop the increase machinery until the next
            # CNP.  Alpha decay boundaries stop accruing one period after
            # this instant (the eager implementation had one more decay
            # event already in flight when congestion cleared).
            self._congested = False
            self._decay_stop_ns = self.sim.now
