"""DCQCN reaction-point (RP) state machine — Zhu et al., SIGCOMM'15.

Per-flow sender-side rate control:

* **on CNP**: remember the current rate as the target, cut the current
  rate by ``alpha/2``, and raise ``alpha`` (congestion severity
  estimate);
* **alpha decay**: every ``alpha_timer_ns`` without a CNP, decay alpha;
* **rate increase**: two independent counters — an elapsed-time timer
  and a transmitted-byte counter — each advance a stage; the first
  ``fast_recovery_threshold`` stages halve the gap to the target (fast
  recovery), later stages grow the target additively, and much later
  hyper-additively.

The :class:`RateChange` listener hook is the integration point SRC uses:
every decrease is a *pause* event carrying the demanded sending rate,
and increases back toward line rate are *retrieval* events (§III-C).

Timer implementation
--------------------
The original RP as specified runs *two* always-rescheduling timer events
per congested flow.  Only one of them — the rate-increase timer — has
externally visible effects at its firing time (rate changes feed pacing
and listeners).  Alpha, by contrast, is only ever *read* when the next
CNP arrives, so its decay is evaluated lazily here: :attr:`alpha` is
computed from the elapsed time since the last CNP, replaying exactly the
multiplicative decays the scheduled events would have applied (same
repeated-multiplication float sequence, so results are bit-identical).
A decay boundary coinciding exactly with a CNP counts as having fired
first, matching the event engine's tie-break (the decay event is pushed
long before the packet-arrival event, so it carries the lower sequence
number whenever the propagation delay is below ``alpha_timer_ns``).
Each flow therefore schedules at most one real event — the increase
timer — and a CNP burst cancels/reschedules one event instead of two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.units import gbps_to_bytes_per_ns

#: ``next_tick`` sentinel for flows with no increase timer pending.
_NEVER = 1 << 62


@dataclass(frozen=True)
class DCQCNConfig:
    """RP parameters (SIGCOMM'15 defaults, scaled to 40 Gbps links)."""

    line_rate_gbps: float = 40.0
    min_rate_gbps: float = 0.1
    g: float = 1 / 16  # alpha gain
    initial_alpha: float = 1.0
    alpha_timer_ns: int = 55_000
    increase_timer_ns: int = 55_000
    byte_counter_bytes: int = 10 * 1024 * 1024
    fast_recovery_threshold: int = 5
    rate_ai_gbps: float = 0.4  # additive increase step
    rate_hai_gbps: float = 4.0  # hyper increase step

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0 or self.min_rate_gbps <= 0:
            raise ValueError("rates must be positive")
        if self.min_rate_gbps > self.line_rate_gbps:
            raise ValueError("min rate exceeds line rate")
        if not 0 < self.g <= 1:
            raise ValueError("g must be in (0, 1]")
        if self.alpha_timer_ns <= 0 or self.increase_timer_ns <= 0:
            raise ValueError("timers must be positive")
        if self.byte_counter_bytes <= 0:
            raise ValueError("byte counter must be positive")
        if self.fast_recovery_threshold < 1:
            raise ValueError("fast recovery threshold must be >= 1")


@dataclass(frozen=True)
class RateChange:
    """One rate adjustment, as reported to listeners."""

    time_ns: int
    rate_gbps: float
    decreased: bool  # True = cut (pause-like), False = raise (retrieval-like)


class DCQCNRateControl:
    """RP state for one flow."""

    __slots__ = (
        "sim",
        "config",
        "current_rate_gbps",
        "target_rate_gbps",
        "current_bytes_per_ns",
        "_alpha_value",
        "_alpha_anchor_ns",
        "_decay_cap",
        "_bytes_since_increase",
        "_timer_stage",
        "_byte_stage",
        "_congested",
        "_timer_event",
        "listeners",
        "cnp_count",
    )

    def __init__(self, sim: Simulator, config: DCQCNConfig | None = None) -> None:
        self.sim = sim
        self.config = config or DCQCNConfig()
        self.current_rate_gbps = self.config.line_rate_gbps
        self.target_rate_gbps = self.config.line_rate_gbps
        #: Pacing-ready form of ``current_rate_gbps`` (NIC hot path).
        self.current_bytes_per_ns = gbps_to_bytes_per_ns(self.current_rate_gbps)
        # Lazy alpha: value as of the anchor instant, plus the window in
        # which decay boundaries (anchor + k*alpha_timer_ns) still fire.
        self._alpha_value = self.config.initial_alpha
        self._alpha_anchor_ns: int | None = None  # None = no decay accruing
        self._decay_cap: int | None = None  # max decays after congestion cleared
        self._bytes_since_increase = 0
        self._timer_stage = 0
        self._byte_stage = 0
        self._congested = False  # a CNP has been seen since line rate
        self._timer_event = None  # the one real scheduled event per flow
        self.listeners: list[Callable[[RateChange], None]] = []
        self.cnp_count = 0

    # -- lazy alpha --------------------------------------------------------
    @property
    def alpha(self) -> float:
        """Congestion severity estimate, decayed up to the current instant."""
        return self._alpha_at(self.sim.now)

    def _alpha_at(self, now: int) -> float:
        anchor = self._alpha_anchor_ns
        if anchor is None:
            return self._alpha_value
        period = self.config.alpha_timer_ns
        n = (now - anchor) // period
        if n <= 0:
            return self._alpha_value
        cap = self._decay_cap
        if cap is not None and n > cap:
            n = cap
        # Replay the exact repeated multiplication the eager timer
        # performed — (a*f)*f != a*(f*f) in floats, so no pow() shortcut.
        value = self._alpha_value
        factor = 1.0 - self.config.g
        for _ in range(n):
            if value == 0.0:
                break
            value *= factor
        return value

    # -- listener plumbing -------------------------------------------------
    def _notify(self, decreased: bool) -> None:
        change = RateChange(
            time_ns=self.sim.now, rate_gbps=self.current_rate_gbps, decreased=decreased
        )
        for listener in self.listeners:
            listener(change)

    def _set_rate(self, rate_gbps: float, *, decreased: bool) -> None:
        rate_gbps = min(
            self.config.line_rate_gbps, max(self.config.min_rate_gbps, rate_gbps)
        )
        if rate_gbps == self.current_rate_gbps:
            return
        self.current_rate_gbps = rate_gbps
        self.current_bytes_per_ns = gbps_to_bytes_per_ns(rate_gbps)
        self._notify(decreased)

    # -- CNP reaction ----------------------------------------------------------
    def on_cnp(self) -> None:
        """React to a congestion notification packet."""
        self.cnp_count += 1
        now = self.sim.now
        alpha = self._alpha_at(now)  # materialise decays pending since anchor
        self.target_rate_gbps = self.current_rate_gbps
        self._set_rate(self.current_rate_gbps * (1.0 - alpha / 2.0), decreased=True)
        self._alpha_value = (1.0 - self.config.g) * alpha + self.config.g
        self._alpha_anchor_ns = now
        self._decay_cap = None
        self._congested = True
        self._timer_stage = 0
        self._byte_stage = 0
        self._bytes_since_increase = 0
        if self._timer_event is not None:
            self._timer_event.cancel()
        self._timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    def _timer_tick(self) -> None:
        if not self._congested:
            return
        self._timer_stage += 1
        # Tie-break for a recovery landing exactly on a decay boundary:
        # the boundary's decay event was pushed one alpha period before
        # the tick's push, so it carries the lower sequence number (and
        # fires first) exactly when alpha_timer_ns >= increase_timer_ns.
        self._increase_rate(
            tie_decay_first=self.config.alpha_timer_ns >= self.config.increase_timer_ns
        )
        self._timer_event = self.sim.schedule(
            self.config.increase_timer_ns, self._timer_tick
        )

    # -- byte counter (driven by the NIC on each data packet sent) -----------
    def on_bytes_sent(self, nbytes: int) -> None:
        if not self._congested:
            return
        self._bytes_since_increase += nbytes
        if self._bytes_since_increase >= self.config.byte_counter_bytes:
            self._bytes_since_increase = 0
            self._byte_stage += 1
            # The byte counter fires from the NIC pump; near recovery the
            # flow paces at ~line rate, so the pump's wake-up was pushed
            # well under one alpha period ago — a same-instant decay
            # boundary always carries the lower sequence number.
            self._increase_rate(tie_decay_first=True)

    # -- increase logic ----------------------------------------------------------
    def _increase_rate(self, *, tie_decay_first: bool) -> None:
        cfg = self.config
        stage = min(self._timer_stage, self._byte_stage)
        if max(self._timer_stage, self._byte_stage) <= cfg.fast_recovery_threshold:
            pass  # fast recovery: target unchanged
        elif stage <= cfg.fast_recovery_threshold:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_ai_gbps
            )
        else:
            self.target_rate_gbps = min(
                cfg.line_rate_gbps, self.target_rate_gbps + cfg.rate_hai_gbps
            )
        self._set_rate(
            (self.target_rate_gbps + self.current_rate_gbps) / 2.0, decreased=False
        )
        if (
            self.current_rate_gbps >= cfg.line_rate_gbps
            and self.target_rate_gbps >= cfg.line_rate_gbps
        ):
            # Fully recovered; stop the increase machinery until the next
            # CNP.  Freeze the number of decays that may still accrue:
            # every boundary strictly before this instant fired, plus the
            # one decay event still in flight.  A boundary coinciding
            # exactly with this instant counts as already fired only when
            # its decay event carried the lower sequence number
            # (``tie_decay_first``); counting it unconditionally applied
            # one decay too many whenever the clearing event won the tie.
            self._congested = False
            anchor = self._alpha_anchor_ns
            if anchor is not None:
                j, rem = divmod(self.sim.now - anchor, self.config.alpha_timer_ns)
                if rem == 0 and j >= 1 and not tie_decay_first:
                    self._decay_cap = j
                else:
                    self._decay_cap = j + 1


class TableRateControl:
    """One flow's view into a :class:`RateTable` row.

    Drop-in for :class:`DCQCNRateControl` from the NIC's perspective:
    same ``on_cnp`` / ``on_bytes_sent`` / ``listeners`` / rate attributes.
    The hot fields the pump reads every segment
    (:attr:`current_bytes_per_ns`, the congested flag, the byte counter)
    are plain Python scalars mirrored from the packed arrays, so pacing
    never pays a NumPy scalar-boxing round trip.
    """

    __slots__ = (
        "table",
        "row",
        "current_rate_gbps",
        "target_rate_gbps",
        "current_bytes_per_ns",
        "_congested",
        "_bytes_since_increase",
        "listeners",
        "cnp_count",
    )

    def __init__(self, table: "RateTable", row: int) -> None:
        self.table = table
        self.row = row
        line = table.config.line_rate_gbps
        self.current_rate_gbps = line
        self.target_rate_gbps = line
        self.current_bytes_per_ns = gbps_to_bytes_per_ns(line)
        self._congested = False
        self._bytes_since_increase = 0
        self.listeners: list[Callable[[RateChange], None]] = []
        self.cnp_count = 0

    @property
    def alpha(self) -> float:
        """Congestion severity estimate, decayed up to the current instant."""
        return self.table._alpha_at(self.row, self.table.sim.now)

    @property
    def config(self) -> DCQCNConfig:
        return self.table.config

    def on_cnp(self) -> None:
        self.cnp_count += 1
        self.table.on_cnp(self)

    def on_bytes_sent(self, nbytes: int) -> None:
        if not self._congested:
            return
        self._bytes_since_increase += nbytes
        if self._bytes_since_increase >= self.table.config.byte_counter_bytes:
            self._bytes_since_increase = 0
            self.table.on_byte_counter(self)


class RateTable:
    """Packed per-flow DCQCN state, batch-updated with NumPy.

    Structure-of-arrays replacement for N independent
    :class:`DCQCNRateControl` instances (the scalar class remains as the
    reference implementation the equivalence tests pin against).  One
    NIC owns one table; rows are allocated in flow-creation order and
    views (:class:`TableRateControl`) expose the scalar API per flow.

    Two things are vectorized:

    * **rate increases** — instead of one self-rescheduling timer event
      per congested flow, the table keeps one shared engine event at
      ``min(next_tick)`` over all rows and, when it fires, applies the
      whole due set's stage bump / target growth / rate update as array
      operations (listeners then fire per changed row, in row order);
    * **alpha decay materialisation** — the same sweep replays every due
      flow's pending lazy alpha decays in bulk (one masked multiply per
      replay step, preserving the scalar repeated-multiplication float
      sequence bit-for-bit).

    All arithmetic is float64 elementwise, the same IEEE operations in
    the same order as the scalar reference, so per-flow trajectories are
    bit-identical; only event bookkeeping (one shared timer vs N) moves.
    """

    def __init__(self, sim: Simulator, config: DCQCNConfig | None = None) -> None:
        self.sim = sim
        self.config = config or DCQCNConfig()
        self.views: list[TableRateControl] = []
        self._n = 0
        cap = 8
        self.current_rate = np.full(cap, self.config.line_rate_gbps)
        self.target_rate = np.full(cap, self.config.line_rate_gbps)
        self.alpha_value = np.full(cap, self.config.initial_alpha)
        #: -1 = no decay accruing (mirrors the scalar ``None`` anchor).
        self.alpha_anchor = np.full(cap, -1, dtype=np.int64)
        #: -1 = uncapped; else max decays applied past the anchor.
        self.decay_cap = np.full(cap, -1, dtype=np.int64)
        self.timer_stage = np.zeros(cap, dtype=np.int64)
        self.byte_stage = np.zeros(cap, dtype=np.int64)
        self.congested = np.zeros(cap, dtype=bool)
        self.next_tick = np.full(cap, _NEVER, dtype=np.int64)
        self._timer_event = None
        self._deadline = _NEVER
        self._tick_cb = self._tick

    # -- row allocation ---------------------------------------------------
    def new_flow(self) -> TableRateControl:
        """Allocate a row and return its flow-facing view."""
        row = self._n
        if row == len(self.current_rate):
            for name in (
                "current_rate",
                "target_rate",
                "alpha_value",
                "alpha_anchor",
                "decay_cap",
                "timer_stage",
                "byte_stage",
                "congested",
                "next_tick",
            ):
                old = getattr(self, name)
                grown = np.empty(len(old) * 2, dtype=old.dtype)
                grown[: len(old)] = old
                setattr(self, name, grown)
            self.current_rate[row:] = self.config.line_rate_gbps
            self.target_rate[row:] = self.config.line_rate_gbps
            self.alpha_value[row:] = self.config.initial_alpha
            self.alpha_anchor[row:] = -1
            self.decay_cap[row:] = -1
            self.timer_stage[row:] = 0
            self.byte_stage[row:] = 0
            self.congested[row:] = False
            self.next_tick[row:] = _NEVER
        self._n = row + 1
        view = TableRateControl(self, row)
        self.views.append(view)
        return view

    # -- lazy alpha -------------------------------------------------------
    def _alpha_at(self, row: int, now: int) -> float:
        """Scalar replay of pending decays for one row (CNP/read path).

        Same loop as :meth:`DCQCNRateControl._alpha_at`, against the
        packed columns.
        """
        anchor = int(self.alpha_anchor[row])
        value = float(self.alpha_value[row])
        if anchor < 0:
            return value
        period = self.config.alpha_timer_ns
        n = (now - anchor) // period
        if n <= 0:
            return value
        cap = int(self.decay_cap[row])
        if cap >= 0 and n > cap:
            n = cap
        factor = 1.0 - self.config.g
        for _ in range(n):
            if value == 0.0:
                break
            value *= factor
        return value

    # -- shared increase timer --------------------------------------------
    def _retime(self) -> None:
        """Keep the one shared engine event at ``min(next_tick)`` exactly."""
        n = self._n
        deadline = int(self.next_tick[:n].min()) if n else _NEVER
        if deadline == self._deadline:
            return
        if self._timer_event is not None:
            self._timer_event.cancel()
            self._timer_event = None
        self._deadline = deadline
        if deadline != _NEVER:
            self._timer_event = self.sim.schedule_at(deadline, self._tick_cb)

    # -- CNP reaction (scalar row path; CNPs are per-flow and rate-limited)
    def on_cnp(self, view: TableRateControl) -> None:
        now = self.sim.now
        row = view.row
        cfg = self.config
        alpha = self._alpha_at(row, now)  # materialise decays pending since anchor
        current = view.current_rate_gbps
        self.target_rate[row] = current
        view.target_rate_gbps = current
        new_rate = current * (1.0 - alpha / 2.0)
        new_rate = min(cfg.line_rate_gbps, max(cfg.min_rate_gbps, new_rate))
        if new_rate != current:
            self.current_rate[row] = new_rate
            view.current_rate_gbps = new_rate
            view.current_bytes_per_ns = gbps_to_bytes_per_ns(new_rate)
            self._notify(view, new_rate, decreased=True)
        self.alpha_value[row] = (1.0 - cfg.g) * alpha + cfg.g
        self.alpha_anchor[row] = now
        self.decay_cap[row] = -1
        self.congested[row] = True
        view._congested = True
        self.timer_stage[row] = 0
        self.byte_stage[row] = 0
        view._bytes_since_increase = 0
        self.next_tick[row] = now + cfg.increase_timer_ns
        self._retime()

    def _notify(self, view: TableRateControl, rate: float, *, decreased: bool) -> None:
        change = RateChange(time_ns=self.sim.now, rate_gbps=rate, decreased=decreased)
        for listener in view.listeners:
            listener(change)

    # -- byte counter (scalar row path; fires once per byte_counter_bytes)
    def on_byte_counter(self, view: TableRateControl) -> None:
        row = view.row
        self.byte_stage[row] += 1
        # Same tie-break as the scalar reference's byte path: near
        # recovery the pump's wake-up was pushed well under one alpha
        # period ago, so a same-instant decay boundary fires first.
        self._increase_row(view, tie_decay_first=True)

    def _increase_row(self, view: TableRateControl, *, tie_decay_first: bool) -> None:
        """Scalar mirror of :meth:`DCQCNRateControl._increase_rate`."""
        row = view.row
        cfg = self.config
        timer_stage = int(self.timer_stage[row])
        byte_stage = int(self.byte_stage[row])
        target = view.target_rate_gbps
        if max(timer_stage, byte_stage) <= cfg.fast_recovery_threshold:
            pass  # fast recovery: target unchanged
        elif min(timer_stage, byte_stage) <= cfg.fast_recovery_threshold:
            target = min(cfg.line_rate_gbps, target + cfg.rate_ai_gbps)
        else:
            target = min(cfg.line_rate_gbps, target + cfg.rate_hai_gbps)
        self.target_rate[row] = target
        view.target_rate_gbps = target
        current = view.current_rate_gbps
        new_rate = (target + current) / 2.0
        new_rate = min(cfg.line_rate_gbps, max(cfg.min_rate_gbps, new_rate))
        if new_rate != current:
            self.current_rate[row] = new_rate
            view.current_rate_gbps = new_rate
            view.current_bytes_per_ns = gbps_to_bytes_per_ns(new_rate)
            self._notify(view, new_rate, decreased=False)
        if new_rate >= cfg.line_rate_gbps and target >= cfg.line_rate_gbps:
            self._clear_congestion(row, view, tie_decay_first=tie_decay_first)

    def _clear_congestion(
        self, row: int, view: TableRateControl, *, tie_decay_first: bool
    ) -> None:
        """Freeze the decay cap exactly as the scalar reference does."""
        cfg = self.config
        self.congested[row] = False
        view._congested = False
        self.next_tick[row] = _NEVER
        anchor = int(self.alpha_anchor[row])
        if anchor >= 0:
            j, rem = divmod(self.sim.now - anchor, cfg.alpha_timer_ns)
            if rem == 0 and j >= 1 and not tie_decay_first:
                self.decay_cap[row] = j
            else:
                self.decay_cap[row] = j + 1
        self._retime()

    # -- vectorized shared tick -------------------------------------------
    def _tick(self) -> None:
        """Apply the increase tick to every due row in one NumPy sweep."""
        self._timer_event = None
        self._deadline = _NEVER
        now = self.sim.now
        cfg = self.config
        n = self._n
        due = np.nonzero(self.next_tick[:n] == now)[0]
        if due.size == 0:  # pragma: no cover - _retime keeps the deadline exact
            self._retime()
            return
        if due.size == 1:
            # Singleton fast path: the shared timer usually wakes for one
            # flow (CNPs stagger the per-row deadlines), and the scalar
            # row path is cheaper than a NumPy sweep at that size.  Alpha
            # stays lazy — ``_alpha_at`` replays the identical repeated
            # multiplications on the next read, so skipping the bulk
            # materialisation is observationally bit-identical.
            row = int(due[0])
            self.timer_stage[row] += 1
            self.next_tick[row] = now + cfg.increase_timer_ns
            self._increase_row(
                self.views[row],
                tie_decay_first=cfg.alpha_timer_ns >= cfg.increase_timer_ns,
            )
            self._retime()
            return
        # Stage bump (scalar: _timer_tick increments before increasing).
        self.timer_stage[due] += 1
        timer_stage = self.timer_stage[due]
        byte_stage = self.byte_stage[due]

        # Bulk-materialise pending lazy alpha decays for the due set:
        # semantics-preserving (the anchor advances by whole periods and
        # any cap shrinks by the decays applied), and bit-identical — the
        # masked multiply replays the scalar repeated-multiplication
        # sequence one step at a time across all rows.
        tie_decay_first = cfg.alpha_timer_ns >= cfg.increase_timer_ns
        anchor = self.alpha_anchor[due]
        accruing = anchor >= 0
        if accruing.any():
            period = cfg.alpha_timer_ns
            boundaries, rem = np.divmod(now - anchor, period)
            pending = np.maximum(boundaries, 0)
            if not tie_decay_first:
                # This tick's event was pushed before a decay event due
                # at the same instant (increase_timer < alpha_timer), so
                # a boundary coinciding exactly with ``now`` has not
                # fired yet — leave it pending for the next read.
                pending -= (rem == 0) & (pending > 0)
            cap = self.decay_cap[due]
            capped = cap >= 0
            pending[capped] = np.minimum(pending[capped], cap[capped])
            steps = int(pending.max())
            if steps > 0:
                values = self.alpha_value[due]
                factor = 1.0 - cfg.g
                for step in range(steps):
                    values[pending > step] *= factor
                self.alpha_value[due] = values
                self.alpha_anchor[due] = anchor + pending * period
                cap = np.where(capped, cap - pending, cap)
                self.decay_cap[due] = cap

        # Vectorized _increase_rate: identical float64 ops, elementwise.
        target = self.target_rate[due]
        low = np.minimum(timer_stage, byte_stage)
        high = np.maximum(timer_stage, byte_stage)
        thr = cfg.fast_recovery_threshold
        line = cfg.line_rate_gbps
        additive = (high > thr) & (low <= thr)
        if additive.any():
            target = np.where(
                additive, np.minimum(line, target + cfg.rate_ai_gbps), target
            )
        hyper = low > thr
        if hyper.any():
            target = np.where(
                hyper, np.minimum(line, target + cfg.rate_hai_gbps), target
            )
        current = self.current_rate[due]
        new_rate = (target + current) / 2.0
        new_rate = np.minimum(line, np.maximum(cfg.min_rate_gbps, new_rate))
        changed = new_rate != current
        recovered = (new_rate >= line) & (target >= line)
        self.target_rate[due] = target
        self.current_rate[due] = new_rate
        self.next_tick[due] = now + cfg.increase_timer_ns

        # Per-row epilogue in row (flow-creation) order: mirror updates,
        # listener callbacks, congestion clearing.
        views = self.views
        for k in range(due.size):
            row = int(due[k])
            view = views[row]
            view.target_rate_gbps = float(target[k])
            if changed[k]:
                rate = float(new_rate[k])
                view.current_rate_gbps = rate
                view.current_bytes_per_ns = gbps_to_bytes_per_ns(rate)
                self._notify(view, rate, decreased=False)
            if recovered[k]:
                self._clear_congestion(row, view, tie_decay_first=tie_decay_first)
        self._retime()


def fluid_rate_step(
    rate_gbps: float, alpha: float, mark_prob: float, config: DCQCNConfig
) -> tuple[float, float]:
    """One mean-field DCQCN update for a fluid-modelled flow.

    The fluid domain (:mod:`repro.net.fluid`) does not see individual
    CNPs; it sees a per-interval ECN marking *probability* derived from
    link utilization.  This function is the expectation of the packet-
    level RP over one control interval under that probability:

    * alpha tracks congestion severity exactly as the RP's EWMA does,
      with the CNP indicator replaced by its mean ``mark_prob``;
    * the multiplicative cut ``rate * alpha/2`` is applied weighted by
      the probability a CNP would have arrived this interval;
    * recovery is the additive-increase step weighted by the
      probability the interval stayed clean (fast recovery and hyper
      increase average out of the mean-field limit — they accelerate
      convergence, not the fixed point).

    Returns the clamped ``(new_rate_gbps, new_alpha)`` pair.  Pure
    function of its arguments so the solver stays trivially replayable.
    """
    if not 0.0 <= mark_prob <= 1.0:
        raise ValueError(f"mark probability must be in [0, 1], got {mark_prob}")
    g = config.g
    new_alpha = (1.0 - g) * alpha + g * mark_prob
    new_rate = rate_gbps * (1.0 - mark_prob * new_alpha / 2.0)
    new_rate += config.rate_ai_gbps * (1.0 - mark_prob)
    new_rate = min(config.line_rate_gbps, max(config.min_rate_gbps, new_rate))
    return new_rate, new_alpha
