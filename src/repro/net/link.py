"""Unidirectional links: serialization, propagation, PFC pause.

A :class:`Link` connects a transmitting device to a receiving device.
Packets entering the link queue in FIFO order (control packets jump the
queue), serialize at the link rate, then arrive at the receiver after
the propagation delay.  PFC pauses stop *data* transmission; control
packets still pass, as PFC operates per traffic class and control
traffic rides the lossless high-priority class.

Hot-path notes: the serialization-finish and arrival steps are bound
methods that receive the packet as an event argument — the engine calls
``callback(packet)`` directly, so no closure is allocated per packet —
and serialization times are memoised per packet size (MTU-dominated
traffic hits a single dict entry).  Both steps are scheduled as
*anonymous* events (``schedule_anon``): nothing ever cancels an
in-flight serialization or propagation (see :meth:`Link.set_down` — a
packet on the wire always finishes), so the per-packet ``Event`` handle
was pure allocation overhead.  Deliveries additionally register a batch
callback (:meth:`Link._deliver_batch`): when several packets of one
link arrive in the same tick, the engine coalesces them into a single
dispatch over the packet batch, which lands on the receiving device's
``receive_batch`` entry point when it has one.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.units import gbps_to_bytes_per_ns

if TYPE_CHECKING:
    from repro.core.units import Bytes, Gbps, Nanoseconds

#: Fault-filter verdicts (see :attr:`Link.fault_filter`).
FAULT_PASS = 0
FAULT_DROP = 1
FAULT_CORRUPT = 2


class Device(Protocol):
    """Anything that can terminate a link."""

    name: str

    def receive(self, packet: Packet, in_port: int) -> None: ...


class Link:
    """One direction of a cable."""

    __slots__ = (
        "sim",
        "rate_gbps",
        "delay_ns",
        "dst",
        "dst_port",
        "name",
        "_bytes_per_ns",
        "_queue",
        "_queued_bytes",
        "_busy",
        "paused",
        "down",
        "fault_filter",
        "on_depart",
        "bytes_sent",
        "packets_sent",
        "packets_lost",
        "packets_corrupted",
        "packets_dropped_down",
        "_ser_cache",
        "_finish_cb",
        "_deliver_cb",
        "_dst_receive_batch",
        "_fluid_load_bytes_per_ns",
        "_eff_bytes_per_ns",
        "_ns_per_byte",
        "_finish_burst_cb",
        "_deliver_burst_cb",
    )

    def __init__(
        self,
        sim: Simulator,
        *,
        rate_gbps: Gbps,
        delay_ns: Nanoseconds,
        dst: Device,
        dst_port: int,
        name: str = "",
    ) -> None:
        if rate_gbps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_gbps}")
        if delay_ns < 0:
            raise ValueError(f"link delay must be non-negative, got {delay_ns}")
        self.sim = sim
        self.rate_gbps = rate_gbps
        self.delay_ns = delay_ns
        self.dst = dst
        self.dst_port = dst_port
        self.name = name or f"->{dst.name}"
        self._bytes_per_ns = gbps_to_bytes_per_ns(rate_gbps)
        #: Fluid background load currently riding this link (dual-
        #: fidelity coupling, see :mod:`repro.net.fluid`); zero outside
        #: fluid mode.
        self._fluid_load_bytes_per_ns = 0.0
        #: Serialization rate the packet domain actually sees: capacity
        #: minus the fluid load.  Assigned (never derived arithmetically)
        #: when the load is zero, so packet-only runs use the exact same
        #: float as ``_bytes_per_ns`` and stay bit-identical.
        self._eff_bytes_per_ns = self._bytes_per_ns
        #: Reciprocal, precomputed for the vectorized burst path (NumPy
        #: multiplies beat divides, and the scalar memo below keeps the
        #: K=1 path untouched).
        self._ns_per_byte = 1.0 / self._eff_bytes_per_ns
        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        self.paused = False
        #: Administratively down (fault injection): new data sends are
        #: dropped, the queue (control included) is frozen until link-up.
        self.down = False
        #: Fault-injection hook: called with each *data* packet whose
        #: serialization just finished; returns ``FAULT_PASS`` /
        #: ``FAULT_DROP`` / ``FAULT_CORRUPT``.  ``None`` (default) costs
        #: one ``is None`` check per departure.
        self.fault_filter: Callable[[Packet], int] | None = None
        #: Called with each packet when its serialization finishes (used
        #: by switches for ingress-buffer accounting).
        self.on_depart: Callable[[Packet], None] | None = None
        self.bytes_sent = 0
        self.packets_sent = 0
        #: Data packets eaten by the fault filter after serialization.
        self.packets_lost = 0
        #: Data packets delivered with the corrupted flag set.
        self.packets_corrupted = 0
        #: Data packets refused at :meth:`send` while the link was down.
        self.packets_dropped_down = 0
        #: size -> serialization ns memo (one entry for MTU traffic).
        self._ser_cache: dict[int, int] = {}
        # Bound methods cached once: scheduling them with the packet as
        # an event argument replaces the two per-packet closures, and the
        # stable identity of ``_deliver_cb`` is what lets the engine
        # coalesce same-tick deliveries of this link into one batch.
        self._finish_cb = self._finish
        self._deliver_cb = self._deliver
        self._finish_burst_cb = self._finish_burst
        self._deliver_burst_cb = self._deliver_burst
        self._dst_receive_batch: Callable[[list[Packet], int], None] | None = getattr(
            dst, "receive_batch", None
        )
        sim.register_batch(self._deliver, self._deliver_batch)
        if sim.sanitizer is not None:
            sim.sanitizer.track_link(self)

    # -- queue state -----------------------------------------------------
    @property
    def queued_bytes(self) -> Bytes:
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        return len(self._queue)

    # -- transmission ------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission."""
        if not self._busy and not self.paused and not self.down and not self._queue:
            # Idle link, empty queue (the common case on paced sender
            # uplinks): serialization starts immediately, so the FIFO
            # round-trip and its byte accounting would net to zero —
            # skip both and schedule the finish directly.
            size = packet.size_bytes
            self._busy = True
            ns = self._ser_cache.get(size)
            if ns is None:
                ns = max(1, int(size / self._eff_bytes_per_ns + 0.5))
                self._ser_cache[size] = ns
            sim = self.sim
            queue = sim._queue
            seq = queue._seq
            queue._seq = seq + 1
            heap = queue._heap
            heappush(heap, (sim.now + ns, seq, self._finish_cb, (packet,)))
            queue._live += 1
            if len(heap) > queue.high_water:
                queue.high_water = len(heap)
            return
        if self.down and not packet.is_control:
            # A dead cable eats data on contact.  Control packets are
            # queued instead (frozen until link-up): losing a PFC RESUME
            # or a reliability RESET would wedge the peer permanently.
            self.packets_dropped_down += 1
            return
        if packet.is_control:
            self._queue.appendleft(packet)
        else:
            self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        # _busy pre-check inlined: while serializing (half of all sends
        # land in that window) the call would be an immediate no-op.
        if not self._busy:
            self._try_start()

    def serialization_ns(self, size_bytes: Bytes) -> Nanoseconds:
        ns = self._ser_cache.get(size_bytes)
        if ns is None:
            ns = max(1, int(size_bytes / self._eff_bytes_per_ns + 0.5))
            self._ser_cache[size_bytes] = ns
        return ns

    def _try_start(self) -> None:
        if self._busy or self.down or not self._queue:
            return
        if self.paused and not self._queue[0].is_control:
            return
        packet = self._queue.popleft()
        size = packet.size_bytes
        self._queued_bytes -= size
        self._busy = True
        ns = self._ser_cache.get(size)
        if ns is None:
            ns = max(1, int(size / self._eff_bytes_per_ns + 0.5))
            self._ser_cache[size] = ns
        # schedule_anon inlined (serialization_ns >= 1, so the delay
        # check it would perform cannot fire): one serialization start
        # per packet per hop makes the call frame itself measurable.
        sim = self.sim
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heap = queue._heap
        heappush(heap, (sim.now + ns, seq, self._finish_cb, (packet,)))
        queue._live += 1
        if len(heap) > queue.high_water:
            queue.high_water = len(heap)

    def _finish(self, packet: Packet) -> None:
        """Serialization done: hand off to propagation, start the next."""
        self._busy = False
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        if self.on_depart is not None:
            self.on_depart(packet)
        if self.fault_filter is not None and not packet.is_control:
            # After on_depart: the bytes left the upstream buffer either
            # way; only delivery is in question.
            verdict = self.fault_filter(packet)
            if verdict == FAULT_DROP:
                self.packets_lost += 1
                self._try_start()
                return
            if verdict == FAULT_CORRUPT:
                packet.corrupted = True
                self.packets_corrupted += 1
        # schedule_anon inlined (delay_ns validated >= 0 at construction).
        sim = self.sim
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heap = queue._heap
        heappush(heap, (sim.now + self.delay_ns, seq, self._deliver_cb, (packet,)))
        queue._live += 1
        if len(heap) > queue.high_water:
            queue.high_water = len(heap)
        self._try_start()

    def _deliver(self, packet: Packet) -> None:
        self.dst.receive(packet, self.dst_port)

    def _deliver_batch(self, batch: list[tuple[Packet]]) -> None:
        """Coalesced form of :meth:`_deliver` (see ``Simulator.register_batch``).

        ``batch`` holds the args tuples of the coalesced events — one
        ``(packet,)`` per same-tick arrival, in dispatch order.  Devices
        exposing ``receive_batch`` get the whole burst in one call;
        everything else is fed packet by packet, preserving order.
        """
        receive_batch = self._dst_receive_batch
        if receive_batch is not None:
            receive_batch([args[0] for args in batch], self.dst_port)
            return
        receive = self.dst.receive
        port = self.dst_port
        for (packet,) in batch:
            receive(packet, port)

    # -- dual-fidelity coupling (fluid background load) ---------------------
    @property
    def fluid_load_bytes_per_ns(self) -> float:
        """Fluid background load currently consuming this link's capacity."""
        return self._fluid_load_bytes_per_ns

    def set_fluid_load(self, load_bytes_per_ns: float) -> None:
        """Couple fluid background load into the packet domain.

        The fluid share solver (:class:`repro.net.fluid.FluidDomain`)
        calls this on every update: background load consumes link
        capacity, so foreground packets serialize at the *residual* rate
        — longer serialization is exactly how fluid congestion inflates
        the queueing delay the packet domain observes.  The residual is
        floored at 1% of capacity (the solver's headroom keeps real
        loads below that anyway) so serialization times stay finite.

        ``load <= 0`` restores the pristine capacity float, keeping
        fluid-off runs bit-identical to builds without this method.
        """
        if load_bytes_per_ns <= 0.0:
            if self._fluid_load_bytes_per_ns == 0.0:
                return
            self._fluid_load_bytes_per_ns = 0.0
            eff = self._bytes_per_ns
        else:
            self._fluid_load_bytes_per_ns = load_bytes_per_ns
            eff = max(
                self._bytes_per_ns - load_bytes_per_ns, 0.01 * self._bytes_per_ns
            )
        if eff != self._eff_bytes_per_ns:
            self._eff_bytes_per_ns = eff
            self._ns_per_byte = 1.0 / eff
            self._ser_cache.clear()  # memoised per-size times are stale

    # -- burst transmission -------------------------------------------------
    def send_burst(self, packets: list[Packet]) -> None:
        """Admit a back-to-back burst as *one* serialization event.

        The caller (``Flow.pump`` with ``burst_segments >= 2``, or a
        switch with ``burst_forwarding`` on) vouches that the packets
        are admitted back-to-back under the current rate.  The whole
        burst serializes as a single event at the end of its vectorized
        per-packet span (NumPy cumsum of per-packet times at the
        effective rate) and is delivered in one batch — the LSO/GSO-
        style approximation that buys the dual-fidelity event-count
        reduction.  Any state that would make per-packet interleaving
        observable (busy wire, queued packets, PFC pause, link down, a
        degenerate burst of < 2) falls back to per-packet :meth:`send`,
        which preserves exact semantics.
        """
        if (
            len(packets) < 2
            or self._busy
            or self.paused
            or self.down
            or self._queue
        ):
            send = self.send
            for packet in packets:
                send(packet)
            return
        sizes = np.fromiter(
            (p.size_bytes for p in packets), dtype=np.int64, count=len(packets)
        )
        per_packet_ns = np.maximum(
            1, (sizes * self._ns_per_byte + 0.5).astype(np.int64)
        )
        offsets_ns = np.cumsum(per_packet_ns)
        total_ns = int(offsets_ns[-1])
        self._busy = True
        # schedule_anon inlined, as in send(): one event for the burst.
        sim = self.sim
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heap = queue._heap
        heappush(heap, (sim.now + total_ns, seq, self._finish_burst_cb, (packets,)))
        queue._live += 1
        if len(heap) > queue.high_water:
            queue.high_water = len(heap)

    def _finish_burst(self, packets: list[Packet]) -> None:
        """Burst serialization done: account, filter, propagate as one."""
        self._busy = False
        total = 0
        for packet in packets:
            total += packet.size_bytes
        self.bytes_sent += total
        self.packets_sent += len(packets)
        on_depart = self.on_depart
        if on_depart is not None:
            for packet in packets:
                on_depart(packet)
        filt = self.fault_filter
        if filt is not None:
            kept: list[Packet] = []
            for packet in packets:
                if not packet.is_control:
                    verdict = filt(packet)
                    if verdict == FAULT_DROP:
                        self.packets_lost += 1
                        continue
                    if verdict == FAULT_CORRUPT:
                        packet.corrupted = True
                        self.packets_corrupted += 1
                kept.append(packet)
            packets = kept
        if packets:
            sim = self.sim
            queue = sim._queue
            seq = queue._seq
            queue._seq = seq + 1
            heap = queue._heap
            heappush(
                heap,
                (sim.now + self.delay_ns, seq, self._deliver_burst_cb, (packets,)),
            )
            queue._live += 1
            if len(heap) > queue.high_water:
                queue.high_water = len(heap)
        self._try_start()

    def _deliver_burst(self, packets: list[Packet]) -> None:
        receive_batch = self._dst_receive_batch
        if receive_batch is not None:
            receive_batch(packets, self.dst_port)
            return
        receive = self.dst.receive
        port = self.dst_port
        for packet in packets:
            receive(packet, port)

    # -- PFC -----------------------------------------------------------------
    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        self._try_start()

    # -- fault injection -------------------------------------------------
    def set_fault_filter(self, filt: Callable[[Packet], int] | None) -> None:
        """Install (or clear) the per-packet fault verdict filter."""
        self.fault_filter = filt

    def set_down(self, down: bool) -> None:
        """Flap the link.  Down: new data sends are dropped and nothing
        (control included) leaves the queue; a packet already
        serializing finishes — it was on the wire.  Up: transmission
        resumes from the frozen queue."""
        if self.down == down:
            return
        self.down = down
        if not down:
            self._try_start()
