"""Unidirectional links: serialization, propagation, PFC pause.

A :class:`Link` connects a transmitting device to a receiving device.
Packets entering the link queue in FIFO order (control packets jump the
queue), serialize at the link rate, then arrive at the receiver after
the propagation delay.  PFC pauses stop *data* transmission; control
packets still pass, as PFC operates per traffic class and control
traffic rides the lossless high-priority class.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Protocol

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.units import gbps_to_bytes_per_ns


class Device(Protocol):
    """Anything that can terminate a link."""

    name: str

    def receive(self, packet: Packet, in_port: int) -> None: ...


class Link:
    """One direction of a cable."""

    def __init__(
        self,
        sim: Simulator,
        *,
        rate_gbps: float,
        delay_ns: int,
        dst: Device,
        dst_port: int,
        name: str = "",
    ) -> None:
        if rate_gbps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_gbps}")
        if delay_ns < 0:
            raise ValueError(f"link delay must be non-negative, got {delay_ns}")
        self.sim = sim
        self.rate_gbps = rate_gbps
        self.delay_ns = delay_ns
        self.dst = dst
        self.dst_port = dst_port
        self.name = name or f"->{dst.name}"
        self._bytes_per_ns = gbps_to_bytes_per_ns(rate_gbps)
        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        self.paused = False
        #: Called with each packet when its serialization finishes (used
        #: by switches for ingress-buffer accounting).
        self.on_depart: Callable[[Packet], None] | None = None
        self.bytes_sent = 0
        self.packets_sent = 0

    # -- queue state -----------------------------------------------------
    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        return len(self._queue)

    # -- transmission ------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission."""
        if packet.is_control:
            self._queue.appendleft(packet)
        else:
            self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        self._try_start()

    def serialization_ns(self, size_bytes: int) -> int:
        return max(1, int(size_bytes / self._bytes_per_ns + 0.5))

    def _try_start(self) -> None:
        if self._busy or not self._queue:
            return
        if self.paused and not self._queue[0].is_control:
            return
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        self._busy = True
        ser = self.serialization_ns(packet.size_bytes)

        def finish() -> None:
            self._busy = False
            self.bytes_sent += packet.size_bytes
            self.packets_sent += 1
            if self.on_depart is not None:
                self.on_depart(packet)
            self.sim.schedule(
                self.delay_ns, lambda: self.dst.receive(packet, self.dst_port)
            )
            self._try_start()

        self.sim.schedule(ser, finish)

    # -- PFC -----------------------------------------------------------------
    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        self._try_start()
