"""Packet-level RDMA network simulator (NS3-RDMA substitute).

Components:

* :mod:`repro.net.packet` — packets (data, CNP, PFC pause/resume);
* :mod:`repro.net.link` — rate/delay links with pause support;
* :mod:`repro.net.switch` — output-queued switches with RED-style ECN
  marking and PFC ingress accounting;
* :mod:`repro.net.dcqcn` — the DCQCN reaction-point state machine
  (rate cut on CNP, fast recovery / additive / hyper increase), with a
  listener hook that SRC subscribes to;
* :mod:`repro.net.nic` — host NICs: per-flow message queues (the RDMA
  TXQ), DCQCN pacing, notification-point CNP generation, reassembly;
* :mod:`repro.net.topology` — network container, Clos/fat-tree builder,
  ECMP routing tables;
* :mod:`repro.net.fluid` — fluid-approximated background flows for
  dual-fidelity runs (max-min shares + mean-field DCQCN coupled to the
  packet domain through ``Link.set_fluid_load``).
"""

from repro.net.packet import Packet, PacketKind
from repro.net.link import Link
from repro.net.dcqcn import DCQCNConfig, DCQCNRateControl, RateChange, fluid_rate_step
from repro.net.fluid import FluidConfig, FluidDomain, FluidFlow
from repro.net.switch import Switch, SwitchConfig
from repro.net.nic import NIC, Flow, NICConfig
from repro.net.reliability import ReliabilityConfig
from repro.net.topology import Network, build_clos, build_dumbbell, build_star

__all__ = [
    "Packet",
    "PacketKind",
    "Link",
    "DCQCNConfig",
    "DCQCNRateControl",
    "RateChange",
    "fluid_rate_step",
    "FluidConfig",
    "FluidDomain",
    "FluidFlow",
    "Switch",
    "SwitchConfig",
    "NIC",
    "Flow",
    "NICConfig",
    "ReliabilityConfig",
    "Network",
    "build_clos",
    "build_dumbbell",
    "build_star",
]
