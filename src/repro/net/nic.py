"""Host RDMA NICs: TXQ, per-flow DCQCN pacing, NP logic, reassembly.

A :class:`NIC` owns one uplink and a set of :class:`Flow` objects (one
per destination — the QP abstraction).  Messages handed to
:meth:`NIC.send_message` queue in the flow's share of the TXQ; the flow
carves them into MTU segments paced at its DCQCN rate.  A full TXQ
rejects the message — that back-pressure signal is what stalls read
completions on targets under congestion (§II-B's bottleneck).

Receive side implements the DCQCN notification point: an ECN-marked
data packet triggers a CNP back to the sender, rate-limited to one per
``cnp_interval_ns`` per flow.  Multi-packet messages are reassembled and
delivered to the attached endpoint with their payload.

Hot-path notes: the NIC keeps an index of *backlogged* flows (those
with queued bytes) so a link departure re-pumps only flows that can
actually send, instead of scanning every flow ever created.  Flows are
pumped in flow-id (creation) order — the same order the full scan used —
which keeps event sequencing, and therefore whole simulations,
bit-identical.
"""

from __future__ import annotations

import zlib
from collections import deque
from heapq import heappush
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.net.dcqcn import DCQCNConfig, RateChange, RateTable, TableRateControl
from repro.net.link import Link
from repro.net.packet import CONTROL_PACKET_BYTES, Packet, PacketKind
from repro.net.reliability import FlowReliability, ReliabilityConfig
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.sim.serial import SerialCounter

if TYPE_CHECKING:
    from repro.core.units import Bytes, Nanoseconds


@dataclass(frozen=True)
class NICConfig:
    """Host NIC parameters."""

    mtu_bytes: Bytes = 4096
    txq_capacity_bytes: Bytes = 2 * 1024 * 1024
    cnp_interval_ns: Nanoseconds = 50_000
    max_link_backlog_packets: int = 4
    dcqcn: DCQCNConfig = field(default_factory=DCQCNConfig)
    #: Go-back-N retransmission (``None`` = lossless-fabric assumption,
    #: the pre-fault default).  Must be set fleet-wide: the receiver
    #: side of a flow only runs sequence tracking when its own NIC has
    #: this enabled.
    reliability: ReliabilityConfig | None = None
    #: Most partially-reassembled messages held at once; beyond this the
    #: oldest partial is evicted (accounted in
    #: ``reassembly_bytes_discarded``) so switch drops cannot grow
    #: ``_reassembly`` without bound.
    reassembly_max_pending: int = 4096
    #: Burst batching (dual-fidelity mode): when >= 2 and the uplink is
    #: idle, ``Flow.pump`` admits up to this many back-to-back MTU
    #: segments as *one* ``Link.send_burst`` serialization event instead
    #: of one event pair per packet.  The default of 1 keeps the exact
    #: per-packet pump — and the v2 golden dispatch trace — untouched.
    #: Ignored in reliability mode (go-back-N needs per-segment
    #: sequencing through the scalar path).
    burst_segments: int = 1

    def __post_init__(self) -> None:
        if self.mtu_bytes <= 0:
            raise ValueError("mtu must be positive")
        if self.txq_capacity_bytes <= 0:
            raise ValueError("TXQ capacity must be positive")
        if self.cnp_interval_ns <= 0:
            raise ValueError("CNP interval must be positive")
        if self.max_link_backlog_packets < 1:
            raise ValueError("link backlog must be >= 1")
        if self.reassembly_max_pending < 1:
            raise ValueError("reassembly cap must be >= 1")
        if self.burst_segments < 1:
            raise ValueError("burst_segments must be >= 1")


_flow_ids = SerialCounter("net.flow")
_message_ids = SerialCounter("net.message")


class _FlowRateFan:
    """Per-flow rate-change forwarder to the NIC's shared listeners.

    A slotted callable instead of a closure so the listener survives
    checkpoint pickling (:mod:`repro.sim.checkpoint`); it holds only
    the two object references the closure captured.
    """

    __slots__ = ("nic", "flow")

    def __init__(self, nic: "NIC", flow: "Flow") -> None:
        self.nic = nic
        self.flow = flow

    def __call__(self, change: RateChange) -> None:
        for listener in self.nic.rate_listeners:
            listener(self.flow, change)


@dataclass(slots=True)
class _Message:
    id: int
    dst: str
    size_bytes: Bytes
    sent_bytes: Bytes
    payload: Any


class Flow:
    """One sender-side flow (QP): message queue + DCQCN pacing."""

    __slots__ = (
        "id",
        "nic",
        "dst",
        "rate_control",
        "_messages",
        "queued_bytes",
        "_next_send_ns",
        "_pump_due_ns",
        "_pump_cb",
        "bytes_sent",
        "_rel",
    )

    def __init__(self, nic: "NIC", dst: str) -> None:
        self.id = next(_flow_ids)
        self.nic = nic
        self.dst = dst
        #: Row view into the NIC's packed :class:`RateTable` — same API
        #: as the scalar ``DCQCNRateControl`` reference, but rate/alpha
        #: updates are batched across the NIC's flows with NumPy.
        self.rate_control: TableRateControl = nic.rate_table.new_flow()
        self._messages: deque[_Message] = deque()
        self.queued_bytes = 0
        self._next_send_ns = 0
        #: Time of the pending pacing wake-up; in the past = none pending.
        #: The wake-up is an *anonymous* event (nothing ever cancels it —
        #: the old cancel-and-reschedule per uplink departure was pure
        #: heap churn), so this timestamp is the only handle needed.
        self._pump_due_ns = 0
        self._pump_cb = self.pump  # cached bound method for rescheduling
        self.bytes_sent = 0
        rel_cfg = nic.config.reliability
        self._rel: FlowReliability | None
        if rel_cfg is None:
            self._rel = None
        else:
            assert nic._rel_rng is not None
            self._rel = FlowReliability(self, rel_cfg, nic._rel_rng)

    def enqueue(self, size_bytes: Bytes, payload: Any) -> None:
        self._messages.append(
            _Message(
                id=next(_message_ids),
                dst=self.dst,
                size_bytes=size_bytes,
                sent_bytes=0,
                payload=payload,
            )
        )
        self.queued_bytes += size_bytes
        self.nic.mark_backlogged(self)
        self.pump()

    def refund_queued(self, size_bytes: Bytes) -> None:
        """Drop queued-but-unsent byte accounting (reliability abort)."""
        self.queued_bytes -= size_bytes

    # -- pacing ---------------------------------------------------------
    def pump(self) -> None:
        """Send segments while allowed; reschedules itself as needed.

        In reliability mode retransmissions (queued by the flow's RTO)
        take priority over fresh segments and go out through this same
        loop — a recovery burst is paced at the DCQCN rate and respects
        the link backlog cap like any other traffic — and fresh
        segments stop while the go-back-N window is closed.
        """
        nic = self.nic
        sim = nic.sim
        now = sim.now  # constant for the whole call: pumping never dispatches
        if self._pump_due_ns > now:
            # A pacing wake-up is already scheduled for exactly when
            # sending next becomes allowed; until then every other
            # condition is moot.  Keeping it pending (instead of the old
            # cancel-and-reschedule on every uplink departure) removes
            # ~2 heap pushes + 1 lazy cancel per data packet.
            return
        if nic.stalled:
            return  # re-pumped when the stall window ends
        messages = self._messages
        link = nic.link
        config = nic.config
        mtu = config.mtu_bytes
        max_backlog = config.max_link_backlog_packets
        burst_k = config.burst_segments
        rate_control = self.rate_control
        rel = self._rel
        while True:
            retx = rel is not None and bool(rel.retransmit_queue)
            if not retx:
                if not messages:
                    break
                if rel is not None and not rel.window_free():
                    return  # window closed; the next ack re-pumps
            if now < self._next_send_ns:
                due = self._next_send_ns
                self._pump_due_ns = due
                # schedule_at_anon inlined (due > now by the branch
                # condition): one pacing wake-up per data packet.
                equeue = sim._queue
                eseq = equeue._seq
                equeue._seq = eseq + 1
                eheap = equeue._heap
                heappush(eheap, (due, eseq, self._pump_cb, ()))
                equeue._live += 1
                if len(eheap) > equeue.high_water:
                    equeue.high_water = len(eheap)
                return
            if len(link._queue) >= max_backlog:
                return  # re-pumped when the link drains
            if (
                burst_k >= 2
                and rel is None
                and not link._busy
                and not link._queue
                and not link.paused
                and not link.down
            ):
                # Burst batching (dual-fidelity mode): the uplink is idle
                # and pacing allows sending *now*, so up to burst_k MTU
                # segments go out back-to-back as one serialization
                # event.  rel is None here, so retx cannot be set and
                # fresh segments are the only traffic.
                burst: list[Packet] = []
                total = 0
                while len(burst) < burst_k and messages:
                    msg = messages[0]
                    seg = min(mtu, msg.size_bytes - msg.sent_bytes)
                    msg.sent_bytes += seg
                    last = msg.sent_bytes >= msg.size_bytes
                    burst.append(
                        Packet(
                            kind=PacketKind.DATA,
                            src=nic.name,
                            dst=self.dst,
                            size_bytes=seg,
                            flow_id=self.id,
                            message_id=msg.id,
                            message_bytes=msg.size_bytes,
                            last_of_message=last,
                            seq=-1,
                            payload=msg.payload if last else None,
                        )
                    )
                    total += seg
                    if last:
                        messages.popleft()
                if len(burst) >= 2:
                    link.send_burst(burst)
                else:
                    link.send(burst[0])
                self.bytes_sent += total
                self.queued_bytes -= total
                nic._txq_used -= total  # simlint: ignore[SIM202]
                # One rate-control charge for the whole burst: bursts are
                # <= burst_k * MTU, far below the 10 MiB DCQCN byte
                # counter, so stage crossings land at the same points.
                rate_control.on_bytes_sent(total)
                gap = total / rate_control.current_bytes_per_ns
                self._next_send_ns = now + max(1, int(gap + 0.5))
                if nic.txq_drain_listeners:
                    nic._notify_txq_drain()
                continue
            if retx:
                assert rel is not None
                seg_obj = rel.pop_retransmit()
                seg = seg_obj.seg_bytes
                link.send(
                    Packet(
                        kind=PacketKind.DATA,
                        src=nic.name,
                        dst=self.dst,
                        size_bytes=seg,
                        flow_id=self.id,
                        message_id=seg_obj.message_id,
                        message_bytes=seg_obj.message_bytes,
                        last_of_message=seg_obj.last,
                        seq=seg_obj.seq,
                        payload=seg_obj.payload,
                    )
                )
                rate_control.on_bytes_sent(seg)
                gap = seg / rate_control.current_bytes_per_ns
                self._next_send_ns = now + max(1, int(gap + 0.5))
                rel.on_sent()
                continue
            msg = messages[0]
            seg = min(mtu, msg.size_bytes - msg.sent_bytes)
            msg.sent_bytes += seg
            last = msg.sent_bytes >= msg.size_bytes
            seq = -1 if rel is None else rel.register(msg, seg, last).seq
            packet = Packet(
                kind=PacketKind.DATA,
                src=nic.name,
                dst=self.dst,
                size_bytes=seg,
                flow_id=self.id,
                message_id=msg.id,
                message_bytes=msg.size_bytes,
                last_of_message=last,
                seq=seq,
                payload=msg.payload if last else None,
            )
            link.send(packet)
            self.bytes_sent += seg
            self.queued_bytes -= seg
            # Hot path: the per-segment TXQ refund stays inlined here;
            # cold paths go through NIC.txq_refund instead.
            nic._txq_used -= seg  # simlint: ignore[SIM202]
            rate_control.on_bytes_sent(seg)
            gap = seg / rate_control.current_bytes_per_ns
            self._next_send_ns = now + max(1, int(gap + 0.5))
            if last:
                messages.popleft()
            if rel is not None:
                rel.on_sent()
            if nic.txq_drain_listeners:
                nic._notify_txq_drain()
        nic._backlogged.pop(self.id, None)


class NIC:
    """Host network interface."""

    def __init__(self, sim: Simulator, name: str, config: NICConfig | None = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or NICConfig()
        self.link: Link | None = None  # uplink, set by the topology builder
        #: Packed DCQCN state for all of this NIC's flows (one row each).
        self.rate_table = RateTable(sim, self.config.dcqcn)
        self.flows: dict[str, Flow] = {}
        self._flows_by_id: dict[int, Flow] = {}
        #: flow id -> flow, for every flow with queued bytes (pump index).
        self._backlogged: dict[int, Flow] = {}
        self._txq_used = 0
        self._reassembly: dict[int, int] = {}
        self._last_cnp_ns: dict[int, int] = {}
        #: Endpoint callback: (payload, src_name, size_bytes) on message delivery.
        self.endpoint: Callable[[Any, str, int], None] | None = None
        #: Subscribers to DCQCN rate changes of any of this NIC's flows.
        self.rate_listeners: list[Callable[[Flow, RateChange], None]] = []
        #: Subscribers to TXQ space becoming available.
        self.txq_drain_listeners: list[Callable[[], None]] = []
        #: Timestamps of received CNPs (the paper's "pause number" signal).
        self.cnp_log: list[int] = []
        self.pfc_pause_log: list[int] = []
        self.bytes_received = 0
        self.messages_delivered = 0
        #: Most partially-reassembled messages ever held at once.
        self.reassembly_high_water = 0
        #: DATA bytes accounted to delivered messages (reassembly byte-
        #: conservation: received == delivered + pending + discarded).
        self.reassembly_bytes_delivered = 0
        #: DATA bytes received but never delivered: corrupted/out-of-order
        #: discards, evicted partials, reset-dropped partials.
        self.reassembly_bytes_discarded = 0
        #: Whole received packets discarded (CRC failure / go-back-N dedup).
        self.rx_packets_discarded = 0
        #: Partial messages evicted by the ``reassembly_max_pending`` cap.
        self.reassembly_evictions = 0
        #: Fault injection: TX pipeline stalled (flows stop pumping;
        #: receive still works, like a firmware hiccup).
        self.stalled = False
        rel = self.config.reliability
        #: Per-NIC jitter rng for reliability RTO timers.  The NIC name
        #: is folded in via crc32 (stable across runs/processes, unlike
        #: ``hash``) so hosts sharing one config get decorrelated jitter.
        self._rel_rng = (
            make_rng(rel.seed + zlib.crc32(name.encode())) if rel is not None else None
        )
        #: flow id -> next expected go-back-N seq (receiver side);
        #: ``None`` when reliability is off.
        self._rx_expected: dict[int, int] | None = {} if rel is not None else None
        if sim.sanitizer is not None:
            sim.sanitizer.track_nic(self)

    # -- wiring -------------------------------------------------------------
    def attach_uplink(self, link: Link) -> None:
        # _pump_backlogged doubles as the depart hook (the packet is
        # irrelevant to re-pumping); binding it directly saves one call
        # frame per uplink departure.
        self.link = link
        link.on_depart = self._pump_backlogged

    def _pump_backlogged(self, _packet: Packet | None = None) -> None:
        """Pump every flow with queued bytes, in flow-creation order.

        Sorted-by-id iteration over a snapshot: pumping can drain flows
        (removing them) and synchronous TXQ-drain listeners can enqueue
        into new ones (adding them) while we walk.
        """
        backlogged = self._backlogged
        if not backlogged:
            return
        now = self.sim.now
        if len(backlogged) == 1:
            for flow in tuple(backlogged.values()):
                # Same keep-alive guard as Flow.pump's entry, hoisted to
                # skip the call: a flow whose pacing wake-up is still in
                # the future cannot send yet.
                if flow._pump_due_ns <= now:
                    flow.pump()
            return
        for flow_id in sorted(backlogged):
            flow = backlogged.get(flow_id)
            if flow is not None and flow._pump_due_ns <= now:
                flow.pump()

    def flow_to(self, dst: str) -> Flow:
        flow = self.flows.get(dst)
        if flow is None:
            flow = Flow(self, dst)
            self.flows[dst] = flow
            self._flows_by_id[flow.id] = flow

            flow.rate_control.listeners.append(_FlowRateFan(self, flow))
        return flow

    # -- transmit --------------------------------------------------------------
    @property
    def txq_free_bytes(self) -> Bytes:
        return self.config.txq_capacity_bytes - self._txq_used

    def send_message(
        self, dst: str, size_bytes: Bytes, payload: Any = None
    ) -> bool:
        """Queue a message; returns False when the TXQ lacks space."""
        if size_bytes <= 0:
            raise ValueError(f"message size must be positive, got {size_bytes}")
        if self.link is None:
            raise RuntimeError(f"NIC {self.name} has no uplink")
        if size_bytes > self.txq_free_bytes:
            return False
        self._txq_used += size_bytes
        self.flow_to(dst).enqueue(size_bytes, payload)
        return True

    def _notify_txq_drain(self) -> None:
        for listener in self.txq_drain_listeners:
            listener()

    def txq_refund(self, size_bytes: Bytes) -> None:
        """Return reserved TXQ bytes (aborted / never-sent data).

        The documented cross-component entry point for the reliability
        layer; the per-segment refund inside :meth:`Flow.pump` stays
        inlined for speed.
        """
        self._txq_used -= size_bytes
        self._notify_txq_drain()

    def mark_backlogged(self, flow: Flow) -> None:
        """Register ``flow`` for pump service (insertion-ordered, idempotent).

        Flows and their reliability layer call this instead of touching
        the backlog index directly.
        """
        self._backlogged[flow.id] = flow

    def send_ack(self, dst: str, payload: Any = None) -> None:
        """Send a small control acknowledgment (bypasses the TXQ)."""
        if self.link is None:
            raise RuntimeError(f"NIC {self.name} has no uplink")
        self.link.send(
            Packet(
                kind=PacketKind.ACK,
                src=self.name,
                dst=dst,
                size_bytes=CONTROL_PACKET_BYTES,
                payload=payload,
            )
        )

    # -- fault injection -------------------------------------------------
    def set_stalled(self, stalled: bool) -> None:
        """Freeze/unfreeze the TX pipeline (flows stop pumping)."""
        if self.stalled == stalled:
            return
        self.stalled = stalled
        if not stalled:
            self._pump_backlogged()

    # -- reliability control traffic -------------------------------------
    def _send_rel_ack(self, dst: str, flow_id: int, ack_next: int) -> None:
        if self.link is None:
            return
        self.link.send(
            Packet(
                kind=PacketKind.RDMA_ACK,
                src=self.name,
                dst=dst,
                size_bytes=CONTROL_PACKET_BYTES,
                flow_id=flow_id,
                seq=ack_next,
            )
        )

    def _send_rel_reset(
        self, dst: str, flow_id: int, new_base: int, message_id: int
    ) -> None:
        if self.link is None:
            return
        self.link.send(
            Packet(
                kind=PacketKind.RDMA_RESET,
                src=self.name,
                dst=dst,
                size_bytes=CONTROL_PACKET_BYTES,
                flow_id=flow_id,
                message_id=message_id,
                seq=new_base,
            )
        )

    # -- receive ---------------------------------------------------------------
    @property
    def reassembly_pending(self) -> int:
        """Messages currently awaiting more segments."""
        return len(self._reassembly)

    def receive_batch(self, packets: list[Packet], in_port: int) -> None:
        """Receive a same-tick burst delivered by one coalesced link event.

        The batch-callback entry point ``Link._deliver_batch`` targets:
        semantically identical to calling :meth:`receive` per packet, in
        order (the engine's coalescing is order-preserving), it just
        amortizes the dispatch overhead over the burst.
        """
        receive = self.receive
        for packet in packets:
            receive(packet, in_port)

    def receive(self, packet: Packet, in_port: int) -> None:
        kind = packet.kind
        if kind is PacketKind.DATA:
            self.bytes_received += packet.size_bytes
            if packet.ecn_marked:
                self._maybe_send_cnp(packet)
            rx_expected = self._rx_expected
            if rx_expected is not None:
                # Reliability mode: accept only the in-order segment;
                # everything else (corruption, loss-induced gaps,
                # retransmission duplicates) is discarded and re-acked
                # at the cumulative point.
                expected = rx_expected.get(packet.flow_id, 0)
                if packet.corrupted or packet.seq != expected:
                    self.rx_packets_discarded += 1
                    self.reassembly_bytes_discarded += packet.size_bytes
                    self._send_rel_ack(packet.src, packet.flow_id, expected)
                    return
                rx_expected[packet.flow_id] = expected + 1
                self._send_rel_ack(packet.src, packet.flow_id, expected + 1)
            elif packet.corrupted:
                # No reliability: a CRC failure is just lost payload.
                self.rx_packets_discarded += 1
                self.reassembly_bytes_discarded += packet.size_bytes
                return
            reassembly = self._reassembly
            got = reassembly.pop(packet.message_id, 0) + packet.size_bytes
            if packet.last_of_message or got >= packet.message_bytes:
                # The message is over — either byte-complete or its final
                # segment arrived.  Delivering (rather than accumulating)
                # on ``last_of_message`` also clears stale partial state
                # when a message id is re-sent, so ``_reassembly`` cannot
                # leak entries that no future packet would complete.
                self.messages_delivered += 1
                self.reassembly_bytes_delivered += got
                if self.endpoint is not None:
                    self.endpoint(packet.payload, packet.src, packet.message_bytes)
            else:
                reassembly[packet.message_id] = got
                pending = len(reassembly)
                if pending > self.reassembly_high_water:
                    self.reassembly_high_water = pending
                if pending > self.config.reassembly_max_pending:
                    # Bound reassembly state under silent loss: evict the
                    # oldest partial (insertion order = arrival order).
                    oldest = next(iter(reassembly))
                    self.reassembly_bytes_discarded += reassembly.pop(oldest)
                    self.reassembly_evictions += 1
            return
        if kind in (PacketKind.PAUSE, PacketKind.RESUME):
            if self.link is not None:
                if kind is PacketKind.PAUSE:
                    self.pfc_pause_log.append(self.sim.now)
                    self.link.pause()
                else:
                    self.link.resume()
            return
        if kind is PacketKind.CNP:
            self.cnp_log.append(self.sim.now)
            flow = self._flows_by_id.get(packet.flow_id)
            if flow is not None:
                flow.rate_control.on_cnp()
            return
        if kind is PacketKind.ACK:
            if self.endpoint is not None:
                self.endpoint(packet.payload, packet.src, packet.size_bytes)
            return
        if kind is PacketKind.RDMA_ACK:
            flow = self._flows_by_id.get(packet.flow_id)
            if flow is not None and flow._rel is not None:
                flow._rel.on_ack(packet.seq)
            return
        if kind is PacketKind.RDMA_RESET:
            # The sender aborted a message: jump the expected sequence
            # past it and drop the partial reassembly, if any.
            rx_expected = self._rx_expected
            if rx_expected is not None:
                if packet.seq > rx_expected.get(packet.flow_id, 0):
                    rx_expected[packet.flow_id] = packet.seq
                dropped = self._reassembly.pop(packet.message_id, 0)
                if dropped:
                    self.reassembly_bytes_discarded += dropped
            return

    def _maybe_send_cnp(self, packet: Packet) -> None:
        last = self._last_cnp_ns.get(packet.flow_id, -(10**12))
        if self.sim.now - last < self.config.cnp_interval_ns:
            return
        self._last_cnp_ns[packet.flow_id] = self.sim.now
        cnp = Packet(
            kind=PacketKind.CNP,
            src=self.name,
            dst=packet.src,
            size_bytes=CONTROL_PACKET_BYTES,
            flow_id=packet.flow_id,
        )
        if self.link is not None:
            self.link.send(cnp)
