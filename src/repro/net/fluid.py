"""Fluid-approximated background flows for dual-fidelity simulation.

Packet-level DES costs ~2 heap events per packet per hop, which caps a
full Clos fabric with hundreds of tenants well below the paper's
evaluation scale.  This module implements the flow-level escape hatch
("Scalable Tail Latency Estimation for Data Center Networks",
PAPERS.md): flows tagged *fluid* are modelled as piecewise-constant
rates instead of packets.  Between control updates nothing about a
fluid flow is simulated at all — its state advances in closed form — so
a tenant pushing gigabytes costs a handful of events per millisecond
rather than hundreds of thousands.

The pieces:

* :class:`FluidFlow` — one background flow: an offered demand, the path
  of :class:`~repro.net.link.Link` objects its packets would have
  taken (same ECMP pick, see :meth:`repro.net.topology.Network.
  path_links`), a mean-field DCQCN rate limit, and the max-min share
  the solver last granted it.
* :class:`FluidDomain` — owns the flows and the control loop.  On every
  flow arrival/departure and on a recurring coarse clock
  (:meth:`repro.sim.engine.Simulator.schedule_recurring_anon`) it:

  1. accrues ``rate * dt`` served bytes per flow (the piecewise-
     constant integral);
  2. samples each shared link's *foreground* (packet-domain) rate from
     its ``bytes_sent`` delta;
  3. derives a per-link ECN marking probability from total utilization
     (the fluid analogue of RED on queue length), combines it along
     each flow's path, and applies the mean-field DCQCN step
     (:func:`repro.net.dcqcn.fluid_rate_step`);
  4. re-solves max-min fair shares by water-filling over link capacity
     left after headroom and foreground load, each flow capped at
     ``min(demand, cc_rate)``;
  5. pushes the summed per-link fluid load into the packet domain via
     :meth:`~repro.net.link.Link.set_fluid_load`, which stretches
     foreground serialization to the residual rate.

Steps 2 and 5 are the two directions of the coupling contract: the
packet domain sees fluid load as reduced link capacity; the fluid
domain sees packet load as reduced fair-share capacity.

The sanitizer (check group ``"fluids"``) asserts conservation — per-
link share sums are non-negative, match the pushed load, and never
exceed capacity — plus the network-calculus arrival-curve envelope
("Network Calculus Characterization of Congestion Control", PAPERS.md):
a flow's cumulative served bytes stay under ``rho * t + sigma`` with
``rho`` its demand and ``sigma`` a configured slack of update
intervals.  Both hold by construction of the solver, so a violation
means real state corruption, not model noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.dcqcn import DCQCNConfig, fluid_rate_step
from repro.sim.engine import Simulator
from repro.sim.units import gbps_to_bytes_per_ns

if TYPE_CHECKING:
    from repro.core.units import Bytes, Nanoseconds
    from repro.net.link import Link
    from repro.net.topology import Network

__all__ = ["FluidConfig", "FluidFlow", "FluidDomain"]


@dataclass(frozen=True)
class FluidConfig:
    """Control-loop parameters of a :class:`FluidDomain`."""

    #: Coarse control clock: shares, CC state, and served-byte accrual
    #: advance this often.  ~100 µs ≈ 2x the DCQCN timer period — finer
    #: buys little (the mean-field CC is already an interval average),
    #: coarser lets the coupling lag visible congestion.
    update_interval_ns: Nanoseconds = 100_000
    #: Fraction of a link's capacity fluid traffic may occupy.  The
    #: remainder is guaranteed residual bandwidth for foreground
    #: packets, so the packet domain can never be starved outright.
    headroom: float = 0.95
    #: Utilization (fluid + foreground, fraction of capacity) where ECN
    #: marking starts / saturates — the fluid analogue of the switch's
    #: Kmin/Kmax queue thresholds.
    ecn_kmin_util: float = 0.70
    ecn_kmax_util: float = 0.98
    #: Marking probability at ``ecn_kmax_util`` (1.0 beyond, like the
    #: switch's RED ramp).
    ecn_pmax: float = 0.2
    #: Mean-field DCQCN parameters (shared by every flow in the domain).
    dcqcn: DCQCNConfig = field(default_factory=DCQCNConfig)
    #: Arrival-curve slack ``sigma``, in update intervals: the envelope
    #: invariant allows ``demand * (elapsed + this * interval)`` served
    #: bytes.  2 covers the worst case of an arrival mid-interval plus
    #: the end-of-window accrual granularity.
    envelope_slack_intervals: int = 2

    def __post_init__(self) -> None:
        if self.update_interval_ns <= 0:
            raise ValueError("update interval must be positive")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        if not 0.0 < self.ecn_kmin_util <= self.ecn_kmax_util:
            raise ValueError("need 0 < kmin_util <= kmax_util")
        if not 0.0 < self.ecn_pmax <= 1.0:
            raise ValueError("pmax must be in (0, 1]")
        if self.envelope_slack_intervals < 1:
            raise ValueError("envelope slack must be >= 1 interval")


def _mark_probability(utilization: float, config: FluidConfig) -> float:
    """RED-style marking ramp over link utilization (not queue length)."""
    if utilization <= config.ecn_kmin_util:
        return 0.0
    if utilization >= config.ecn_kmax_util:
        return 1.0
    span = config.ecn_kmax_util - config.ecn_kmin_util
    return config.ecn_pmax * (utilization - config.ecn_kmin_util) / span


class FluidFlow:
    """One fluid-modelled background flow."""

    __slots__ = (
        "id",
        "src",
        "dst",
        "demand_bytes_per_ns",
        "links",
        "start_ns",
        "active",
        "rate_bytes_per_ns",
        "cc_rate_gbps",
        "cc_rate_bytes_per_ns",
        "alpha",
        "bytes_served",
    )

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        demand_bytes_per_ns: float,
        links: tuple["Link", ...],
        start_ns: int,
        line_rate_gbps: float,
    ) -> None:
        self.id = flow_id
        self.src = src
        self.dst = dst
        #: Offered load (the arrival-curve rate ``rho``); fixed for the
        #: flow's lifetime.
        self.demand_bytes_per_ns = demand_bytes_per_ns
        #: The directed links the flow occupies, in path order.
        self.links = links
        self.start_ns = start_ns
        self.active = True
        #: Share the solver last granted (``<= min(demand, cc_rate)``).
        self.rate_bytes_per_ns = 0.0
        #: Mean-field DCQCN rate limit; starts at line rate like the RP.
        self.cc_rate_gbps = line_rate_gbps
        self.cc_rate_bytes_per_ns = gbps_to_bytes_per_ns(line_rate_gbps)
        #: Congestion-severity EWMA; 0 until marking is first seen (the
        #: RP's ``initial_alpha`` only matters once a CNP arrives, and
        #: the mean-field EWMA converges there within ~1/g updates).
        self.alpha = 0.0
        #: Piecewise-constant integral of the granted rate.
        self.bytes_served = 0.0

    def cap_bytes_per_ns(self) -> float:
        """The flow's current share ceiling: min(demand, CC limit)."""
        demand = self.demand_bytes_per_ns
        cc = self.cc_rate_bytes_per_ns
        return demand if demand <= cc else cc

    def accrue(self, dt_ns: Nanoseconds) -> None:
        """Advance the served-bytes integral by one constant-rate piece."""
        self.bytes_served += self.rate_bytes_per_ns * dt_ns

    def set_rate(self, rate_bytes_per_ns: float) -> None:
        self.rate_bytes_per_ns = rate_bytes_per_ns

    def cc_step(self, mark_prob: float, config: DCQCNConfig) -> None:
        """Apply one mean-field DCQCN update at the given marking prob."""
        rate_gbps, alpha = fluid_rate_step(
            self.cc_rate_gbps, self.alpha, mark_prob, config
        )
        self.cc_rate_gbps = rate_gbps
        self.cc_rate_bytes_per_ns = gbps_to_bytes_per_ns(rate_gbps)
        self.alpha = alpha

    def deactivate(self) -> None:
        """Flow departure: stop serving (accrual already settled)."""
        self.active = False
        self.rate_bytes_per_ns = 0.0


class FluidDomain:
    """The fluid half of a dual-fidelity simulation.

    Construct it over a routed :class:`~repro.net.topology.Network`,
    add flows between fluid-tagged hosts, and :meth:`start` the control
    loop; the coupling to the packet domain is automatic from there.
    Arrivals and departures outside the coarse clock are fine — both
    re-solve shares immediately.
    """

    def __init__(
        self, sim: Simulator, net: "Network", config: FluidConfig | None = None
    ) -> None:
        self.sim = sim
        self.net = net
        self.config = config or FluidConfig()
        #: Every flow ever added (envelope checks cover departed ones).
        self.flows: list[FluidFlow] = []
        self._active: list[FluidFlow] = []
        #: Links any fluid flow occupies, in first-touch order — the
        #: deterministic iteration axis for sampling and solving.
        self._links: list[Link] = []
        #: link -> ``bytes_sent`` at the last sample (delta = foreground).
        self._fg_bytes_prev: dict[Link, int] = {}
        #: link -> sampled foreground rate over the last window.
        self._fg_rate: dict[Link, float] = {}
        #: link -> fluid load pushed at the last solve.
        self._fluid_load: dict[Link, float] = {}
        self._last_update_ns = sim.now
        self._next_id = 0
        self.updates = 0
        self._update_cb = self._update  # stable identity for scheduling
        if sim.sanitizer is not None:
            sim.sanitizer.track_fluid(self)

    # -- membership ------------------------------------------------------
    def add_flow(self, src: str, dst: str, demand_gbps: float) -> FluidFlow:
        """Start a fluid flow ``src -> dst`` offering ``demand_gbps``."""
        if demand_gbps <= 0:
            raise ValueError(f"demand must be positive, got {demand_gbps}")
        flow_id = self._next_id
        self._next_id += 1
        links = tuple(self.net.path_links(src, dst, flow_id=flow_id))
        flow = FluidFlow(
            flow_id,
            src,
            dst,
            gbps_to_bytes_per_ns(demand_gbps),
            links,
            self.sim.now,
            self.config.dcqcn.line_rate_gbps,
        )
        for link in links:
            if link not in self._fg_bytes_prev:
                self._links.append(link)
                self._fg_bytes_prev[link] = link.bytes_sent
                self._fg_rate[link] = 0.0
                self._fluid_load[link] = 0.0
        self.flows.append(flow)
        self._active.append(flow)
        self._resolve()
        return flow

    def remove_flow(self, flow: FluidFlow) -> None:
        """End a fluid flow; settles its accrual and re-solves shares."""
        if not flow.active:
            return
        # Settle the partial window at the rate it actually held, so
        # departure timing does not leak or invent served bytes.
        dt_ns = self.sim.now - self._last_update_ns
        if dt_ns > 0:
            flow.accrue(dt_ns)
        flow.deactivate()
        self._active.remove(flow)
        self._resolve()

    @property
    def active_flows(self) -> int:
        return len(self._active)

    def total_bytes_served(self) -> float:
        return sum(flow.bytes_served for flow in self.flows)

    # -- control loop ----------------------------------------------------
    def start(self, until_ns: Nanoseconds) -> None:
        """Run the recurring control update until ``until_ns``."""
        self.sim.schedule_recurring_anon(
            self.config.update_interval_ns, self._update_cb, until_ns=until_ns
        )

    def _update(self) -> None:
        """One control tick: accrue, sample foreground, CC, re-solve."""
        now = self.sim.now
        dt_ns = now - self._last_update_ns
        if dt_ns > 0:
            for flow in self._active:
                flow.accrue(dt_ns)
            prev = self._fg_bytes_prev
            fg = self._fg_rate
            for link in self._links:
                sent = link.bytes_sent
                fg[link] = (sent - prev[link]) / dt_ns
                prev[link] = sent
            self._last_update_ns = now
        config = self.config
        fluid_load = self._fluid_load
        fg = self._fg_rate
        p_link: dict[Link, float] = {}
        for link in self._links:
            utilization = (fluid_load[link] + fg[link]) / link._bytes_per_ns
            p_link[link] = _mark_probability(utilization, config)
        dcqcn = config.dcqcn
        for flow in self._active:
            keep = 1.0
            for link in flow.links:
                keep *= 1.0 - p_link[link]
            flow.cc_step(1.0 - keep, dcqcn)
        self.updates += 1
        self._resolve()

    # -- max-min fair share solver ---------------------------------------
    def _resolve(self) -> None:
        """Water-filling max-min shares, then push loads into the links.

        Classic progressive filling with per-flow caps: repeatedly find
        the tightest link (smallest remaining-capacity / unfrozen-flow
        ratio), freeze cap-limited flows at their cap while it is below
        the fair share, otherwise freeze the bottleneck link's flows at
        the share.  Terminates in <= flows rounds; every link ends at or
        under ``headroom * capacity - foreground``, which is what the
        sanitizer's conservation sweep re-checks from scratch.
        """
        active = self._active
        links = self._links
        headroom = self.config.headroom
        fg = self._fg_rate
        rem: dict[Link, float] = {}
        count: dict[Link, int] = {}
        for link in links:
            rem[link] = 0.0
            count[link] = 0
        for flow in active:
            for link in flow.links:
                count[link] += 1
        for link in links:
            if count[link]:
                avail = headroom * link._bytes_per_ns - fg[link]
                rem[link] = avail if avail > 0.0 else 0.0
        rate: dict[int, float] = {}
        pending = list(active)
        eps = 1e-12
        while pending:
            share = -1.0
            bottleneck = None
            for link in links:
                members = count[link]
                if members > 0:
                    link_share = rem[link] / members
                    if bottleneck is None or link_share < share:
                        share = link_share
                        bottleneck = link
            if bottleneck is None:
                break  # no pending flow crosses a tracked link
            limited = [
                flow for flow in pending if flow.cap_bytes_per_ns() <= share + eps
            ]
            if limited:
                to_freeze = [
                    (flow, min(flow.cap_bytes_per_ns(), share)) for flow in limited
                ]
            else:
                to_freeze = [
                    (flow, share) for flow in pending if bottleneck in flow.links
                ]
            frozen_ids = set()
            for flow, granted in to_freeze:
                rate[flow.id] = granted
                frozen_ids.add(flow.id)
                for link in flow.links:
                    residual = rem[link] - granted
                    rem[link] = residual if residual > 0.0 else 0.0
                    count[link] -= 1
            pending = [flow for flow in pending if flow.id not in frozen_ids]
        loads: dict[Link, float] = {}
        for link in links:
            loads[link] = 0.0
        for flow in active:
            flow.set_rate(rate.get(flow.id, 0.0))
            for link in flow.links:
                loads[link] += flow.rate_bytes_per_ns
        fluid_load = self._fluid_load
        for link in links:
            load = loads[link]
            fluid_load[link] = load
            link.set_fluid_load(load)

    # -- invariants (sanitizer check group "fluids") ---------------------
    def fluid_violation(self) -> tuple[str, str] | None:
        """Conservation + envelope sweep; ``(invariant, detail)`` or None.

        Recomputes per-link load sums from scratch (instead of trusting
        the solver's cached sums) so a corrupted rate shows up no matter
        which side drifted.
        """
        loads: dict[Link, float] = {}
        for flow in self._active:
            granted = flow.rate_bytes_per_ns
            if granted < 0.0:
                return (
                    "fluid-conservation",
                    f"fluid flow {flow.id} ({flow.src}->{flow.dst}) rate went "
                    f"negative ({granted})",
                )
            cap = flow.cap_bytes_per_ns()
            if granted > cap + 1e-9:
                return (
                    "fluid-conservation",
                    f"fluid flow {flow.id} ({flow.src}->{flow.dst}) rate "
                    f"{granted:.6f} B/ns exceeds its demand/CC cap {cap:.6f}",
                )
            for link in flow.links:
                loads[link] = loads.get(link, 0.0) + granted
        for link in self._links:
            load = loads.get(link, 0.0)
            pushed = self._fluid_load[link]
            if abs(load - pushed) > 1e-6:
                return (
                    "fluid-conservation",
                    f"link {link.name} carries pushed fluid load {pushed:.6f} "
                    f"B/ns but its member rates sum to {load:.6f}",
                )
            if load > link._bytes_per_ns + 1e-9:
                return (
                    "fluid-conservation",
                    f"link {link.name} fluid load {load:.6f} B/ns exceeds "
                    f"capacity {link._bytes_per_ns:.6f}",
                )
        now = self.sim.now
        sigma_ns = self.config.envelope_slack_intervals * self.config.update_interval_ns
        for flow in self.flows:
            elapsed_ns = now - flow.start_ns
            # (sigma, rho) arrival curve: served <= rho*t + rho*sigma_t,
            # +1 byte absorbing float accrual noise.
            bound = flow.demand_bytes_per_ns * (elapsed_ns + sigma_ns) + 1.0
            if flow.bytes_served > bound:
                return (
                    "fluid-envelope",
                    f"fluid flow {flow.id} ({flow.src}->{flow.dst}) served "
                    f"{flow.bytes_served:.0f} B, above its arrival-curve "
                    f"envelope {bound:.0f} B (rho="
                    f"{flow.demand_bytes_per_ns:.6f} B/ns over {elapsed_ns} ns)",
                )
        return None

    # -- scale accounting -------------------------------------------------
    def projected_packet_events(self, mtu_bytes: Bytes) -> int:
        """Events an all-packet run of the served fluid bytes would cost.

        Per MTU segment: one serialization-finish plus one delivery
        event per path link, plus one sender pump wake-up — the same
        2·hops+1 bookkeeping the packet domain pays per data packet
        (CNP/ACK traffic would only add to this, so the projection is
        conservative).  Used by the Clos-scale cell to report the
        dual-fidelity event-count reduction.
        """
        if mtu_bytes <= 0:
            raise ValueError("mtu must be positive")
        total = 0
        for flow in self.flows:
            packets = int(flow.bytes_served // mtu_bytes)
            if flow.bytes_served > packets * mtu_bytes:
                packets += 1
            total += packets * (2 * len(flow.links) + 1)
        return total
