"""Output-queued switch with RED-style ECN marking and PFC.

Forwarding: per-destination next-hop port lists installed by the
topology builder; among equal-cost ports the flow id picks one (ECMP),
keeping a flow's packets ordered.

ECN: on enqueue to an output port whose queue exceeds ``ecn_kmin``
bytes, the packet is marked with probability ramping linearly to
``ecn_pmax`` at ``ecn_kmax`` (and always beyond) — DCQCN's RED-like
marking on instantaneous queue length.

PFC: per-ingress-port byte accounting.  When the bytes buffered from an
upstream port exceed ``pfc_xoff_bytes``, a PAUSE is sent to that
neighbor; when it drains below ``pfc_xon_bytes``, a RESUME follows.
Pause frames ride the control class and preempt data on links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.link import Link
from repro.net.packet import CONTROL_PACKET_BYTES, Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class SwitchConfig:
    """Buffer and marking parameters (defaults sized for 40 Gbps)."""

    ecn_kmin_bytes: int = 100 * 1024
    ecn_kmax_bytes: int = 400 * 1024
    ecn_pmax: float = 0.2
    pfc_xoff_bytes: int = 512 * 1024
    pfc_xon_bytes: int = 256 * 1024
    buffer_bytes: int = 16 * 1024 * 1024
    #: Dual-fidelity mode: forward an all-DATA same-tick arrival burst
    #: sharing one output port via ``Link.send_burst`` (one serialization
    #: event for the burst) instead of per-packet ``send``.  Per-packet
    #: ECN draws, drop checks, and ingress accounting still run in
    #: arrival order.  Off by default: with an idle output link the
    #: burst bypasses the output queue, so intra-burst queue growth no
    #: longer escalates marking probability — a documented approximation
    #: that must never leak into packet-exact runs.
    burst_forwarding: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.ecn_kmin_bytes <= self.ecn_kmax_bytes:
            raise ValueError("need 0 < kmin <= kmax")
        if not 0.0 < self.ecn_pmax <= 1.0:
            raise ValueError("pmax must be in (0, 1]")
        if not 0 < self.pfc_xon_bytes <= self.pfc_xoff_bytes:
            raise ValueError("need 0 < xon <= xoff")
        if self.buffer_bytes <= self.pfc_xoff_bytes:
            raise ValueError("buffer must exceed the PFC threshold")


class Switch:
    """One switch; ports are added by the topology builder."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: SwitchConfig | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config or SwitchConfig()
        self._rng = make_rng(seed)
        self._out_links: list[Link] = []
        self._neighbor_of_port: dict[str, int] = {}  # neighbor name -> out port
        #: dst host name -> list of candidate out ports (ECMP set).
        self.routes: dict[str, list[int]] = {}
        self._ingress_bytes: dict[int, int] = {}
        self._paused_upstream: set[int] = set()
        self.packets_forwarded = 0
        self.packets_dropped = 0
        #: out port -> buffer-overflow drops toward that port.
        self.drops_by_port: dict[int, int] = {}
        #: traffic class ("data" / "control") -> drops.  Control packets
        #: ride the lossless class and are never dropped today; the key
        #: exists so fault reports always have both columns.
        self.drops_by_class: dict[str, int] = {"data": 0, "control": 0}
        #: Observer called with (packet, out_port) on every drop — lets
        #: fault tooling attribute losses without polling counters.
        self.on_drop: Callable[[Packet, int], None] | None = None
        self.ecn_marks = 0
        self.pauses_sent = 0
        self._buffered_bytes = 0
        if sim.sanitizer is not None:
            sim.sanitizer.track_switch(self)

    # -- wiring (topology builder) -----------------------------------------
    def add_port(self, link: Link, neighbor_name: str) -> int:
        """Register the outgoing link toward ``neighbor_name``."""
        port = len(self._out_links)
        self._out_links.append(link)
        self._neighbor_of_port[neighbor_name] = port
        self._ingress_bytes[port] = 0
        link.on_depart = self._on_link_depart
        return port

    def _on_link_depart(self, packet: Packet) -> None:
        # Departure accounting only needs the packet's recorded ingress
        # port, so one bound method serves every out-link (and, unlike
        # the factory closure it replaced, survives checkpoint pickling).
        in_port = packet._ingress_port
        if in_port is not None and in_port in self._ingress_bytes:
            self._account_ingress(in_port, -packet.size_bytes)
        self._buffered_bytes -= packet.size_bytes

    def port_to(self, neighbor_name: str) -> int:
        return self._neighbor_of_port[neighbor_name]

    def out_link(self, port: int) -> Link:
        return self._out_links[port]

    # -- forwarding ------------------------------------------------------------
    def receive_batch(self, packets: list[Packet], in_port: int) -> None:
        """Receive a same-tick burst delivered by one coalesced link event.

        The batch-callback entry point ``Link._deliver_batch`` targets;
        equivalent to per-packet :meth:`receive` calls in arrival order
        (ECN draws consume the switch RNG in the same sequence).
        """
        if self.config.burst_forwarding and len(packets) >= 2:
            self._receive_burst(packets, in_port)
            return
        receive = self.receive
        for packet in packets:
            receive(packet, in_port)

    def _receive_burst(self, packets: list[Packet], in_port: int) -> None:
        """Burst-forward a same-tick arrival burst (``burst_forwarding``).

        Applies only when every packet is DATA and routes to one output
        port; anything else (control frames in the burst, ECMP fan-out
        across ports) falls back to exact per-packet forwarding.  The
        per-packet admission pipeline — buffer-overflow drop, ECN draw
        against the live queue, ingress/PFC accounting — runs in arrival
        order either way; only the output-link handoff is batched.
        """
        routes = self.routes
        out_port = -1
        for packet in packets:
            if packet.is_control:
                out_port = -1
                break
            ports = routes.get(packet.dst)
            if not ports:
                out_port = -1  # per-packet path raises the proper error
                break
            port = ports[packet.flow_id % len(ports)] if len(ports) > 1 else ports[0]
            if out_port == -1:
                out_port = port
            elif port != out_port:
                out_port = -1
                break
        if out_port < 0:
            receive = self.receive
            for packet in packets:
                receive(packet, in_port)
            return
        link = self._out_links[out_port]
        cfg = self.config
        kept: list[Packet] = []
        for packet in packets:
            size = packet.size_bytes
            if self._buffered_bytes + size > cfg.buffer_bytes:
                self.packets_dropped += 1
                self.drops_by_port[out_port] = self.drops_by_port.get(out_port, 0) + 1
                self.drops_by_class["data"] += 1
                if self.on_drop is not None:
                    self.on_drop(packet, out_port)
                continue
            if link._queued_bytes > cfg.ecn_kmin_bytes:
                self._maybe_mark_ecn(packet, link)
            packet._ingress_port = in_port
            self._buffered_bytes += size
            self._account_ingress(in_port, size)
            kept.append(packet)
        self.packets_forwarded += len(kept)
        if len(kept) >= 2:
            link.send_burst(kept)
        elif kept:
            link.send(kept[0])

    def receive(self, packet: Packet, in_port: int) -> None:
        # Data packets are the overwhelming majority; their path is laid
        # out first with one is_control check and no PFC-kind tests.
        if not packet.is_control:
            ports = self.routes.get(packet.dst)
            if not ports:
                raise RuntimeError(f"{self.name}: no route to {packet.dst}")
            out_port = (
                ports[packet.flow_id % len(ports)] if len(ports) > 1 else ports[0]
            )
            link = self._out_links[out_port]
            size = packet.size_bytes
            if self._buffered_bytes + size > self.config.buffer_bytes:
                self.packets_dropped += 1
                self.drops_by_port[out_port] = self.drops_by_port.get(out_port, 0) + 1
                self.drops_by_class["data"] += 1
                if self.on_drop is not None:
                    self.on_drop(packet, out_port)
                return
            # ECN pre-check hoisted: below Kmin no mark is possible and no
            # RNG draw happens, so skipping the call is bit-identical.
            if link._queued_bytes > self.config.ecn_kmin_bytes:
                self._maybe_mark_ecn(packet, link)
            packet._ingress_port = in_port  # for departure accounting
            self._buffered_bytes += size
            self._account_ingress(in_port, size)
            link.send(packet)
            self.packets_forwarded += 1
            return
        if packet.kind in (PacketKind.PAUSE, PacketKind.RESUME):
            if packet.dst == self.name:
                self.handle_pfc(packet, in_port)
                return
        ports = self.routes.get(packet.dst)
        if not ports:
            raise RuntimeError(f"{self.name}: no route to {packet.dst}")
        out_port = ports[packet.flow_id % len(ports)] if len(ports) > 1 else ports[0]
        link = self._out_links[out_port]
        packet._ingress_port = None
        self._buffered_bytes += packet.size_bytes
        link.send(packet)
        self.packets_forwarded += 1

    def _maybe_mark_ecn(self, packet: Packet, link: Link) -> None:
        cfg = self.config
        qlen = link._queued_bytes
        if qlen <= cfg.ecn_kmin_bytes:
            return
        if qlen >= cfg.ecn_kmax_bytes:
            p = 1.0
        else:
            span = cfg.ecn_kmax_bytes - cfg.ecn_kmin_bytes
            p = cfg.ecn_pmax * (qlen - cfg.ecn_kmin_bytes) / span
        if self._rng.random() < p:
            packet.ecn_marked = True
            self.ecn_marks += 1

    # -- PFC -----------------------------------------------------------------
    def _account_ingress(self, in_port: int, delta: int) -> None:
        ingress = self._ingress_bytes
        level = ingress.get(in_port, 0) + delta
        ingress[in_port] = level
        paused = self._paused_upstream
        if level > self.config.pfc_xoff_bytes and in_port not in paused:
            paused.add(in_port)
            self._send_pfc(in_port, PacketKind.PAUSE)
        elif paused and level < self.config.pfc_xon_bytes and in_port in paused:
            paused.discard(in_port)
            self._send_pfc(in_port, PacketKind.RESUME)

    def _send_pfc(self, in_port: int, kind: PacketKind) -> None:
        # The reverse direction of the same cable shares the port index by
        # construction (the topology builder adds both directions in one
        # call), so the out link at in_port reaches the upstream neighbor.
        if in_port >= len(self._out_links):
            return
        link = self._out_links[in_port]
        pfc = Packet(
            kind=kind,
            src=self.name,
            dst=link.dst.name,
            size_bytes=CONTROL_PACKET_BYTES,
        )
        pfc._ingress_port = None
        self._buffered_bytes += pfc.size_bytes
        link.send(pfc)
        if kind is PacketKind.PAUSE:
            self.pauses_sent += 1

    def handle_pfc(self, packet: Packet, in_port: int) -> None:
        """Apply a PAUSE/RESUME received from the neighbor on ``in_port``."""
        link = self._out_links[in_port]
        if packet.kind is PacketKind.PAUSE:
            link.pause()
        else:
            link.resume()
