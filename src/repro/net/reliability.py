"""Go-back-N reliability for RDMA flows (opt-in recovery machinery).

The base NIC model assumes a lossless fabric: a dropped segment silently
wedges message reassembly at the receiver.  When a
:class:`ReliabilityConfig` is attached to the :class:`~repro.net.nic.NICConfig`
every flow carries go-back-N state:

* data segments get per-flow sequence numbers and are buffered until a
  cumulative ``RDMA_ACK`` covers them (at most ``window_packets``
  in flight);
* the receiver accepts only the in-order segment, re-acking the
  expected sequence for anything else (duplicates, reorder, corruption);
* a per-flow retransmission timeout (seeded-jitter exponential backoff
  between ``rto_ns`` and ``rto_max_ns``) rewinds the sender to the
  first unacked segment — segments are *re-queued through the normal
  pacing pump*, so a retransmission burst still respects DCQCN rates
  and the link backlog cap;
* after ``max_retransmits`` consecutive timeouts without progress the
  head message is aborted: its segments are dropped from the window, an
  ``RDMA_RESET`` resynchronises the receiver's expected sequence, and
  the loss is surfaced to the layer above (the NVMe-oF command timeout
  picks it up from there).

Everything is deterministic: the only randomness is the RTO jitter,
drawn from a per-NIC generator created from
``ReliabilityConfig.seed`` via :func:`repro.sim.rng.make_rng`, and the
draw order is fixed by the (deterministic) event order.

When ``NICConfig.reliability`` is ``None`` (the default) none of this
state exists and the NIC behaves exactly as before — the golden
dispatch trace is unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import numpy as np

    from repro.core.units import Bytes, Nanoseconds, Ratio
    from repro.net.nic import Flow, _Message


@dataclass(frozen=True)
class ReliabilityConfig:
    """Go-back-N parameters shared by every flow of a NIC.

    Attributes
    ----------
    window_packets:
        Maximum unacked segments per flow (the go-back-N window).
    rto_ns / rto_max_ns:
        Base retransmission timeout and its exponential-backoff ceiling.
    backoff:
        Multiplier applied to the RTO on every consecutive timeout;
        reset to ``rto_ns`` whenever an ack makes progress.
    jitter_frac:
        Each armed timer waits ``rto * (1 + jitter_frac * u)`` with
        ``u ~ U[0, 1)`` from the NIC's seeded generator — desynchronises
        flows that lost segments in the same burst.
    max_retransmits:
        Consecutive no-progress timeouts before the head message is
        aborted (surfaced upward instead of retrying forever).
    seed:
        Seed of the per-NIC jitter generator.
    """

    window_packets: int = 64
    rto_ns: Nanoseconds = 200_000
    rto_max_ns: Nanoseconds = 5_000_000
    backoff: float = 2.0
    jitter_frac: Ratio = 0.1
    max_retransmits: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_packets < 1:
            raise ValueError("window must be >= 1 packet")
        if self.rto_ns <= 0 or self.rto_max_ns < self.rto_ns:
            raise ValueError("need 0 < rto_ns <= rto_max_ns")
        if self.backoff < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter fraction must be in [0, 1]")
        if self.max_retransmits < 1:
            raise ValueError("max_retransmits must be >= 1")


@dataclass(slots=True)
class _Segment:
    """One unacked wire segment held for possible retransmission."""

    seq: int
    message_id: int
    message_bytes: Bytes
    seg_bytes: Bytes
    last: bool
    payload: Any


class FlowReliability:
    """Sender-side go-back-N state of one flow."""

    __slots__ = (
        "flow",
        "config",
        "rng",
        "base_seq",
        "next_seq",
        "unacked",
        "retransmit_queue",
        "rto_current_ns",
        "retries_since_progress",
        "_timer",
        "_timeout_cb",
        "retransmits",
        "timeouts",
        "messages_aborted",
        "acks_received",
    )

    def __init__(
        self, flow: "Flow", config: ReliabilityConfig, rng: "np.random.Generator"
    ) -> None:
        self.flow = flow
        self.config = config
        self.rng = rng
        self.base_seq = 0
        self.next_seq = 0
        self.unacked: deque[_Segment] = deque()
        self.retransmit_queue: deque[_Segment] = deque()
        self.rto_current_ns = config.rto_ns
        self.retries_since_progress = 0
        self._timer = None
        self._timeout_cb = self._on_timeout  # cached bound method
        #: Segments re-sent (each wire retransmission counts once).
        self.retransmits = 0
        #: RTO expirations.
        self.timeouts = 0
        #: Head messages given up on after ``max_retransmits``.
        self.messages_aborted = 0
        self.acks_received = 0

    # -- sender window ----------------------------------------------------
    def window_free(self) -> bool:
        return len(self.unacked) < self.config.window_packets

    def has_retransmit(self) -> bool:
        return bool(self.retransmit_queue)

    def pop_retransmit(self) -> _Segment:
        self.retransmits += 1
        return self.retransmit_queue.popleft()

    def register(self, msg: "_Message", seg_bytes: Bytes, last: bool) -> _Segment:
        """Record a freshly carved segment in the window; returns it."""
        seg = _Segment(
            seq=self.next_seq,
            message_id=msg.id,
            message_bytes=msg.size_bytes,
            seg_bytes=seg_bytes,
            last=last,
            payload=msg.payload if last else None,
        )
        self.next_seq += 1
        self.unacked.append(seg)
        return seg

    def on_sent(self) -> None:
        """Arm the RTO after a wire transmission if not already armed."""
        if self._timer is None and self.unacked:
            self._arm_timer()

    # -- acks -------------------------------------------------------------
    def on_ack(self, ack_next: int) -> None:
        """Cumulative ack: everything below ``ack_next`` is delivered."""
        self.acks_received += 1
        progressed = False
        unacked = self.unacked
        while unacked and unacked[0].seq < ack_next:
            unacked.popleft()
            progressed = True
        if ack_next > self.base_seq:
            self.base_seq = ack_next
        self._prune_retransmit_queue()
        if not progressed:
            return
        # Progress: reset backoff, restart (or disarm) the timer, and
        # re-pump — the window just opened.
        self.rto_current_ns = self.config.rto_ns
        self.retries_since_progress = 0
        self._cancel_timer()
        if unacked or self.retransmit_queue:
            self._arm_timer()
        self.flow.pump()

    def _prune_retransmit_queue(self) -> None:
        queue = self.retransmit_queue
        base = self.base_seq
        while queue and queue[0].seq < base:
            queue.popleft()

    # -- timer ------------------------------------------------------------
    def _arm_timer(self) -> None:
        delay = self.rto_current_ns
        jitter = self.config.jitter_frac
        if jitter > 0.0:
            delay = int(delay * (1.0 + jitter * float(self.rng.random())))
        self._timer = self.flow.nic.sim.schedule(max(1, delay), self._timeout_cb)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if not self.unacked:
            return
        self.timeouts += 1
        self.retries_since_progress += 1
        if self.retries_since_progress > self.config.max_retransmits:
            self._abort_head_message()
            if not (self.unacked or self.retransmit_queue):
                return
        else:
            # Go-back-N: rewind to the first unacked segment; the pump
            # re-sends the window under normal pacing.
            self.retransmit_queue = deque(self.unacked)
            self.rto_current_ns = min(
                self.config.rto_max_ns,
                int(self.rto_current_ns * self.config.backoff),
            )
        self._arm_timer()
        nic = self.flow.nic
        nic.mark_backlogged(self.flow)
        self.flow.pump()

    # -- abort ------------------------------------------------------------
    def _abort_head_message(self) -> None:
        """Give up on the head unacked message and resynchronise.

        Every unacked segment of that message is dropped from the window
        (the base advances past them), any unsent remainder of the
        message is removed from the flow queue with its TXQ reservation
        refunded, and an ``RDMA_RESET`` tells the receiver to skip to
        the new base and discard the partial reassembly.  Delivery of
        the message's payload is now the upper layer's problem — exactly
        what the NVMe-oF command timeout exists for.
        """
        unacked = self.unacked
        if not unacked:
            return
        mid = unacked[0].message_id
        new_base = self.base_seq
        while unacked and unacked[0].message_id == mid:
            new_base = unacked.popleft().seq + 1
        self.base_seq = max(self.base_seq, new_base)
        self._prune_retransmit_queue()
        flow = self.flow
        messages = flow._messages
        if messages and messages[0].id == mid:
            # Partially sent head message: refund the unsent remainder.
            msg = messages.popleft()
            remainder = msg.size_bytes - msg.sent_bytes
            if remainder > 0:
                flow.refund_queued(remainder)
                flow.nic.txq_refund(remainder)
        self.messages_aborted += 1
        self.retries_since_progress = 0
        self.rto_current_ns = self.config.rto_ns
        flow.nic._send_rel_reset(flow.dst, flow.id, self.base_seq, mid)
