"""Network container, topology builders, ECMP routing.

:class:`Network` owns hosts (NICs), switches, and links, and installs
per-switch routing tables (all next hops on shortest paths; ECMP choice
by flow id).  Builders:

* :func:`build_star` — N hosts on one switch (the paper's main
  experiment shape: one initiator + K targets makes the initiator's
  downlink the in-cast congestion point);
* :func:`build_dumbbell` — two switches joined by one bottleneck link;
* :func:`build_clos` — the §IV-A evaluation fabric: pods of ToR and leaf
  switches with hosts under the ToRs, leaves meshed across pods.
"""

from __future__ import annotations

from collections import deque

import networkx as nx

from repro.net.link import Link
from repro.net.nic import NIC, NICConfig
from repro.net.switch import Switch, SwitchConfig
from repro.sim.engine import Simulator
from repro.sim.units import US


class Network:
    """Hosts + switches + links + routing."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: dict[str, NIC] = {}
        self.switches: dict[str, Switch] = {}
        self.graph = nx.Graph()
        #: host name -> fidelity mode; absent = ``"packet"`` (the
        #: default exact DES).  ``"fluid"`` hosts carry background
        #: traffic modelled by :class:`repro.net.fluid.FluidDomain`.
        self.fidelity: dict[str, str] = {}

    # -- construction ------------------------------------------------------
    def add_host(self, name: str, config: NICConfig | None = None) -> NIC:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        nic = NIC(self.sim, name, config)
        self.hosts[name] = nic
        self.graph.add_node(name, kind="host")
        return nic

    def add_switch(self, name: str, config: SwitchConfig | None = None) -> Switch:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        switch = Switch(self.sim, name, config, seed=len(self.switches))
        self.switches[name] = switch
        self.graph.add_node(name, kind="switch")
        return switch

    def node(self, name: str):
        if name in self.hosts:
            return self.hosts[name]
        return self.switches[name]

    def connect(self, a: str, b: str, *, rate_gbps: float, delay_ns: int = US) -> None:
        """Add a full-duplex cable between two nodes.

        Each node pair may be cabled at most once: a second ``connect``
        of the same pair used to silently overwrite the switch's
        neighbor->port map entry (orphaning the first cable's ports and
        corrupting PFC's port-symmetry assumption) — now it raises.
        """
        if a == b:
            raise ValueError(f"cannot connect node {a!r} to itself")
        if self.graph.has_edge(a, b):
            raise ValueError(
                f"duplicate cable {a!r} <-> {b!r}: the pair is already "
                f"connected, and re-cabling would overwrite the port map"
            )
        dev_a, dev_b = self.node(a), self.node(b)
        link_ab = Link(
            self.sim, rate_gbps=rate_gbps, delay_ns=delay_ns, dst=dev_b, dst_port=-1,
            name=f"{a}->{b}",
        )
        link_ba = Link(
            self.sim, rate_gbps=rate_gbps, delay_ns=delay_ns, dst=dev_a, dst_port=-1,
            name=f"{b}->{a}",
        )
        port_a = self._register(dev_a, link_ab, b)
        port_b = self._register(dev_b, link_ba, a)
        # in_port seen by each receiver == its own port index for the cable,
        # which is what PFC needs to pause the right upstream transmitter.
        link_ab.dst_port = port_b
        link_ba.dst_port = port_a
        self.graph.add_edge(a, b, rate_gbps=rate_gbps, delay_ns=delay_ns)

    @staticmethod
    def _register(device, out_link: Link, neighbor: str) -> int:
        if isinstance(device, Switch):
            return device.add_port(out_link, neighbor)
        if isinstance(device, NIC):
            if device.link is not None:
                raise ValueError(f"host {device.name} already has an uplink")
            device.attach_uplink(out_link)
            return 0
        raise TypeError(f"cannot attach links to {device!r}")

    # -- routing -----------------------------------------------------------
    def build_routes(self) -> None:
        """Install next-hop tables: one BFS per host, layered next hops."""
        for dst in self.hosts:
            dist = self._bfs_distances(dst)
            for sw_name, switch in self.switches.items():
                if sw_name not in dist:
                    continue
                d = dist[sw_name]
                ports = sorted(
                    switch.port_to(nb)
                    for nb in self.graph.neighbors(sw_name)
                    if dist.get(nb, float("inf")) == d - 1
                )
                if ports:
                    switch.routes[dst] = ports

    def _bfs_distances(self, src: str) -> dict[str, int]:
        dist = {src: 0}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for nb in self.graph.neighbors(node):
                if nb not in dist and nb not in self.hosts:
                    # Paths never transit through another host.
                    dist[nb] = dist[node] + 1
                    frontier.append(nb)
                elif nb not in dist:
                    dist[nb] = dist[node] + 1  # terminal hop into a host
        return dist

    # -- fidelity tagging (dual-fidelity mode) -----------------------------
    def tag_fidelity(self, host: str, mode: str) -> None:
        """Tag ``host`` as ``"packet"`` (exact DES) or ``"fluid"``."""
        if host not in self.hosts:
            raise KeyError(f"unknown host {host!r}")
        if mode not in ("packet", "fluid"):
            raise ValueError(f"fidelity must be 'packet' or 'fluid', got {mode!r}")
        self.fidelity[host] = mode

    def fidelity_of(self, host: str) -> str:
        """The host's fidelity mode (``"packet"`` unless tagged)."""
        return self.fidelity.get(host, "packet")

    def fluid_hosts(self) -> list[str]:
        """Hosts tagged fluid, in host-creation order."""
        return [h for h in self.hosts if self.fidelity.get(h) == "fluid"]

    def path_links(self, src: str, dst: str, flow_id: int = 0) -> list[Link]:
        """The directed links a flow traverses from ``src`` to ``dst``.

        Follows the exact forwarding the packet domain would use — host
        uplink, then each switch's installed route with the same
        ``flow_id % len(ports)`` ECMP pick — so a fluid flow's footprint
        matches where its packets would actually have gone.  Requires
        :meth:`build_routes` to have run.
        """
        if dst not in self.hosts:
            raise KeyError(f"unknown destination host {dst!r}")
        nic = self.hosts.get(src)
        if nic is None:
            raise KeyError(f"unknown source host {src!r}")
        if nic.link is None:
            raise RuntimeError(f"host {src} has no uplink")
        links = [nic.link]
        node = nic.link.dst
        hops = 0
        max_hops = len(self.switches) + 1
        while isinstance(node, Switch):
            ports = node.routes.get(dst)
            if not ports:
                raise RuntimeError(f"{node.name}: no route to {dst}")
            port = ports[flow_id % len(ports)] if len(ports) > 1 else ports[0]
            link = node.out_link(port)
            links.append(link)
            node = link.dst
            hops += 1
            if hops > max_hops:
                raise RuntimeError(f"routing loop walking {src} -> {dst}")
        return links

    # -- introspection -----------------------------------------------------
    def iter_links(self):
        """Yield every directed link, in deterministic creation order.

        Host uplinks first (insertion order), then each switch's out
        links by port index — fault planners rely on this order (and on
        the link ``name``) being stable across runs.
        """
        for host in self.hosts.values():
            if host.link is not None:
                yield host.link
        for switch in self.switches.values():
            yield from switch._out_links

    def find_link(self, name: str) -> Link:
        for link in self.iter_links():
            if link.name == name:
                return link
        raise KeyError(f"no link named {name!r}")

    # -- aggregate metrics -----------------------------------------------------
    def total_cnps(self) -> int:
        return sum(len(h.cnp_log) for h in self.hosts.values())

    def total_pfc_pauses(self) -> int:
        return sum(s.pauses_sent for s in self.switches.values())


def build_star(
    sim: Simulator,
    host_names: list[str],
    *,
    rate_gbps: float = 40.0,
    delay_ns: int = US,
    nic_config: NICConfig | None = None,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """All hosts on one switch."""
    if len(host_names) < 2:
        raise ValueError("a star needs at least two hosts")
    net = Network(sim)
    net.add_switch("sw0", switch_config)
    for name in host_names:
        net.add_host(name, nic_config)
        net.connect(name, "sw0", rate_gbps=rate_gbps, delay_ns=delay_ns)
    net.build_routes()
    return net


def build_dumbbell(
    sim: Simulator,
    left_hosts: list[str],
    right_hosts: list[str],
    *,
    rate_gbps: float = 40.0,
    bottleneck_gbps: float | None = None,
    delay_ns: int = US,
    nic_config: NICConfig | None = None,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """Two access switches joined by one (optionally slower) trunk."""
    if not left_hosts or not right_hosts:
        raise ValueError("both sides need at least one host")
    net = Network(sim)
    net.add_switch("swL", switch_config)
    net.add_switch("swR", switch_config)
    net.connect("swL", "swR", rate_gbps=bottleneck_gbps or rate_gbps, delay_ns=delay_ns)
    for name in left_hosts:
        net.add_host(name, nic_config)
        net.connect(name, "swL", rate_gbps=rate_gbps, delay_ns=delay_ns)
    for name in right_hosts:
        net.add_host(name, nic_config)
        net.connect(name, "swR", rate_gbps=rate_gbps, delay_ns=delay_ns)
    net.build_routes()
    return net


def build_clos(
    sim: Simulator,
    *,
    n_pods: int = 4,
    leaves_per_pod: int = 2,
    tors_per_pod: int = 4,
    hosts_per_tor: int = 16,
    rate_gbps: float = 40.0,
    delay_ns: int = US,
    nic_config: NICConfig | None = None,
    switch_config: SwitchConfig | None = None,
    fluid_hosts_per_tor: int = 0,
) -> Network:
    """The §IV-A Clos: pods of (leaf, ToR) layers with hosts under ToRs.

    Within a pod every ToR connects to every leaf; leaves are meshed
    across pods so inter-pod traffic crosses exactly one remote leaf.
    The paper's full fabric is the default: 4 pods × (2 leaves + 4 ToRs
    + 64 hosts) = 256 hosts.  Host names are ``h<pod>_<tor>_<i>``.

    ``fluid_hosts_per_tor`` tags the *last* that many hosts of every ToR
    as fluid-fidelity (see :meth:`Network.tag_fidelity`): their
    background traffic is meant for a :class:`repro.net.fluid.
    FluidDomain`, while the low-indexed hosts stay packet-exact.
    """
    for val, label in (
        (n_pods, "n_pods"),
        (leaves_per_pod, "leaves_per_pod"),
        (tors_per_pod, "tors_per_pod"),
        (hosts_per_tor, "hosts_per_tor"),
    ):
        if val < 1:
            raise ValueError(f"{label} must be >= 1")
    if not 0 <= fluid_hosts_per_tor <= hosts_per_tor:
        raise ValueError(
            f"fluid_hosts_per_tor must be in [0, {hosts_per_tor}], "
            f"got {fluid_hosts_per_tor}"
        )
    net = Network(sim)
    leaf_names: list[str] = []
    for p in range(n_pods):
        pod_leaves = []
        for l in range(leaves_per_pod):
            name = f"leaf{p}_{l}"
            net.add_switch(name, switch_config)
            pod_leaves.append(name)
            leaf_names.append(name)
        for t in range(tors_per_pod):
            tor = f"tor{p}_{t}"
            net.add_switch(tor, switch_config)
            for leaf in pod_leaves:
                net.connect(tor, leaf, rate_gbps=rate_gbps, delay_ns=delay_ns)
            for i in range(hosts_per_tor):
                host = f"h{p}_{t}_{i}"
                net.add_host(host, nic_config)
                net.connect(host, tor, rate_gbps=rate_gbps, delay_ns=delay_ns)
                if i >= hosts_per_tor - fluid_hosts_per_tor:
                    net.tag_fidelity(host, "fluid")
    # Leaf full mesh across pods (same-pod leaves stay unconnected: ToRs
    # already join them).
    for i, a in enumerate(leaf_names):
        for b in leaf_names[i + 1 :]:
            if a.split("_")[0] != b.split("_")[0]:
                net.connect(a, b, rate_gbps=rate_gbps, delay_ns=delay_ns)
    net.build_routes()
    return net
