"""Network packets."""

from __future__ import annotations

import enum
from typing import Any


class PacketKind(enum.Enum):
    """Packet classes; control packets preempt data on links."""

    DATA = "data"
    CNP = "cnp"  # DCQCN congestion notification packet
    PAUSE = "pause"  # PFC XOFF
    RESUME = "resume"  # PFC XON
    ACK = "ack"  # message-level acknowledgment (fabric completions)
    RDMA_ACK = "rdma_ack"  # go-back-N cumulative ack (reliability mode)
    RDMA_RESET = "rdma_reset"  # go-back-N sender abort notification


#: Wire sizes of control packets (bytes).
CONTROL_PACKET_BYTES = 64


class Packet:
    """One packet on the wire.

    ``message_id`` / ``message_bytes`` / ``last_of_message`` let the
    receiving NIC reassemble multi-packet messages; ``payload`` carries
    an opaque fabric-level object on the message's last packet.

    ``seq`` is the per-flow go-back-N sequence number (reliability
    mode); on ``RDMA_ACK`` / ``RDMA_RESET`` control packets it carries
    the cumulative next-expected sequence instead.  ``corrupted`` is set
    by the fault injector: the packet still occupies wire time but the
    receiver discards it as a CRC failure.

    A plain ``__slots__`` class, not a dataclass: simulations allocate
    one of these per MTU segment, and the hand-written ``__init__``
    (no ``__post_init__`` indirection, no generated ``__eq__``) is the
    cheapest construction CPython offers.  ``is_control`` precomputes
    ``kind is not DATA`` — read on every link hop.  ``_ingress_port`` is
    switch-internal scratch space (the ingress port a buffered packet
    entered through, for PFC byte accounting).
    """

    __slots__ = (
        "kind",
        "src",
        "dst",
        "size_bytes",
        "flow_id",
        "ecn_marked",
        "message_id",
        "message_bytes",
        "last_of_message",
        "seq",
        "corrupted",
        "payload",
        "_ingress_port",
        "is_control",
    )

    def __init__(
        self,
        *,
        kind: PacketKind,
        src: str,
        dst: str,
        size_bytes: int,
        flow_id: int = -1,
        ecn_marked: bool = False,
        message_id: int = -1,
        message_bytes: int = 0,
        last_of_message: bool = False,
        seq: int = -1,
        corrupted: bool = False,
        payload: Any = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.kind = kind
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.flow_id = flow_id
        self.ecn_marked = ecn_marked
        self.message_id = message_id
        self.message_bytes = message_bytes
        self.last_of_message = last_of_message
        self.seq = seq
        self.corrupted = corrupted
        self.payload = payload
        self._ingress_port: int | None = None
        self.is_control = kind is not PacketKind.DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.kind.name} {self.src}->{self.dst} "
            f"{self.size_bytes}B flow={self.flow_id} seq={self.seq})"
        )
