"""Network packets."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class PacketKind(enum.Enum):
    """Packet classes; control packets preempt data on links."""

    DATA = "data"
    CNP = "cnp"  # DCQCN congestion notification packet
    PAUSE = "pause"  # PFC XOFF
    RESUME = "resume"  # PFC XON
    ACK = "ack"  # message-level acknowledgment (fabric completions)
    RDMA_ACK = "rdma_ack"  # go-back-N cumulative ack (reliability mode)
    RDMA_RESET = "rdma_reset"  # go-back-N sender abort notification


#: Wire sizes of control packets (bytes).
CONTROL_PACKET_BYTES = 64

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One packet on the wire.

    ``message_id`` / ``message_bytes`` / ``last_of_message`` let the
    receiving NIC reassemble multi-packet messages; ``payload`` carries
    an opaque fabric-level object on the message's last packet.

    ``seq`` is the per-flow go-back-N sequence number (reliability
    mode); on ``RDMA_ACK`` / ``RDMA_RESET`` control packets it carries
    the cumulative next-expected sequence instead.  ``corrupted`` is set
    by the fault injector: the packet still occupies wire time but the
    receiver discards it as a CRC failure.

    ``slots=True`` keeps the per-packet footprint small — simulations
    allocate one of these per MTU segment, so no ``__dict__``.
    ``_ingress_port`` is switch-internal scratch space (the ingress port
    a buffered packet entered through, for PFC byte accounting).
    """

    kind: PacketKind
    src: str
    dst: str
    size_bytes: int
    flow_id: int = -1
    ecn_marked: bool = False
    message_id: int = -1
    message_bytes: int = 0
    last_of_message: bool = False
    seq: int = -1
    corrupted: bool = False
    payload: Any = None
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    _ingress_port: int | None = None
    #: Precomputed ``kind is not DATA`` — read on every link hop.
    is_control: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        self.is_control = self.kind is not PacketKind.DATA
