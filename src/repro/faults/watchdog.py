"""Stuck-I/O watchdog: turn silent wedges into diagnostic failures.

Before this PR a lost packet could leave the simulation "finished" —
event heap empty — with I/O still pending and nobody the wiser.  The
watchdog hooks :attr:`repro.sim.engine.Simulator.watchdog`, which the
engine calls **only at quiescence** (the heap fully drained inside a
``run()`` call, i.e. nothing will ever complete the pending work), so
it costs zero per-event work.  If any registered initiator still holds
in-flight requests at that point, it raises :class:`StuckIOError`
naming the wedged commands and the flow state that stranded them.

``run(until=...)`` calls that stop at the horizon with events still
queued are *not* quiescent and do not trigger the watchdog; use
:meth:`StuckIOWatchdog.check_now` for an explicit end-of-run assertion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.fabric.initiator import Initiator


class StuckIOError(RuntimeError):
    """The simulation went quiescent with I/O still in flight.

    Attributes
    ----------
    wedged:
        ``(initiator name, request id, op, target, retries)`` per stuck
        command.
    flow_details:
        Human-readable notes about sender flows that still hold queued
        or unacked bytes (the usual culprits).
    """

    def __init__(
        self, wedged: list[tuple[str, int, str, str, int]], flow_details: list[str]
    ) -> None:
        lines = [
            f"simulation quiescent with {len(wedged)} I/O(s) still in flight:"
        ]
        for name, req_id, op, target, retries in wedged[:20]:
            lines.append(
                f"  - {name}: req {req_id} ({op} -> {target}, "
                f"{retries} retries) never completed"
            )
        if len(wedged) > 20:
            lines.append(f"  ... and {len(wedged) - 20} more")
        for detail in flow_details[:10]:
            lines.append(f"  * {detail}")
        super().__init__("\n".join(lines))
        self.wedged = wedged
        self.flow_details = flow_details


class StuckIOWatchdog:
    """Quiescence-time check that every issued I/O finished or failed."""

    def __init__(self) -> None:
        self._initiators: list[Initiator] = []

    def track_initiator(self, initiator: "Initiator") -> None:
        self._initiators.append(initiator)

    def install(self, sim: Simulator) -> "StuckIOWatchdog":
        """Attach to the simulator's quiescence hook."""
        sim.watchdog = self.check_now
        return self

    # -- the check --------------------------------------------------------
    def check_now(self, _sim: Simulator | None = None) -> None:
        """Raise :class:`StuckIOError` if any tracked I/O is unfinished."""
        wedged: list[tuple[str, int, str, str, int]] = []
        flow_details: list[str] = []
        for initiator in self._initiators:
            for req in initiator.wedged_requests():
                wedged.append(
                    (
                        initiator.name,
                        req.req_id,
                        "read" if req.is_read else "write",
                        req.target,
                        req.retries,
                    )
                )
            nic = initiator.nic
            for flow in nic.flows.values():
                notes = []
                if flow.queued_bytes:
                    notes.append(f"{flow.queued_bytes} B queued")
                rel = flow._rel
                if rel is not None and rel.unacked:
                    notes.append(f"{len(rel.unacked)} unacked segments")
                if rel is not None and rel.retransmit_queue:
                    notes.append(f"{len(rel.retransmit_queue)} queued retransmits")
                if notes:
                    flow_details.append(
                        f"flow {nic.name}->{flow.dst}: " + ", ".join(notes)
                    )
        if wedged:
            raise StuckIOError(wedged, flow_details)
