"""Deterministic fault injection and stuck-I/O detection.

Build a :class:`FaultPlan` from specs, arm it with a
:class:`FaultInjector`, and install a :class:`StuckIOWatchdog` so a
wedged run fails loudly::

    plan = FaultPlan(seed=7, specs=(
        LossBurst(link="init0->sw0", start_ns=MS, end_ns=2 * MS, loss_prob=0.05),
        LinkFlap(link="sw0->tgt0", down_ns=3 * MS, up_ns=4 * MS),
        DieFailure(ssd="tgt0/ssd0", chip=2, at_ns=5 * MS),
    ))
    injector = FaultInjector(sim, plan).attach_network(net)
    injector.attach_ssd("tgt0/ssd0", ssd.backend)
    injector.arm()

Recovery lives in the components themselves (go-back-N in
:mod:`repro.net.reliability`, command retry in
:mod:`repro.fabric.initiator`); this package only schedules the harm
and audits the outcome.
"""

from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    ChannelBrownout,
    DieFailure,
    FaultPlan,
    FaultSpec,
    LinkFlap,
    LossBurst,
    NicStall,
    SlowDie,
)
from repro.faults.watchdog import StuckIOError, StuckIOWatchdog

__all__ = [
    "ChannelBrownout",
    "DieFailure",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LinkFlap",
    "LossBurst",
    "NicStall",
    "SlowDie",
    "StuckIOError",
    "StuckIOWatchdog",
]
