"""The fault injector: arms a :class:`~repro.faults.plan.FaultPlan`.

The injector resolves each spec's string id against live objects
(links/hosts via an attached :class:`~repro.net.topology.Network`, SSDs
via explicit ``attach_ssd`` labels), then schedules plain simulator
events that flip the components' injection hooks at the spec'd times:

* :class:`LossBurst` — installs a :attr:`Link.fault_filter` at window
  start and removes it at window end; the filter draws from the spec's
  own child generator (see :mod:`repro.faults.plan` on determinism);
* :class:`LinkFlap` — ``link.set_down(True/False)``;
* :class:`NicStall` — ``nic.set_stalled(True/False)``;
* :class:`DieFailure` / :class:`SlowDie` / :class:`ChannelBrownout` —
  the :class:`~repro.ssd.flash.FlashBackend` fault setters.

Nothing here touches component internals beyond those public hooks, so
a run with an empty plan is event-for-event identical to a run without
an injector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import (
    ChannelBrownout,
    DieFailure,
    FaultPlan,
    LinkFlap,
    LossBurst,
    NicStall,
    SlowDie,
)
from repro.net.link import FAULT_CORRUPT, FAULT_DROP, FAULT_PASS, Link
from repro.sim.engine import Simulator
from repro.sim.rng import spawn_rngs

if TYPE_CHECKING:
    import numpy as np

    from repro.net.nic import NIC
    from repro.net.packet import Packet
    from repro.net.topology import Network
    from repro.ssd.flash import FlashBackend


class _LossFilter:
    """Per-burst drop/corrupt filter bound to its own rng stream."""

    __slots__ = ("rng", "loss_prob", "corrupt_prob")

    def __init__(
        self, rng: "np.random.Generator", loss_prob: float, corrupt_prob: float
    ) -> None:
        self.rng = rng
        self.loss_prob = loss_prob
        self.corrupt_prob = corrupt_prob

    def __call__(self, _packet: "Packet") -> int:
        draw = float(self.rng.random())
        if draw < self.loss_prob:
            return FAULT_DROP
        if draw < self.loss_prob + self.corrupt_prob:
            return FAULT_CORRUPT
        return FAULT_PASS


class FaultInjector:
    """Schedules a plan's faults onto live components."""

    def __init__(self, sim: Simulator, plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        self._links: dict[str, Link] = {}
        self._nics: dict[str, NIC] = {}
        self._ssds: dict[str, FlashBackend] = {}
        self._armed = False
        #: Faults activated so far (window starts + one-shot events).
        self.faults_fired = 0

    # -- wiring -----------------------------------------------------------
    def attach_network(self, net: "Network") -> "FaultInjector":
        """Register every link and host NIC of a network by name."""
        for link in net.iter_links():
            self._links[link.name] = link
        for name, nic in net.hosts.items():
            self._nics[name] = nic
        return self

    def attach_ssd(self, name: str, backend: "FlashBackend") -> "FaultInjector":
        """Register one SSD's flash backend under a plan-visible label."""
        self._ssds[name] = backend
        return self

    # -- arming -----------------------------------------------------------
    def arm(self) -> None:
        """Resolve every spec and schedule its activation events.

        Raises ``KeyError`` when a spec names an unknown link/host/SSD —
        a misspelled plan fails loudly at arm time, not silently never.
        """
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        loss_rngs = spawn_rngs(self.plan.seed, len(self.plan.loss_bursts))
        loss_index = 0
        for spec in self.plan.specs:
            if isinstance(spec, LossBurst):
                link = self._resolve_link(spec.link)
                rng = loss_rngs[loss_index]
                loss_index += 1
                filt = _LossFilter(rng, spec.loss_prob, spec.corrupt_prob)
                self.sim.schedule_at(spec.start_ns, self._set_filter, link, filt)
                self.sim.schedule_at(spec.end_ns, self._set_filter, link, None)
            elif isinstance(spec, LinkFlap):
                link = self._resolve_link(spec.link)
                self.sim.schedule_at(spec.down_ns, self._set_down, link, True)
                self.sim.schedule_at(spec.up_ns, self._set_down, link, False)
            elif isinstance(spec, NicStall):
                nic = self._resolve_nic(spec.host)
                self.sim.schedule_at(spec.start_ns, self._set_stalled, nic, True)
                self.sim.schedule_at(spec.end_ns, self._set_stalled, nic, False)
            elif isinstance(spec, DieFailure):
                backend = self._resolve_ssd(spec.ssd)
                if not 0 <= spec.chip < backend.config.n_chips:
                    raise ValueError(
                        f"die failure on {spec.ssd!r}: chip {spec.chip} out of "
                        f"range (SSD has {backend.config.n_chips})"
                    )
                self.sim.schedule_at(spec.at_ns, self._fail_chip, backend, spec.chip)
            elif isinstance(spec, SlowDie):
                backend = self._resolve_ssd(spec.ssd)
                self.sim.schedule_at(
                    spec.start_ns,
                    self._set_chip_slowdown,
                    backend,
                    spec.chip,
                    spec.multiplier,
                )
                self.sim.schedule_at(
                    spec.end_ns, self._set_chip_slowdown, backend, spec.chip, 1.0
                )
            elif isinstance(spec, ChannelBrownout):
                backend = self._resolve_ssd(spec.ssd)
                self.sim.schedule_at(
                    spec.start_ns,
                    self._set_channel_slowdown,
                    backend,
                    spec.channel,
                    spec.multiplier,
                )
                self.sim.schedule_at(
                    spec.end_ns,
                    self._set_channel_slowdown,
                    backend,
                    spec.channel,
                    1.0,
                )
            else:  # pragma: no cover - FaultSpec union is exhaustive
                raise TypeError(f"unknown fault spec {spec!r}")

    # -- resolution --------------------------------------------------------
    def _resolve_link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise KeyError(
                f"fault plan names unknown link {name!r}; known: "
                f"{sorted(self._links)}"
            ) from None

    def _resolve_nic(self, name: str) -> "NIC":
        try:
            return self._nics[name]
        except KeyError:
            raise KeyError(
                f"fault plan names unknown host {name!r}; known: "
                f"{sorted(self._nics)}"
            ) from None

    def _resolve_ssd(self, name: str) -> "FlashBackend":
        try:
            return self._ssds[name]
        except KeyError:
            raise KeyError(
                f"fault plan names unknown SSD {name!r}; known: "
                f"{sorted(self._ssds)}"
            ) from None

    # -- activation callbacks (plain methods: closure-free scheduling) -----
    def _set_filter(self, link: Link, filt: _LossFilter | None) -> None:
        link.set_fault_filter(filt)
        if filt is not None:
            self.faults_fired += 1

    def _set_down(self, link: Link, down: bool) -> None:
        link.set_down(down)
        if down:
            self.faults_fired += 1

    def _set_stalled(self, nic: "NIC", stalled: bool) -> None:
        nic.set_stalled(stalled)
        if stalled:
            self.faults_fired += 1

    def _fail_chip(self, backend: "FlashBackend", chip: int) -> None:
        backend.fail_chip(chip)
        self.faults_fired += 1

    def _set_chip_slowdown(
        self, backend: "FlashBackend", chip: int, mult: float
    ) -> None:
        backend.set_chip_slowdown(chip, mult)
        if mult != 1.0:
            self.faults_fired += 1

    def _set_channel_slowdown(
        self, backend: "FlashBackend", channel: int, mult: float
    ) -> None:
        backend.set_channel_slowdown(channel, mult)
        if mult != 1.0:
            self.faults_fired += 1

    # -- reporting ---------------------------------------------------------
    def loss_summary(self) -> dict[str, dict[str, int]]:
        """Per-link fault counters for every attached link that saw any."""
        out: dict[str, dict[str, int]] = {}
        for name, link in self._links.items():
            if link.packets_lost or link.packets_corrupted or link.packets_dropped_down:
                out[name] = {
                    "lost": link.packets_lost,
                    "corrupted": link.packets_corrupted,
                    "dropped_down": link.packets_dropped_down,
                }
        return out
