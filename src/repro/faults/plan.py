"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a frozen, picklable description of every fault a
run injects — probabilistic loss/corruption windows on links, link
down/up flaps, NIC stall windows, and SSD-side die/channel faults.
Specs name their victims by *string id* (link name, host name, SSD
label), so a plan can be built once and shipped across process
boundaries (parallel sweeps) and only resolved against live objects by
the :class:`~repro.faults.inject.FaultInjector` at arm time.

Determinism: the only randomness is the per-:class:`LossBurst` drop
draw; the injector spawns one child generator per loss spec — in spec
order — from ``FaultPlan.seed`` via :func:`repro.sim.rng.spawn_rngs`,
so identical plans replay identical fault patterns, and adding a spec
never perturbs the streams of the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _check_window(start_ns: int, end_ns: int) -> None:
    if start_ns < 0:
        raise ValueError(f"window start must be non-negative, got {start_ns}")
    if end_ns <= start_ns:
        raise ValueError(f"window end {end_ns} must be after start {start_ns}")


@dataclass(frozen=True)
class LossBurst:
    """Probabilistic packet loss/corruption on one link for a window.

    During ``[start_ns, end_ns)`` each departing *data* packet is
    dropped with ``loss_prob``, else corrupted with ``corrupt_prob``
    (CRC failure at the receiver).  Control packets ride the lossless
    class and are untouched.  Windows on the same link must not overlap.
    """

    link: str
    start_ns: int
    end_ns: int
    loss_prob: float = 0.0
    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self.start_ns, self.end_ns)
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ValueError(f"loss_prob must be in [0, 1], got {self.loss_prob}")
        if not 0.0 <= self.corrupt_prob <= 1.0:
            raise ValueError(f"corrupt_prob must be in [0, 1], got {self.corrupt_prob}")
        if self.loss_prob + self.corrupt_prob > 1.0:
            raise ValueError("loss_prob + corrupt_prob must not exceed 1")
        if self.loss_prob == 0.0 and self.corrupt_prob == 0.0:
            raise ValueError("a loss burst needs a positive loss or corrupt prob")


@dataclass(frozen=True)
class LinkFlap:
    """Link goes administratively down at ``down_ns``, back up at ``up_ns``."""

    link: str
    down_ns: int
    up_ns: int

    def __post_init__(self) -> None:
        _check_window(self.down_ns, self.up_ns)


@dataclass(frozen=True)
class NicStall:
    """A host NIC's TX pipeline freezes for ``[start_ns, end_ns)``."""

    host: str
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        _check_window(self.start_ns, self.end_ns)


@dataclass(frozen=True)
class DieFailure:
    """One flash die fails permanently at ``at_ns``.

    Commands touching the die complete with an error status; the
    target surfaces them as ERROR capsules and the initiator's retry
    may land the command on a healthy SSD.
    """

    ssd: str
    chip: int
    at_ns: int

    def __post_init__(self) -> None:
        if self.chip < 0:
            raise ValueError(f"chip index must be non-negative, got {self.chip}")
        if self.at_ns < 0:
            raise ValueError(f"failure time must be non-negative, got {self.at_ns}")


@dataclass(frozen=True)
class SlowDie:
    """A die's chip-stage latency is multiplied for a window (worn die)."""

    ssd: str
    chip: int
    start_ns: int
    end_ns: int
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        _check_window(self.start_ns, self.end_ns)
        if self.chip < 0:
            raise ValueError(f"chip index must be non-negative, got {self.chip}")
        if self.multiplier <= 1.0:
            raise ValueError(f"slow-die multiplier must exceed 1, got {self.multiplier}")


@dataclass(frozen=True)
class ChannelBrownout:
    """A flash channel's transfer latency is multiplied for a window."""

    ssd: str
    channel: int
    start_ns: int
    end_ns: int
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        _check_window(self.start_ns, self.end_ns)
        if self.channel < 0:
            raise ValueError(f"channel index must be non-negative, got {self.channel}")
        if self.multiplier <= 1.0:
            raise ValueError(f"brownout multiplier must exceed 1, got {self.multiplier}")


FaultSpec = LossBurst | LinkFlap | NicStall | DieFailure | SlowDie | ChannelBrownout


@dataclass(frozen=True)
class FaultPlan:
    """Everything a run injects, plus the seed of the loss draws."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Overlapping loss windows on one link would silently shadow
        # each other (one filter slot per link) — reject them up front.
        bursts: dict[str, list[tuple[int, int]]] = {}
        for spec in self.specs:
            if isinstance(spec, LossBurst):
                bursts.setdefault(spec.link, []).append((spec.start_ns, spec.end_ns))
        for link, windows in bursts.items():
            windows.sort()
            for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
                if next_start < prev_end:
                    raise ValueError(
                        f"overlapping loss bursts on link {link!r}: "
                        f"a window starting at {next_start} begins before "
                        f"{prev_end}"
                    )

    @property
    def loss_bursts(self) -> tuple[LossBurst, ...]:
        return tuple(s for s in self.specs if isinstance(s, LossBurst))

    def link_names(self) -> set[str]:
        return {s.link for s in self.specs if isinstance(s, (LossBurst, LinkFlap))}

    def host_names(self) -> set[str]:
        return {s.host for s in self.specs if isinstance(s, NicStall)}

    def ssd_names(self) -> set[str]:
        return {
            s.ssd
            for s in self.specs
            if isinstance(s, (DieFailure, SlowDie, ChannelBrownout))
        }
