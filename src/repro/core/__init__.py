"""SRC — storage-side rate control (the paper's contribution, §III).

* :mod:`repro.core.sampling` — training-sample collection: replay
  (workload × weight-ratio) grids on a simulated SSD and record the
  resulting read/write throughput;
* :mod:`repro.core.tpm` — the throughput-prediction model
  ``TPUT_{R,W} = F(Ch, w)`` (Eq. 1), a Random-Forest regressor by
  default (Table I);
* :mod:`repro.core.monitor` — the workload monitor profiling request
  streams over a prediction window δ;
* :mod:`repro.core.events` — pause/retrieval congestion events;
* :mod:`repro.core.controller` — Algorithm 1 (``PredictWeightRatio`` /
  ``DynamicAdjustment``) plus the online controller that subscribes to
  DCQCN rate changes on a target and adjusts SSQ weights.
"""

from repro.core.events import CongestionEvent, EventKind
from repro.core.tpm import ThroughputPredictionModel
from repro.core.monitor import WorkloadMonitor
from repro.core.sampling import SamplingPlan, TrainingSet, collect_training_set
from repro.core.controller import SRCController, predict_weight_ratio

__all__ = [
    "CongestionEvent",
    "EventKind",
    "ThroughputPredictionModel",
    "WorkloadMonitor",
    "SamplingPlan",
    "TrainingSet",
    "collect_training_set",
    "SRCController",
    "predict_weight_ratio",
]
