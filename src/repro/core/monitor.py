"""Workload monitor: rolling request profile over a prediction window.

§III-C: "Workload Monitor is also implemented to profile the workload
characteristics in a user-specific time window (e.g. 10 ms)".  The
monitor observes request arrivals (hooked into the target's submission
path) and, on demand, extracts the Ch feature vector from the requests
seen in the trailing window ``[t - δ, t]``.
"""

from __future__ import annotations

from collections import deque

from repro.sim.units import MS
from repro.workloads.features import WorkloadFeatures, extract_features
from repro.workloads.request import IORequest
from repro.workloads.traces import Trace


class WorkloadMonitor:
    """Sliding-window request profiler."""

    def __init__(self, window_ns: int = 10 * MS) -> None:
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        self.window_ns = window_ns
        self._requests: deque[tuple[int, IORequest]] = deque()
        self.observed = 0

    def observe(self, request: IORequest, now_ns: int) -> None:
        """Record one request arrival at the target."""
        self._requests.append((now_ns, request))
        self.observed += 1
        self._evict(now_ns)

    def _evict(self, now_ns: int) -> None:
        horizon = now_ns - self.window_ns
        while self._requests and self._requests[0][0] < horizon:
            self._requests.popleft()

    def window_trace(self, now_ns: int) -> Trace:
        """The requests observed in ``[now - δ, now]`` as a trace.

        Arrival timestamps are the observation times, so inter-arrival
        statistics reflect what the target actually saw.
        """
        self._evict(now_ns)
        reqs = []
        for t, r in self._requests:
            clone = IORequest(
                arrival_ns=t, op=r.op, lba=r.lba, size_bytes=r.size_bytes
            )
            reqs.append(clone)
        return Trace(reqs)

    def features(self, now_ns: int) -> WorkloadFeatures:
        """Extract Ch from the current window."""
        return extract_features(self.window_trace(now_ns), window_ns=self.window_ns)

    def in_window(self, now_ns: int) -> int:
        """Number of requests currently inside the window."""
        self._evict(now_ns)
        return len(self._requests)
