"""Congestion events delivered to SRC (§III-C, Algorithm 1 inputs)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """Direction of a rate-control notification.

    ``PAUSE`` — the network demands a lower sending rate (DCQCN cut);
    ``RETRIEVAL`` — congestion eased, the sending rate may rise again.
    """

    PAUSE = "pause"
    RETRIEVAL = "retrieval"


@dataclass(frozen=True)
class CongestionEvent:
    """One notification: the demanded data sending rate at a timestamp."""

    time_ns: int
    demanded_rate_gbps: float
    kind: EventKind

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ValueError(f"time must be non-negative, got {self.time_ns}")
        if self.demanded_rate_gbps <= 0:
            raise ValueError(
                f"demanded rate must be positive, got {self.demanded_rate_gbps}"
            )
