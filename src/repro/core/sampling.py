"""Training-sample collection for the throughput-prediction model.

The paper trains the TPM on "extensive experiments with various
workloads and weight ratios" (§III-B).  :func:`collect_training_set`
does exactly that: for every (workload, weight ratio) cell of a
:class:`SamplingPlan` it replays the workload on a fresh simulated SSD
through an SSQ driver and records

* **X** — the extracted Ch feature vector plus the weight ratio
  (:data:`repro.workloads.features.FEATURE_NAMES` order);
* **y** — measured (read, write) throughput in Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.nvme.ssq import SSQDriver
from repro.parallel import SweepReport, run_cells
from repro.ssd.config import SSDConfig
from repro.workloads.features import FEATURE_NAMES, extract_features
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.traces import Trace


@dataclass(frozen=True)
class SamplingPlan:
    """What to sweep when building a training set.

    Micro-trace grid: every combination of mean inter-arrival, mean
    request size, and weight ratio (the same axes as Fig. 5), with
    ``n_requests`` reads and writes per run.
    """

    interarrival_ns: Sequence[float] = (10_000, 15_000, 20_000, 25_000)
    size_bytes: Sequence[float] = (10 * 1024, 20 * 1024, 30 * 1024, 40 * 1024)
    weight_ratios: Sequence[int] = (1, 2, 4, 8, 16)
    #: Read:write arrival-rate mixes: the write stream's inter-arrival is
    #: the read stream's times this factor (1.0 ⇒ balanced, 2.0 ⇒
    #: read-heavy).  The paper's Ch includes the read/write ratio, so the
    #: training grid must vary it.
    read_write_mixes: Sequence[float] = (0.5, 1.0, 2.0)
    #: Trace span per sample.  Must dwarf the saturated command latency
    #: (QD × pages × pair-service / chips ≈ 6–9 ms for Table II devices)
    #: or the measurement is pure ramp transient.
    duration_ns: int = 60_000_000
    #: Floor on requests per direction for very sparse workloads.
    min_requests: int = 300
    seed: int = 0
    #: Leading fraction of each replay excluded from measurement.  Deeply
    #: saturated runs have command latencies of several ms, so the
    #: steady-state window must start well past the ramp.
    measure_start_fraction: float = 0.4

    def __post_init__(self) -> None:
        if not self.interarrival_ns or not self.size_bytes or not self.weight_ratios:
            raise ValueError("all sweep axes must be non-empty")
        if any(w < 1 for w in self.weight_ratios):
            raise ValueError("weight ratios must be >= 1 (SRC only slows reads)")
        if self.duration_ns <= 0:
            raise ValueError("duration must be positive")
        if self.min_requests < 10:
            raise ValueError("need at least 10 requests per sample")
        if not self.read_write_mixes or any(m <= 0 for m in self.read_write_mixes):
            raise ValueError("read/write mixes must be positive")

    def n_cells(self) -> int:
        return (
            len(self.interarrival_ns)
            * len(self.size_bytes)
            * len(self.weight_ratios)
            * len(self.read_write_mixes)
        )

    def requests_for(self, interarrival_ns: float) -> int:
        """Per-direction request count filling :attr:`duration_ns`."""
        return max(self.min_requests, int(self.duration_ns / interarrival_ns))


@dataclass
class TrainingSet:
    """Collected (X, y) samples with the frozen feature order."""

    X: np.ndarray
    y: np.ndarray  # columns: (read Gbps, write Gbps)
    feature_names: tuple[str, ...] = field(default=FEATURE_NAMES)

    def __post_init__(self) -> None:
        if self.X.ndim != 2 or self.y.ndim != 2:
            raise ValueError("X and y must be 2-D")
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("X and y row counts differ")
        if self.X.shape[1] != len(self.feature_names):
            raise ValueError("X width does not match the feature order")
        if self.y.shape[1] != 2:
            raise ValueError("y must have (read, write) columns")

    def merge(self, other: "TrainingSet") -> "TrainingSet":
        if self.feature_names != other.feature_names:
            raise ValueError("cannot merge sets with different feature orders")
        return TrainingSet(
            X=np.vstack([self.X, other.X]), y=np.vstack([self.y, other.y])
        )

    def __len__(self) -> int:
        return self.X.shape[0]


def sample_trace(
    trace: Trace,
    config: SSDConfig,
    weight_ratio: int,
    *,
    window_ns: int | None = None,
    measure_start_fraction: float = 0.4,
) -> tuple[np.ndarray, np.ndarray]:
    """One training sample: replay ``trace`` at ``weight_ratio``.

    Returns (x_row, y_row) with x in FEATURE_NAMES order and y =
    (read Gbps, write Gbps).
    """
    # Imported here rather than at module level: repro.experiments depends
    # on repro.core (the runner wires SRC controllers), so the reverse
    # edge must stay lazy.
    from repro.experiments.replay import replay_on_device

    if weight_ratio < 1:
        raise ValueError(f"weight ratio must be >= 1, got {weight_ratio}")
    features = extract_features(trace, window_ns=window_ns)
    driver = SSQDriver(read_weight=1, write_weight=weight_ratio)
    result = replay_on_device(
        trace, config, driver, drain=False, measure_start_fraction=measure_start_fraction
    )
    x = features.with_weight(weight_ratio)
    y = np.array([result.read_tput_gbps, result.write_tput_gbps])
    return x, y


def _micro_sample_cell(
    config: SSDConfig,
    plan: SamplingPlan,
    interarrival_ns: float,
    size_bytes: float,
    mix: float,
    weight_ratio: int,
) -> dict:
    """One micro-grid training sample — a sweep worker cell.

    The trace is regenerated inside the worker from the plan's seed
    (``hash`` of numbers is process-stable, so parallel workers build
    the identical trace the serial loop would).
    """
    read_wl = MicroWorkloadConfig(
        mean_interarrival_ns=interarrival_ns, mean_size_bytes=size_bytes
    )
    write_wl = MicroWorkloadConfig(
        mean_interarrival_ns=interarrival_ns * mix, mean_size_bytes=size_bytes
    )
    trace = generate_micro_trace(
        read_wl,
        write_wl,
        n_reads=plan.requests_for(interarrival_ns),
        n_writes=plan.requests_for(interarrival_ns * mix),
        seed=plan.seed + hash((interarrival_ns, size_bytes, mix)) % 10_000,
    )
    return _trace_sample_cell(
        config, trace, weight_ratio, plan.measure_start_fraction
    )


def _trace_sample_cell(
    config: SSDConfig,
    trace: Trace,
    weight_ratio: int,
    measure_start_fraction: float,
) -> dict:
    """One explicit-trace training sample — a sweep worker cell."""
    from repro.experiments.replay import replay_on_device

    features = extract_features(trace)
    result = replay_on_device(
        trace,
        config,
        SSQDriver(read_weight=1, write_weight=weight_ratio),
        drain=False,
        measure_start_fraction=measure_start_fraction,
    )
    return {
        "x": features.with_weight(weight_ratio),
        "y": np.array([result.read_tput_gbps, result.write_tput_gbps]),
        "sim_events": result.sim_events,
    }


def _sample_cell(config: SSDConfig, kind: str, args: tuple) -> dict:
    """Dispatch a cell spec (module-level so the pool can pickle it)."""
    if kind == "micro":
        return _micro_sample_cell(config, *args)
    return _trace_sample_cell(config, *args)


def collect_training_set_with_report(
    config: SSDConfig,
    plan: SamplingPlan | None = None,
    *,
    traces: Sequence[Trace] | None = None,
    weight_ratios: Sequence[int] | None = None,
    progress: Callable[[int, int], None] | None = None,
    workers: int | None = 1,
    timeout_s: float | None = None,
    retries: int = 1,
) -> tuple[TrainingSet, SweepReport]:
    """Build a training set and return the sweep's perf report.

    Parameters
    ----------
    config:
        SSD to characterise.
    plan:
        Micro-trace sweep (default :class:`SamplingPlan`); pass ``None``
        with explicit ``traces`` to skip micro samples entirely.
    traces:
        Extra traces (e.g. MMPP synthetics); each is replayed at every
        ratio in ``weight_ratios`` (default: the plan's ratios).
    progress:
        Optional ``(done, total)`` callback.
    workers:
        Fan the independent (workload, ratio) cells across this many
        processes (``None`` = all cores); results are bit-identical to
        the serial run because every cell reseeds from the plan.
    """
    if plan is None and traces is None:
        plan = SamplingPlan()
    ratios = list(weight_ratios or (plan.weight_ratios if plan else (1, 2, 4, 8)))
    mf = plan.measure_start_fraction if plan else 0.4

    cells: list[tuple] = []
    if plan is not None:
        for inter in plan.interarrival_ns:
            for size in plan.size_bytes:
                for mix in plan.read_write_mixes:
                    for w in plan.weight_ratios:
                        cells.append(
                            (config, "micro", (plan, inter, size, mix, w))
                        )
    for trace in traces or []:
        for w in ratios:
            cells.append((config, "trace", (trace, w, mf)))

    report = run_cells(
        _sample_cell,
        cells,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        progress=progress,
    )
    xs = [r["x"] for r in report.results]
    ys = [r["y"] for r in report.results]
    return TrainingSet(X=np.vstack(xs), y=np.vstack(ys)), report


def collect_training_set(
    config: SSDConfig,
    plan: SamplingPlan | None = None,
    *,
    traces: Sequence[Trace] | None = None,
    weight_ratios: Sequence[int] | None = None,
    progress: Callable[[int, int], None] | None = None,
    workers: int | None = 1,
) -> TrainingSet:
    """Build a training set (see :func:`collect_training_set_with_report`)."""
    training, _ = collect_training_set_with_report(
        config,
        plan,
        traces=traces,
        weight_ratios=weight_ratios,
        progress=progress,
        workers=workers,
    )
    return training
