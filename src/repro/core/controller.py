"""SRC controller — Algorithm 1 and its online integration.

:func:`predict_weight_ratio` is a line-for-line implementation of the
paper's ``PredictWeightRatio``: starting from ``w = 1``, predicted read
throughput is walked down by raising the write weight until successive
predictions converge (relative change below τ), returning the ratio
whose predicted read throughput is closest to the demanded rate.

:class:`SRCController` provides both modes of ``DynamicAdjustment``:

* **offline** (:meth:`dynamic_adjustment`) — given a list of congestion
  events and a workload trace, return the ratio chosen at each event
  (the Fig. 9 experiment shape);
* **online** (:meth:`attach`) — subscribe to a target's DCQCN rate
  changes; each notification becomes a pause/retrieval event, the
  workload monitor supplies Ch for the trailing window, and the chosen
  weights are applied to the target's SSQ drivers.  Adjustments are
  debounced to one per ``min_adjust_interval_ns``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import CongestionEvent, EventKind
from repro.core.monitor import WorkloadMonitor
from repro.core.tpm import ThroughputPredictionModel
from repro.sim.units import MS
from repro.workloads.features import WorkloadFeatures, extract_features
from repro.workloads.traces import Trace

#: Safety cap on the searched weight ratio; the convergence criterion
#: normally stops the walk long before this.
MAX_WEIGHT_RATIO = 64


class BlockRateController:
    """§V extension: direct block-layer read-rate control.

    Subscribes to a target's DCQCN rate changes like
    :class:`SRCController`, but instead of predicting a weight ratio it
    applies the demanded sending rate directly to each device's
    :class:`~repro.nvme.block_sched.BlockLayerThrottle` (split evenly
    over the flash array).  No TPM required.
    """

    def __init__(
        self,
        *,
        min_adjust_interval_ns: int = 1_000_000,
        line_rate_gbps: float = 40.0,
        release_fraction: float = 0.95,
    ) -> None:
        if min_adjust_interval_ns < 0:
            raise ValueError("adjust interval must be non-negative")
        if not 0.0 < release_fraction <= 1.0:
            raise ValueError("release fraction must be in (0, 1]")
        self.min_adjust_interval_ns = min_adjust_interval_ns
        self.line_rate_gbps = line_rate_gbps
        self.release_fraction = release_fraction
        self.adjustments: list[AdjustmentRecord] = []
        self._last_adjust_ns = -(10**18)
        self._target = None
        self._sim = None

    def attach(self, target, sim) -> None:
        self._target = target
        self._sim = sim
        target.add_rate_listener(self._on_rate_change)

    def _aggregate_rate_gbps(self) -> float:
        total = sum(
            f.rate_control.current_rate_gbps for f in self._target.nic.flows.values()
        )
        return min(self.line_rate_gbps, total) if total > 0 else self.line_rate_gbps

    def _on_rate_change(self, flow, change) -> None:
        now = self._sim.now
        if now - self._last_adjust_ns < self.min_adjust_interval_ns:
            return
        self._last_adjust_ns = now
        demanded = self._aggregate_rate_gbps()
        kind = EventKind.PAUSE if change.decreased else EventKind.RETRIEVAL
        n = max(1, len(self._target.drivers))
        per_device = demanded / n
        for driver in self._target.drivers:
            setter = getattr(driver, "set_read_rate", None)
            if setter is None:
                continue
            if demanded >= self.line_rate_gbps * self.release_fraction:
                setter(None)  # congestion cleared: lift the cap
            else:
                setter(per_device)
        self.adjustments.append(
            AdjustmentRecord(
                time_ns=now, demanded_rate_gbps=demanded, weight_ratio=1, kind=kind
            )
        )


def predict_weight_ratio(
    tpm: ThroughputPredictionModel,
    demanded_rate_gbps: float,
    features: WorkloadFeatures,
    *,
    tau: float = 0.1,
    max_ratio: int = MAX_WEIGHT_RATIO,
) -> int:
    """Algorithm 1, ``PredictWeightRatio(r, Ch)``.

    Returns the write:read weight ratio whose predicted read throughput
    is closest to ``demanded_rate_gbps``.
    """
    if demanded_rate_gbps <= 0:
        raise ValueError(f"demanded rate must be positive, got {demanded_rate_gbps}")
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    w = 1
    best_w = 1
    read_tput, _ = tpm.predict(features, w)
    if read_tput < demanded_rate_gbps:
        # The device already reads slower than the network allows.
        return 1
    min_dis = abs(read_tput - demanded_rate_gbps)
    while True:
        w += 1
        prev_tput = read_tput
        read_tput, _ = tpm.predict(features, w)
        dis = abs(read_tput - demanded_rate_gbps)
        if dis < min_dis:
            min_dis = dis
            best_w = w
        cur_tput = read_tput
        if prev_tput <= 0:
            break
        if abs(prev_tput - cur_tput) / prev_tput < tau:
            break
        if w >= max_ratio:
            break
    return best_w


@dataclass
class AdjustmentRecord:
    """One applied adjustment (for Fig. 9-style inspection)."""

    time_ns: int
    demanded_rate_gbps: float
    weight_ratio: int
    kind: EventKind


class SRCController:
    """Storage-side rate control for one target."""

    def __init__(
        self,
        tpm: ThroughputPredictionModel,
        *,
        window_ns: int = 10 * MS,
        tau: float = 0.1,
        min_adjust_interval_ns: int = 1 * MS,
        line_rate_gbps: float = 40.0,
    ) -> None:
        if min_adjust_interval_ns < 0:
            raise ValueError("adjust interval must be non-negative")
        self.tpm = tpm
        self.monitor = WorkloadMonitor(window_ns)
        self.tau = tau
        self.min_adjust_interval_ns = min_adjust_interval_ns
        self.line_rate_gbps = line_rate_gbps
        self.adjustments: list[AdjustmentRecord] = []
        self.current_ratio = 1
        self._last_adjust_ns = -(10**18)
        self._target = None
        self._sim = None

    # -- offline mode (Algorithm 1 verbatim) ---------------------------------
    def dynamic_adjustment(
        self, events: list[CongestionEvent], workload: Trace, window_ns: int | None = None
    ) -> list[int]:
        """``DynamicAdjustment(E, WL, δ)`` — returns the ratio per event."""
        delta = window_ns if window_ns is not None else self.monitor.window_ns
        ratios: list[int] = []
        for event in events:
            window = workload.window(max(0, event.time_ns - delta), event.time_ns)
            if len(window) == 0:
                ratios.append(1)
                continue
            features = extract_features(window, window_ns=delta)
            w = predict_weight_ratio(
                self.tpm, event.demanded_rate_gbps, features, tau=self.tau
            )
            ratios.append(w)
        return ratios

    # -- online mode ------------------------------------------------------------
    def attach(self, target, sim) -> None:
        """Wire this controller to a fabric target.

        Subscribes to the target NIC's DCQCN rate changes and shims the
        target's command-arrival path so the workload monitor sees every
        request.
        """
        self._target = target
        self._sim = sim
        original = target._on_message

        def observing(payload, src, size_bytes):
            capsule_req = getattr(payload, "request", None)
            if capsule_req is not None:
                self.monitor.observe(capsule_req, sim.now)
            original(payload, src, size_bytes)

        target._on_message = observing
        target.nic.endpoint = observing
        target.add_rate_listener(self._on_rate_change)

    def _aggregate_rate_gbps(self) -> float:
        """The demanded data sending rate: sum of flow rates, capped."""
        total = sum(
            f.rate_control.current_rate_gbps for f in self._target.nic.flows.values()
        )
        return min(self.line_rate_gbps, total) if total > 0 else self.line_rate_gbps

    def _on_rate_change(self, flow, change) -> None:
        now = self._sim.now
        if now - self._last_adjust_ns < self.min_adjust_interval_ns:
            return
        self._last_adjust_ns = now
        demanded = self._aggregate_rate_gbps()
        kind = EventKind.PAUSE if change.decreased else EventKind.RETRIEVAL
        self.handle_event(CongestionEvent(max(0, now), demanded, kind))

    def handle_event(self, event: CongestionEvent) -> int:
        """Process one congestion event: predict and apply a new ratio.

        The demanded sending rate arrives per *target*; the TPM predicts
        per *device*.  With a flash array behind the target, both the
        rate and the observed workload are scaled down to one device's
        share before the prediction.
        """
        if self._sim is None or self._target is None:
            raise RuntimeError("controller is not attached to a target")
        now = self._sim.now
        n_devices = max(1, len(getattr(self._target, "drivers", [])) or 1)
        if self.monitor.in_window(now) < 2:
            w = 1  # nothing to profile yet; neutral weights
        else:
            features = self.monitor.features(now).per_device(n_devices)
            w = predict_weight_ratio(
                self.tpm,
                event.demanded_rate_gbps / n_devices,
                features,
                tau=self.tau,
            )
        if w != self.current_ratio:
            self.current_ratio = w
            self._target.set_ssq_weights(1, w)
        self.adjustments.append(
            AdjustmentRecord(
                time_ns=now,
                demanded_rate_gbps=event.demanded_rate_gbps,
                weight_ratio=w,
                kind=event.kind,
            )
        )
        return w
