"""Units-of-measure convention for the simulation packages.

Quantities cross module boundaries as bare ``int``/``float`` values —
nanoseconds in the engine, bytes on links, Gbps at DCQCN configuration
boundaries, page counts inside the SSD.  This module makes the
convention *machine-checkable* without changing a single runtime type:

* **Unit aliases** — ``typing.Annotated`` wrappers (:data:`Nanoseconds`,
  :data:`Bytes`, :data:`Gbps`, :data:`PageCount`, ...) used in
  signatures of the hot-path modules.  At runtime they are plain
  ``int``/``float``; the whole-program checker
  (:mod:`repro.analysis.units`) reads them from the AST.
* **Suffix inference** — unannotated locals and attributes get a unit
  from their name suffix (``_ns``, ``_bytes``, ``_gbps``, ...), the
  repo-wide naming convention (:data:`SUFFIX_UNITS`).
* **Conversion factors** — the constants of :mod:`repro.sim.units`
  (``US``, ``MS``, ``KIB``, ``GBPS``...) convert a *count* of one unit
  into another on multiplication; :data:`CONVERSION_FACTORS` records
  the (source, result) unit of each so ``duration_ms * US`` is flagged
  as mixing while ``duration_ms * MS`` checks clean.

Simulation modules must import this module **under ``TYPE_CHECKING``
only**: ``repro.core.__init__`` pulls in the ML stack, and a runtime
import from ``repro.sim``/``repro.net`` would create an import cycle.
Annotations are never evaluated (every module uses ``from __future__
import annotations``), so the guard costs nothing.

See DESIGN.md §8 for the full convention table.
"""

from __future__ import annotations

from typing import Annotated


class Unit:
    """Annotation marker naming the unit of an ``Annotated`` quantity."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Unit({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Unit) and other.name == self.name

    def __hash__(self) -> int:
        return hash((Unit, self.name))


# --- the unit aliases used in signatures -----------------------------------
#: Wall of the simulated clock: integer nanoseconds.
Nanoseconds = Annotated[int, Unit("ns")]
#: Microseconds (CLI/config boundaries only; convert with ``US``).
Microseconds = Annotated[int, Unit("us")]
#: Milliseconds (CLI/config boundaries only; convert with ``MS``).
Milliseconds = Annotated[int, Unit("ms")]
#: Seconds (foreign-trace boundaries only; convert with ``SEC``).
Seconds = Annotated[float, Unit("s")]
#: Payload / buffer sizes: integer bytes.
Bytes = Annotated[int, Unit("bytes")]
#: Flash page counts (FTL / controller accounting).
PageCount = Annotated[int, Unit("pages")]
#: Link and flow rates at configuration boundaries.
Gbps = Annotated[float, Unit("gbps")]
#: Internal pacing-ready rate form (``gbps_to_bytes_per_ns``).
BytesPerNs = Annotated[float, Unit("bytes_per_ns")]
#: Dimensionless fractions/ratios — arithmetic-transparent.
Ratio = Annotated[float, Unit("ratio")]

#: Alias name -> unit string, as the AST checker sees annotations.
ALIAS_UNITS: dict[str, str] = {
    "Nanoseconds": "ns",
    "Microseconds": "us",
    "Milliseconds": "ms",
    "Seconds": "s",
    "Bytes": "bytes",
    "PageCount": "pages",
    "Gbps": "gbps",
    "BytesPerNs": "bytes_per_ns",
    "Ratio": "ratio",
}

#: Name suffix -> unit, for unannotated locals / attributes / function
#: names (``serialization_ns`` returns ns).  Matched case-insensitively,
#: longest suffix first — ``link_bytes_per_ns`` must resolve to
#: ``bytes_per_ns``, not ``ns``.
SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_bytes_per_ns", "bytes_per_ns"),
    ("_gbps", "gbps"),
    ("_bytes", "bytes"),
    ("_pages", "pages"),
    ("_ns", "ns"),
    ("_us", "us"),
    ("_ms", "ms"),
    ("_sec", "s"),
    ("_s", "s"),
    ("_frac", "ratio"),
)

#: Conversion constants (from :mod:`repro.sim.units`): multiplying a
#: count of ``source`` unit by the factor yields a ``result`` quantity;
#: dividing a ``result`` quantity by the factor yields a ``source``
#: count.  ``None`` source means a dimensionless count (``16 * KIB``).
CONVERSION_FACTORS: dict[str, tuple[str | None, str]] = {
    "NS": ("ns", "ns"),
    "US": ("us", "ns"),
    "MS": ("ms", "ns"),
    "SEC": ("s", "ns"),
    "KIB": (None, "bytes"),
    "MIB": (None, "bytes"),
    "GIB": (None, "bytes"),
    "GBPS": ("gbps", "bytes_per_ns"),
}

#: Units the checker treats as transparent in arithmetic (scaling).
DIMENSIONLESS: frozenset[str] = frozenset({"ratio"})

#: All time units, ordered fine -> coarse.  Mixing any two is SIM101:
#: the engine clock is integer ns, so an unconverted coarser value is
#: off by orders of magnitude, the classic reproduction bug.
TIME_UNITS: frozenset[str] = frozenset({"ns", "us", "ms", "s"})


def suffix_unit(name: str) -> str | None:
    """Unit inferred from a name's suffix, or ``None``."""
    lowered = name.lower()
    for suffix, unit in SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return unit
    return None


__all__ = [
    "ALIAS_UNITS",
    "Bytes",
    "BytesPerNs",
    "CONVERSION_FACTORS",
    "DIMENSIONLESS",
    "Gbps",
    "Microseconds",
    "Milliseconds",
    "Nanoseconds",
    "PageCount",
    "Ratio",
    "SUFFIX_UNITS",
    "Seconds",
    "TIME_UNITS",
    "Unit",
    "suffix_unit",
]
