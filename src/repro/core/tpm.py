"""The throughput-prediction model (TPM), Eq. 1: TPUT_{R,W} = F(Ch, w).

Wraps one of the :mod:`repro.ml` regressors (Random Forest by default,
the paper's pick from Table I) behind a storage-domain interface: fit on
a :class:`~repro.core.sampling.TrainingSet`, then predict the read and
write throughput a workload will sustain at a candidate SSQ weight
ratio.  Also surfaces the Breiman feature importances behind the
§III-B observation that arrival flow speed dominates.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling import TrainingSet
from repro.ml.base import Regressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.workloads.features import FEATURE_NAMES, WorkloadFeatures


class ThroughputPredictionModel:
    """F(Ch, w) → (read Gbps, write Gbps)."""

    def __init__(self, model: Regressor | None = None) -> None:
        self.model: Regressor = model if model is not None else RandomForestRegressor(
            n_estimators=40, max_features=1 / 3, seed=7
        )
        self.fitted = False
        self.feature_names = FEATURE_NAMES

    def fit(self, training: TrainingSet) -> "ThroughputPredictionModel":
        if training.feature_names != self.feature_names:
            raise ValueError("training set feature order mismatch")
        if len(training) < 4:
            raise ValueError(f"need at least 4 samples, got {len(training)}")
        self.model.fit(training.X, training.y)
        self.fitted = True
        return self

    # -- prediction ------------------------------------------------------
    def predict(
        self, features: WorkloadFeatures, weight_ratio: float
    ) -> tuple[float, float]:
        """Predicted (read, write) throughput in Gbps, floored at 0."""
        if not self.fitted:
            raise RuntimeError("TPM is not fitted")
        row = features.with_weight(weight_ratio).reshape(1, -1)
        pred = np.asarray(self.model.predict(row)).reshape(-1)
        if pred.shape[0] != 2:
            raise RuntimeError(f"expected 2 outputs, got {pred.shape[0]}")
        return float(max(0.0, pred[0])), float(max(0.0, pred[1]))

    def predict_read(self, features: WorkloadFeatures, weight_ratio: float) -> float:
        return self.predict(features, weight_ratio)[0]

    # -- evaluation --------------------------------------------------------
    def score(self, validation: TrainingSet) -> float:
        """R² on held-out samples (the paper's "accuracy")."""
        if not self.fitted:
            raise RuntimeError("TPM is not fitted")
        pred = self.model.predict(validation.X)
        return r2_score(validation.y, pred)

    def feature_importances(self) -> dict[str, float]:
        """Breiman importances by feature name (empty if unsupported)."""
        imp = getattr(self.model, "feature_importances_", None)
        if imp is None:
            return {}
        return dict(zip(self.feature_names, (float(v) for v in imp)))

    def ch_importances(self) -> dict[str, float]:
        """Importances over the Ch workload features only (§III-B view).

        The paper reports feature weights "of each feature in Ch" — the
        control variable ``w`` is excluded and the rest renormalised.
        """
        imp = self.feature_importances()
        imp.pop("weight_ratio", None)
        total = sum(imp.values())
        if total <= 0:
            return imp
        return {k: v / total for k, v in imp.items()}

    def flow_speed_importance(self) -> float:
        """Combined Ch importance of read+write arrival flow speed (§III-B)."""
        imp = self.ch_importances()
        return imp.get("read_flow_speed", 0.0) + imp.get("write_flow_speed", 0.0)
