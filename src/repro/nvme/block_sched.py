"""Block-layer read throttle — the paper's §V future-work design.

The paper's conclusion proposes extending SRC "as an I/O scheduler in
the block layer on Targets".  This module implements that alternative:
a :class:`BlockLayerThrottle` sits *above* any NVMe driver and paces
read submissions to an explicit byte rate (token-bucket style), leaving
writes untouched.  Rate control here needs no throughput-prediction
model — the congestion controller's demanded rate is applied directly —
at the cost of an extra queueing stage above the driver and no direct
control over the device's internal read/write arbitration.

The benchmark suite compares this design against the SSQ/WRR mechanism
(``bench_extension_block_layer.py``).
"""

from __future__ import annotations

from collections import deque

from repro.sim.engine import Simulator
from repro.sim.units import gbps_to_bytes_per_ns
from repro.workloads.request import IORequest


class BlockLayerThrottle:
    """Read-rate-limiting shim above an NVMe driver.

    Writes pass straight through.  Reads queue in a block-layer staging
    queue and are released to the inner driver at no more than
    ``read_rate_gbps`` (``None`` = unthrottled).  The device keeps
    fetching from the *inner* driver; only submission is shaped.
    """

    def __init__(self, sim: Simulator, inner, read_rate_gbps: float | None = None) -> None:
        self.sim = sim
        self.inner = inner
        self._rate: float | None = None
        self._pending: deque[IORequest] = deque()
        self._next_release_ns = 0
        self._release_event = None
        self.reads_throttled = 0
        #: (time_ns, rate or None) history of rate changes.
        self.rate_log: list[tuple[int, float | None]] = []
        if read_rate_gbps is not None:
            self.set_read_rate(read_rate_gbps)

    # -- wiring (mirrors the driver protocol used by Target) ----------------
    def connect(self, device) -> None:
        self.inner.connect(device)

    def set_weights(self, read_weight: int, write_weight: int, **kwargs) -> None:
        """Forward SSQ-style weight updates if the inner driver has them."""
        setter = getattr(self.inner, "set_weights", None)
        if setter is not None:
            setter(read_weight, write_weight, **kwargs)

    # -- rate control --------------------------------------------------------
    @property
    def read_rate_gbps(self) -> float | None:
        return self._rate

    def set_read_rate(self, gbps: float | None) -> None:
        """Cap the read submission rate (``None`` removes the cap)."""
        if gbps is not None and gbps <= 0:
            raise ValueError(f"rate must be positive, got {gbps}")
        self._rate = gbps
        self.rate_log.append((self.sim.now, gbps))
        if gbps is None:
            self._next_release_ns = self.sim.now
        self._pump()

    # -- submission ------------------------------------------------------------
    def submit(self, request: IORequest, *, now_ns: int | None = None) -> None:
        if not request.is_read or self._rate is None:
            if request.is_read and self._pending:
                # Preserve read ordering behind already-throttled reads.
                self._pending.append(request)
                self._pump()
                return
            self.inner.submit(request, now_ns=now_ns)
            return
        self._pending.append(request)
        self.reads_throttled += 1
        self._pump()

    def _pump(self) -> None:
        if self._release_event is not None:
            self._release_event.cancel()
            self._release_event = None
        while self._pending:
            if self._rate is None:
                self.inner.submit(self._pending.popleft(), now_ns=self.sim.now)
                continue
            if self.sim.now < self._next_release_ns:
                self._release_event = self.sim.schedule_at(
                    self._next_release_ns, self._pump
                )
                return
            request = self._pending.popleft()
            self.inner.submit(request, now_ns=self.sim.now)
            gap = request.size_bytes / gbps_to_bytes_per_ns(self._rate)
            self._next_release_ns = self.sim.now + max(1, int(gap + 0.5))

    # -- introspection -----------------------------------------------------------
    def staged_reads(self) -> int:
        return len(self._pending)

    def queued(self) -> int:
        return len(self._pending) + self.inner.queued()
