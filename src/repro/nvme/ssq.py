"""Separate submission queues with WRR fetch — §III-A, Fig. 4-b.

The SSQ driver is the storage-side control point SRC manipulates:

* reads enter RSQ, writes enter WSQ — unless the **consistency check**
  finds an overlapping-LBA request still waiting in some SQ, in which
  case the new request joins that same queue so dependent I/Os retire
  in submission order;
* the device fetches by **token WRR** (:class:`repro.nvme.wrr.TokenWRR`);
  a fetched command consumes a token of *its own I/O type* regardless of
  which queue held it, preserving the demanded weight ratio;
* the configured queue depth is **partitioned** between the types in
  proportion to the weights, bounding per-type in-flight commands.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.nvme.wrr import TokenWRR
from repro.workloads.request import IORequest, OpType


class SSQDriver:
    """Separate read/write submission queues with weighted fetch."""

    #: Dependency-detection granularity in bytes.  Requests are indexed
    #: by the 4 KiB buckets they touch; bucket collision is a
    #: conservative superset of sector overlap.
    DEPENDENCY_BUCKET_BYTES = 4096

    def __init__(
        self,
        read_weight: int = 1,
        write_weight: int = 1,
        *,
        consistency_check: bool = True,
    ) -> None:
        self.wrr = TokenWRR(read_weight, write_weight)
        #: §III-A data-consistency mechanism; disable only for ablation
        #: studies (dependent I/Os may then retire out of order).
        self.consistency_check = consistency_check
        self.rsq: deque[IORequest] = deque()
        self.wsq: deque[IORequest] = deque()
        self._doorbell: Callable[[], None] | None = None
        self.submitted = 0
        self.fetched = 0
        self.consistency_redirects = 0
        #: History of (submit-time) weight changes, for experiment plots.
        self.weight_log: list[tuple[int, int, int]] = []
        # bucket -> [queue, refcount]: which SQ holds waiting requests
        # touching this address bucket, and how many.
        self._pending_buckets: dict[int, list] = {}

    def connect(self, device) -> None:
        """Bind to a device; submissions will ring its doorbell."""
        self._doorbell = device.doorbell
        device.attach_driver(self)
        sim = getattr(device, "sim", None)
        sanitizer = getattr(sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.track_wrr(self.wrr, name="SSQDriver.wrr")

    # -- weight control (SRC's knob) -----------------------------------------
    def set_weights(self, read_weight: int, write_weight: int, *, now_ns: int = 0) -> None:
        self.wrr.set_weights(read_weight, write_weight)
        self.weight_log.append((now_ns, read_weight, write_weight))
        # A weight change can unblock fetch immediately (e.g. a larger
        # write partition); let the device re-evaluate.
        if self._doorbell is not None:
            self._doorbell()

    @property
    def weight_ratio(self) -> float:
        return self.wrr.weight_ratio

    # -- host side -----------------------------------------------------------
    def submit(self, request: IORequest, *, now_ns: int | None = None) -> None:
        """Enqueue with the consistency check, then ring the doorbell."""
        if now_ns is not None:
            request.submit_ns = now_ns
        natural = self.rsq if request.is_read else self.wsq
        target = self._consistency_queue(request) if self.consistency_check else None
        if target is None:
            target = natural
        elif target is not natural:
            self.consistency_redirects += 1
        if self.consistency_check:
            self._index_buckets(request, target)
        target.append(request)
        self.submitted += 1
        if self._doorbell is not None:
            self._doorbell()

    def _buckets_of(self, request: IORequest) -> range:
        start = (request.lba * 512) // self.DEPENDENCY_BUCKET_BYTES
        end = (request.lba * 512 + request.size_bytes - 1) // self.DEPENDENCY_BUCKET_BYTES
        return range(start, end + 1)

    def _consistency_queue(self, request: IORequest) -> deque[IORequest] | None:
        """The SQ holding a waiting request that overlaps ``request``.

        Overlap is tracked at :data:`DEPENDENCY_BUCKET_BYTES` granularity
        through an index updated on submit/fetch, so the check is O(pages
        touched) instead of a queue scan.  Returns None when no
        dependency is waiting.
        """
        for bucket in self._buckets_of(request):
            entry = self._pending_buckets.get(bucket)
            if entry is not None:
                return entry[0]
        return None

    def _index_buckets(self, request: IORequest, queue: deque[IORequest]) -> None:
        for bucket in self._buckets_of(request):
            entry = self._pending_buckets.get(bucket)
            if entry is None:
                self._pending_buckets[bucket] = [queue, 1]
            else:
                # Later requests to this bucket follow the same queue, so
                # repointing is unnecessary; just bump the refcount.
                entry[1] += 1

    def _unindex_buckets(self, request: IORequest) -> None:
        for bucket in self._buckets_of(request):
            entry = self._pending_buckets.get(bucket)
            if entry is None:
                continue
            entry[1] -= 1
            if entry[1] <= 0:
                del self._pending_buckets[bucket]

    # -- device side (SubmissionSource) -----------------------------------------
    def has_pending(self) -> bool:
        return bool(self.rsq or self.wsq)

    def _partition(self, queue_depth: int) -> tuple[int, int]:
        """(read slots, write slots) split of QD by the weight ratio."""
        total = self.wrr.read_weight + self.wrr.write_weight
        write_slots = max(1, (queue_depth * self.wrr.write_weight) // total)
        read_slots = max(1, queue_depth - write_slots)
        return read_slots, write_slots

    def fetch(
        self, inflight_reads: int, inflight_writes: int, queue_depth: int
    ) -> IORequest | None:
        # WRR chooses by queue occupancy; the skip-if-empty rule (serve
        # the other queue without moving tokens) applies only to truly
        # empty queues.  A slot-blocked head instead *stalls* fetch until
        # its class completes a command — this is what makes the token
        # ratio authoritative for throughput control, while the QD
        # partition guarantees each class its own slots so a class whose
        # completions are back-pressured (reads under congestion) can
        # never occupy the whole device.
        choice = self.wrr.choose(bool(self.rsq), bool(self.wsq))
        if choice is None:
            return None
        both = bool(self.rsq) and bool(self.wsq)
        queue = self.rsq if choice is OpType.READ else self.wsq
        head = queue[0]
        read_slots, write_slots = self._partition(queue_depth)
        if not self._head_eligible(
            head, inflight_reads, inflight_writes, read_slots, write_slots
        ):
            return None
        queue.popleft()
        self._unindex_buckets(head)
        # Tokens move only when both queues competed for the turn.
        if both:
            self.wrr.consume(head.op)
        self.fetched += 1
        return head

    @staticmethod
    def _head_eligible(
        head: IORequest,
        inflight_reads: int,
        inflight_writes: int,
        read_slots: int,
        write_slots: int,
    ) -> bool:
        if head.is_read:
            return inflight_reads < read_slots
        return inflight_writes < write_slots

    # -- introspection ----------------------------------------------------------
    def queued(self) -> int:
        return len(self.rsq) + len(self.wsq)

    def queue_lengths(self) -> tuple[int, int]:
        return len(self.rsq), len(self.wsq)
