"""Token-based weighted round-robin between the read and write SQs.

NVMe's WRR arbitration as the paper uses it (§III-A): each SQ gets a
number of tokens equal to its weight; fetching a command consumes one
token of that command's I/O type; when the type that should go next has
no tokens left, all tokens are reset to the weights.  If only one queue
has waiting commands, it is served without touching the tokens (the
"skip-if-empty" rule that makes WRR degenerate to plain round-robin
under light load — the effect behind Fig. 5's flat bottom-left panels
and the in-cast analysis of Table IV).
"""

from __future__ import annotations

from repro.workloads.request import OpType


class TokenWRR:
    """Two-class WRR token state.

    Weights are positive integers; ``weight_ratio`` is write weight over
    read weight, the paper's control variable ``w`` (reads fixed at 1).
    """

    def __init__(self, read_weight: int = 1, write_weight: int = 1) -> None:
        self._validate(read_weight, write_weight)
        self.read_weight = read_weight
        self.write_weight = write_weight
        self.read_tokens = read_weight
        self.write_tokens = write_weight

    @staticmethod
    def _validate(read_weight: int, write_weight: int) -> None:
        if read_weight < 1 or write_weight < 1:
            raise ValueError(
                f"weights must be >= 1, got read={read_weight} write={write_weight}"
            )

    @property
    def weight_ratio(self) -> float:
        """Write weight over read weight (the paper's ``w``)."""
        return self.write_weight / self.read_weight

    def set_weights(self, read_weight: int, write_weight: int) -> None:
        """Update weights and restart the token round."""
        self._validate(read_weight, write_weight)
        self.read_weight = read_weight
        self.write_weight = write_weight
        self.reset_tokens()

    def reset_tokens(self) -> None:
        self.read_tokens = self.read_weight
        self.write_tokens = self.write_weight

    def choose(self, read_available: bool, write_available: bool) -> OpType | None:
        """Pick the I/O type to fetch next.

        Does not consume a token — call :meth:`consume` with the type of
        the command actually fetched (which can differ when the
        consistency check placed it in the other queue).

        The §III-A round reset lives *here*: "when the type that should
        go next has no tokens left, all tokens are reset" — so the reset
        fires exactly when both classes are dry at choice time, and the
        returned class always holds at least one token.
        """
        if not read_available and not write_available:
            return None
        if read_available and not write_available:
            return OpType.READ
        if write_available and not read_available:
            return OpType.WRITE
        # Both available: serve the class with tokens; writes first within
        # a round so that a ratio w yields w writes per read.
        if self.write_tokens <= 0 and self.read_tokens <= 0:
            self.reset_tokens()
        if self.write_tokens >= self.read_tokens:
            # write >= read and not both dry implies write_tokens >= 1.
            return OpType.WRITE
        return OpType.READ

    def consume(self, op: OpType) -> None:
        """Take one token of ``op``'s class.

        A dry class is never charged below zero and never resets the
        round here — the reset is :meth:`choose`'s job, so a cross-typed
        fetch (a command the consistency check parked in the other
        queue) cannot wipe the other class's remaining budget mid-round.
        """
        if op is OpType.READ:
            if self.read_tokens > 0:
                self.read_tokens -= 1
        else:
            if self.write_tokens > 0:
                self.write_tokens -= 1
        assert self.read_tokens >= 0 and self.write_tokens >= 0, (
            f"WRR tokens went negative: read={self.read_tokens} "
            f"write={self.write_tokens}"
        )
