"""NVMe driver layer: submission-queue policies on the target.

Two drivers implement the controller's
:class:`~repro.ssd.controller.SubmissionSource` protocol:

* :class:`~repro.nvme.driver.DefaultNvmeDriver` — the stock design of
  Fig. 4-a: per-CPU FIFO submission queues, no I/O-type awareness;
* :class:`~repro.nvme.ssq.SSQDriver` — the paper's separate submission
  queue mechanism (Fig. 4-b, §III-A): one read SQ and one write SQ,
  fetched by token-based weighted round-robin, with QD partitioned by
  the weight ratio and a consistency check that pins LBA-dependent
  requests to a single queue.
"""

from repro.nvme.wrr import TokenWRR
from repro.nvme.driver import DefaultNvmeDriver
from repro.nvme.ssq import SSQDriver
from repro.nvme.block_sched import BlockLayerThrottle

__all__ = ["TokenWRR", "DefaultNvmeDriver", "SSQDriver", "BlockLayerThrottle"]
