"""Default NVMe driver: per-CPU FIFO submission queues (Fig. 4-a).

No I/O-type awareness: commands are enqueued in arrival order onto one
of ``n_queues`` SQs (round-robin, standing in for per-CPU affinity) and
fetched FIFO across queues.  This is the baseline whose head-of-line
blocking under congestion SRC removes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.workloads.request import IORequest


class DefaultNvmeDriver:
    """FIFO multi-SQ driver implementing ``SubmissionSource``."""

    def __init__(self, n_queues: int = 1) -> None:
        if n_queues < 1:
            raise ValueError(f"n_queues must be >= 1, got {n_queues}")
        self.n_queues = n_queues
        self._queues: list[deque[IORequest]] = [deque() for _ in range(n_queues)]
        self._submit_rr = 0
        self._fetch_rr = 0
        self._doorbell: Callable[[], None] | None = None
        self.submitted = 0
        self.fetched = 0

    def connect(self, device) -> None:
        """Bind to a device; submissions will ring its doorbell."""
        self._doorbell = device.doorbell
        device.attach_driver(self)

    # -- host side -------------------------------------------------------
    def submit(self, request: IORequest, *, now_ns: int | None = None) -> None:
        """Enqueue a command and ring the doorbell."""
        if now_ns is not None:
            request.submit_ns = now_ns
        self._queues[self._submit_rr].append(request)
        self._submit_rr = (self._submit_rr + 1) % self.n_queues
        self.submitted += 1
        if self._doorbell is not None:
            self._doorbell()

    # -- device side (SubmissionSource) --------------------------------------
    def has_pending(self) -> bool:
        return any(self._queues)

    def fetch(
        self, inflight_reads: int, inflight_writes: int, queue_depth: int
    ) -> IORequest | None:
        """Pop the next command FIFO across SQs; no type gating."""
        for _ in range(self.n_queues):
            q = self._queues[self._fetch_rr]
            self._fetch_rr = (self._fetch_rr + 1) % self.n_queues
            if q:
                self.fetched += 1
                return q.popleft()
        return None

    # -- introspection ----------------------------------------------------
    def queued(self) -> int:
        return sum(len(q) for q in self._queues)
