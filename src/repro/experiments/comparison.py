"""DCQCN-only vs DCQCN-SRC comparisons: Table IV and Fig. 10 drivers.

The §IV-B method: run the same workload once with the default driver
(DCQCN-only) and once with SSQ + the SRC controller (DCQCN-SRC),
measure trimmed aggregated throughput (reads at initiators + writes at
targets), and report the improvement.

Congestion in these experiments is endogenous in-cast: each target runs
a flash array whose combined read capacity exceeds the victim
initiator's downlink, so inbound read data congests exactly as in the
paper's Clos runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.tpm import ThroughputPredictionModel
from repro.experiments.runner import RunResult, TestbedConfig, run_testbed
from repro.parallel import SweepReport, run_cells
from repro.sim.units import MS, US, gbps_to_bytes_per_ns
from repro.ssd.config import SSDConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.traces import Trace


@dataclass(frozen=True)
class MicroTraceSpec:
    """Picklable recipe for a micro trace (sweep workers rebuild it).

    A closure-based trace factory cannot cross a process boundary; this
    spec can, and :meth:`build` is deterministic in the seed, so every
    worker reconstructs the identical workload.
    """

    read: MicroWorkloadConfig
    write: MicroWorkloadConfig | None
    n_reads: int
    n_writes: int
    seed: int

    def build(self) -> Trace:
        return generate_micro_trace(
            self.read,
            self.write,
            n_reads=self.n_reads,
            n_writes=self.n_writes,
            seed=self.seed,
        )


@dataclass
class SchemeComparison:
    """Paired measurement of the two schemes on one workload.

    ``dcqcn_only`` / ``dcqcn_src`` are full :class:`RunResult` objects
    when produced in-process and picklable
    :class:`repro.experiments.runner.RunMeasurement` objects when a
    sweep worker produced them; both expose the trimmed accessors the
    properties below need.
    """

    label: str
    dcqcn_only: RunResult
    dcqcn_src: RunResult
    trim_fraction: float = 0.1

    @property
    def only_gbps(self) -> float:
        return self.dcqcn_only.trimmed_aggregated_gbps(self.trim_fraction)

    @property
    def src_gbps(self) -> float:
        return self.dcqcn_src.trimmed_aggregated_gbps(self.trim_fraction)

    @property
    def improvement(self) -> float:
        """Relative aggregated-throughput gain of SRC over DCQCN-only."""
        base = self.only_gbps
        return (self.src_gbps - base) / base if base > 0 else 0.0

    @property
    def sim_events(self) -> int:
        """Total simulator events across both runs (perf accounting)."""
        return int(
            getattr(self.dcqcn_only, "sim_events", 0)
            + getattr(self.dcqcn_src, "sim_events", 0)
        )


def compare_schemes(
    trace_factory: Callable[[], Trace],
    base_config: TestbedConfig,
    tpm: ThroughputPredictionModel,
    *,
    label: str = "",
    duration_ns: int | None = None,
) -> SchemeComparison:
    """Run DCQCN-only and DCQCN-SRC on identical workloads."""
    from dataclasses import replace

    only_cfg = replace(base_config, driver="default", src_enabled=False)
    src_cfg = replace(base_config, driver="ssq", src_enabled=True)
    only = run_testbed(trace_factory(), only_cfg, duration_ns=duration_ns)
    src = run_testbed(trace_factory(), src_cfg, tpm=tpm, duration_ns=duration_ns)
    return SchemeComparison(label=label, dcqcn_only=only, dcqcn_src=src)


def _comparison_cell(
    spec: MicroTraceSpec,
    base_config: TestbedConfig,
    tpm: ThroughputPredictionModel,
    label: str,
    duration_ns: int | None,
) -> SchemeComparison:
    """One paired-scheme run — a sweep worker cell.

    Returns a :class:`SchemeComparison` whose members are stripped to
    picklable :class:`~repro.experiments.runner.RunMeasurement` objects.
    """
    cmp = compare_schemes(
        spec.build, base_config, tpm, label=label, duration_ns=duration_ns
    )
    return SchemeComparison(
        label=cmp.label,
        dcqcn_only=cmp.dcqcn_only.measurement(),
        dcqcn_src=cmp.dcqcn_src.measurement(),
        trim_fraction=cmp.trim_fraction,
    )


# -- Table IV: in-cast ratio analysis ------------------------------------------


@dataclass(frozen=True)
class IncastPoint:
    """One Table IV row specification."""

    n_targets: int
    n_initiators: int

    @property
    def label(self) -> str:
        return f"{self.n_targets}:{self.n_initiators}"


#: The paper's Table IV rows.
TABLE4_POINTS = (
    IncastPoint(2, 1),
    IncastPoint(3, 1),
    IncastPoint(4, 1),
    IncastPoint(4, 4),
)


def incast_analysis_with_report(
    tpm: ThroughputPredictionModel,
    *,
    points: tuple[IncastPoint, ...] = TABLE4_POINTS,
    ssd_config: SSDConfig | None = None,
    ssds_per_target: int = 1,
    total_read_gbps: float = 38.0,
    mean_read_bytes: float = 44 * 1024,
    mean_write_bytes: float = 23 * 1024,
    write_fraction_of_read_rate: float = 0.5,
    n_requests: int = 6000,
    seed: int = 23,
    link_rate_gbps: float = 40.0,
    congestion: "BackgroundTraffic | None | str" = "default",
    duration_ns: int | None = None,
    workers: int | None = 1,
    timeout_s: float | None = None,
    retries: int = 1,
) -> tuple[list[SchemeComparison], SweepReport]:
    """Reproduce Table IV: fixed total traffic, varying in-cast ratio.

    The total offered read traffic stays at ``total_read_gbps``
    regardless of the node counts; requests spread round-robin over
    targets and initiators, so per-target intensity falls as targets are
    added (the paper's WRR-degenerates-to-RR effect) and per-initiator
    inbound load falls as initiators are added (congestion relief — with
    several initiators only the episode's victim is squeezed, so most of
    the workload never sees congestion, as in the paper's 4:4 row).

    Each row is an independent paired run submitted through
    :mod:`repro.parallel`; ``workers`` fans them across processes with
    results identical to the serial order.
    """
    from repro.experiments.runner import BackgroundTraffic

    if congestion == "default":
        congestion = BackgroundTraffic(
            start_ns=8 * MS, end_ns=40 * MS, rate_gbps=10.0, n_hosts=14
        )
    read_inter_ns = mean_read_bytes / gbps_to_bytes_per_ns(total_read_gbps)
    write_inter_ns = read_inter_ns / write_fraction_of_read_rate
    spec = MicroTraceSpec(
        read=MicroWorkloadConfig(read_inter_ns, mean_read_bytes),
        write=MicroWorkloadConfig(write_inter_ns, mean_write_bytes),
        n_reads=n_requests,
        n_writes=int(n_requests * write_fraction_of_read_rate),
        seed=seed,
    )
    cells = []
    for point in points:
        cfg = TestbedConfig(
            n_initiators=point.n_initiators,
            n_targets=point.n_targets,
            ssds_per_target=ssds_per_target,
            ssd_config=ssd_config,
            link_rate_gbps=link_rate_gbps,
            link_delay_ns=US,
            background=congestion,
        )
        cells.append((spec, cfg, tpm, point.label, duration_ns))
    report = run_cells(
        _comparison_cell, cells, workers=workers, timeout_s=timeout_s, retries=retries
    )
    return list(report.results), report


def incast_analysis(
    tpm: ThroughputPredictionModel, **kwargs
) -> list[SchemeComparison]:
    """Table IV rows (see :func:`incast_analysis_with_report`)."""
    results, _ = incast_analysis_with_report(tpm, **kwargs)
    return results


# -- Fig. 10: workload intensity ---------------------------------------------------


@dataclass(frozen=True)
class IntensityLevel:
    """One Fig. 10 workload: average size and arrival rate per direction."""

    label: str
    mean_size_bytes: float
    arrivals_per_ms: float

    @property
    def interarrival_ns(self) -> float:
        return 1e6 / self.arrivals_per_ms


#: The paper's three intensity levels (§IV-F1).
INTENSITY_LEVELS = (
    IntensityLevel("light", 22 * 1024, 60.0),
    IntensityLevel("moderate", 32 * 1024, 80.0),
    IntensityLevel("heavy", 44 * 1024, 100.0),
)


def intensity_analysis_with_report(
    tpm: ThroughputPredictionModel,
    *,
    levels: tuple[IntensityLevel, ...] = INTENSITY_LEVELS,
    ssd_config: SSDConfig | None = None,
    ssds_per_target: int = 1,
    span_ms: float = 45.0,
    seed: int = 31,
    congestion: "BackgroundTraffic | None | str" = "default",
    duration_ns: int | None = None,
    workers: int | None = 1,
    timeout_s: float | None = None,
    retries: int = 1,
) -> tuple[list[SchemeComparison], SweepReport]:
    """Reproduce Fig. 10: both schemes at light/moderate/heavy intensity.

    Each level runs under the same congestion episode (Fig. 10's runs all
    contain congestion events); what distinguishes the levels is whether
    the device queues are deep enough for SRC's WRR to act.  Pass
    ``congestion=None`` for congestion-free runs.  Request counts scale
    with each level's arrival rate so every level spans ``span_ms``.
    Levels fan across processes via ``workers`` (``None`` = all cores).
    """
    from repro.experiments.runner import BackgroundTraffic

    if congestion == "default":
        congestion = BackgroundTraffic(
            start_ns=8 * MS, end_ns=36 * MS, rate_gbps=10.0, n_hosts=14
        )
    cells = []
    for level in levels:
        n_requests = max(100, int(level.arrivals_per_ms * span_ms))
        spec = MicroTraceSpec(
            read=MicroWorkloadConfig(level.interarrival_ns, level.mean_size_bytes),
            write=None,
            n_reads=n_requests,
            n_writes=n_requests,
            seed=seed,
        )
        cfg = TestbedConfig(
            n_initiators=1,
            n_targets=2,
            ssds_per_target=ssds_per_target,
            ssd_config=ssd_config,
            background=congestion,
        )
        cells.append((spec, cfg, tpm, level.label, duration_ns))
    report = run_cells(
        _comparison_cell, cells, workers=workers, timeout_s=timeout_s, retries=retries
    )
    return list(report.results), report


def intensity_analysis(
    tpm: ThroughputPredictionModel, **kwargs
) -> list[SchemeComparison]:
    """Fig. 10 levels (see :func:`intensity_analysis_with_report`)."""
    results, _ = intensity_analysis_with_report(tpm, **kwargs)
    return results
