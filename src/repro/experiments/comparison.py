"""DCQCN-only vs DCQCN-SRC comparisons: Table IV and Fig. 10 drivers.

The §IV-B method: run the same workload once with the default driver
(DCQCN-only) and once with SSQ + the SRC controller (DCQCN-SRC),
measure trimmed aggregated throughput (reads at initiators + writes at
targets), and report the improvement.

Congestion in these experiments is endogenous in-cast: each target runs
a flash array whose combined read capacity exceeds the victim
initiator's downlink, so inbound read data congests exactly as in the
paper's Clos runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.tpm import ThroughputPredictionModel
from repro.experiments.runner import RunResult, TestbedConfig, run_testbed
from repro.sim.units import MS, US
from repro.ssd.config import SSDConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.traces import Trace


@dataclass
class SchemeComparison:
    """Paired measurement of the two schemes on one workload."""

    label: str
    dcqcn_only: RunResult
    dcqcn_src: RunResult
    trim_fraction: float = 0.1

    @property
    def only_gbps(self) -> float:
        return self.dcqcn_only.trimmed_aggregated_gbps(self.trim_fraction)

    @property
    def src_gbps(self) -> float:
        return self.dcqcn_src.trimmed_aggregated_gbps(self.trim_fraction)

    @property
    def improvement(self) -> float:
        """Relative aggregated-throughput gain of SRC over DCQCN-only."""
        base = self.only_gbps
        return (self.src_gbps - base) / base if base > 0 else 0.0


def compare_schemes(
    trace_factory: Callable[[], Trace],
    base_config: TestbedConfig,
    tpm: ThroughputPredictionModel,
    *,
    label: str = "",
    duration_ns: int | None = None,
) -> SchemeComparison:
    """Run DCQCN-only and DCQCN-SRC on identical workloads."""
    from dataclasses import replace

    only_cfg = replace(base_config, driver="default", src_enabled=False)
    src_cfg = replace(base_config, driver="ssq", src_enabled=True)
    only = run_testbed(trace_factory(), only_cfg, duration_ns=duration_ns)
    src = run_testbed(trace_factory(), src_cfg, tpm=tpm, duration_ns=duration_ns)
    return SchemeComparison(label=label, dcqcn_only=only, dcqcn_src=src)


# -- Table IV: in-cast ratio analysis ------------------------------------------


@dataclass(frozen=True)
class IncastPoint:
    """One Table IV row specification."""

    n_targets: int
    n_initiators: int

    @property
    def label(self) -> str:
        return f"{self.n_targets}:{self.n_initiators}"


#: The paper's Table IV rows.
TABLE4_POINTS = (
    IncastPoint(2, 1),
    IncastPoint(3, 1),
    IncastPoint(4, 1),
    IncastPoint(4, 4),
)


def incast_analysis(
    tpm: ThroughputPredictionModel,
    *,
    points: tuple[IncastPoint, ...] = TABLE4_POINTS,
    ssd_config: SSDConfig | None = None,
    ssds_per_target: int = 1,
    total_read_gbps: float = 38.0,
    mean_read_bytes: float = 44 * 1024,
    mean_write_bytes: float = 23 * 1024,
    write_fraction_of_read_rate: float = 0.5,
    n_requests: int = 6000,
    seed: int = 23,
    link_rate_gbps: float = 40.0,
    congestion: "BackgroundTraffic | None | str" = "default",
    duration_ns: int | None = None,
) -> list[SchemeComparison]:
    """Reproduce Table IV: fixed total traffic, varying in-cast ratio.

    The total offered read traffic stays at ``total_read_gbps``
    regardless of the node counts; requests spread round-robin over
    targets and initiators, so per-target intensity falls as targets are
    added (the paper's WRR-degenerates-to-RR effect) and per-initiator
    inbound load falls as initiators are added (congestion relief — with
    several initiators only the episode's victim is squeezed, so most of
    the workload never sees congestion, as in the paper's 4:4 row).
    """
    from repro.experiments.runner import BackgroundTraffic

    if congestion == "default":
        congestion = BackgroundTraffic(
            start_ns=8 * MS, end_ns=40 * MS, rate_gbps=10.0, n_hosts=14
        )
    read_inter_ns = mean_read_bytes * 8.0 / total_read_gbps
    write_inter_ns = read_inter_ns / write_fraction_of_read_rate
    results: list[SchemeComparison] = []
    for point in points:
        def make_trace(seed=seed) -> Trace:
            return generate_micro_trace(
                MicroWorkloadConfig(read_inter_ns, mean_read_bytes),
                MicroWorkloadConfig(write_inter_ns, mean_write_bytes),
                n_reads=n_requests,
                n_writes=int(n_requests * write_fraction_of_read_rate),
                seed=seed,
            )

        cfg = TestbedConfig(
            n_initiators=point.n_initiators,
            n_targets=point.n_targets,
            ssds_per_target=ssds_per_target,
            ssd_config=ssd_config,
            link_rate_gbps=link_rate_gbps,
            link_delay_ns=US,
            background=congestion,
        )
        results.append(
            compare_schemes(make_trace, cfg, tpm, label=point.label, duration_ns=duration_ns)
        )
    return results


# -- Fig. 10: workload intensity ---------------------------------------------------


@dataclass(frozen=True)
class IntensityLevel:
    """One Fig. 10 workload: average size and arrival rate per direction."""

    label: str
    mean_size_bytes: float
    arrivals_per_ms: float

    @property
    def interarrival_ns(self) -> float:
        return 1e6 / self.arrivals_per_ms


#: The paper's three intensity levels (§IV-F1).
INTENSITY_LEVELS = (
    IntensityLevel("light", 22 * 1024, 60.0),
    IntensityLevel("moderate", 32 * 1024, 80.0),
    IntensityLevel("heavy", 44 * 1024, 100.0),
)


def intensity_analysis(
    tpm: ThroughputPredictionModel,
    *,
    levels: tuple[IntensityLevel, ...] = INTENSITY_LEVELS,
    ssd_config: SSDConfig | None = None,
    ssds_per_target: int = 1,
    span_ms: float = 45.0,
    seed: int = 31,
    congestion: "BackgroundTraffic | None | str" = "default",
    duration_ns: int | None = None,
) -> list[SchemeComparison]:
    """Reproduce Fig. 10: both schemes at light/moderate/heavy intensity.

    Each level runs under the same congestion episode (Fig. 10's runs all
    contain congestion events); what distinguishes the levels is whether
    the device queues are deep enough for SRC's WRR to act.  Pass
    ``congestion=None`` for congestion-free runs.  Request counts scale
    with each level's arrival rate so every level spans ``span_ms``.
    """
    from repro.experiments.runner import BackgroundTraffic

    if congestion == "default":
        congestion = BackgroundTraffic(
            start_ns=8 * MS, end_ns=36 * MS, rate_gbps=10.0, n_hosts=14
        )
    results: list[SchemeComparison] = []
    for level in levels:
        n_requests = max(100, int(level.arrivals_per_ms * span_ms))

        def make_trace(level=level, seed=seed, n_requests=n_requests) -> Trace:
            wl = MicroWorkloadConfig(level.interarrival_ns, level.mean_size_bytes)
            return generate_micro_trace(
                wl, n_reads=n_requests, n_writes=n_requests, seed=seed
            )

        cfg = TestbedConfig(
            n_initiators=1,
            n_targets=2,
            ssds_per_target=ssds_per_target,
            ssd_config=ssd_config,
            background=congestion,
        )
        results.append(
            compare_schemes(make_trace, cfg, tpm, label=level.label, duration_ns=duration_ns)
        )
    return results
