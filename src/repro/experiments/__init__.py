"""Experiment harnesses: testbeds, metric collection, paper-figure drivers.

One module per experiment family:

* :mod:`repro.experiments.replay` — device-local trace replay;
* :mod:`repro.experiments.metrics` — throughput series + §IV-B trimming;
* :mod:`repro.experiments.runner` — the integrated NVMe-oF testbed;
* :mod:`repro.experiments.weight_sweep` — Fig. 5;
* :mod:`repro.experiments.motivation` — Fig. 2 fluid model;
* :mod:`repro.experiments.dynamic` — Fig. 9 / §IV-E control delay;
* :mod:`repro.experiments.comparison` — Fig. 7/8/10, Table IV;
* :mod:`repro.experiments.tables` — report formatting.
"""

from repro.experiments.replay import DeviceReplayResult, replay_on_device
from repro.experiments.metrics import ThroughputSeries, trim_series
from repro.experiments.runner import (
    BackgroundTraffic,
    RunMeasurement,
    RunResult,
    TestbedConfig,
    run_testbed,
)
from repro.experiments.weight_sweep import (
    WeightSweepCell,
    run_weight_sweep,
    run_weight_sweep_with_report,
)
from repro.experiments.motivation import (
    MotivationOutcome,
    MotivationScenario,
    dcqcn_only,
    dcqcn_src,
    no_congestion,
)
from repro.experiments.dynamic import DynamicControlResult, run_dynamic_control
from repro.experiments.comparison import (
    INTENSITY_LEVELS,
    TABLE4_POINTS,
    IncastPoint,
    IntensityLevel,
    MicroTraceSpec,
    SchemeComparison,
    compare_schemes,
    incast_analysis,
    incast_analysis_with_report,
    intensity_analysis,
    intensity_analysis_with_report,
)
from repro.experiments.clos_scale import (
    ClosScaleConfig,
    ClosScaleResult,
    run_clos_scale_cell,
)
from repro.experiments.latency import LatencyReport, LatencySummary, latency_report
from repro.experiments.tables import format_gbps, format_percent, format_table

__all__ = [
    "replay_on_device",
    "DeviceReplayResult",
    "ThroughputSeries",
    "trim_series",
    "BackgroundTraffic",
    "TestbedConfig",
    "RunMeasurement",
    "RunResult",
    "run_testbed",
    "WeightSweepCell",
    "run_weight_sweep",
    "run_weight_sweep_with_report",
    "MotivationScenario",
    "MotivationOutcome",
    "no_congestion",
    "dcqcn_only",
    "dcqcn_src",
    "DynamicControlResult",
    "run_dynamic_control",
    "SchemeComparison",
    "compare_schemes",
    "IncastPoint",
    "IntensityLevel",
    "TABLE4_POINTS",
    "INTENSITY_LEVELS",
    "MicroTraceSpec",
    "incast_analysis",
    "incast_analysis_with_report",
    "intensity_analysis",
    "intensity_analysis_with_report",
    "format_table",
    "format_gbps",
    "format_percent",
    "LatencyReport",
    "LatencySummary",
    "latency_report",
    "ClosScaleConfig",
    "ClosScaleResult",
    "run_clos_scale_cell",
]
