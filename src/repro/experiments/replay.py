"""Device-local trace replay.

Drives a trace straight into an NVMe driver attached to one simulated
SSD — no network — and measures per-direction completion throughput.
This is the harness behind the Fig. 5 weight-ratio sweeps and the
training-sample collection for the throughput-prediction model: both
need the relationship between (workload, weight ratio) and device
throughput in isolation from congestion effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.units import GBPS
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.workloads.traces import Trace


class _DriverFeed:
    """Arrival-time submission callback (slotted, checkpoint-picklable):
    stamps ``now_ns`` at dispatch, which a ``functools.partial`` over the
    schedule-time clock could not."""

    __slots__ = ("driver", "sim")

    def __init__(self, driver, sim: Simulator) -> None:
        self.driver = driver
        self.sim = sim

    def __call__(self, req) -> None:
        self.driver.submit(req, now_ns=self.sim.now)


@dataclass
class DeviceReplayResult:
    """Outcome of one device-local replay."""

    read_tput_gbps: float
    write_tput_gbps: float
    duration_ns: int
    reads_completed: int
    writes_completed: int
    ssd: SSD
    #: Simulator events dispatched during the replay (perf accounting).
    sim_events: int = 0

    @property
    def aggregated_tput_gbps(self) -> float:
        return self.read_tput_gbps + self.write_tput_gbps


def replay_on_device(
    trace: Trace,
    config: SSDConfig,
    driver,
    *,
    measure_start_fraction: float = 0.1,
    drain: bool = True,
    max_events: int | None = None,
) -> DeviceReplayResult:
    """Replay ``trace`` into ``driver`` on a fresh SSD and measure throughput.

    Parameters
    ----------
    trace:
        Arrival-stamped requests; each is submitted to the driver at its
        arrival time.
    config / driver:
        The SSD configuration and an *unattached* driver instance
        (``DefaultNvmeDriver`` or ``SSQDriver``).
    measure_start_fraction:
        Leading fraction of the measured span excluded as warm-up.
    drain:
        Run until every submitted request completes (True) or stop at the
        last arrival (False — measures only the arrival window, so a
        saturated device reports its service rate rather than having the
        backlog drain distort averages).
    """
    if len(trace) == 0:
        raise ValueError("cannot replay an empty trace")
    if not 0.0 <= measure_start_fraction < 1.0:
        raise ValueError("measure_start_fraction must be in [0, 1)")

    sim = Simulator()
    ssd = SSD(sim, config)
    driver.connect(ssd)
    # Host consumes completions immediately (no fabric backpressure).
    ssd.set_cq_listener(ssd.auto_drain)

    feed = _DriverFeed(driver, sim)
    for req in trace:
        sim.schedule_at(req.arrival_ns, feed, req)

    last_arrival = trace[-1].arrival_ns
    if drain:
        sim.run(max_events=max_events)
        end = sim.now
    else:
        sim.run(until=last_arrival, max_events=max_events)
        end = last_arrival

    first_arrival = trace[0].arrival_ns
    start = first_arrival + int((end - first_arrival) * measure_start_fraction)
    span = max(1, end - start)

    read_bytes = write_bytes = 0
    reads = writes = 0
    for t, req in ssd.controller.completion_log:
        if t < start:
            continue
        if req.is_read:
            read_bytes += req.size_bytes
            reads += 1
        else:
            write_bytes += req.size_bytes
            writes += 1

    return DeviceReplayResult(
        read_tput_gbps=read_bytes / span / GBPS,
        write_tput_gbps=write_bytes / span / GBPS,
        duration_ns=span,
        reads_completed=reads,
        writes_completed=writes,
        ssd=ssd,
        sim_events=sim.events_dispatched,
    )
