"""Chaos scenario: SRC vs static weights under a deterministic fault matrix.

The paper's evaluation assumes a healthy fabric; this experiment asks
what the same testbed does when the fabric misbehaves.  Each cell of
the matrix runs one :class:`~repro.faults.plan.FaultPlan` — packet
loss/corruption bursts, a link flap, a die failure, or all of them at
once — against both contention policies (static SSQ weights vs the SRC
block-layer controller), with the full recovery path armed: go-back-N
retransmission at the NICs, command timeout + bounded retry at the
initiators, and the stuck-I/O watchdog so a wedged cell fails loudly
instead of reporting fictional throughput.

Reported per cell: goodput (successfully completed bytes over the
run), failed/wedged request counts, p99 end-to-end latency of the
successes, retry/retransmit counters, and recovery time (first fault
activation → last completion of a request that needed a retry).

Everything is seeded: the same ``(cell, policy, seed, duration)`` tuple
replays the identical fault pattern, so a chaos cell is as citable as a
clean one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.experiments.runner import TestbedConfig, run_testbed
from repro.fabric.initiator import RetryPolicy
from repro.faults import (
    ChannelBrownout,
    DieFailure,
    FaultPlan,
    FaultSpec,
    LinkFlap,
    LossBurst,
    NicStall,
    SlowDie,
)
from repro.net.nic import NICConfig
from repro.net.reliability import ReliabilityConfig
from repro.parallel.pool import SweepReport, run_cells
from repro.sim.units import KIB, MS, US
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace

#: Contention policies compared in every cell: static SSQ weights vs
#: the SRC block-layer rate controller (no TPM required).
POLICIES = ("static", "src")


def _spec_start_ns(spec: FaultSpec) -> int:
    if isinstance(spec, LossBurst | NicStall | SlowDie | ChannelBrownout):
        return spec.start_ns
    if isinstance(spec, LinkFlap):
        return spec.down_ns
    return spec.at_ns  # DieFailure


def fault_matrix(duration_ns: int, seed: int = 0) -> dict[str, FaultPlan]:
    """The standard chaos cells, with fault windows scaled to the run.

    ``baseline`` is the control cell (empty plan, recovery machinery
    armed but idle); ``chaos`` combines every fault class at once.
    """
    if duration_ns < 10 * MS:
        raise ValueError("chaos cells need at least 10 ms of simulated time")
    q = duration_ns // 10
    loss: tuple[FaultSpec, ...] = (
        # Read-data path (target uplink) and the initiator downlink.
        LossBurst("tgt0->sw0", 2 * q, 6 * q, loss_prob=0.02),
        LossBurst("sw0->init0", 3 * q, 6 * q, loss_prob=0.01, corrupt_prob=0.005),
    )
    flap: tuple[FaultSpec, ...] = (
        LinkFlap("sw0->tgt0", 3 * q, 3 * q + 500 * US),
    )
    die: tuple[FaultSpec, ...] = (
        # tgt0's first SSD loses a die; retries can land on ssd1.
        DieFailure("tgt0/ssd0", chip=0, at_ns=2 * q),
    )
    return {
        "baseline": FaultPlan(seed=seed),
        "loss": FaultPlan(seed=seed, specs=loss),
        "flap": FaultPlan(seed=seed, specs=flap),
        "die": FaultPlan(seed=seed, specs=die),
        "chaos": FaultPlan(seed=seed, specs=loss + flap + die),
    }


@dataclass(frozen=True)
class ChaosOutcome:
    """Picklable measurements of one (cell, policy) chaos run."""

    cell: str
    policy: str
    completed: int
    failed: int
    wedged: int
    goodput_gbps: float
    p99_read_us: float
    p99_write_us: float
    recovery_us: float
    retries_sent: int
    timeouts_fired: int
    error_completions: int
    retransmits: int
    packets_lost: int
    packets_corrupted: int
    packets_dropped_down: int
    faults_fired: int
    sim_events: int

    def as_dict(self) -> dict:
        return asdict(self)


def _p99_us(latencies_ns: list[int]) -> float:
    if not latencies_ns:
        return 0.0
    return float(np.percentile(np.asarray(latencies_ns, dtype=np.float64), 99)) / 1e3


def run_chaos_cell(
    cell: str,
    policy: str,
    seed: int = 0,
    duration_ns: int = 20 * MS,
) -> ChaosOutcome:
    """Run one chaos cell.  Module-level so sweeps can pool it."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    plan = fault_matrix(duration_ns, seed=seed)[cell]

    # Moderate in-cast load: enough to keep DCQCN active, light enough
    # that loss-burst cells converge well inside the drain grace.
    stream = MicroWorkloadConfig(mean_interarrival_ns=20_000, mean_size_bytes=16 * KIB)
    n_per_stream = max(50, int(duration_ns // (2 * stream.mean_interarrival_ns)))
    trace = generate_micro_trace(
        stream, n_reads=n_per_stream, n_writes=n_per_stream, seed=seed
    )

    config = TestbedConfig(
        n_initiators=1,
        n_targets=2,
        ssds_per_target=2,
        driver="block" if policy == "src" else "ssq",
        src_enabled=policy == "src",
        nic_config=NICConfig(reliability=ReliabilityConfig(seed=seed)),
        retry_policy=RetryPolicy(timeout_ns=4 * MS, max_retries=4),
        faults=plan,
        watchdog=True,
    )
    result = run_testbed(
        trace, config, duration_ns=duration_ns, drain_outstanding_ns=60 * MS
    )

    requests = list(trace)
    ok = [r for r in requests if r.complete_ns >= 0 and not r.error]
    failed = [r for r in requests if r.complete_ns >= 0 and r.error]
    wedged = sum(i.outstanding() for i in result.initiators)
    goodput_gbps = (
        sum(r.size_bytes for r in ok) * 8.0 / result.duration_ns
        if result.duration_ns
        else 0.0
    )

    first_fault = min((_spec_start_ns(s) for s in plan.specs), default=-1)
    affected = [r for r in requests if r.complete_ns >= 0 and (r.retries or r.error)]
    recovery_us = (
        (max(r.complete_ns for r in affected) - first_fault) / 1e3
        if affected and first_fault >= 0
        else 0.0
    )

    retransmits = 0
    for nic in result.network.hosts.values():
        for flow in nic.flows.values():
            if flow._rel is not None:
                retransmits += flow._rel.retransmits
    injector = result.injector
    assert injector is not None  # config.faults is always set here
    loss = injector.loss_summary()

    return ChaosOutcome(
        cell=cell,
        policy=policy,
        completed=len(ok),
        failed=len(failed),
        wedged=wedged,
        goodput_gbps=goodput_gbps,
        p99_read_us=_p99_us([r.total_latency_ns for r in ok if r.is_read]),
        p99_write_us=_p99_us([r.total_latency_ns for r in ok if not r.is_read]),
        recovery_us=recovery_us,
        retries_sent=sum(i.retries_sent for i in result.initiators),
        timeouts_fired=sum(i.timeouts_fired for i in result.initiators),
        error_completions=sum(t.error_completions for t in result.targets),
        retransmits=retransmits,
        packets_lost=sum(v["lost"] for v in loss.values()),
        packets_corrupted=sum(v["corrupted"] for v in loss.values()),
        packets_dropped_down=sum(v["dropped_down"] for v in loss.values()),
        faults_fired=injector.faults_fired,
        sim_events=result.sim.events_dispatched,
    )


def run_chaos_matrix(
    cells: tuple[str, ...] | None = None,
    policies: tuple[str, ...] = POLICIES,
    *,
    seed: int = 0,
    duration_ns: int = 20 * MS,
    workers: int | None = 1,
) -> tuple[list[ChaosOutcome | None], SweepReport]:
    """Run the full (cell × policy) grid; failed cells are recorded.

    Returns the outcomes in grid order (``None`` where a cell failed —
    e.g. the watchdog caught a wedge) plus the sweep report whose
    ``failures`` list carries the structured failure records.
    """
    if cells is None:
        cells = tuple(fault_matrix(duration_ns, seed=seed))
    grid = [(c, p, seed, duration_ns) for c in cells for p in policies]
    report = run_cells(
        run_chaos_cell, grid, workers=workers, on_error="record", retries=0
    )
    return list(report.results), report
